//! Seeded calibration property suite for the probabilistic forecast layer.
//!
//! Three families of properties, all driven by the in-repo deterministic
//! [`Rng64`] so every failure reproduces from the fixed seeds:
//!
//! 1. **Empirical coverage** — on synthetic series whose generating process
//!    matches a pipeline's model family (AR(1) for AR/ARIMA, seasonal +
//!    Gaussian noise for Holt-Winters, random walks for ZeroModel/GARCH),
//!    the native 80%/95% bands must cover the realized future within
//!    tolerance of their nominal levels.
//! 2. **Quantile monotonicity** — every pool pipeline, across random
//!    horizons, returns bands where `lower <= point <= upper` per level and
//!    a wider level never produces a narrower band. The
//!    [`IntervalForecast`] constructor enforces this, so the property is
//!    asserted both through the constructor (an `Ok` return) and directly
//!    against the band frames.
//! 3. **Conformal guarantee** — on exchangeable (iid) noise, the
//!    split-conformal fallback's marginal coverage is at least its nominal
//!    level up to finite-sample slack, for a pipeline with no native
//!    interval implementation.

use autoai_ts_repro::linalg::Rng64;
use autoai_ts_repro::pipelines::{
    pipeline_by_name, predict_interval_or_conformal, ConformalCalibration, Forecaster,
    IntervalForecast, IntervalSource, PipelineContext,
};
use autoai_ts_repro::tsdata::TimeSeriesFrame;

const LEVELS: [f64; 2] = [0.80, 0.95];

/// AR(1) around a fixed mean with Gaussian innovations.
fn ar1(rng: &mut Rng64, n: usize, phi: f64, sigma: f64) -> Vec<f64> {
    let mut x = 50.0;
    (0..n)
        .map(|_| {
            x = 50.0 + phi * (x - 50.0) + sigma * rng.normal();
            x
        })
        .collect()
}

/// Seasonal signal plus iid Gaussian noise.
fn seasonal(rng: &mut Rng64, n: usize, period: usize, sigma: f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            30.0 + 6.0 * (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin()
                + sigma * rng.normal()
        })
        .collect()
}

/// Random walk with drifted Gaussian steps — the model family behind the
/// ZeroModel and GARCH interval recursions.
fn random_walk(rng: &mut Rng64, n: usize, drift: f64, sigma: f64) -> Vec<f64> {
    let mut x = 100.0;
    (0..n)
        .map(|_| {
            x += drift + sigma * rng.normal();
            x
        })
        .collect()
}

/// Fit `pipeline` on the first `n - horizon` points of each generated
/// series, ask for native bands over the final `horizon` points, and return
/// the empirical coverage per level. Panics if the pipeline ever refuses a
/// native interval — these pipelines advertise analytic bands.
fn native_coverage(
    rng: &mut Rng64,
    mut gen: impl FnMut(&mut Rng64, usize) -> Vec<f64>,
    pipeline: &str,
    ctx: &PipelineContext,
    n: usize,
    horizon: usize,
    trials: usize,
) -> Vec<f64> {
    let mut hits = vec![0usize; LEVELS.len()];
    let mut events = 0usize;
    for _ in 0..trials {
        let series = gen(rng, n + horizon);
        let (train, future) = (series[..n].to_vec(), &series[n..]);
        let mut p = pipeline_by_name(pipeline, ctx).expect("pipeline resolvable");
        p.fit(&TimeSeriesFrame::univariate(train)).expect("fit");
        let iv = p
            .predict_interval(horizon, &LEVELS)
            .unwrap_or_else(|e| panic!("{pipeline} refused a native interval: {e}"));
        assert_eq!(iv.source(), IntervalSource::Native, "{pipeline}");
        for (idx, _) in LEVELS.iter().enumerate() {
            let (lo, hi) = iv.band(idx).expect("band");
            for ((l, h), a) in lo.series(0).iter().zip(hi.series(0)).zip(future) {
                if l <= a && a <= h {
                    hits[idx] += 1;
                }
            }
        }
        events += horizon;
    }
    hits.iter().map(|&h| h as f64 / events as f64).collect()
}

fn assert_calibrated(name: &str, coverage: &[f64]) {
    let c80 = coverage[0];
    let c95 = coverage[1];
    // forecast-step events within a trial are correlated, so the effective
    // sample is smaller than trials*horizon; the tolerances are set for
    // that (and the suite is fully seeded, so there is no flake budget)
    assert!(
        (0.68..=0.93).contains(&c80),
        "{name}: 80% band covered {c80:.3}"
    );
    assert!(c95 >= 0.86, "{name}: 95% band covered {c95:.3}");
    assert!(
        c95 >= c80,
        "{name}: nesting lost in coverage: {c95} < {c80}"
    );
}

#[test]
fn ar_native_bands_cover_gaussian_ar1() {
    let mut rng = Rng64::seed_from_u64(0xA21);
    let ctx = PipelineContext::new(8, 6, vec![12]);
    let cov = native_coverage(&mut rng, |r, n| ar1(r, n, 0.7, 2.0), "AR", &ctx, 240, 6, 50);
    assert_calibrated("AR", &cov);
}

#[test]
fn arima_native_bands_cover_gaussian_ar1() {
    let mut rng = Rng64::seed_from_u64(0xA22);
    let ctx = PipelineContext::new(8, 6, vec![12]);
    let cov = native_coverage(
        &mut rng,
        |r, n| ar1(r, n, 0.6, 2.5),
        "Arima",
        &ctx,
        240,
        6,
        40,
    );
    assert_calibrated("Arima", &cov);
}

#[test]
fn holtwinters_native_bands_cover_seasonal_noise() {
    let mut rng = Rng64::seed_from_u64(0xA23);
    let ctx = PipelineContext::new(8, 6, vec![12]);
    let cov = native_coverage(
        &mut rng,
        |r, n| seasonal(r, n, 12, 1.5),
        "HW-Additive",
        &ctx,
        240,
        6,
        40,
    );
    assert_calibrated("HW-Additive", &cov);
}

#[test]
fn zero_model_native_bands_cover_random_walks() {
    let mut rng = Rng64::seed_from_u64(0xA24);
    let ctx = PipelineContext::new(8, 6, vec![12]);
    let cov = native_coverage(
        &mut rng,
        |r, n| random_walk(r, n, 0.0, 1.0),
        "ZeroModel",
        &ctx,
        200,
        6,
        50,
    );
    assert_calibrated("ZeroModel", &cov);
}

#[test]
fn garch_native_bands_cover_drifted_random_walks() {
    let mut rng = Rng64::seed_from_u64(0xA25);
    let ctx = PipelineContext::new(8, 6, vec![12]);
    // GARCH's conditional-variance origin wobbles with the last residuals,
    // so its coverage estimate needs more trials than the constant-variance
    // families to settle near nominal
    let cov = native_coverage(
        &mut rng,
        |r, n| random_walk(r, n, 0.05, 1.2),
        "Garch",
        &ctx,
        240,
        6,
        150,
    );
    assert_calibrated("Garch", &cov);
}

#[test]
fn conformal_fallback_covers_exchangeable_noise() {
    // iid observations are exchangeable, so split conformal's marginal
    // coverage guarantee applies exactly; MT2RForecaster has no native
    // interval implementation and must take the conformal path
    let mut rng = Rng64::seed_from_u64(0xC0F);
    let ctx = PipelineContext::new(8, 6, vec![12]);
    let (n, calib_len, horizon, trials) = (200usize, 48usize, 6usize, 40usize);
    let mut hits = vec![0usize; LEVELS.len()];
    let mut events = 0usize;
    for _ in 0..trials {
        let series: Vec<f64> = (0..n + horizon)
            .map(|_| 40.0 + 3.0 * rng.normal())
            .collect();
        let train = TimeSeriesFrame::univariate(series[..n - calib_len].to_vec());
        let calib = TimeSeriesFrame::univariate(series[n - calib_len..n].to_vec());
        let future = &series[n..];
        let mut p = pipeline_by_name("MT2RForecaster", &ctx).expect("resolvable");
        p.fit(&train).expect("fit");
        let calibration = ConformalCalibration::calibrate(p.as_ref(), &calib).expect("calibration");
        let iv = predict_interval_or_conformal(p.as_ref(), horizon, &LEVELS, Some(&calibration))
            .expect("conformal bands");
        assert_eq!(iv.source(), IntervalSource::Conformal);
        for (idx, _) in LEVELS.iter().enumerate() {
            let (lo, hi) = iv.band(idx).expect("band");
            for ((l, h), a) in lo.series(0).iter().zip(hi.series(0)).zip(future) {
                if l <= a && a <= h {
                    hits[idx] += 1;
                }
            }
        }
        events += horizon;
    }
    for (idx, level) in LEVELS.iter().enumerate() {
        let cov = hits[idx] as f64 / events as f64;
        // the guarantee is one-sided (coverage >= level); allow empirical
        // slack from the finite event count
        assert!(
            cov >= level - 0.07,
            "conformal {level} band covered only {cov:.3}"
        );
    }
}

/// Every pool pipeline (defaults + extensions) must produce valid bands —
/// native or conformal — across random horizons, and those bands must be
/// finite, bracket the point forecast, and nest across levels.
#[test]
fn all_pool_pipelines_emit_monotone_noncrossing_bands() {
    let mut rng = Rng64::seed_from_u64(0x90A7);
    let ctx = PipelineContext::new(8, 6, vec![12]);
    let names = [
        "FlattenAutoEnsembler-log",
        "WindowRandomForest",
        "WindowSVR",
        "MT2RForecaster",
        "bats",
        "DifferenceFlattenAutoEnsembler-log",
        "LocalizedFlattenAutoEnsembler",
        "Arima",
        "HW-Additive",
        "HW-Multiplicative",
        "ZeroModel",
        "Theta",
        "NeuralWindow",
        "FlattenAutoEnsembler",
        "AR",
        "SeasonalNaive",
        "Garch",
    ];
    let n = 200usize;
    let series = seasonal(&mut rng, n, 12, 1.0);
    let train = TimeSeriesFrame::univariate(series[..n - 24].to_vec());
    let calib = TimeSeriesFrame::univariate(series[n - 24..].to_vec());
    let levels = [0.5, 0.8, 0.95];
    for name in names {
        let mut p = pipeline_by_name(name, &ctx).unwrap_or_else(|| panic!("{name} resolvable"));
        p.fit(&train).unwrap_or_else(|e| panic!("{name} fit: {e}"));
        let calibration = ConformalCalibration::calibrate(p.as_ref(), &calib);
        for _ in 0..4 {
            let horizon = rng.gen_range(1..17);
            let iv: IntervalForecast =
                predict_interval_or_conformal(p.as_ref(), horizon, &levels, calibration.as_ref())
                    .unwrap_or_else(|e| panic!("{name} h={horizon}: {e}"));
            assert_eq!(iv.horizon(), horizon, "{name}");
            assert_eq!(iv.levels(), &levels, "{name}");
            // re-assert what the constructor validates, directly on the
            // band frames: finite, bracketing, nested
            let point = iv.point();
            let mut prev_widths: Option<Vec<f64>> = None;
            for (idx, _) in levels.iter().enumerate() {
                let (lo, hi) = iv.band(idx).expect("band");
                let mut widths = Vec::with_capacity(horizon);
                for ((l, h), c) in lo.series(0).iter().zip(hi.series(0)).zip(point.series(0)) {
                    assert!(l.is_finite() && h.is_finite(), "{name} non-finite band");
                    assert!(l <= c && c <= h, "{name} band crosses the point");
                    widths.push(h - l);
                }
                if let Some(prev) = &prev_widths {
                    for (w, pw) in widths.iter().zip(prev) {
                        assert!(w + 1e-12 >= *pw, "{name} wider level got narrower");
                    }
                }
                prev_widths = Some(widths);
            }
        }
    }
}

/// The ladder floor: a ZeroModel fitted on a constant series still emits
/// valid (zero-width) bands — intervals are *always* available.
#[test]
fn constant_series_still_yields_valid_bands() {
    let ctx = PipelineContext::new(4, 4, vec![]);
    let mut p = pipeline_by_name("ZeroModel", &ctx).expect("resolvable");
    p.fit(&TimeSeriesFrame::univariate(vec![7.0; 64]))
        .expect("fit");
    let iv = p.predict_interval(5, &LEVELS).expect("bands");
    assert_eq!(iv.source(), IntervalSource::Native);
    let (lo, hi) = iv.band(1).expect("95% band");
    for (l, h) in lo.series(0).iter().zip(hi.series(0)) {
        assert!((l - 7.0).abs() < 1e-9 && (h - 7.0).abs() < 1e-9);
    }
}
