//! The chaos gauntlet: seeded fault plans driven through the whole stack.
//!
//! The deterministic chaos layer (`autoai_chaos`) injects panics, typed
//! errors, NaN forecasts and delays at named sites inside the pipelines,
//! the transform cache and the executor. This suite sweeps **over a
//! hundred seeded plans** and holds the system to its robustness
//! contract:
//!
//! * `run_tdaub` never hangs (the hard-deadline watchdog bounds it) and
//!   never panics — every fault lands as a typed failure;
//! * serial and parallel runs agree bit-for-bit on the survivors under
//!   the *same* plan (injection is a pure function of seed, site and key,
//!   never of thread interleaving);
//! * a cache hit never serves bytes that differ from a fault-free rebuild
//!   (process-wide hit verification stays at zero mismatches);
//! * `AutoAITS::fit` *always* returns a working forecaster, walking the
//!   degradation ladder down to the ZeroModel baseline at worst;
//! * an empty plan is invisible: zero injected faults and bit-identical
//!   results to a run with no plan installed at all;
//! * the interval ladder absorbs `predict.interval` faults: a faulting
//!   native band degrades to the split-conformal fallback (and at worst to
//!   the ZeroModel floor), and the served bands are always finite.
//!
//! The gauntlet doubles as a **lock-order sanitizer run**: every workspace
//! lock goes through `linalg::sync`'s ordered wrappers, and enabling
//! runtime tracking makes each test record the cross-thread acquisition
//! graph live (even in release builds) and assert zero order inversions
//! after 150+ seeded plans.
//!
//! Chaos state is process-global, so every test serializes on `GATE`.

use std::sync::Mutex;
use std::time::Duration;

use autoai_ts_repro::chaos;
use autoai_ts_repro::core_ts::{
    AutoAITS, AutoAITSConfig, DegradationLevel, ForecastService, PipelineError, ServiceRequest,
    ServiceResponse,
};
use autoai_ts_repro::linalg::sync as lock_sync;
use autoai_ts_repro::lookback;
use autoai_ts_repro::pipelines::{
    pipeline_by_name, predict_interval_or_conformal, ConformalCalibration, Forecaster,
    IntervalSource, PipelineContext,
};
use autoai_ts_repro::tdaub::{run_tdaub, TDaubConfig, TDaubResult};
use autoai_ts_repro::transforms;
use autoai_ts_repro::tsdata::{self, TimeSeriesFrame};

static GATE: Mutex<()> = Mutex::new(());

fn wavy(n: usize) -> TimeSeriesFrame {
    TimeSeriesFrame::univariate(
        (0..n)
            .map(|i| 20.0 + 3.0 * (2.0 * std::f64::consts::PI * i as f64 / 8.0).sin())
            .collect(),
    )
}

/// Registry pipelines that carry chaos injection gates (ZeroModel is the
/// ladder's fault-free floor and deliberately has none).
fn pool() -> Vec<Box<dyn Forecaster>> {
    let ctx = PipelineContext::new(8, 6, vec![8]);
    ["ZeroModel", "SeasonalNaive", "AR"]
        .iter()
        .filter_map(|n| pipeline_by_name(n, &ctx))
        .collect()
}

fn gauntlet_cfg(parallel: bool) -> TDaubConfig {
    TDaubConfig {
        parallel,
        // generous: real units finish in milliseconds; the watchdog only
        // exists here to turn a pathological stall into a typed failure
        pipeline_hard_deadline: Some(Duration::from_secs(10)),
        ..Default::default()
    }
}

/// Bit-exact outcome signature for the surviving pipelines.
fn signature(r: &TDaubResult) -> Vec<(String, Vec<(usize, u64)>, u64, u64)> {
    r.reports
        .iter()
        .map(|rep| {
            (
                rep.name.clone(),
                rep.scores.iter().map(|&(a, s)| (a, s.to_bits())).collect(),
                rep.projected_score.to_bits(),
                rep.final_score.unwrap_or(f64::NAN).to_bits(),
            )
        })
        .collect()
}

#[test]
fn a_hundred_seeded_plans_never_hang_and_agree_serial_vs_parallel() {
    let _gate = GATE.lock().unwrap();
    let frame = wavy(160);
    lock_sync::set_runtime_tracking(true);
    transforms::set_hit_verification(true);
    let mut failed_runs = 0usize;
    let mut injected_total = 0u64;
    for seed in 0..110u64 {
        chaos::install(chaos::FaultPlan::new(seed));
        let serial = run_tdaub(pool(), &frame, &gauntlet_cfg(false));
        let parallel = run_tdaub(pool(), &frame, &gauntlet_cfg(true));
        injected_total += chaos::injected_count();
        chaos::disable();
        match (serial, parallel) {
            (Ok(s), Ok(p)) => {
                assert_eq!(signature(&s), signature(&p), "seed {seed}");
            }
            // a fault hitting the winner's final full-data refit fails the
            // whole run — legitimately, and identically in both modes
            (Err(_), Err(_)) => failed_runs += 1,
            (s, p) => panic!(
                "seed {seed}: modes disagree — serial ok={}, parallel ok={}",
                s.is_ok(),
                p.is_ok()
            ),
        }
    }
    let mismatches = transforms::hit_mismatches();
    transforms::set_hit_verification(false);
    let inversions = lock_sync::inversion_count();
    lock_sync::set_runtime_tracking(false);
    assert_eq!(mismatches, 0, "a cache hit served stale bytes");
    assert_eq!(inversions, 0, "the sweep recorded a lock-order inversion");
    assert!(injected_total > 0, "the sweep never fired a single fault");
    assert!(failed_runs < 110, "every seeded run failed");
}

#[test]
fn fit_degrades_but_always_returns_a_forecaster() {
    let _gate = GATE.lock().unwrap();
    let rows: Vec<Vec<f64>> = (0..300)
        .map(|i| vec![20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin()])
        .collect();
    lock_sync::set_runtime_tracking(true);
    let mut degraded = 0usize;
    for seed in 0..40u64 {
        // far more hostile than the default plan — roughly 3 of 5 fits die
        let plan = chaos::FaultPlan {
            seed,
            panic_prob: 0.30,
            error_prob: 0.30,
            nan_prob: 0.15,
            delay_prob: 0.05,
            max_delay_ms: 3,
        };
        chaos::install(plan);
        // no ZeroModel in the pool: a fully-failed pool must still produce
        // a forecaster via the ladder's baseline rung
        let mut cfg = AutoAITSConfig {
            pipeline_names: Some(vec![
                "SeasonalNaive".into(),
                "AR".into(),
                "MT2RForecaster".into(),
            ]),
            ..Default::default()
        };
        cfg.tdaub.pipeline_hard_deadline = Some(Duration::from_secs(10));
        let mut sys = AutoAITS::with_config(cfg);
        let fitted = sys.fit_rows(&rows).map(|_| ());
        chaos::disable();
        fitted.unwrap_or_else(|e| panic!("seed {seed}: fit must degrade, not fail: {e}"));
        let level = sys.summary().map(|s| s.degradation);
        if level != Some(DegradationLevel::None) {
            degraded += 1;
        }
        let f = sys
            .predict(12)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            f.series(0).iter().all(|v| v.is_finite()),
            "seed {seed}: non-finite forecast at level {level:?}"
        );
        // the interval ladder must hold under the same pressure: re-arm the
        // plan and demand finite, bracketed quantile bands from the fitted
        // system — native, conformal, or the ZeroModel floor
        chaos::install(chaos::FaultPlan {
            seed,
            panic_prob: 0.30,
            error_prob: 0.30,
            nan_prob: 0.15,
            delay_prob: 0.05,
            max_delay_ms: 3,
        });
        let iv = sys.predict_interval(12, &[0.8, 0.95]);
        chaos::disable();
        let iv = iv.unwrap_or_else(|e| panic!("seed {seed}: interval ladder must not fail: {e}"));
        for idx in 0..2 {
            let (lo, hi) = iv
                .band(idx)
                .unwrap_or_else(|| panic!("seed {seed}: band {idx}"));
            for ((l, u), p) in lo
                .series(0)
                .iter()
                .zip(hi.series(0))
                .zip(iv.point().series(0))
            {
                assert!(
                    l.is_finite() && u.is_finite() && *l <= *p && *p <= *u,
                    "seed {seed}: invalid band [{l}, {u}] around {p}"
                );
            }
        }
    }
    let inversions = lock_sync::inversion_count();
    lock_sync::set_runtime_tracking(false);
    assert!(degraded > 0, "aggressive plans never degraded a single fit");
    assert_eq!(inversions, 0, "the sweep recorded a lock-order inversion");
}

#[test]
fn pre_executor_sites_fire_and_fit_survives_them() {
    let _gate = GATE.lock().unwrap();
    let frame = wavy(120);
    let aggressive = |seed| chaos::FaultPlan {
        seed,
        panic_prob: 0.4,
        error_prob: 0.4,
        nan_prob: 0.0,
        delay_prob: 0.0,
        max_delay_ms: 0,
    };

    // 1. the sites themselves: panics and degraded returns both occur over
    //    the sweep, and every outcome replays identically under its seed
    let mut panics = 0usize;
    let mut degraded_reports = 0usize;
    for seed in 0..30u64 {
        chaos::install(aggressive(seed));
        let probe = || {
            let q = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                tsdata::quality_check(&frame)
            }))
            .ok();
            let lb = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                lookback::discover_univariate(
                    frame.series(0),
                    None,
                    &lookback::LookbackConfig::default(),
                )
            }))
            .ok();
            (q, lb)
        };
        let (q, lb) = probe();
        assert_eq!((q.clone(), lb.clone()), probe(), "seed {seed}: not pure");
        chaos::disable();
        if q.is_none() || lb.is_none() {
            panics += 1;
        }
        // wavy() has no missing cells, so a missing_count of 1 can only be
        // the injected pessimistic report
        if q.is_some_and(|r| r.missing_count == 1) {
            degraded_reports += 1;
        }
    }
    assert!(panics > 0, "no pre-executor site ever panicked");
    assert!(degraded_reports > 0, "quality.assess never degraded");

    // 2. the orchestrator: a fit under the same pressure always succeeds,
    //    walking the quality/look-back degradation rungs instead of dying
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|i| vec![10.0 + 2.0 * (2.0 * std::f64::consts::PI * i as f64 / 8.0).sin()])
        .collect();
    for seed in 0..12u64 {
        chaos::install(aggressive(seed));
        let mut cfg = AutoAITSConfig {
            pipeline_names: Some(vec!["ZeroModel".into(), "SeasonalNaive".into()]),
            ..Default::default()
        };
        cfg.tdaub.pipeline_hard_deadline = Some(Duration::from_secs(10));
        let mut sys = AutoAITS::with_config(cfg);
        let fitted = sys.fit_rows(&rows).map(|_| ());
        chaos::disable();
        fitted.unwrap_or_else(|e| {
            panic!("seed {seed}: pre-executor faults must degrade, not fail: {e}")
        });
        let f = sys
            .predict(8)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(f.series(0).iter().all(|v| v.is_finite()), "seed {seed}");
    }
}

#[test]
fn interval_faults_degrade_to_conformal_and_bands_stay_finite() {
    let _gate = GATE.lock().unwrap();
    let frame = wavy(160);
    let (train, calib) = (frame.slice(0, 136), frame.slice(136, 160));
    let ctx = PipelineContext::new(8, 6, vec![8]);
    // fit and calibrate fault-free; the sweep then attacks only the
    // prediction-time sites (`predict.interval`, `pipeline.predict`)
    let mut p = pipeline_by_name("AR", &ctx).expect("AR resolvable");
    p.fit(&train).expect("fault-free fit");
    let cal = ConformalCalibration::calibrate(p.as_ref(), &calib).expect("calibration");

    let mut native = 0usize;
    let mut conformal = 0usize;
    let mut floors = 0usize;
    for seed in 0..60u64 {
        let plan = chaos::FaultPlan {
            seed,
            panic_prob: 0.25,
            error_prob: 0.25,
            nan_prob: 0.25,
            delay_prob: 0.05,
            max_delay_ms: 2,
        };
        chaos::install(plan);
        for horizon in [3usize, 6, 9] {
            let outcome =
                predict_interval_or_conformal(p.as_ref(), horizon, &[0.8, 0.95], Some(&cal));
            // injection is a pure function of (seed, site, key): the same
            // call under the same plan lands on the same rung
            let replay =
                predict_interval_or_conformal(p.as_ref(), horizon, &[0.8, 0.95], Some(&cal));
            match (&outcome, &replay) {
                (Ok(a), Ok(b)) => assert_eq!(a.source(), b.source(), "seed {seed}"),
                (Err(_), Err(_)) => {}
                _ => panic!("seed {seed} h={horizon}: replay diverged"),
            }
            match outcome {
                Ok(iv) => {
                    match iv.source() {
                        IntervalSource::Native => native += 1,
                        IntervalSource::Conformal => conformal += 1,
                        IntervalSource::Baseline => unreachable!("no floor in this ladder"),
                    }
                    for idx in 0..2 {
                        let (lo, hi) = iv.band(idx).expect("band");
                        assert!(
                            lo.series(0)
                                .iter()
                                .zip(hi.series(0))
                                .all(|(l, u)| l.is_finite() && u.is_finite() && l <= u),
                            "seed {seed} h={horizon}: non-finite or crossed band"
                        );
                    }
                }
                // both rungs faulted (native band + NaN-poisoned conformal
                // point): a typed error, never a panic — callers with a
                // ZeroModel floor absorb this
                Err(_) => floors += 1,
            }
        }
        chaos::disable();
    }
    assert!(native > 0, "no native band survived the sweep");
    assert!(conformal > 0, "native faults never degraded to conformal");
    // the ladder stayed total: every call returned a band or a typed error
    assert_eq!(native + conformal + floors, 180);
}

#[test]
fn service_submissions_absorb_faults_and_hold_lock_order() {
    let _gate = GATE.lock().unwrap();
    lock_sync::set_runtime_tracking(true);
    let rows_a: Vec<Vec<f64>> = (0..150)
        .map(|i| vec![20.0 + 4.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin()])
        .collect();
    let rows_b: Vec<Vec<f64>> = (0..150)
        .map(|i| vec![5.0 + 2.0 * (2.0 * std::f64::consts::PI * i as f64 / 8.0).cos()])
        .collect();
    let mut injected_total = 0u64;
    let mut typed_failures = 0usize;
    for seed in 0..10u64 {
        chaos::install(chaos::FaultPlan {
            seed,
            panic_prob: 0.20,
            error_prob: 0.25,
            nan_prob: 0.05,
            delay_prob: 0.10,
            max_delay_ms: 2,
        });
        let mut cfg = AutoAITSConfig {
            pipeline_names: Some(vec![
                "ZeroModel".into(),
                "SeasonalNaive".into(),
                "AR".into(),
            ]),
            ..Default::default()
        };
        cfg.tdaub.pipeline_hard_deadline = Some(Duration::from_secs(10));
        let svc = ForecastService::new(cfg);
        svc.ingest("a", TimeSeriesFrame::from_rows(&rows_a))
            .unwrap();
        svc.ingest("b", TimeSeriesFrame::from_rows(&rows_b))
            .unwrap();
        // a mixed batch under fire: the `service.submit` site panics, errors
        // and delays requests by position; every outcome must surface as a
        // reply — Ok or a typed error — never as an escaped panic or a hang
        let replies = svc.submit(&[
            ServiceRequest::Fit { series: "a".into() },
            ServiceRequest::Fit { series: "b".into() },
            ServiceRequest::Fit { series: "a".into() },
            ServiceRequest::Predict {
                series: "a".into(),
                horizon: 6,
            },
        ]);
        injected_total += chaos::injected_count();
        chaos::disable();
        assert_eq!(replies.len(), 4, "seed {seed}: replies must stay aligned");
        for (i, reply) in replies.iter().enumerate() {
            match reply {
                Ok(ServiceResponse::Fit(report)) => {
                    assert!(!report.best_pipeline.is_empty(), "seed {seed} req {i}")
                }
                Ok(ServiceResponse::Predict(f)) => {
                    assert_eq!(f.len(), 6, "seed {seed} req {i}")
                }
                // injected panics land as Crashed via the worker-panic
                // boundary; a predict racing a faulted fit sees NotFitted
                Err(
                    PipelineError::Crashed(_)
                    | PipelineError::NotFitted
                    | PipelineError::Fit(_)
                    | PipelineError::BudgetExceeded,
                ) => typed_failures += 1,
                Err(e) => panic!("seed {seed} req {i}: unexpected error {e}"),
            }
        }
        let stats = svc.stats();
        assert_eq!(stats.in_flight, 0, "seed {seed}: requests leaked");
        assert_eq!(stats.admitted, 4, "seed {seed}");
        assert_eq!(stats.completed, 4, "seed {seed}");
    }
    let inversions = lock_sync::inversion_count();
    lock_sync::set_runtime_tracking(false);
    assert!(injected_total > 0, "the sweep never fired a single fault");
    assert!(
        typed_failures > 0,
        "no submission ever faulted — site dead?"
    );
    assert_eq!(inversions, 0, "the sweep recorded a lock-order inversion");
}

/// Bit-exact outcome signature for a service fit report (cache counters
/// excluded: the cache affects wall time, never results).
fn fit_signature(
    r: &autoai_ts_repro::core_ts::ServiceFitReport,
) -> (String, Vec<(String, u64)>, u64, DegradationLevel) {
    (
        r.best_pipeline.clone(),
        r.ranking
            .iter()
            .map(|(n, s)| (n.clone(), s.to_bits()))
            .collect(),
        r.holdout_smape.to_bits(),
        r.degradation,
    )
}

#[test]
fn mid_observe_faults_degrade_never_corrupt_across_150_plans() {
    let _gate = GATE.lock().unwrap();
    lock_sync::set_runtime_tracking(true);
    transforms::set_hit_verification(true);
    let base: Vec<Vec<f64>> = (0..120)
        .map(|i| vec![20.0 + 4.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin()])
        .collect();
    // two stationary batches, then four level-shifted ones: the shift makes
    // the drift monitor charge and (fault permitting) schedule a warm
    // re-selection, so the sweep exercises `observe.append`, `drift.update`
    // and `reselect.swap` on live state
    let batches: Vec<Vec<Vec<f64>>> = (0..6)
        .map(|b| {
            (0..6)
                .map(|i| {
                    if b < 2 {
                        vec![20.0 + 4.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin()]
                    } else {
                        vec![400.0 + i as f64]
                    }
                })
                .collect()
        })
        .collect();
    let service = || {
        let mut cfg = AutoAITSConfig {
            pipeline_names: Some(vec![
                "ZeroModel".into(),
                "SeasonalNaive".into(),
                "AR".into(),
            ]),
            ..Default::default()
        };
        cfg.tdaub.pipeline_hard_deadline = Some(Duration::from_secs(10));
        let svc = ForecastService::new(cfg);
        svc.ingest("s", TimeSeriesFrame::from_rows(&base)).unwrap();
        svc.fit("s").unwrap();
        svc
    };
    let mut injected_total = 0u64;
    let mut faulted_observes = 0usize;
    let mut reselections_seen = 0u64;
    for seed in 0..160u64 {
        let svc = service();
        let mirror = service();
        chaos::install(chaos::FaultPlan {
            seed,
            panic_prob: 0.25,
            error_prob: 0.25,
            nan_prob: 0.10,
            delay_prob: 0.05,
            max_delay_ms: 2,
        });
        // drive the observes under fire, remembering which batches landed
        let mut landed: Vec<&Vec<Vec<f64>>> = Vec::new();
        for batch in &batches {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                svc.observe("s", batch).map(|_| ())
            }));
            match outcome {
                Ok(Ok(())) => landed.push(batch),
                // a typed error or an escaped injected panic both mean the
                // append never happened: the stored series is untouched
                Ok(Err(_)) | Err(_) => faulted_observes += 1,
            }
        }
        injected_total += chaos::injected_count();
        reselections_seen += svc.stats().reselections;
        chaos::disable();
        // degrade-never-corrupt: with the plan gone, the service still
        // serves finite point forecasts and calibrated interval bands
        let f = svc
            .predict("s", 6)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            f.series(0).iter().all(|v| v.is_finite()),
            "seed {seed}: non-finite forecast after mid-observe faults"
        );
        let iv = svc
            .predict_interval("s", 6, &[0.8])
            .unwrap_or_else(|e| panic!("seed {seed}: interval after faults: {e}"));
        let (lo, hi) = iv.band(0).expect("requested band");
        for ((l, u), p) in lo
            .series(0)
            .iter()
            .zip(hi.series(0))
            .zip(iv.point().series(0))
        {
            assert!(
                l.is_finite() && u.is_finite() && *l <= *p && *p <= *u,
                "seed {seed}: invalid band [{l}, {u}] around {p}"
            );
        }
        // replay purity: the mirror applies exactly the batches that landed,
        // fault-free; both frames must be bitwise the same series
        for batch in landed {
            mirror.observe("s", batch).unwrap();
        }
        // fingerprints are buffer identities, so only the row count is
        // comparable across services; content equality is pinned below by
        // the bit-identical clean fit
        assert_eq!(
            svc.series_fingerprint("s").map(|f| f.rows()),
            mirror.series_fingerprint("s").map(|f| f.rows()),
            "seed {seed}: mid-observe faults corrupted the stored length"
        );
        // one more fault-free batch on both sides invalidates any model
        // entry fingerprint, so the next fit is a full clean refit on both
        let fresh: Vec<Vec<f64>> = (0..4).map(|i| vec![400.0 + i as f64]).collect();
        svc.observe("s", &fresh).unwrap();
        mirror.observe("s", &fresh).unwrap();
        let a = svc.fit("s").unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let b = mirror
            .fit("s")
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            fit_signature(&a),
            fit_signature(&b),
            "seed {seed}: a clean fit after faults is not bit-identical"
        );
    }
    let mismatches = transforms::hit_mismatches();
    transforms::set_hit_verification(false);
    let inversions = lock_sync::inversion_count();
    lock_sync::set_runtime_tracking(false);
    assert_eq!(mismatches, 0, "a cache hit served stale bytes");
    assert_eq!(inversions, 0, "the sweep recorded a lock-order inversion");
    assert!(injected_total > 0, "the sweep never fired a single fault");
    assert!(
        faulted_observes > 0,
        "no observe ever faulted — sites dead?"
    );
    assert!(
        reselections_seen > 0,
        "the level shift never completed a re-selection under fire"
    );
}

#[test]
fn an_empty_plan_is_bitwise_invisible() {
    let _gate = GATE.lock().unwrap();
    let frame = wavy(160);
    chaos::install(chaos::FaultPlan::empty(1234));
    let with_plan = run_tdaub(pool(), &frame, &gauntlet_cfg(true)).unwrap();
    assert_eq!(chaos::injected_count(), 0, "an empty plan fired a fault");
    chaos::disable();
    let without = run_tdaub(pool(), &frame, &gauntlet_cfg(true)).unwrap();
    assert_eq!(with_plan.execution.injected_faults, 0);
    assert_eq!(without.execution.injected_faults, 0);
    assert_eq!(signature(&with_plan), signature(&without));
    for (a, b) in with_plan
        .execution
        .pipelines
        .iter()
        .zip(&without.execution.pipelines)
    {
        assert_eq!(a.name, b.name);
        assert_eq!(a.failure, b.failure, "{}", a.name);
    }
}
