//! Integration tests for the extension surface: the extended pipeline
//! registry (§4 "about 80 different pipelines"), prediction intervals, the
//! anomaly-detection crate, and GARCH volatility.

use autoai_ts_repro::anomaly::{IqrDetector, ResidualDetector, RollingZScoreDetector};
use autoai_ts_repro::core_ts::{AutoAITS, AutoAITSConfig};
use autoai_ts_repro::pipelines::{extended_pipelines, Mt2rForecaster, PipelineContext};
use autoai_ts_repro::stat_models::Garch;
use autoai_ts_repro::tdaub::{run_tdaub, TDaubConfig};
use autoai_ts_repro::tsdata::TimeSeriesFrame;

fn seasonal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 40.0 + 9.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin())
        .collect()
}

#[test]
fn extended_pool_selection_still_converges() {
    // the §4 scaling claim at test scale: a 30+ pipeline pool must select a
    // sensible winner without blowing up
    let ctx = PipelineContext::new(12, 6, vec![12, 24, 6]);
    let pool = extended_pipelines(&ctx);
    assert!(pool.len() >= 30, "pool has {}", pool.len());
    let frame = TimeSeriesFrame::univariate(seasonal(500));
    let cfg = TDaubConfig {
        parallel: true,
        ..Default::default()
    };
    let result = run_tdaub(pool, &frame, &cfg).unwrap();
    // winner forecasts the seasonal signal accurately
    let truth: Vec<f64> = (500..506)
        .map(|i| 40.0 + 9.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin())
        .collect();
    let pred = result.best.predict(6).unwrap();
    let smape = autoai_ts_repro::tsdata::smape(&truth, pred.series(0));
    assert!(smape < 5.0, "winner {} smape {smape}", result.best.name());
}

#[test]
fn prediction_intervals_cover_a_noisy_truth() {
    // noisy seasonal data: the 95% interval should cover most of the truth
    let mut s = 99u64;
    let mut noise = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let values: Vec<f64> = (0..400)
        .map(|i| 40.0 + 9.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin() + 2.0 * noise())
        .collect();
    let train = values[..380].to_vec();
    let truth = &values[380..392];
    let mut sys = AutoAITS::with_config(AutoAITSConfig {
        pipeline_names: Some(vec!["MT2RForecaster".into(), "HW-Additive".into()]),
        ..Default::default()
    });
    sys.fit(&TimeSeriesFrame::univariate(train)).unwrap();
    let iv = sys.predict_with_interval(12, 1.96).unwrap();
    let covered = iv[0]
        .iter()
        .zip(truth)
        .filter(|&(&(_, lo, hi), &t)| lo <= t && t <= hi)
        .count();
    assert!(
        covered >= 9,
        "interval covered only {covered}/12 truth points"
    );
}

#[test]
fn anomaly_detectors_compose_with_catalog_data() {
    // inject incidents into a catalog stand-in and recover them
    let entry = autoai_ts_repro::datasets::univariate_catalog()
        .into_iter()
        .find(|e| e.name == "elecdaily")
        .unwrap();
    let frame = entry.generate(55);
    let mut values = frame.series(0).to_vec();
    let n = values.len();
    let scale = autoai_ts_repro::linalg::std_dev(&values);
    values[n / 2] += 15.0 * scale;

    let z_hits = RollingZScoreDetector::new(30, 5.0).detect(&values);
    assert!(
        z_hits.iter().any(|a| a.index == n / 2),
        "rolling z missed the spike"
    );

    let iqr_hits = IqrDetector::new(4.0).detect(&values);
    assert!(
        iqr_hits.iter().any(|a| a.index == n / 2),
        "IQR missed the spike"
    );

    let det = ResidualDetector::new(Box::new(Mt2rForecaster::new(12, 12)), 6.0);
    let model_hits = det.detect(&values);
    assert!(
        model_hits.iter().any(|a| a.index == n / 2),
        "residual detector missed the spike"
    );
}

#[test]
fn garch_flags_volatility_regimes_on_financial_standin() {
    // the exchange-rate stand-in is a random walk; returns are near-white
    // but a synthetic volatility burst must raise the fitted variance path
    let entry = autoai_ts_repro::datasets::multivariate_catalog()
        .into_iter()
        .find(|e| e.name == "exchange")
        .unwrap();
    let frame = entry.generate(60);
    let prices = frame.series(0);
    let mut returns: Vec<f64> = prices.windows(2).map(|w| w[1] - w[0]).collect();
    let n = returns.len();
    for r in returns.iter_mut().skip(3 * n / 4) {
        *r *= 6.0; // volatility burst in the last quarter
    }
    let m = Garch::fit(&returns).unwrap();
    let path = m.variance_path();
    let calm = autoai_ts_repro::linalg::mean(&path[n / 4..n / 2]);
    let burst = autoai_ts_repro::linalg::mean(&path[7 * n / 8..]);
    assert!(burst > 4.0 * calm, "calm {calm} vs burst {burst}");
}
