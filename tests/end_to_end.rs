//! End-to-end integration tests: the zero-conf system against every
//! synthetic signal class and the benchmark catalog.

use autoai_ts_repro::core_ts::{AutoAITS, AutoAITSConfig};
use autoai_ts_repro::datasets::{multivariate_catalog, univariate_catalog, SyntheticSignal};
use autoai_ts_repro::tsdata::{holdout_split, smape, TimeSeriesFrame};

/// Fast configuration so the full-matrix tests stay in CI budgets.
fn fast_config(horizon: usize) -> AutoAITSConfig {
    AutoAITSConfig {
        horizon,
        pipeline_names: Some(vec![
            "MT2RForecaster".into(),
            "HW-Additive".into(),
            "WindowRandomForest".into(),
            "ZeroModel".into(),
        ]),
        ..Default::default()
    }
}

#[test]
fn zero_conf_handles_every_synthetic_signal_class() {
    // every §5.1.1 signal shape must fit and produce finite forecasts
    for signal in SyntheticSignal::all() {
        let values = signal.generate(600, 1);
        let mut system = AutoAITS::with_config(fast_config(12));
        system
            .fit(&TimeSeriesFrame::univariate(values))
            .unwrap_or_else(|e| panic!("{}: {e}", signal.name()));
        let f = system.predict(12).unwrap();
        assert_eq!(f.len(), 12, "{}", signal.name());
        assert!(
            f.series(0).iter().all(|v| v.is_finite()),
            "{} produced non-finite forecasts",
            signal.name()
        );
    }
}

#[test]
fn clean_periodic_signals_forecast_accurately() {
    for signal in [
        SyntheticSignal::Sine,
        SyntheticSignal::Cosine,
        SyntheticSignal::SquareWave,
    ] {
        let values = signal.generate(600, 2);
        let frame = TimeSeriesFrame::univariate(values.clone());
        let (train, holdout) = holdout_split(&frame, 60);
        let mut system = AutoAITS::with_config(fast_config(12));
        system.fit(&train).unwrap();
        let pred = system.predict(12).unwrap();
        let s = smape(holdout.slice(0, 12).series(0), pred.series(0));
        assert!(s < 10.0, "{}: smape {s}", signal.name());
    }
}

#[test]
fn catalog_smallest_uts_datasets_run_end_to_end() {
    for entry in univariate_catalog().into_iter().take(4) {
        let frame = entry.generate(7);
        let mut system = AutoAITS::with_config(fast_config(12));
        system
            .fit(&frame)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let summary = system.summary().unwrap();
        assert!(summary.holdout_smape.is_finite(), "{}", entry.name);
        assert!(!summary.best_pipeline.is_empty());
    }
}

#[test]
fn catalog_multivariate_walmart_runs_end_to_end() {
    let entry = multivariate_catalog().into_iter().next().unwrap(); // walmart-sale
    let frame = entry.generate(7);
    assert_eq!(frame.n_series(), 10);
    let mut system = AutoAITS::with_config(fast_config(6));
    system.fit(&frame).unwrap();
    let f = system.predict(6).unwrap();
    assert_eq!(f.n_series(), 10);
    assert_eq!(f.len(), 6);
}

#[test]
fn horizon_sweep_matches_paper_grid() {
    // §5.3: "we vary the forecasting horizon between 6 and 30 in steps of 6"
    let values = SyntheticSignal::SineTrend.generate(800, 3);
    let frame = TimeSeriesFrame::univariate(values);
    for horizon in [6usize, 12, 18, 24, 30] {
        let mut system = AutoAITS::with_config(fast_config(horizon));
        system.fit(&frame).unwrap();
        let f = system.predict(horizon).unwrap();
        assert_eq!(f.len(), horizon);
    }
}

#[test]
fn full_ten_pipeline_pool_runs_on_one_dataset() {
    // the real default pool (all 10 pipelines) on one medium dataset
    let entry = univariate_catalog()
        .into_iter()
        .find(|e| e.name == "elecdaily")
        .unwrap();
    let frame = entry.generate(7);
    let mut system = AutoAITS::new();
    system.fit(&frame).unwrap();
    let summary = system.summary().unwrap();
    assert_eq!(
        summary.reports.len(),
        10,
        "all ten pipelines must be ranked"
    );
    assert!(summary.holdout_smape.is_finite());
}

#[test]
fn selected_pipeline_beats_zero_model_on_seasonal_data() {
    let values = SyntheticSignal::Sine.generate(600, 5);
    let frame = TimeSeriesFrame::univariate(values);
    let (train, holdout) = holdout_split(&frame, 60);
    let mut system = AutoAITS::with_config(fast_config(12));
    system.fit(&train).unwrap();
    let truth = holdout.slice(0, 12);
    let auto_s = smape(truth.series(0), system.predict(12).unwrap().series(0));
    let zero_s = smape(
        truth.series(0),
        system.predict_zero_model(12).unwrap().series(0),
    );
    assert!(
        auto_s < zero_s,
        "selected pipeline ({auto_s}) should beat zero model ({zero_s}) on a sine"
    );
}
