//! Fault-isolation integration tests for the T-Daub execution engine.
//!
//! A pool is seeded with deterministic pipelines that panic, error, stall
//! past the time budget, or forecast NaN. T-Daub must rank the survivors,
//! record each failure with the correct [`FailureKind`] in the
//! [`ExecutionReport`], and produce identical rankings in serial and
//! parallel mode.

use std::time::Duration;

use autoai_pipelines::{pipeline_by_name, Forecaster, PipelineContext, PipelineError};
use autoai_tdaub::{run_tdaub, ExecutionReport, FailureKind, TDaubConfig, TDaubResult};
use autoai_tsdata::TimeSeriesFrame;

// ---- deterministic test pipelines -------------------------------------

/// Forecasts the training mean plus a fixed bias: deterministic, instant,
/// and rankable (smaller bias → better score on a stationary series).
struct MeanPlus {
    bias: f64,
    mean: Option<f64>,
}

impl MeanPlus {
    fn new(bias: f64) -> Self {
        Self { bias, mean: None }
    }
}

impl Forecaster for MeanPlus {
    fn fit(&mut self, frame: &TimeSeriesFrame) -> Result<(), PipelineError> {
        let s = frame.series(0);
        self.mean = Some(s.iter().sum::<f64>() / s.len().max(1) as f64);
        Ok(())
    }
    fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
        let m = self.mean.ok_or(PipelineError::NotFitted)?;
        Ok(TimeSeriesFrame::univariate(vec![m + self.bias; horizon]))
    }
    fn name(&self) -> String {
        format!("MeanPlus({})", self.bias)
    }
    fn clone_unfitted(&self) -> Box<dyn Forecaster> {
        Box::new(Self::new(self.bias))
    }
}

/// Panics on every fit.
struct Panicker;

impl Forecaster for Panicker {
    fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
        panic!("isolation test: deliberate crash")
    }
    fn predict(&self, _: usize) -> Result<TimeSeriesFrame, PipelineError> {
        Err(PipelineError::NotFitted)
    }
    fn name(&self) -> String {
        "Panicker".into()
    }
    fn clone_unfitted(&self) -> Box<dyn Forecaster> {
        Box::new(Panicker)
    }
}

/// Returns a typed error on every fit.
struct Erroring;

impl Forecaster for Erroring {
    fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
        Err(PipelineError::Fit(
            "isolation test: deliberate error".into(),
        ))
    }
    fn predict(&self, _: usize) -> Result<TimeSeriesFrame, PipelineError> {
        Err(PipelineError::NotFitted)
    }
    fn name(&self) -> String {
        "Erroring".into()
    }
    fn clone_unfitted(&self) -> Box<dyn Forecaster> {
        Box::new(Erroring)
    }
}

/// Sleeps far past the configured budget on every fit, then behaves like
/// `MeanPlus(0)`. The margin (sleep ≫ budget) keeps classification
/// deterministic in both serial and parallel mode, debug or release.
struct Sluggish {
    delay: Duration,
    inner: MeanPlus,
}

impl Sluggish {
    fn new(delay: Duration) -> Self {
        Self {
            delay,
            inner: MeanPlus::new(0.0),
        }
    }
}

impl Forecaster for Sluggish {
    fn fit(&mut self, frame: &TimeSeriesFrame) -> Result<(), PipelineError> {
        std::thread::sleep(self.delay);
        self.inner.fit(frame)
    }
    fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
        self.inner.predict(horizon)
    }
    fn name(&self) -> String {
        "Sluggish".into()
    }
    fn clone_unfitted(&self) -> Box<dyn Forecaster> {
        Box::new(Self::new(self.delay))
    }
}

/// Sleeps for an hour on every fit — from the run's point of view it hangs
/// forever. Only the hard-deadline watchdog can stop it: it never checks a
/// cooperative budget, never returns, never panics.
struct SleepForever;

impl Forecaster for SleepForever {
    fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
        std::thread::sleep(Duration::from_secs(3600));
        Ok(())
    }
    fn predict(&self, _: usize) -> Result<TimeSeriesFrame, PipelineError> {
        Err(PipelineError::NotFitted)
    }
    fn name(&self) -> String {
        "SleepForever".into()
    }
    fn clone_unfitted(&self) -> Box<dyn Forecaster> {
        Box::new(SleepForever)
    }
}

/// Fits fine, forecasts NaN forever.
struct NanForecaster;

impl Forecaster for NanForecaster {
    fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
        Ok(())
    }
    fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
        Ok(TimeSeriesFrame::univariate(vec![f64::NAN; horizon]))
    }
    fn name(&self) -> String {
        "NanForecaster".into()
    }
    fn clone_unfitted(&self) -> Box<dyn Forecaster> {
        Box::new(NanForecaster)
    }
}

/// Works for the first `ok_fits` fits, then panics — exercises a crash
/// mid-run, after the pipeline has already accumulated scores.
struct LateCrasher {
    ok_fits: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    limit: usize,
    inner: MeanPlus,
}

impl LateCrasher {
    fn new(limit: usize) -> Self {
        Self {
            ok_fits: std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0)),
            limit,
            inner: MeanPlus::new(0.5),
        }
    }
}

impl Forecaster for LateCrasher {
    fn fit(&mut self, frame: &TimeSeriesFrame) -> Result<(), PipelineError> {
        let n = self
            .ok_fits
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        if n >= self.limit {
            panic!("isolation test: late crash on fit {n}")
        }
        self.inner.fit(frame)
    }
    fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
        self.inner.predict(horizon)
    }
    fn name(&self) -> String {
        "LateCrasher".into()
    }
    fn clone_unfitted(&self) -> Box<dyn Forecaster> {
        // shares the fit counter: T-Daub refits clones on every allocation
        Box::new(Self {
            ok_fits: self.ok_fits.clone(),
            limit: self.limit,
            inner: MeanPlus::new(0.5),
        })
    }
}

// ---- helpers ----------------------------------------------------------

fn stationary_frame(n: usize) -> TimeSeriesFrame {
    // mean 50 with a deterministic ripple: MeanPlus(small bias) scores well
    TimeSeriesFrame::univariate(
        (0..n)
            .map(|i| 50.0 + (i as f64 * 0.7).sin() * 0.25)
            .collect(),
    )
}

/// The full menagerie: two healthy pipelines plus one of every failure
/// mode. 250 ms sleep vs a 100 ms budget leaves a wide margin on both
/// sides of the deadline.
fn menagerie() -> Vec<Box<dyn Forecaster>> {
    vec![
        Box::new(MeanPlus::new(0.0)),
        Box::new(Panicker),
        Box::new(Erroring),
        Box::new(Sluggish::new(Duration::from_millis(250))),
        Box::new(NanForecaster),
        Box::new(MeanPlus::new(2.0)),
    ]
}

fn budgeted_cfg(parallel: bool) -> TDaubConfig {
    TDaubConfig {
        parallel,
        pipeline_time_budget: Some(Duration::from_millis(100)),
        ..Default::default()
    }
}

fn ranking(r: &TDaubResult) -> Vec<String> {
    r.reports.iter().map(|p| p.name.clone()).collect()
}

fn failure_of<'a>(report: &'a ExecutionReport, name: &str) -> &'a FailureKind {
    report
        .find(name)
        .unwrap_or_else(|| panic!("no execution entry for {name}"))
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("{name} was not marked failed"))
}

// ---- tests ------------------------------------------------------------

#[test]
fn survivors_are_ranked_and_failures_typed() {
    let frame = stationary_frame(600);
    let result = run_tdaub(menagerie(), &frame, &budgeted_cfg(false)).unwrap();

    // survivors: exactly the two healthy pipelines, best first
    assert_eq!(
        ranking(&result),
        vec!["MeanPlus(0)".to_string(), "MeanPlus(2)".to_string()]
    );
    assert_eq!(result.best.name(), "MeanPlus(0)");
    assert_eq!(result.execution.survivors(), 2);

    // each failure mode is recorded with the right kind
    match failure_of(&result.execution, "Panicker") {
        FailureKind::Crashed(m) => assert!(m.contains("deliberate crash"), "{m}"),
        other => panic!("Panicker: expected Crashed, got {other:?}"),
    }
    match failure_of(&result.execution, "Erroring") {
        FailureKind::Errored(m) => assert!(m.contains("deliberate error"), "{m}"),
        other => panic!("Erroring: expected Errored, got {other:?}"),
    }
    assert_eq!(
        failure_of(&result.execution, "Sluggish"),
        &FailureKind::TimedOut
    );
    assert_eq!(
        failure_of(&result.execution, "NanForecaster"),
        &FailureKind::NonFinite
    );
}

#[test]
fn execution_report_accounts_for_every_pipeline() {
    let frame = stationary_frame(600);
    let result = run_tdaub(menagerie(), &frame, &budgeted_cfg(false)).unwrap();

    assert_eq!(result.execution.pipelines.len(), 6);
    assert_eq!(result.execution.failures().count(), 4);
    for entry in &result.execution.pipelines {
        assert!(entry.allocations >= 1, "{} never ran", entry.name);
    }
    // a crashed pipeline is quarantined after its first unit of work
    let crashed = result.execution.find("Panicker").unwrap();
    assert_eq!(crashed.allocations, 1);
    // the slow pipeline was cut off after blowing the budget once
    let slow = result.execution.find("Sluggish").unwrap();
    assert_eq!(slow.allocations, 1);
    assert!(slow.wall_time >= Duration::from_millis(100));
    // wall time is tracked for survivors too
    let best = result.execution.find("MeanPlus(0)").unwrap();
    assert!(best.allocations > 1);
}

#[test]
fn serial_and_parallel_produce_identical_results() {
    let frame = stationary_frame(600);
    let serial = run_tdaub(menagerie(), &frame, &budgeted_cfg(false)).unwrap();
    let parallel = run_tdaub(menagerie(), &frame, &budgeted_cfg(true)).unwrap();

    assert_eq!(ranking(&serial), ranking(&parallel));
    assert_eq!(serial.best.name(), parallel.best.name());

    // identical failure classification
    for (s, p) in serial
        .execution
        .pipelines
        .iter()
        .zip(&parallel.execution.pipelines)
    {
        assert_eq!(s.name, p.name);
        assert_eq!(s.failure, p.failure, "{}", s.name);
    }

    // identical observed scores for the survivors (determinism contract)
    for (s, p) in serial.reports.iter().zip(&parallel.reports) {
        assert_eq!(s.scores, p.scores, "{}", s.name);
    }
}

#[test]
fn without_budget_the_slow_pipeline_survives() {
    let frame = stationary_frame(600);
    let cfg = TDaubConfig {
        parallel: false,
        pipeline_time_budget: None,
        ..Default::default()
    };
    let pool: Vec<Box<dyn Forecaster>> = vec![
        Box::new(MeanPlus::new(0.0)),
        Box::new(Sluggish::new(Duration::from_millis(5))),
    ];
    let result = run_tdaub(pool, &frame, &cfg).unwrap();
    assert_eq!(result.execution.survivors(), 2);
    assert!(result.execution.find("Sluggish").unwrap().failure.is_none());
    assert!(ranking(&result).contains(&"Sluggish".to_string()));
}

#[test]
fn late_crash_still_quarantines_with_partial_scores() {
    let frame = stationary_frame(600);
    let mut pool: Vec<Box<dyn Forecaster>> =
        vec![Box::new(MeanPlus::new(0.0)), Box::new(MeanPlus::new(1.0))];
    pool.push(Box::new(LateCrasher::new(2))); // two good fits, then panic
    let result = run_tdaub(
        pool,
        &frame,
        &TDaubConfig {
            parallel: false,
            ..Default::default()
        },
    )
    .unwrap();

    let entry = result.execution.find("LateCrasher").unwrap();
    match entry.failure.as_ref() {
        Some(FailureKind::Crashed(m)) => assert!(m.contains("late crash"), "{m}"),
        other => panic!("expected Crashed, got {other:?}"),
    }
    // it ran more than once before crashing, and its partial work is
    // accounted for
    assert!(entry.allocations >= 2, "{}", entry.allocations);
    assert!(ranking(&result).iter().all(|n| n != "LateCrasher"));
}

#[test]
fn all_pipelines_failing_is_a_typed_error() {
    let frame = stationary_frame(300);
    let pool: Vec<Box<dyn Forecaster>> = vec![
        Box::new(Panicker),
        Box::new(Erroring),
        Box::new(NanForecaster),
    ];
    let result = run_tdaub(
        pool,
        &frame,
        &TDaubConfig {
            parallel: false,
            ..Default::default()
        },
    );
    match result {
        Err(err) => assert!(
            matches!(err, PipelineError::Fit(_)),
            "expected Fit error, got {err:?}"
        ),
        Ok(_) => panic!("an all-failing pool must not produce a ranking"),
    }
}

#[test]
fn rankings_bit_identical_across_cache_and_execution_modes() {
    // the perf layer's determinism contract: cached, uncached, serial and
    // parallel runs must agree to the last bit — projected and final
    // scores, not just rank order. The pool mixes hostile pipelines with
    // real registry ones so the transform cache and warm starts are
    // actually on the hot path. No time budget: timing must never be able
    // to influence classification here.
    let frame = stationary_frame(320);
    let pool = || -> Vec<Box<dyn Forecaster>> {
        let ctx = PipelineContext::new(6, 8, vec![8]);
        let mut p: Vec<Box<dyn Forecaster>> = vec![
            Box::new(MeanPlus::new(0.0)),
            Box::new(MeanPlus::new(2.0)),
            Box::new(Panicker),
            Box::new(Erroring),
            Box::new(NanForecaster),
        ];
        for name in [
            "ZeroModel",
            "SeasonalNaive",
            "AR",
            "NeuralWindow",
            "FlattenAutoEnsembler",
        ] {
            p.extend(pipeline_by_name(name, &ctx));
        }
        p
    };
    let cfg = |cached: bool, parallel: bool| TDaubConfig {
        parallel,
        transform_cache: cached,
        incremental: cached,
        pipeline_time_budget: None,
        ..Default::default()
    };
    let signature = |r: &TDaubResult| -> Vec<(String, u64, u64)> {
        r.reports
            .iter()
            .map(|rep| {
                (
                    rep.name.clone(),
                    rep.projected_score.to_bits(),
                    rep.final_score.unwrap_or(f64::NAN).to_bits(),
                )
            })
            .collect()
    };

    let reference = run_tdaub(pool(), &frame, &cfg(false, false)).unwrap();
    for (cached, parallel) in [(false, true), (true, false), (true, true)] {
        let run = run_tdaub(pool(), &frame, &cfg(cached, parallel)).unwrap();
        assert_eq!(
            signature(&run),
            signature(&reference),
            "cached={cached} parallel={parallel}"
        );
        // identical failure classification in every mode
        for (a, b) in reference
            .execution
            .pipelines
            .iter()
            .zip(&run.execution.pipelines)
        {
            assert_eq!(a.name, b.name);
            assert_eq!(a.failure, b.failure, "{}", a.name);
        }
    }

    // and the cached runs really did cache: hits, extensions and warm
    // starts all non-trivial on this pool
    let cached_run = run_tdaub(pool(), &frame, &cfg(true, false)).unwrap();
    let stats = &cached_run.execution.cache;
    assert!(stats.hits > 0, "no cache hits: {stats:?}");
    assert!(stats.extensions > 0, "no incremental extensions: {stats:?}");
    assert!(
        cached_run.execution.incremental_fits > 0,
        "no warm-started fits"
    );
}

#[test]
fn hard_deadline_quarantines_a_hung_pipeline_without_touching_survivors() {
    let frame = stationary_frame(600);
    let hostile: Vec<Box<dyn Forecaster>> = vec![
        Box::new(MeanPlus::new(0.0)),
        Box::new(SleepForever),
        Box::new(MeanPlus::new(2.0)),
    ];
    let clean: Vec<Box<dyn Forecaster>> =
        vec![Box::new(MeanPlus::new(0.0)), Box::new(MeanPlus::new(2.0))];
    let watched_cfg = TDaubConfig {
        parallel: true,
        pipeline_hard_deadline: Some(Duration::from_millis(300)),
        ..Default::default()
    };

    let start = std::time::Instant::now();
    let watched = run_tdaub(hostile, &frame, &watched_cfg).unwrap();
    // the run has a provable upper wall-time bound: one hard deadline for
    // the hung unit plus the (fast) survivor evaluations and overhead
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "the watchdog failed to bound the run: {:?}",
        start.elapsed()
    );

    // the hung pipeline was quarantined on its first unit, typed correctly,
    // charged the deadline it burned, and never rescheduled
    assert_eq!(
        failure_of(&watched.execution, "SleepForever"),
        &FailureKind::HardTimeout
    );
    let entry = watched.execution.find("SleepForever").unwrap();
    assert_eq!(entry.allocations, 1);
    assert!(entry.wall_time >= Duration::from_millis(300));
    assert_eq!(watched.execution.survivors(), 2);

    // the survivors' observed and projected scores are bit-identical to a
    // clean, unsupervised run: the watchdog must never change a ranking
    let reference = run_tdaub(
        clean,
        &frame,
        &TDaubConfig {
            parallel: true,
            ..Default::default()
        },
    )
    .unwrap();
    let signature = |r: &TDaubResult| -> Vec<(String, Vec<(usize, u64)>, u64)> {
        r.reports
            .iter()
            .map(|rep| {
                (
                    rep.name.clone(),
                    rep.scores.iter().map(|&(a, s)| (a, s.to_bits())).collect(),
                    rep.projected_score.to_bits(),
                )
            })
            .collect()
    };
    assert_eq!(signature(&watched), signature(&reference));
    assert_eq!(watched.best.name(), reference.best.name());
}

#[test]
fn soft_budget_derives_a_hard_deadline_automatically() {
    // pipeline_hard_deadline unset + a soft budget set → the watchdog runs
    // with a 4× derived deadline, so even a hang-forever pipeline cannot
    // stall a budgeted run
    let frame = stationary_frame(600);
    let pool: Vec<Box<dyn Forecaster>> = vec![Box::new(MeanPlus::new(0.0)), Box::new(SleepForever)];
    let cfg = TDaubConfig {
        parallel: true,
        pipeline_time_budget: Some(Duration::from_millis(100)),
        ..Default::default()
    };
    let start = std::time::Instant::now();
    let result = run_tdaub(pool, &frame, &cfg).unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "derived hard deadline did not fire: {:?}",
        start.elapsed()
    );
    assert_eq!(
        failure_of(&result.execution, "SleepForever"),
        &FailureKind::HardTimeout
    );
    assert_eq!(result.best.name(), "MeanPlus(0)");
}

#[test]
fn winner_predicts_after_surviving_a_hostile_pool() {
    let frame = stationary_frame(600);
    let result = run_tdaub(menagerie(), &frame, &budgeted_cfg(true)).unwrap();
    let forecast = result.best.predict(8).unwrap();
    assert_eq!(forecast.len(), 8);
    for &v in forecast.series(0) {
        assert!(v.is_finite());
        assert!((v - 50.0).abs() < 1.0, "forecast {v} far from mean");
    }
}
