//! Property suite for the persistent worker pool behind `linalg::par`.
//!
//! The pool replaced the old per-call `thread::scope` fan-out, so this
//! suite pins the contract that swap must preserve:
//!
//! * **Bit-identical results** — `parallel_try_map_mut` over seeded
//!   workloads matches a scoped-thread reference implementation (and the
//!   sequential path) to the last bit, in order and in value;
//! * **Panic quarantine** — a panicking item surfaces as its own
//!   `Err(WorkerPanic)` without poisoning neighbors, the pool, or any
//!   later batch submitted to the same process-wide workers;
//! * **No deadlock under nesting** — a worker that itself fans out
//!   (pipelines calling parallel kernels) completes because batch
//!   submitters drain their own work instead of parking on a free worker;
//! * **Zero lock-order inversions** — runtime lock tracking stays silent
//!   across a mixed batch/supervised workload with seeded panics.

use std::sync::Mutex;
use std::time::Duration;

use autoai_ts_repro::linalg::sync as lock_sync;
use autoai_ts_repro::linalg::{
    parallel_try_map_mut, parallel_try_map_range, supervised_try_map, Rng64, SupervisedOutcome,
};

/// Lock tracking is process-global; tests that assert on inversion counts
/// serialize here.
static GATE: Mutex<()> = Mutex::new(());

/// Reference implementation: the old per-call scoped fan-out, kept in test
/// code only (the `raw-spawn` lint forbids it in library code). Workers
/// claim items through a shared queue, exactly like the pre-pool scoped
/// path did; the workload below never panics, so no quarantine machinery
/// is needed to compare results.
fn scoped_reference<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .clamp(1, items.len().max(1));
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    let queue: Mutex<Vec<(&mut T, &mut Option<R>)>> = Mutex::new(
        items
            .iter_mut()
            .zip(out.iter_mut())
            .rev()
            .collect::<Vec<_>>(),
    );
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let claimed = queue.lock().unwrap().pop();
                let Some((item, slot)) = claimed else { return };
                *slot = Some(f(item));
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

fn seeded_workload(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..n).map(|_| rng.next_f64() * 100.0 - 50.0).collect()
}

/// A deliberately order-sensitive per-item computation: enough floating
/// point work that any cross-item interference would show in the bits.
fn crunch(x: &mut f64) -> f64 {
    let mut acc = *x;
    for k in 1..200u32 {
        acc = (acc * 1.000_1 + f64::from(k).sqrt()).sin() + acc * 0.5;
    }
    *x += 1.0;
    acc
}

#[test]
fn pool_matches_scoped_reference_bitwise_on_seeded_workloads() {
    for seed in [1u64, 7, 42, 1234, 98765] {
        for n in [1usize, 2, 3, 17, 64, 257] {
            let mut a = seeded_workload(seed, n);
            let mut b = a.clone();
            let pool_out = parallel_try_map_mut(&mut a, crunch);
            let ref_out = scoped_reference(&mut b, crunch);
            assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "item {i} mutated differently");
            }
            for (i, (p, r)) in pool_out.iter().zip(ref_out.iter()).enumerate() {
                let Ok(p) = p else {
                    panic!("seed {seed} n {n} item {i}: unexpected panic outcome");
                };
                assert_eq!(p.to_bits(), r.to_bits(), "seed {seed} n {n} item {i}");
            }
        }
    }
}

#[test]
fn pool_matches_the_sequential_path_bitwise() {
    let mut a = seeded_workload(99, 128);
    let mut b = a.clone();
    let par: Vec<f64> = parallel_try_map_mut(&mut a, crunch)
        .into_iter()
        .map(|r| r.expect("no panics in this workload"))
        .collect();
    let seq: Vec<f64> = b.iter_mut().map(crunch).collect();
    for (i, (p, s)) in par.iter().zip(seq.iter()).enumerate() {
        assert_eq!(p.to_bits(), s.to_bits(), "item {i} diverged from serial");
    }
}

#[test]
fn panics_are_quarantined_per_item_and_the_pool_survives() {
    // round after round on the same process-wide pool: the poisoned item
    // never takes a worker (or a neighbor) down with it
    for round in 0..20 {
        let results = parallel_try_map_range(37, move |i| {
            if i == 13 {
                panic!("boom in round {round}");
            }
            i * 2
        });
        assert_eq!(results.len(), 37);
        for (i, r) in results.iter().enumerate() {
            if i == 13 {
                let err = r.as_ref().expect_err("item 13 must be quarantined");
                assert!(format!("{err}").contains("boom"), "round {round}: {err}");
            } else {
                assert_eq!(*r.as_ref().expect("healthy item"), i * 2);
            }
        }
    }
    // and the pool still does clean work afterwards
    let clean = parallel_try_map_range(64, |i| i + 1);
    assert!(clean.iter().all(|r| r.is_ok()));
}

#[test]
fn nested_fan_out_completes_without_deadlock() {
    // more outer items than workers, each fanning out again: if batch
    // submitters parked waiting for a free worker instead of draining
    // their own batch, this would wedge
    let outer = parallel_try_map_range(24, |i| {
        let inner = parallel_try_map_range(16, move |j| (i * 16 + j) as u64);
        inner
            .into_iter()
            .map(|r| r.expect("inner item"))
            .sum::<u64>()
    });
    let total: u64 = outer.into_iter().map(|r| r.expect("outer item")).sum();
    let n = 24u64 * 16;
    assert_eq!(total, n * (n - 1) / 2);
}

#[test]
fn mixed_supervised_and_batch_work_keeps_lock_order_clean() {
    let _gate = GATE.lock().unwrap_or_else(|p| p.into_inner());
    lock_sync::set_runtime_tracking(true);
    let before = lock_sync::inversion_count();

    for round in 0..6u64 {
        let supervised = supervised_try_map(
            (0..12u64).map(|i| i + round * 100).collect::<Vec<_>>(),
            Duration::from_secs(5),
            4,
            |x: &mut u64| {
                if *x % 5 == 3 {
                    panic!("seeded supervised panic");
                }
                *x * 3
            },
        );
        assert_eq!(supervised.len(), 12);
        for out in &supervised {
            match out {
                SupervisedOutcome::Completed { .. } => {}
                SupervisedOutcome::HardTimeout => {
                    panic!("round {round}: spurious hard timeout")
                }
            }
        }
        // interleave a plain batch on the same pool
        let batch = parallel_try_map_range(33, |i| i * i);
        assert!(batch.iter().all(|r| r.is_ok()));
    }

    lock_sync::set_runtime_tracking(false);
    assert_eq!(
        lock_sync::inversion_count(),
        before,
        "lock-order inversions recorded during mixed pool traffic"
    );
}
