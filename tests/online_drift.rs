//! Property tests for the online drift monitor and the serving loop's
//! re-selection trigger.
//!
//! Three families, per the online-loop design (DESIGN.md §16):
//!
//! 1. **No false alarms.** Stationary traffic must never produce a
//!    `Drifted` verdict — swept over 200 deterministically seeded noise
//!    runs at the monitor level, plus a service-level spot check that no
//!    re-selection is scheduled.
//! 2. **Guaranteed detection.** A genuine level shift or variance blowup
//!    must fire within a bounded number of observed steps, for every seed.
//! 3. **Bit-identical state.** The monitor is seed-free and deterministic:
//!    serial and parallel observe schedules (one thread per series) must
//!    leave byte-for-byte identical monitor state.

use autoai_ts::{
    AutoAITSConfig, DriftConfig, DriftMonitor, DriftVerdict, ForecastService, TimeSeriesFrame,
};

/// Deterministic splitmix64 stream → uniform f64 in [0, 1). Tests never
/// touch the system RNG.
fn noise_stream(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn seasonal_rows_noisy(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut noise = noise_stream(seed);
    (0..n)
        .map(|i| {
            let base = 20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin();
            vec![base + noise() - 0.5]
        })
        .collect()
}

fn fast_service() -> ForecastService {
    ForecastService::new(AutoAITSConfig {
        pipeline_names: Some(vec![
            "MT2RForecaster".into(),
            "HW-Additive".into(),
            "ZeroModel".into(),
        ]),
        ..Default::default()
    })
}

#[test]
fn stationary_noise_never_drifts_across_200_seeds() {
    for seed in 0..200u64 {
        let mut noise = noise_stream(seed);
        let mut monitor = DriftMonitor::new(DriftConfig::default());
        for step in 0..300 {
            // winner and baseline wander independently within ±1.5 SMAPE
            // points of the same level: classic stationary serving traffic
            let winner = 3.0 + 3.0 * noise() - 1.5;
            let baseline = 3.0 + 3.0 * noise() - 1.5;
            let verdict = monitor.observe_step(winner, baseline);
            assert_ne!(
                verdict,
                DriftVerdict::Drifted,
                "seed {seed} step {step}: false alarm on stationary noise: {:?}",
                monitor.snapshot()
            );
        }
    }
}

#[test]
fn level_shift_always_fires_within_bound() {
    for seed in 0..50u64 {
        let mut noise = noise_stream(seed);
        let mut monitor = DriftMonitor::new(DriftConfig::default());
        for _ in 0..30 {
            monitor.observe_step(3.0 + noise(), 3.0 + noise());
        }
        // regime change: the stale winner is suddenly far worse than the
        // adaptive persistence baseline
        let mut fired_at = None;
        for step in 0..25 {
            let verdict = monitor.observe_step(80.0 + 5.0 * noise(), 8.0 + 5.0 * noise());
            if verdict == DriftVerdict::Drifted {
                fired_at = Some(step);
                break;
            }
        }
        let at = fired_at.unwrap_or_else(|| {
            panic!(
                "seed {seed}: level shift never detected: {:?}",
                monitor.snapshot()
            )
        });
        assert!(at <= 5, "seed {seed}: detection took {at} shifted steps");
    }
}

#[test]
fn variance_blowup_always_fires_within_bound() {
    for seed in 0..50u64 {
        let mut noise = noise_stream(seed);
        let mut monitor = DriftMonitor::new(DriftConfig::default());
        for _ in 0..30 {
            monitor.observe_step(2.0 + noise(), 3.0 + noise());
        }
        // both losses blow up but the winner still beats the baseline: only
        // the self-relative statistic can see this regime change
        let mut fired = false;
        for _ in 0..30 {
            let winner = 60.0 + 20.0 * noise();
            let baseline = winner + 5.0 + noise();
            if monitor.observe_step(winner, baseline) == DriftVerdict::Drifted {
                fired = true;
                break;
            }
        }
        assert!(
            fired,
            "seed {seed}: variance blowup never detected: {:?}",
            monitor.snapshot()
        );
    }
}

#[test]
fn stationary_service_schedules_no_reselection() {
    for seed in 0..3u64 {
        let svc = fast_service();
        svc.ingest(
            "cpu",
            TimeSeriesFrame::from_rows(&seasonal_rows_noisy(300, seed)),
        )
        .unwrap();
        svc.fit("cpu").unwrap();
        for batch in 0..8 {
            svc.observe(
                "cpu",
                &seasonal_rows_noisy(12, seed.wrapping_mul(1000) + batch),
            )
            .unwrap();
        }
        assert_eq!(
            svc.stats().reselections,
            0,
            "seed {seed}: stationary traffic must not re-select: {:?}",
            svc.drift_snapshot("cpu")
        );
    }
}

#[test]
fn shifted_service_reselects_within_observe_budget() {
    for seed in 0..3u64 {
        let svc = fast_service();
        svc.ingest(
            "cpu",
            TimeSeriesFrame::from_rows(&seasonal_rows_noisy(300, seed)),
        )
        .unwrap();
        svc.fit("cpu").unwrap();
        let mut noise = noise_stream(seed);
        let mut reselected = false;
        // a hard level shift must schedule a warm re-selection within a
        // bounded number of observe batches
        for _ in 0..12 {
            let rows: Vec<Vec<f64>> = (0..8).map(|_| vec![900.0 + 10.0 * noise()]).collect();
            svc.observe("cpu", &rows).unwrap();
            if svc.stats().reselections > 0 {
                reselected = true;
                break;
            }
        }
        assert!(
            reselected,
            "seed {seed}: level shift never re-selected: {:?}",
            svc.drift_snapshot("cpu")
        );
        // the service keeps serving finite forecasts throughout
        let f = svc.predict("cpu", 4).unwrap();
        assert!(f.row(0).iter().all(|v| v.is_finite()));
    }
}

#[test]
fn monitor_state_is_bit_identical_serial_vs_parallel() {
    let names = ["cpu", "mem", "disk", "net"];
    let build = || {
        let svc = fast_service();
        for (i, name) in names.iter().enumerate() {
            svc.ingest(
                name,
                TimeSeriesFrame::from_rows(&seasonal_rows_noisy(300, i as u64)),
            )
            .unwrap();
            svc.fit(name).unwrap();
        }
        svc
    };
    let batches: Vec<Vec<Vec<Vec<f64>>>> = names
        .iter()
        .enumerate()
        .map(|(i, _)| {
            (0..6)
                .map(|b| seasonal_rows_noisy(8, (i as u64) * 100 + b))
                .collect()
        })
        .collect();

    // serial: series after series, batch after batch
    let serial = build();
    for (name, series_batches) in names.iter().zip(&batches) {
        for batch in series_batches {
            serial.observe(name, batch).unwrap();
        }
    }

    // parallel: one thread per series, same per-series batch order
    let parallel = build();
    std::thread::scope(|scope| {
        for (name, series_batches) in names.iter().zip(&batches) {
            let svc = &parallel;
            scope.spawn(move || {
                for batch in series_batches {
                    svc.observe(name, batch).unwrap();
                }
            });
        }
    });

    for name in names {
        let a = serial.drift_state_bits(name).expect("serial monitor");
        let b = parallel.drift_state_bits(name).expect("parallel monitor");
        assert_eq!(a, b, "monitor state diverged for {name}");
        assert_eq!(serial.drift_snapshot(name), parallel.drift_snapshot(name));
    }
}
