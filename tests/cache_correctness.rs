//! Property tests for the performance layer: zero-copy frame views, the
//! cross-pipeline transform cache, and incremental allocation growth.
//!
//! The layer's contract is that none of it is observable in results — a
//! view scores like a copy, a cached design matrix is bitwise equal to a
//! rebuilt one, and a T-Daub run produces the same ranking whether the
//! cache and warm starts are on or off. The warm-start contract is
//! two-tier (see `Forecaster::fit_incremental`): tier-1 pipelines
//! (ZeroModel, SeasonalNaive, AR, and Theta, whose seeded restart
//! re-sweeps its full α grid) must be **bit-identical** with the features
//! on vs off, while tier-2 pipelines (Holt-Winters, ARIMA, BATS, the
//! AutoEnsembler family) run deterministic seeded restarts and must keep
//! the **ranking** unchanged. Each test draws randomized cases from the
//! in-repo deterministic [`Rng64`] so failures reproduce from the fixed
//! seeds.

use autoai_ts_repro::linalg::Rng64;
use autoai_ts_repro::pipelines::{pipeline_by_name, Forecaster, PipelineContext};
use autoai_ts_repro::tdaub::{run_tdaub, TDaubConfig, TDaubResult};
use autoai_ts_repro::transforms::{flatten_windows, TransformCache, WindowDataset};
use autoai_ts_repro::tsdata::TimeSeriesFrame;

fn random_frame(rng: &mut Rng64, min_len: usize, max_len: usize) -> TimeSeriesFrame {
    let n = rng.gen_range(min_len..max_len);
    let cols = rng.gen_range(1..4);
    TimeSeriesFrame::from_columns(
        (0..cols)
            .map(|c| {
                (0..n)
                    .map(|i| {
                        10.0 * (c + 1) as f64 + (i as f64 * 0.37).sin() + rng.range_f64(-0.5, 0.5)
                    })
                    .collect()
            })
            .collect(),
    )
}

/// Bitwise equality of two frames (`to_bits` per cell, so even a NaN-bit
/// or signed-zero divergence fails).
fn frames_bit_equal(a: &TimeSeriesFrame, b: &TimeSeriesFrame) -> bool {
    a.len() == b.len()
        && a.n_series() == b.n_series()
        && a.series_iter().zip(b.series_iter()).all(|(x, y)| {
            x.iter()
                .zip(y.iter())
                .all(|(u, v)| u.to_bits() == v.to_bits())
        })
}

/// Bitwise equality of two window datasets, row by row.
fn datasets_bit_equal(a: &WindowDataset, b: &WindowDataset) -> bool {
    fn rows_equal(
        m: &autoai_ts_repro::linalg::Matrix,
        n: &autoai_ts_repro::linalg::Matrix,
    ) -> bool {
        m.nrows() == n.nrows()
            && m.ncols() == n.ncols()
            && (0..m.nrows()).all(|r| {
                m.row(r)
                    .iter()
                    .zip(n.row(r).iter())
                    .all(|(u, v)| u.to_bits() == v.to_bits())
            })
    }
    rows_equal(&a.x, &b.x)
        && rows_equal(&a.y, &b.y)
        && match (&a.anchors, &b.anchors) {
            (None, None) => true,
            (Some(m), Some(n)) => rows_equal(m, n),
            _ => false,
        }
}

// ---- zero-copy views --------------------------------------------------

#[test]
fn view_slice_equals_copy_slice() {
    let mut rng = Rng64::seed_from_u64(0x511CE);
    for _ in 0..64 {
        let f = random_frame(&mut rng, 8, 80);
        let n = f.len();
        let a = rng.gen_range(0..n - 1);
        let b = rng.gen_range(a + 1..n + 1);
        let view = f.slice(a, b);
        let copy = TimeSeriesFrame::from_columns(
            f.series_iter()
                .map(|col| col.get(a..b).expect("bounds checked").to_vec())
                .collect(),
        );
        assert!(frames_bit_equal(&view, &copy), "slice({a}, {b}) of len {n}");

        // a view of a view composes like a copy of a copy
        let len = view.len();
        let c = rng.gen_range(0..len);
        let d = rng.gen_range(c..len + 1);
        assert!(
            frames_bit_equal(&view.slice(c, d), &copy.slice(c, d)),
            "nested slice({c}, {d}) of slice({a}, {b})"
        );
    }
}

// ---- cached vs direct design matrices ---------------------------------

#[test]
fn cached_flatten_matches_rebuild_under_reverse_growth() {
    let mut rng = Rng64::seed_from_u64(0xF1A77E);
    let mut total_extensions = 0;
    for _ in 0..32 {
        let f = random_frame(&mut rng, 40, 120);
        let n = f.len();
        let lookback = rng.gen_range(2..8);
        let horizon = rng.gen_range(1..4);
        let cache = TransformCache::new();
        // reverse allocation: the suffix view grows toward the full series,
        // so each step must extend the previous design matrix — and the
        // result must be bitwise identical to a from-scratch rebuild
        let mut k = rng.gen_range((lookback + horizon + 1).min(n)..n + 1);
        loop {
            let view = f.slice(n - k, n);
            let cached = cache
                .flatten(&view, lookback, horizon)
                .expect("cache must serve a panic-free build");
            let direct = flatten_windows(&view, lookback, horizon);
            assert!(
                datasets_bit_equal(&cached, &direct),
                "rows={k} lookback={lookback} horizon={horizon}"
            );
            if k == n {
                break;
            }
            k = (k + rng.gen_range(1..12)).min(n);
        }
        total_extensions += cache.stats().extensions;
    }
    assert!(
        total_extensions > 0,
        "growth never took the incremental-extension path"
    );
}

#[test]
fn cached_derived_frames_match_direct_compute() {
    let mut rng = Rng64::seed_from_u64(0xDE21E);
    let mut total_extensions = 0;
    for _ in 0..32 {
        let f = random_frame(&mut rng, 40, 100);
        let n = f.len();
        let cache = TransformCache::new();
        let affine = |frame: &TimeSeriesFrame| {
            TimeSeriesFrame::from_columns(
                frame
                    .series_iter()
                    .map(|col| col.iter().map(|v| 2.0 * v + 1.0).collect())
                    .collect(),
            )
        };
        for k in [n / 2, 3 * n / 4, n] {
            let view = f.slice(n - k, n);
            let derived = cache
                .frame_op(&view, "affine2x1", || affine(&view))
                .expect("cache must serve a panic-free op");
            assert!(frames_bit_equal(&derived, &affine(&view)), "rows={k}");
            // flatten of the derived frame: served through lineage-verified
            // extension, still bitwise equal to a direct rebuild
            let cached = cache.flatten(&derived, 4, 2).expect("flatten served");
            assert!(
                datasets_bit_equal(&cached, &flatten_windows(&derived, 4, 2)),
                "derived flatten rows={k}"
            );
        }
        total_extensions += cache.stats().extensions;
    }
    assert!(
        total_extensions > 0,
        "derived-frame growth never extended incrementally"
    );
}

// ---- end-to-end: the cache must be invisible in rankings --------------

/// Ranking signature with bit-exact scores.
fn signature(r: &TDaubResult) -> Vec<(String, u64, u64)> {
    r.reports
        .iter()
        .map(|rep| {
            (
                rep.name.clone(),
                rep.projected_score.to_bits(),
                rep.final_score.unwrap_or(f64::NAN).to_bits(),
            )
        })
        .collect()
}

/// Tier-1 bit-exactness: pools restricted to pipelines whose warm starts
/// are bit-identical to full refits (plus pipelines with no warm start at
/// all, which always cold-fit) must produce bit-identical score signatures
/// with the performance features on vs off.
#[test]
fn cached_and_uncached_tdaub_rankings_match_over_random_pools() {
    let mut rng = Rng64::seed_from_u64(0x7DAB);
    let names = ["ZeroModel", "SeasonalNaive", "AR", "Theta", "NeuralWindow"];
    for case in 0..6 {
        let ctx = PipelineContext::new(6, 8, vec![8]);
        let n = rng.gen_range(140..240);
        let data = random_frame(&mut rng, n, n + 1);
        let pool_names: Vec<&str> = {
            let mut picked: Vec<&str> = names.iter().copied().filter(|_| rng.next_bool()).collect();
            if picked.len() < 2 {
                picked = vec!["ZeroModel", "NeuralWindow"];
            }
            picked
        };
        let pool = || -> Vec<Box<dyn Forecaster>> {
            pool_names
                .iter()
                .filter_map(|name| pipeline_by_name(name, &ctx))
                .collect()
        };
        let step = 20 + 10 * rng.gen_range(0..3);
        let cfg = |cached: bool, parallel: bool| TDaubConfig {
            min_allocation_size: step,
            allocation_size: step,
            parallel,
            transform_cache: cached,
            incremental: cached,
            ..Default::default()
        };
        let reference =
            signature(&run_tdaub(pool(), &data, &cfg(false, false)).expect("uncached serial run"));
        let cached_parallel = rng.next_bool();
        let cached = run_tdaub(pool(), &data, &cfg(true, cached_parallel)).expect("cached run");
        assert_eq!(
            signature(&cached),
            reference,
            "case {case}: pool {pool_names:?}, step {step}, parallel {cached_parallel}"
        );
    }
}

/// Tier-2 rank stability: pools including the seeded-restart pipelines
/// (Holt-Winters, auto-ARIMA, AutoEnsembler, and BATS with its pinned
/// component structure) must produce the same
/// *ranking* — pipeline names in rank order — with warm starts on vs off,
/// with every projected score finite in both runs. Bit-exact scores are
/// deliberately not required here: a seeded Nelder–Mead restart converges
/// to the same optimum along a different path.
#[test]
fn warm_started_tdaub_preserves_rankings_for_tier2_pools() {
    let mut rng = Rng64::seed_from_u64(0x2B7DAB);
    let tier2 = [
        "HW-Additive",
        "HW-Multiplicative",
        "Arima",
        "FlattenAutoEnsembler",
        "bats",
    ];
    let tier1 = ["ZeroModel", "AR"];
    for case in 0..4 {
        let ctx = PipelineContext::new(6, 8, vec![8]);
        let n = rng.gen_range(150..220);
        let data = random_frame(&mut rng, n, n + 1);
        let pool_names: Vec<&str> = {
            let mut picked: Vec<&str> = tier2.iter().copied().filter(|_| rng.next_bool()).collect();
            if picked.is_empty() {
                picked.push("HW-Additive");
            }
            picked.extend(tier1.iter().copied().filter(|_| rng.next_bool()));
            picked
        };
        let pool = || -> Vec<Box<dyn Forecaster>> {
            pool_names
                .iter()
                .filter_map(|name| pipeline_by_name(name, &ctx))
                .collect()
        };
        let step = 25 + 5 * rng.gen_range(0..3);
        let cfg = |warm: bool| TDaubConfig {
            min_allocation_size: step,
            allocation_size: step,
            parallel: false,
            transform_cache: true,
            incremental: warm,
            ..Default::default()
        };
        let cold = run_tdaub(pool(), &data, &cfg(false)).expect("cold run");
        let warm = run_tdaub(pool(), &data, &cfg(true)).expect("warm run");
        let rank = |r: &TDaubResult| -> Vec<String> {
            r.reports.iter().map(|rep| rep.name.clone()).collect()
        };
        assert_eq!(
            rank(&warm),
            rank(&cold),
            "case {case}: pool {pool_names:?}, step {step}"
        );
        for rep in warm.reports.iter().chain(cold.reports.iter()) {
            assert!(
                rep.projected_score.is_finite(),
                "case {case}: {} produced a non-finite projected score",
                rep.name
            );
        }
    }
}
