//! Determinism and optimality contracts for greedy forward ensemble
//! selection over the T-Daub survivor set.
//!
//! Selection runs on predictions from the candidates' already-fitted
//! states, so it must be invisible to everything else: the ranking is
//! bit-identical with ensembling on or off, the selected ensemble is
//! bit-identical across serial/parallel and cached/uncached executions
//! (tier-1 warm-start pipelines only — tier-2 seeded restarts are
//! deterministic but not bit-identical across cache modes), the blended
//! holdout score never loses to the best single survivor, and the
//! `duplicate_fits == 0` invariant survives the new phase.

use autoai_ts_repro::pipelines::{pipeline_by_name, Forecaster, PipelineContext};
use autoai_ts_repro::tdaub::{run_tdaub, EnsembleSelection, TDaubConfig, TDaubResult};
use autoai_ts_repro::tsdata::TimeSeriesFrame;

/// Two deterministic series with enough structure that the survivors
/// disagree (a trend the ZeroModel misses, a season the AR smooths).
fn frame(n: usize) -> TimeSeriesFrame {
    let a: Vec<f64> = (0..n)
        .map(|i| 20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin())
        .collect();
    let b: Vec<f64> = (0..n)
        .map(|i| 10.0 + 0.05 * i as f64 + (i as f64 * 0.7).cos())
        .collect();
    TimeSeriesFrame::from_columns(vec![a, b])
}

/// Tier-1 pool: bit-identical fits across every execution/cache mode.
fn pool() -> Vec<Box<dyn Forecaster>> {
    let ctx = PipelineContext::new(8, 6, vec![12]);
    ["ZeroModel", "SeasonalNaive", "AR", "Theta"]
        .iter()
        .filter_map(|n| pipeline_by_name(n, &ctx))
        .collect()
}

fn config(parallel: bool, cached: bool) -> TDaubConfig {
    TDaubConfig {
        min_allocation_size: 40,
        allocation_size: 40,
        parallel,
        transform_cache: cached,
        incremental: cached,
        ..Default::default()
    }
}

/// Bit-exact signature of a selection: member names, picks, and the raw
/// bits of every weight and score.
fn signature(sel: &EnsembleSelection) -> Vec<(String, usize, u64, u64)> {
    let mut out: Vec<(String, usize, u64, u64)> = sel
        .members
        .iter()
        .map(|m| {
            (
                m.name.clone(),
                m.picks,
                m.weight.to_bits(),
                m.solo_score.to_bits(),
            )
        })
        .collect();
    out.push((
        "<selection>".into(),
        sel.rounds,
        sel.score.to_bits(),
        sel.best_single.to_bits(),
    ));
    out
}

fn ranking_bits(r: &TDaubResult) -> Vec<(String, usize, u64)> {
    r.reports
        .iter()
        .map(|rep| (rep.name.clone(), rep.rank, rep.projected_score.to_bits()))
        .collect()
}

#[test]
fn weights_sum_to_one_and_never_lose_to_best_single() {
    let data = frame(260);
    let r = run_tdaub(pool(), &data, &config(false, true)).expect("run");
    let sel = r.ensemble.expect("selection ran on the default top-k");
    let total: f64 = sel.members.iter().map(|m| m.weight).sum();
    assert!((total - 1.0).abs() < 1e-12, "weights sum to {total}");
    assert!(sel.members.iter().all(|m| m.weight > 0.0 && m.picks > 0));
    assert!(
        sel.score <= sel.best_single,
        "ensemble {} lost to best single {}",
        sel.score,
        sel.best_single
    );
    // the reported solo scores include the best single's score
    let best_solo = sel
        .members
        .iter()
        .map(|m| m.solo_score)
        .fold(f64::INFINITY, f64::min);
    assert!(best_solo >= sel.best_single);
}

#[test]
fn selection_is_bit_identical_across_execution_and_cache_modes() {
    let data = frame(260);
    let runs: Vec<TDaubResult> = [
        config(false, false), // serial, uncached
        config(false, true),  // serial, cached + warm starts
        config(true, false),  // parallel, uncached
        config(true, true),   // parallel, cached + warm starts
    ]
    .into_iter()
    .map(|cfg| run_tdaub(pool(), &data, &cfg).expect("run"))
    .collect();
    let baseline = signature(runs[0].ensemble.as_ref().expect("selection"));
    for (i, r) in runs.iter().enumerate().skip(1) {
        let sig = signature(r.ensemble.as_ref().expect("selection"));
        assert_eq!(baseline, sig, "mode {i} selected a different ensemble");
    }
    // repeat runs are bit-identical too (no hidden global state)
    let again = run_tdaub(pool(), &data, &config(true, true)).expect("rerun");
    assert_eq!(
        baseline,
        signature(again.ensemble.as_ref().expect("selection"))
    );
}

#[test]
fn ensembling_is_invisible_to_the_ranking_and_duplicate_fits() {
    let data = frame(260);
    for parallel in [false, true] {
        let with = run_tdaub(pool(), &data, &config(parallel, true)).expect("run");
        let without = run_tdaub(
            pool(),
            &data,
            &TDaubConfig {
                ensemble_top_k: 0,
                ..config(parallel, true)
            },
        )
        .expect("run");
        assert!(with.ensemble.is_some());
        assert!(without.ensemble.is_none());
        assert_eq!(
            ranking_bits(&with),
            ranking_bits(&without),
            "ensembling perturbed the ranking (parallel={parallel})"
        );
        assert_eq!(with.best.name(), without.best.name());
        // selection is prediction-only: no pipeline is ever refit on a
        // frame view it already fitted
        assert_eq!(with.execution.duplicate_fits, 0);
        assert_eq!(without.execution.duplicate_fits, 0);
    }
}

#[test]
fn top_k_of_one_and_zero_disable_selection() {
    let data = frame(220);
    for k in [0usize, 1] {
        let r = run_tdaub(
            pool(),
            &data,
            &TDaubConfig {
                ensemble_top_k: k,
                ..config(false, true)
            },
        )
        .expect("run");
        assert!(r.ensemble.is_none(), "top-k {k} still selected");
    }
}
