//! Failure-injection tests: dirty inputs the quality-check layer (§4) must
//! absorb, and degenerate inputs every layer must reject gracefully.
//!
//! Pipeline-side faults (panics, typed errors, NaN forecasts, stalls) are
//! exercised by the seeded property suite in `tests/chaos_gauntlet.rs`,
//! which drives the deterministic `autoai_chaos` layer (DESIGN.md §10).

use autoai_ts_repro::core_ts::{AutoAITS, AutoAITSConfig, PipelineError};
use autoai_ts_repro::pipelines::{pipeline_by_name, PipelineContext};
use autoai_ts_repro::tdaub::{run_tdaub, TDaubConfig};
use autoai_ts_repro::tsdata::{quality_check, QualityIssue, TimeSeriesFrame};

fn fast_config() -> AutoAITSConfig {
    AutoAITSConfig {
        pipeline_names: Some(vec![
            "MT2RForecaster".into(),
            "HW-Additive".into(),
            "ZeroModel".into(),
        ]),
        ..Default::default()
    }
}

fn seasonal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin())
        .collect()
}

#[test]
fn nan_blocks_are_interpolated_not_fatal() {
    let mut values = seasonal(300);
    for v in values.iter_mut().take(40).skip(20) {
        *v = f64::NAN; // a 20-sample gap
    }
    let mut system = AutoAITS::with_config(fast_config());
    system.fit(&TimeSeriesFrame::univariate(values)).unwrap();
    assert_eq!(system.summary().unwrap().quality.missing_count, 20);
    assert!(system
        .predict(6)
        .unwrap()
        .series(0)
        .iter()
        .all(|v| v.is_finite()));
}

#[test]
fn negative_values_disable_log_but_log_pipelines_still_work() {
    // log transforms fit an offset, so negative data must not break the
    // FlattenAutoEnsembler-log pipeline
    let values: Vec<f64> = seasonal(300).iter().map(|v| v - 22.0).collect(); // dips negative
    let frame = TimeSeriesFrame::univariate(values);
    let report = quality_check(&frame);
    assert!(!report.log_transform_safe);
    let ctx = PipelineContext::new(12, 6, vec![12]);
    let mut p = pipeline_by_name("FlattenAutoEnsembler-log", &ctx).unwrap();
    p.fit(&frame).unwrap();
    assert!(p
        .predict(6)
        .unwrap()
        .series(0)
        .iter()
        .all(|v| v.is_finite()));
}

#[test]
fn constant_series_is_flagged_and_forecast_constant() {
    let frame = TimeSeriesFrame::univariate(vec![5.0; 200]);
    let report = quality_check(&frame);
    assert!(report.issues.contains(&QualityIssue::ConstantSeries(0)));
    let mut system = AutoAITS::with_config(fast_config());
    system.fit(&frame).unwrap();
    for &v in system.predict(6).unwrap().series(0) {
        assert!((v - 5.0).abs() < 0.5, "constant forecast drifted: {v}");
    }
}

#[test]
fn series_shorter_than_min_allocation_takes_bypass_path() {
    // T-Daub's §4.2 rule: when len(T) <= min_allocation_size, all
    // pipelines are ranked on the full data
    let frame = TimeSeriesFrame::univariate(seasonal(60));
    let ctx = PipelineContext::new(8, 6, vec![12]);
    let pipelines = vec![
        pipeline_by_name("MT2RForecaster", &ctx).unwrap(),
        pipeline_by_name("ZeroModel", &ctx).unwrap(),
    ];
    let cfg = TDaubConfig {
        min_allocation_size: 100,
        parallel: false,
        ..Default::default()
    };
    let result = run_tdaub(pipelines, &frame, &cfg).unwrap();
    for r in &result.reports {
        assert_eq!(
            r.scores.len(),
            1,
            "{} should be evaluated exactly once",
            r.name
        );
        assert!(r.final_score.is_some());
    }
}

#[test]
fn irregular_timestamps_are_reported() {
    let ts: Vec<i64> = (0..200)
        .map(|i| i * 60 + if i % 3 == 0 { 25 } else { 0 })
        .collect();
    let frame = TimeSeriesFrame::univariate(seasonal(200)).with_timestamps(ts);
    let report = quality_check(&frame);
    assert!(report
        .issues
        .iter()
        .any(|i| matches!(i, QualityIssue::IrregularTimestamps(_))));
    // the system still fits (ML pipelines ignore timestamps)
    let mut system = AutoAITS::with_config(fast_config());
    system.fit(&frame).unwrap();
}

#[test]
fn empty_and_tiny_inputs_are_clean_errors() {
    let mut system = AutoAITS::with_config(fast_config());
    assert!(matches!(
        system.fit_rows(&[]),
        Err(PipelineError::InvalidInput(_))
    ));
    let tiny: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
    assert!(matches!(
        system.fit_rows(&tiny),
        Err(PipelineError::InvalidInput(_))
    ));
    assert!(matches!(system.predict(3), Err(PipelineError::NotFitted)));
}

#[test]
fn all_nan_series_degrades_to_zero_fill() {
    let mut cols = vec![seasonal(200), vec![f64::NAN; 200]];
    cols[1][0] = f64::NAN; // entire second column NaN
    let frame = TimeSeriesFrame::from_columns(cols);
    let mut system = AutoAITS::with_config(fast_config());
    // the cleaner fills the dead series with zeros; the fit must survive
    system.fit(&frame).unwrap();
    let f = system.predict(4).unwrap();
    assert_eq!(f.n_series(), 2);
    assert!(f.series(1).iter().all(|v| v.is_finite()));
}

#[test]
fn outlier_spikes_do_not_destroy_seasonal_forecasts() {
    let mut values = seasonal(400);
    for i in (30..390).step_by(57) {
        values[i] += 400.0; // massive spikes
    }
    let frame = TimeSeriesFrame::univariate(values);
    let mut system = AutoAITS::with_config(fast_config());
    system.fit(&frame).unwrap();
    let f = system.predict(12).unwrap();
    // forecasts should stay near the base signal scale, not the spike scale
    for &v in f.series(0) {
        assert!(v.abs() < 120.0, "forecast blew up to {v}");
    }
}
