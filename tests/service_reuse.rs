//! Cross-run reuse through the forecasting service front end.
//!
//! The service contract under test: a stored series grows **in place**
//! across an `observe` call (the grown fingerprint `extends_as_prefix` the
//! one the previous fit ran on), and the next fit request on the grown
//! frame reuses cross-run state — transform-cache entries and warm-started
//! refits — while ranking bit-identically to a cold fit on an identical
//! standalone frame. Reuse is a wall-time optimization, never a ranking
//! input.

use autoai_ts_repro::core_ts::{
    AutoAITSConfig, ForecastService, PipelineError, ServiceLimits, ServiceRequest, ServiceResponse,
};
use autoai_ts_repro::tsdata::{GrowthKind, TimeSeriesFrame};

/// Deterministic seasonal rows covering `range` sample indices.
fn rows(range: std::ops::Range<usize>) -> Vec<Vec<f64>> {
    range
        .map(|i| vec![20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin()])
        .collect()
}

/// A small pipeline pool that exercises warm starts (HW, SeasonalNaive)
/// and the window/cache path twice over (WindowRandomForest + WindowSVR
/// flatten with identical keys, so cache *hits* occur within a run, while
/// MT2R's distinct horizon exercises extensions across runs) — without
/// paying for the full registry.
fn service() -> ForecastService {
    ForecastService::new(AutoAITSConfig {
        pipeline_names: Some(vec![
            "MT2RForecaster".into(),
            "WindowRandomForest".into(),
            "WindowSVR".into(),
            "HW-Additive".into(),
            "SeasonalNaive".into(),
            "ZeroModel".into(),
        ]),
        ..Default::default()
    })
}

#[test]
fn observe_preserves_identity_and_the_next_fit_reuses_cross_run_state() {
    let svc = service();
    svc.ingest("cpu", TimeSeriesFrame::from_rows(&rows(0..300)))
        .unwrap();
    let cold = svc.fit("cpu").unwrap();
    assert!(!cold.reused_model);
    assert!(!cold.extends_previous_fit);

    // the append path must grow the tail in place: same buffers, same
    // start, more rows — the identity every reuse tier keys on
    let record = svc.observe("cpu", &rows(300..324)).unwrap();
    assert_eq!(
        record.kind,
        GrowthKind::InPlace,
        "a fitted service must not pin the stored buffers: {record:?}"
    );
    assert!(record.grown.extends_as_prefix(&record.base));
    assert!(record.identity_preserved());
    assert!(record.timestamp_issue.is_none());

    let warm = svc.fit("cpu").unwrap();
    assert!(!warm.reused_model, "data grew, a real fit must run");
    assert!(
        warm.extends_previous_fit,
        "the grown fingerprint must link to the previous fit's"
    );
    assert!(
        warm.incremental_fits > 0,
        "no warm-started refits: {warm:?}"
    );
    assert_eq!(warm.duplicate_fits, 0, "the fingerprint memo went blind");
    assert!(warm.cache_hits > 0, "no transform-cache reuse: {warm:?}");
    assert!(
        warm.cache_extensions > 0,
        "no cross-run incremental matrix builds: {warm:?}"
    );

    // rankings must be bit-identical to a cold fit on an identical
    // standalone frame: reuse may only ever change wall time
    let fresh_svc = service();
    fresh_svc
        .ingest("cpu", TimeSeriesFrame::from_rows(&rows(0..324)))
        .unwrap();
    let fresh = fresh_svc.fit("cpu").unwrap();
    assert_eq!(warm.best_pipeline, fresh.best_pipeline);
    assert_eq!(warm.holdout_smape.to_bits(), fresh.holdout_smape.to_bits());
    assert_eq!(warm.ranking.len(), fresh.ranking.len());
    for ((wn, ws), (fn_, fs)) in warm.ranking.iter().zip(fresh.ranking.iter()) {
        assert_eq!(wn, fn_);
        assert_eq!(
            ws.to_bits(),
            fs.to_bits(),
            "{wn}: warm ranking diverged from cold"
        );
    }

    // and the service still serves usable forecasts from the new fit
    let f = svc.predict("cpu", 6).unwrap();
    assert_eq!(f.len(), 6);
    assert!(f.series(0).iter().all(|v| v.is_finite()));
}

#[test]
fn repeated_observe_fit_cycles_keep_extending() {
    let svc = service();
    svc.ingest("cpu", TimeSeriesFrame::from_rows(&rows(0..288)))
        .unwrap();
    svc.fit("cpu").unwrap();
    for step in 0..3usize {
        let lo = 288 + step * 12;
        let record = svc.observe("cpu", &rows(lo..lo + 12)).unwrap();
        assert_eq!(record.kind, GrowthKind::InPlace, "cycle {step}: {record:?}");
        let report = svc.fit("cpu").unwrap();
        assert!(report.extends_previous_fit, "cycle {step}");
        assert!(!report.reused_model, "cycle {step}");
    }
    assert_eq!(svc.lineage("cpu").len(), 3);
    let stats = svc.stats();
    assert_eq!(stats.series, 1);
    assert_eq!(stats.models, 1);
    assert!(stats.cache.hits > 0);
}

#[test]
fn unchanged_data_replays_the_stored_fit_bit_for_bit() {
    let svc = service();
    svc.ingest("cpu", TimeSeriesFrame::from_rows(&rows(0..300)))
        .unwrap();
    let cold = svc.fit("cpu").unwrap();
    let replay = svc.fit("cpu").unwrap();
    assert!(replay.reused_model);
    for ((an, a), (bn, b)) in cold.ranking.iter().zip(replay.ranking.iter()) {
        assert_eq!(an, bn);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn admission_and_invalidation_bound_the_service() {
    let svc = service().with_limits(ServiceLimits {
        max_batch: 2,
        ..Default::default()
    });
    svc.ingest("cpu", TimeSeriesFrame::from_rows(&rows(0..300)))
        .unwrap();
    svc.fit("cpu").unwrap();
    let predict = |h| ServiceRequest::Predict {
        series: "cpu".into(),
        horizon: h,
    };
    let replies = svc.submit(&[predict(3), predict(4), predict(5)]);
    assert!(matches!(
        replies.first(),
        Some(Ok(ServiceResponse::Predict(_)))
    ));
    assert!(matches!(
        replies.get(1),
        Some(Ok(ServiceResponse::Predict(_)))
    ));
    assert!(matches!(
        replies.get(2),
        Some(Err(PipelineError::BudgetExceeded))
    ));
    let stats = svc.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.in_flight, 0);

    // invalidation retires the whole cross-run state under a new epoch
    let generation = svc.invalidate();
    assert_eq!(svc.stats().generation, generation);
    assert_eq!(svc.stats().models, 0);
    assert!(matches!(
        svc.predict("cpu", 3),
        Err(PipelineError::NotFitted)
    ));
    let refit = svc.fit("cpu").unwrap();
    assert!(!refit.reused_model, "a flushed model must not replay");
}
