//! Golden tests for the vectorized linalg kernels.
//!
//! The blocked/register-tiled `matmul`, the rank-1-update `gram`, the
//! fused `matvec`/`t_matvec`, and the 4-wide `dot`/`axpy` primitives are
//! compared against straightforward triple-loop references on seeded
//! random inputs. The vectorized kernels reassociate floating-point sums
//! (that is the whole point), so elementwise agreement is ULP-bounded
//! rather than bitwise — but the bound is tight: a few ULPs of the value's
//! own magnitude scaled by the reduction length, far below anything a
//! genuine indexing or tiling bug would produce. What *is* bitwise is
//! determinism: repeated kernel calls on the same inputs must return
//! identical bits, since T-Daub's serial==parallel contract builds on it.

use autoai_ts_repro::linalg::{axpy, dot, Matrix, Rng64};

fn random_matrix(rng: &mut Rng64, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.range_f64(-5.0, 5.0)).collect(),
    )
}

fn random_vec(rng: &mut Rng64, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.range_f64(-5.0, 5.0)).collect()
}

/// Reassociation-tolerant comparison: `len` is the reduction length that
/// produced each element.
fn assert_close(got: f64, want: f64, len: usize, ctx: &str) {
    let tol = 1e-13 * (len.max(1) as f64) * (1.0 + want.abs());
    assert!(
        (got - want).abs() <= tol,
        "{ctx}: got {got}, want {want} (tol {tol})"
    );
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.nrows(), b.ncols());
    for i in 0..a.nrows() {
        for j in 0..b.ncols() {
            let mut acc = 0.0;
            for k in 0..a.ncols() {
                acc += a[(i, k)] * b[(k, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

fn naive_gram(a: &Matrix) -> Matrix {
    let n = a.ncols();
    let mut g = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for r in 0..a.nrows() {
                acc += a[(r, i)] * a[(r, j)];
            }
            g[(i, j)] = acc;
        }
    }
    g
}

#[test]
fn blocked_matmul_matches_naive_reference() {
    let mut rng = Rng64::seed_from_u64(0x3A73);
    // sweep shapes around the 4-wide tile boundary: below, at, above, and
    // far past it, plus degenerate single-row/column cases
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (2, 3, 2),
        (3, 4, 5),
        (4, 4, 4),
        (5, 5, 5),
        (7, 9, 8),
        (8, 16, 12),
        (13, 21, 17),
        (32, 48, 24),
        (1, 50, 1),
        (40, 1, 40),
    ] {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        for i in 0..m {
            for j in 0..n {
                assert_close(
                    fast[(i, j)],
                    slow[(i, j)],
                    k,
                    &format!("matmul {m}x{k}x{n} [{i},{j}]"),
                );
            }
        }
        // bitwise-deterministic across calls
        let again = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(fast[(i, j)].to_bits(), again[(i, j)].to_bits());
            }
        }
    }
}

#[test]
fn matmul_with_zeros_matches_reference_without_the_old_skip_branch() {
    // the old kernel special-cased `a == 0.0`; the tiled kernel must get
    // sparse inputs right without it, including signed zeros
    let mut rng = Rng64::seed_from_u64(0x0B5E);
    let mut a = random_matrix(&mut rng, 9, 11);
    for i in 0..9 {
        for j in 0..11 {
            if (i + j) % 3 == 0 {
                a[(i, j)] = 0.0;
            }
            if (i + j) % 7 == 0 {
                a[(i, j)] = -0.0;
            }
        }
    }
    let b = random_matrix(&mut rng, 11, 6);
    let fast = a.matmul(&b);
    let slow = naive_matmul(&a, &b);
    for i in 0..9 {
        for j in 0..6 {
            assert_close(fast[(i, j)], slow[(i, j)], 11, &format!("sparse [{i},{j}]"));
        }
    }
}

#[test]
fn gram_matches_naive_reference_and_is_symmetric() {
    let mut rng = Rng64::seed_from_u64(0x96A2);
    for &(rows, cols) in &[(1usize, 1usize), (3, 2), (5, 5), (17, 7), (64, 12), (2, 20)] {
        let a = random_matrix(&mut rng, rows, cols);
        let fast = a.gram();
        let slow = naive_gram(&a);
        for i in 0..cols {
            for j in 0..cols {
                assert_close(
                    fast[(i, j)],
                    slow[(i, j)],
                    rows,
                    &format!("gram {rows}x{cols} [{i},{j}]"),
                );
                // the mirror step must produce exact symmetry, not
                // recomputed near-symmetry
                assert_eq!(
                    fast[(i, j)].to_bits(),
                    fast[(j, i)].to_bits(),
                    "gram not bitwise symmetric at [{i},{j}]"
                );
            }
        }
    }
}

#[test]
fn matvec_and_t_matvec_match_references() {
    let mut rng = Rng64::seed_from_u64(0x3417);
    for &(rows, cols) in &[(1usize, 1usize), (4, 3), (9, 17), (33, 8), (6, 64)] {
        let a = random_matrix(&mut rng, rows, cols);
        let v = random_vec(&mut rng, cols);
        let got = a.matvec(&v);
        for (i, g) in got.iter().enumerate() {
            let want: f64 = (0..cols).map(|k| a[(i, k)] * v[k]).sum();
            assert_close(*g, want, cols, &format!("matvec {rows}x{cols} [{i}]"));
        }
        let w = random_vec(&mut rng, rows);
        let got_t = a.t_matvec(&w);
        for (j, g) in got_t.iter().enumerate() {
            let want: f64 = (0..rows).map(|r| a[(r, j)] * w[r]).sum();
            assert_close(*g, want, rows, &format!("t_matvec {rows}x{cols} [{j}]"));
        }
    }
}

#[test]
fn dot_and_axpy_match_references_at_every_tail_length() {
    let mut rng = Rng64::seed_from_u64(0xD07);
    // every remainder class of the 4-wide unrolling, plus longer runs
    for n in [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 15, 64, 257] {
        let x = random_vec(&mut rng, n);
        let y = random_vec(&mut rng, n);
        let want: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_close(dot(&x, &y), want, n, &format!("dot len {n}"));
        // repeated calls are bitwise stable
        assert_eq!(dot(&x, &y).to_bits(), dot(&x, &y).to_bits());

        let a = rng.range_f64(-3.0, 3.0);
        let mut fast = y.clone();
        axpy(a, &x, &mut fast);
        for (i, (f, (xi, yi))) in fast.iter().zip(x.iter().zip(&y)).enumerate() {
            let want = a * xi + yi;
            assert_eq!(
                f.to_bits(),
                want.to_bits(),
                "axpy len {n} [{i}]: no reduction, must be exact"
            );
        }
    }
}

#[test]
fn dot_uses_min_length_semantics() {
    let x = [1.0, 2.0, 3.0, 4.0, 5.0];
    let y = [10.0, 20.0];
    assert_eq!(dot(&x, &y), 50.0);
    assert_eq!(dot(&y, &x), 50.0);
    assert_eq!(dot(&x, &[]), 0.0);
}
