//! API-contract tests: the §3 data semantics every component must honor —
//! 2-D array in, 2-D array out, uniform behavior across model families.

use autoai_ts_repro::core_ts::{AutoAITS, AutoAITSConfig};
use autoai_ts_repro::pipelines::{
    default_pipelines, pipeline_by_name, PipelineContext, PipelineError, PIPELINE_NAMES,
};
use autoai_ts_repro::sota::all_sota;
use autoai_ts_repro::tsdata::{Metric, TimeSeriesFrame};

fn seasonal_frame(n_series: usize, n: usize) -> TimeSeriesFrame {
    let cols: Vec<Vec<f64>> = (0..n_series)
        .map(|c| {
            (0..n)
                .map(|i| {
                    30.0 + 5.0 * c as f64
                        + 8.0 * (2.0 * std::f64::consts::PI * (i + c) as f64 / 12.0).sin()
                })
                .collect()
        })
        .collect();
    TimeSeriesFrame::from_columns(cols)
}

#[test]
fn every_default_pipeline_honors_2d_in_2d_out() {
    // §3: "fit and predict expect a 2D array in which columns represent
    // different time series and rows represent samples. The predict
    // function produces output in form of a 2D array in which columns
    // correspond to input time series and rows are number of future values"
    let frame = seasonal_frame(3, 240);
    let ctx = PipelineContext::new(12, 6, vec![12]);
    for mut p in default_pipelines(&ctx) {
        let name = p.name();
        p.fit(&frame).unwrap_or_else(|e| panic!("{name}: {e}"));
        let out = p.predict(6).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.n_series(), 3, "{name}: output series mismatch");
        assert_eq!(out.len(), 6, "{name}: horizon mismatch");
        assert!(!out.has_non_finite(), "{name}: non-finite output");
    }
}

#[test]
fn every_sota_simulator_honors_2d_in_2d_out() {
    let frame = seasonal_frame(2, 240);
    for mut sim in all_sota() {
        let name = sim.name();
        sim.fit(&frame).unwrap_or_else(|e| panic!("{name}: {e}"));
        let out = sim.predict(6).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.n_series(), 2, "{name}");
        assert_eq!(out.len(), 6, "{name}");
    }
}

#[test]
fn every_pipeline_predicts_before_fit_as_error() {
    let ctx = PipelineContext::new(8, 4, vec![]);
    for name in PIPELINE_NAMES {
        let p = pipeline_by_name(name, &ctx).unwrap();
        assert!(
            matches!(p.predict(4), Err(PipelineError::NotFitted)),
            "{name} must return NotFitted before fit"
        );
    }
}

#[test]
fn every_pipeline_clone_unfitted_preserves_name() {
    let ctx = PipelineContext::new(8, 4, vec![12]);
    for name in PIPELINE_NAMES {
        let p = pipeline_by_name(name, &ctx).unwrap();
        assert_eq!(p.clone_unfitted().name(), p.name(), "{name}");
    }
}

#[test]
fn score_is_uniform_across_model_families() {
    // T-Daub relies on a single score contract across heterogeneous models
    let frame = seasonal_frame(1, 300);
    let train = frame.slice(0, 280);
    let test = frame.slice(280, 300);
    let ctx = PipelineContext::new(12, 12, vec![12]);
    for name in [
        "Arima",
        "HW-Additive",
        "WindowRandomForest",
        "MT2RForecaster",
    ] {
        let mut p = pipeline_by_name(name, &ctx).unwrap();
        p.fit(&train).unwrap();
        let s = p.score(&test, Metric::Smape).unwrap();
        assert!(s.is_finite() && s >= 0.0, "{name}: score {s}");
    }
}

#[test]
fn orchestrator_row_api_shapes() {
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|i| vec![(i as f64 * 0.2).sin(), (i as f64 * 0.1).cos() * 10.0])
        .collect();
    let mut system = AutoAITS::with_config(AutoAITSConfig {
        pipeline_names: Some(vec!["MT2RForecaster".into(), "ZeroModel".into()]),
        ..Default::default()
    });
    system.fit_rows(&rows).unwrap();
    let out = system.predict_rows(5).unwrap();
    assert_eq!(out.len(), 5);
    assert!(
        out.iter().all(|r| r.len() == 2),
        "every output row spans all input series"
    );
}

#[test]
fn predictions_respect_series_names() {
    let frame = seasonal_frame(2, 240).with_names(vec!["cpu".to_string(), "memory".to_string()]);
    let ctx = PipelineContext::new(8, 4, vec![12]);
    let mut p = pipeline_by_name("MT2RForecaster", &ctx).unwrap();
    p.fit(&frame).unwrap();
    let out = p.predict(4).unwrap();
    assert_eq!(out.names(), &["cpu".to_string(), "memory".to_string()]);
}
