//! Property-based tests (proptest) on cross-crate invariants.

use autoai_ts_repro::linalg;
use autoai_ts_repro::transforms::{
    flatten_windows, normalized_flatten_windows, DifferenceTransform, LogTransform, MinMaxScaler,
    StandardScaler, Transform,
};
use autoai_ts_repro::tsdata::{
    rank_rows, reverse_allocation, smape, train_test_split, TimeSeriesFrame,
};
use proptest::prelude::*;

fn finite_series(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6f64, 4..max_len)
}

proptest! {
    #[test]
    fn smape_bounded_0_200(a in finite_series(64), shift in -100.0f64..100.0) {
        let b: Vec<f64> = a.iter().map(|v| v + shift).collect();
        let s = smape(&a, &b);
        prop_assert!((0.0..=200.0 + 1e-9).contains(&s), "smape {s}");
    }

    #[test]
    fn smape_identity_is_zero(a in finite_series(64)) {
        prop_assert_eq!(smape(&a, &a), 0.0);
    }

    #[test]
    fn log_transform_roundtrip(a in finite_series(64)) {
        let frame = TimeSeriesFrame::univariate(a.clone());
        let mut t = LogTransform::new();
        let tr = t.fit_transform(&frame);
        let back = t.inverse_transform(&tr);
        for (x, y) in back.series(0).iter().zip(&a) {
            prop_assert!((x - y).abs() < 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn scaler_roundtrips(a in finite_series(64)) {
        for t in [&mut StandardScaler::new() as &mut dyn Transform, &mut MinMaxScaler::new()] {
            let frame = TimeSeriesFrame::univariate(a.clone());
            let tr = t.fit_transform(&frame);
            let back = t.inverse_transform(&tr);
            for (x, y) in back.series(0).iter().zip(&a) {
                prop_assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn difference_forecast_integration_inverts(a in finite_series(64)) {
        // differencing the tail of a continued series and re-integrating
        // must reproduce the continuation exactly
        let frame = TimeSeriesFrame::univariate(a.clone());
        let mut t = DifferenceTransform::new();
        t.fit(&frame);
        // pretend the model perfectly predicted the next 3 differences
        let future = [1.5f64, -2.0, 0.25];
        let mut continued = a.clone();
        let mut last = *a.last().unwrap();
        for d in future {
            last += d;
            continued.push(last);
        }
        let restored = t.inverse_transform(&TimeSeriesFrame::univariate(future.to_vec()));
        for (r, c) in restored.series(0).iter().zip(&continued[a.len()..]) {
            prop_assert!((r - c).abs() < 1e-9);
        }
    }

    #[test]
    fn window_shapes_are_consistent(
        a in finite_series(128),
        lookback in 1usize..12,
        horizon in 1usize..6,
    ) {
        let frame = TimeSeriesFrame::univariate(a.clone());
        let ds = flatten_windows(&frame, lookback, horizon);
        let expected = (a.len() + 1).saturating_sub(lookback + horizon);
        prop_assert_eq!(ds.len(), expected);
        if !ds.is_empty() {
            prop_assert_eq!(ds.x.ncols(), lookback);
            prop_assert_eq!(ds.y.ncols(), horizon);
            // the first window is the series prefix
            for (k, &ak) in a.iter().enumerate().take(lookback) {
                prop_assert_eq!(ds.x[(0, k)], ak);
            }
        }
    }

    #[test]
    fn normalized_windows_have_unit_anchor(
        a in prop::collection::vec(1.0f64..1e4, 16..64),
        lookback in 2usize..8,
    ) {
        let frame = TimeSeriesFrame::univariate(a);
        let ds = normalized_flatten_windows(&frame, lookback, 1);
        for w in 0..ds.len() {
            // last value of every normalized window is 1 by construction
            prop_assert!((ds.x[(w, lookback - 1)] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reverse_allocations_end_at_series_end(
        len in 1usize..500,
        alloc in 1usize..100,
        max in 1usize..10,
    ) {
        let allocs = reverse_allocation(len, alloc, max);
        for (start, end) in &allocs {
            prop_assert_eq!(*end, len, "every reverse allocation contains the most recent data");
            prop_assert!(start < end);
        }
        // sizes strictly increase until full coverage
        for w in allocs.windows(2) {
            prop_assert!(w[1].1 - w[1].0 > w[0].1 - w[0].0);
        }
    }

    #[test]
    fn train_test_split_preserves_order_and_length(
        a in finite_series(128),
        frac in 0.0f64..1.0,
    ) {
        let frame = TimeSeriesFrame::univariate(a.clone());
        let (tr, te) = train_test_split(&frame, frac);
        prop_assert_eq!(tr.len() + te.len(), a.len());
        let rejoined: Vec<f64> = tr.series(0).iter().chain(te.series(0)).copied().collect();
        prop_assert_eq!(rejoined, a);
    }

    #[test]
    fn rank_rows_is_a_permutation_average(scores in prop::collection::vec(0.0f64..100.0, 2..10)) {
        let wrapped: Vec<Option<f64>> = scores.iter().map(|&s| Some(s)).collect();
        let ranks = rank_rows(&wrapped);
        let sum: f64 = ranks.iter().map(|r| r.unwrap()).sum();
        let n = scores.len() as f64;
        // ranks always sum to n(n+1)/2 whether or not there are ties
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn pacf_bounded(a in finite_series(128)) {
        let pacf = linalg::partial_autocorrelation(&a, 8);
        for (k, v) in pacf.iter().enumerate().skip(1) {
            prop_assert!(v.abs() <= 1.0 + 1e-6, "pacf[{k}] = {v}");
        }
    }

    #[test]
    fn matrix_gram_is_symmetric_psd_diag(rows in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), 3..10)) {
        let m = linalg::Matrix::from_rows(&rows);
        let g = m.gram();
        for i in 0..3 {
            prop_assert!(g[(i, i)] >= -1e-9, "diagonal must be nonnegative");
            for j in 0..3 {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    }
}
