//! Property-style tests on cross-crate invariants.
//!
//! Each test draws many random cases from the in-repo deterministic
//! [`Rng64`] (SplitMix64) instead of an external property-testing
//! framework, so the suite is hermetic and every failure is reproducible
//! from the fixed seeds below.

use autoai_ts_repro::linalg;
use autoai_ts_repro::linalg::{parallel_try_map_range, Rng64};
use autoai_ts_repro::transforms::{
    flatten_windows, localized_flatten_windows, normalized_flatten_windows, DifferenceTransform,
    LogTransform, MinMaxScaler, StandardScaler, Transform,
};
use autoai_ts_repro::tsdata::{
    rank_rows, reverse_allocation, smape, train_test_split, TimeSeriesFrame,
};

/// Cases per property — comparable coverage to the previous proptest setup.
const CASES: usize = 64;

fn finite_series(rng: &mut Rng64, max_len: usize) -> Vec<f64> {
    let len = rng.gen_range(4..max_len);
    (0..len).map(|_| rng.range_f64(-1e6, 1e6)).collect()
}

#[test]
fn smape_bounded_0_200() {
    let mut rng = Rng64::seed_from_u64(0x51AE);
    for _ in 0..CASES {
        let a = finite_series(&mut rng, 64);
        let shift = rng.range_f64(-100.0, 100.0);
        let b: Vec<f64> = a.iter().map(|v| v + shift).collect();
        let s = smape(&a, &b);
        assert!((0.0..=200.0 + 1e-9).contains(&s), "smape {s}");
    }
}

#[test]
fn smape_identity_is_zero() {
    let mut rng = Rng64::seed_from_u64(0x51AF);
    for _ in 0..CASES {
        let a = finite_series(&mut rng, 64);
        assert_eq!(smape(&a, &a), 0.0);
    }
}

#[test]
fn log_transform_roundtrip() {
    let mut rng = Rng64::seed_from_u64(0x10C);
    for _ in 0..CASES {
        let a = finite_series(&mut rng, 64);
        let frame = TimeSeriesFrame::univariate(a.clone());
        let mut t = LogTransform::new();
        let tr = t.fit_transform(&frame);
        let back = t.inverse_transform(&tr);
        for (x, y) in back.series(0).iter().zip(&a) {
            assert!((x - y).abs() < 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }
}

#[test]
fn scaler_roundtrips() {
    let mut rng = Rng64::seed_from_u64(0x5CA1E);
    for _ in 0..CASES {
        let a = finite_series(&mut rng, 64);
        for t in [
            &mut StandardScaler::new() as &mut dyn Transform,
            &mut MinMaxScaler::new(),
        ] {
            let frame = TimeSeriesFrame::univariate(a.clone());
            let tr = t.fit_transform(&frame);
            let back = t.inverse_transform(&tr);
            for (x, y) in back.series(0).iter().zip(&a) {
                assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()), "{x} vs {y}");
            }
        }
    }
}

#[test]
fn difference_forecast_integration_inverts() {
    let mut rng = Rng64::seed_from_u64(0xD1FF);
    for _ in 0..CASES {
        // differencing the tail of a continued series and re-integrating
        // must reproduce the continuation exactly
        let a = finite_series(&mut rng, 64);
        let frame = TimeSeriesFrame::univariate(a.clone());
        let mut t = DifferenceTransform::new();
        t.fit(&frame);
        // pretend the model perfectly predicted the next 3 differences
        let future = [1.5f64, -2.0, 0.25];
        let mut continued = a.clone();
        let mut last = continued[continued.len() - 1];
        for d in future {
            last += d;
            continued.push(last);
        }
        let restored = t.inverse_transform(&TimeSeriesFrame::univariate(future.to_vec()));
        for (r, c) in restored.series(0).iter().zip(&continued[a.len()..]) {
            assert!((r - c).abs() < 1e-9);
        }
    }
}

#[test]
fn window_shapes_are_consistent() {
    let mut rng = Rng64::seed_from_u64(0x717);
    for _ in 0..CASES {
        let a = finite_series(&mut rng, 128);
        let lookback = rng.gen_range(1..12);
        let horizon = rng.gen_range(1..6);
        let frame = TimeSeriesFrame::univariate(a.clone());
        let ds = flatten_windows(&frame, lookback, horizon);
        let expected = (a.len() + 1).saturating_sub(lookback + horizon);
        assert_eq!(ds.len(), expected);
        if !ds.is_empty() {
            assert_eq!(ds.x.ncols(), lookback);
            assert_eq!(ds.y.ncols(), horizon);
            // the first window is the series prefix
            for (k, &ak) in a.iter().enumerate().take(lookback) {
                assert_eq!(ds.x[(0, k)], ak);
            }
        }
    }
}

#[test]
fn normalized_windows_have_unit_anchor() {
    let mut rng = Rng64::seed_from_u64(0xA17C);
    for _ in 0..CASES {
        let len = rng.gen_range(16..64);
        let a: Vec<f64> = (0..len).map(|_| rng.range_f64(1.0, 1e4)).collect();
        let lookback = rng.gen_range(2..8);
        let frame = TimeSeriesFrame::univariate(a);
        let ds = normalized_flatten_windows(&frame, lookback, 1);
        for w in 0..ds.len() {
            // last value of every normalized window is 1 by construction
            assert!((ds.x[(w, lookback - 1)] - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn reverse_allocations_end_at_series_end() {
    let mut rng = Rng64::seed_from_u64(0x4E5E);
    for _ in 0..CASES {
        let len = rng.gen_range(1..500);
        let alloc = rng.gen_range(1..100);
        let max = rng.gen_range(1..10);
        let allocs = reverse_allocation(len, alloc, max);
        for (start, end) in &allocs {
            assert_eq!(
                *end, len,
                "every reverse allocation contains the most recent data"
            );
            assert!(start < end);
        }
        // sizes strictly increase until full coverage
        for w in allocs.windows(2) {
            assert!(w[1].1 - w[1].0 > w[0].1 - w[0].0);
        }
    }
}

#[test]
fn train_test_split_preserves_order_and_length() {
    let mut rng = Rng64::seed_from_u64(0x5917);
    for _ in 0..CASES {
        let a = finite_series(&mut rng, 128);
        let frac = rng.next_f64();
        let frame = TimeSeriesFrame::univariate(a.clone());
        let (tr, te) = train_test_split(&frame, frac);
        assert_eq!(tr.len() + te.len(), a.len());
        let rejoined: Vec<f64> = tr.series(0).iter().chain(te.series(0)).copied().collect();
        assert_eq!(rejoined, a);
    }
}

#[test]
fn rank_rows_is_a_permutation_average() {
    let mut rng = Rng64::seed_from_u64(0x4A4C);
    for _ in 0..CASES {
        let len = rng.gen_range(2..10);
        let scores: Vec<f64> = (0..len).map(|_| rng.range_f64(0.0, 100.0)).collect();
        let wrapped: Vec<Option<f64>> = scores.iter().map(|&s| Some(s)).collect();
        let ranks = rank_rows(&wrapped);
        let sum: f64 = ranks.iter().filter_map(|r| *r).sum();
        let n = scores.len() as f64;
        // ranks always sum to n(n+1)/2 whether or not there are ties
        assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }
}

// ---- transform round-trips under the executor path --------------------
//
// The three tests below run their random cases through
// `parallel_try_map_range` — the same work queue the T-Daub executor uses —
// so the invariants are exercised on worker threads, each case seeded
// independently for reproducibility. A `None`/`Err` slot would mean a
// worker panicked; the asserts inside run on the worker, the outer unwrap
// surfaces any failure message.

/// Per-case RNG: independent of case order, stable across thread counts.
fn case_rng(base: u64, case: usize) -> Rng64 {
    Rng64::seed_from_u64(base.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

#[test]
fn flatten_windows_reconstruct_the_series() {
    let outcomes = parallel_try_map_range(CASES, |case| {
        let mut rng = case_rng(0xF1A7, case);
        let n_series = rng.gen_range(1..4);
        let len = rng.gen_range(8..96);
        let cols: Vec<Vec<f64>> = (0..n_series)
            .map(|_| (0..len).map(|_| rng.range_f64(-1e3, 1e3)).collect())
            .collect();
        let lookback = rng.gen_range(1..6);
        let horizon = rng.gen_range(1..4);
        let frame = TimeSeriesFrame::from_columns(cols.clone());
        let ds = flatten_windows(&frame, lookback, horizon);
        // every feature and target cell must be an exact copy of the
        // original series value at its window offset — together the
        // windows reconstruct the series
        for w in 0..ds.len() {
            for (c, col) in cols.iter().enumerate() {
                for k in 0..lookback {
                    let got = ds.x[(w, c * lookback + k)];
                    let want = col[w + k];
                    assert!((got - want).abs() < 1e-9, "x[{w},{c},{k}]: {got} vs {want}");
                }
                for k in 0..horizon {
                    let got = ds.y[(w, c * horizon + k)];
                    let want = col[w + lookback + k];
                    assert!((got - want).abs() < 1e-9, "y[{w},{c},{k}]: {got} vs {want}");
                }
            }
        }
    });
    for (case, r) in outcomes.into_iter().enumerate() {
        r.unwrap_or_else(|p| panic!("case {case}: {p}"));
    }
}

#[test]
fn localized_flatten_matches_joint_flatten_slices() {
    let outcomes = parallel_try_map_range(CASES, |case| {
        let mut rng = case_rng(0x10CA, case);
        let n_series = rng.gen_range(2..5);
        let len = rng.gen_range(10..64);
        let cols: Vec<Vec<f64>> = (0..n_series)
            .map(|_| (0..len).map(|_| rng.range_f64(-1e3, 1e3)).collect())
            .collect();
        let lookback = rng.gen_range(1..5);
        let horizon = rng.gen_range(1..3);
        let frame = TimeSeriesFrame::from_columns(cols);
        let joint = flatten_windows(&frame, lookback, horizon);
        let local = localized_flatten_windows(&frame, lookback, horizon);
        assert_eq!(local.len(), n_series);
        // each per-series dataset must equal the matching column block of
        // the joint dataset — two different code paths, same windows
        for (c, ds) in local.iter().enumerate() {
            assert_eq!(ds.len(), joint.len());
            for w in 0..ds.len() {
                for k in 0..lookback {
                    let a = ds.x[(w, k)];
                    let b = joint.x[(w, c * lookback + k)];
                    assert!((a - b).abs() < 1e-9, "x[{w},{k}] series {c}: {a} vs {b}");
                }
                for k in 0..horizon {
                    let a = ds.y[(w, k)];
                    let b = joint.y[(w, c * horizon + k)];
                    assert!((a - b).abs() < 1e-9, "y[{w},{k}] series {c}: {a} vs {b}");
                }
            }
        }
    });
    for (case, r) in outcomes.into_iter().enumerate() {
        r.unwrap_or_else(|p| panic!("case {case}: {p}"));
    }
}

#[test]
fn difference_inverse_reconstructs_forecasts_orders_1_to_3() {
    let outcomes = parallel_try_map_range(CASES, |case| {
        let mut rng = case_rng(0xD1FF2, case);
        for order in 1..=3usize {
            let len = rng.gen_range(order + 4..64);
            let train: Vec<f64> = (0..len).map(|_| rng.range_f64(-1e3, 1e3)).collect();
            let future: Vec<f64> = (0..rng.gen_range(1..6))
                .map(|_| rng.range_f64(-1e3, 1e3))
                .collect();
            let mut continued = train.clone();
            continued.extend_from_slice(&future);

            let mut t = DifferenceTransform::with_order(order);
            t.fit(&TimeSeriesFrame::univariate(train.clone()));
            // the model's "perfect forecast" in difference space: the last
            // `future.len()` entries of the order-d differences of the
            // continued series
            let diffs = t.transform(&TimeSeriesFrame::univariate(continued.clone()));
            let d = diffs.series(0);
            let tail = &d[d.len() - future.len()..];
            let restored = t.inverse_transform(&TimeSeriesFrame::univariate(tail.to_vec()));
            for (r, c) in restored.series(0).iter().zip(&future) {
                assert!(
                    (r - c).abs() < 1e-9 * (1.0 + c.abs()),
                    "order {order}: {r} vs {c}"
                );
            }
        }
    });
    for (case, r) in outcomes.into_iter().enumerate() {
        r.unwrap_or_else(|p| panic!("case {case}: {p}"));
    }
}

#[test]
fn pacf_bounded() {
    let mut rng = Rng64::seed_from_u64(0xFACF);
    for _ in 0..CASES {
        let a = finite_series(&mut rng, 128);
        let pacf = linalg::partial_autocorrelation(&a, 8);
        for (k, v) in pacf.iter().enumerate().skip(1) {
            assert!(v.abs() <= 1.0 + 1e-6, "pacf[{k}] = {v}");
        }
    }
}

#[test]
fn matrix_gram_is_symmetric_psd_diag() {
    let mut rng = Rng64::seed_from_u64(0x96A6);
    for _ in 0..CASES {
        let nrows = rng.gen_range(3..10);
        let rows: Vec<Vec<f64>> = (0..nrows)
            .map(|_| (0..3).map(|_| rng.range_f64(-100.0, 100.0)).collect())
            .collect();
        let m = linalg::Matrix::from_rows(&rows);
        let g = m.gram();
        for i in 0..3 {
            assert!(g[(i, i)] >= -1e-9, "diagonal must be nonnegative");
            for j in 0..3 {
                assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    }
}
