//! Error-path tests: degenerate inputs must surface as typed `Err` values
//! or well-defined sentinels — never as panics. These pin the panic-freedom
//! contract that `cargo run -p xtask -- check` enforces statically.

use autoai_ts_repro::linalg::{cholesky, cholesky_solve, lstsq, solve_linear, Matrix, SolveError};
use autoai_ts_repro::lookback::{discover_univariate, LookbackConfig};
use autoai_ts_repro::pipelines::{Forecaster, ZeroModelPipeline};
use autoai_ts_repro::tdaub::{run_tdaub, TDaubConfig};
use autoai_ts_repro::transforms::{BoxCoxTransform, Transform};
use autoai_ts_repro::tsdata::{mape, smape, TimeSeriesFrame};

#[test]
fn cholesky_rejects_non_psd() {
    // negative-definite diagonal: not PSD
    let a = Matrix::from_rows(&[vec![-1.0, 0.0], vec![0.0, -2.0]]);
    assert!(matches!(cholesky(&a), Err(SolveError::Singular)));
    // indefinite (saddle) matrix
    let b = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
    assert!(matches!(cholesky(&b), Err(SolveError::Singular)));
}

#[test]
fn cholesky_rejects_singular_and_shape_mismatch() {
    // rank-1 (singular) Gram matrix
    let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
    assert!(matches!(cholesky(&a), Err(SolveError::Singular)));
    // non-square input
    let r = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
    assert!(matches!(cholesky(&r), Err(SolveError::DimensionMismatch)));
    // rhs length mismatch
    let spd = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 2.0]]);
    assert!(matches!(
        cholesky_solve(&spd, &[1.0, 2.0, 3.0]),
        Err(SolveError::DimensionMismatch)
    ));
}

#[test]
fn solvers_reject_singular_systems() {
    let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
    assert!(solve_linear(&a, &[1.0, 2.0]).is_err());
    // rank-deficient least squares: column 2 = 2 * column 1
    let x = Matrix::from_rows(&[
        vec![1.0, 2.0],
        vec![2.0, 4.0],
        vec![3.0, 6.0],
        vec![4.0, 8.0],
    ]);
    // must not panic: either a typed error or a (ridge-regularized) solution
    match lstsq(&x, &[1.0, 2.0, 3.0, 4.0]) {
        Ok(beta) => assert!(beta.iter().all(|b| b.is_finite())),
        Err(e) => {
            let _ = e.to_string();
        }
    }
}

#[test]
fn metrics_on_all_zero_targets_are_finite() {
    let zeros = vec![0.0; 16];
    let pred = vec![0.0; 16];
    // both zero → 0 contribution per the paper's SMAPE convention
    assert_eq!(smape(&zeros, &pred), 0.0);
    // zero actual, nonzero forecast → bounded at 200, never NaN/∞
    let nonzero = vec![3.0; 16];
    let s = smape(&zeros, &nonzero);
    assert!(s.is_finite());
    assert!((s - 200.0).abs() < 1e-9, "smape {s}");
    // MAPE skips zero-actual samples entirely: all-zero target → sentinel 0
    assert_eq!(mape(&zeros, &nonzero), 0.0);
    assert!(mape(&zeros, &zeros).is_finite());
}

#[test]
fn box_cox_handles_non_positive_series() {
    // negative and zero values: fit must shift, transform must stay finite
    let frame = TimeSeriesFrame::univariate(vec![-5.0, -1.0, 0.0, 2.0, 7.0, -3.0, 4.0, 0.0]);
    let mut t = BoxCoxTransform::new();
    let tr = t.fit_transform(&frame);
    assert!(tr.series(0).iter().all(|v| v.is_finite()));
    let back = t.inverse_transform(&tr);
    for (b, o) in back.series(0).iter().zip(frame.series(0)) {
        assert!((b - o).abs() < 1e-3 * (1.0 + o.abs()), "{b} vs {o}");
    }
    // all-constant non-positive series: likelihood is degenerate but fit
    // must still produce finite output
    let flat = TimeSeriesFrame::univariate(vec![-2.0; 12]);
    let mut t2 = BoxCoxTransform::new();
    let tr2 = t2.fit_transform(&flat);
    assert!(tr2.series(0).iter().all(|v| v.is_finite()));
}

#[test]
fn lookback_discovery_on_constant_series() {
    // constant series: flat spectrum, no zero crossings — discovery must
    // still return at least one candidate without panicking
    let flat = vec![7.0; 256];
    let cands = discover_univariate(&flat, None, &LookbackConfig::default());
    assert!(!cands.is_empty());
    assert!(cands.iter().all(|&c| c >= 1));
    // near-empty series
    let tiny = vec![1.0, 1.0, 1.0];
    assert!(!discover_univariate(&tiny, None, &LookbackConfig::default()).is_empty());
}

#[test]
fn tdaub_rejects_empty_pipeline_pool() {
    let data = TimeSeriesFrame::univariate((0..100).map(|i| i as f64).collect());
    let err = run_tdaub(Vec::new(), &data, &TDaubConfig::default());
    assert!(
        err.is_err(),
        "empty pool must be a typed error, not a panic"
    );
}

#[test]
fn tdaub_on_constant_series_does_not_panic() {
    let data = TimeSeriesFrame::univariate(vec![5.0; 120]);
    let pool: Vec<Box<dyn Forecaster>> = vec![Box::new(ZeroModelPipeline::new())];
    let cfg = TDaubConfig {
        parallel: false,
        ..Default::default()
    };
    let res = run_tdaub(pool, &data, &cfg);
    assert!(res.is_ok(), "constant series must select without panicking");
}
