//! Look-back window discovery (§4.1) walkthrough: timestamp assessment,
//! zero crossings, spectral analysis, influence ranking, and the
//! multivariate cap rule.
//!
//! Run with: `cargo run --release --example lookback_discovery`

use autoai_ts_repro::lookback::{
    discover_multivariate, discover_univariate, seasonal_periods, spectral_lookback,
    zero_crossing_lookback, LookbackConfig, MultivariateMode,
};
use autoai_ts_repro::tsdata::{infer_frequency, TimeSeriesFrame};

fn main() {
    // weekly retail pattern on daily timestamps
    let weekly = [100.0, 80.0, 75.0, 82.0, 110.0, 160.0, 140.0];
    let values: Vec<f64> = (0..365).map(|i| weekly[i % 7]).collect();
    let timestamps: Vec<i64> = (0..365i64).map(|i| 1_577_836_800 + i * 86_400).collect();

    // 1. timestamp-index assessment
    let freq = infer_frequency(&timestamps).expect("regular timestamps");
    println!("inferred frequency      : {}", freq.code());
    println!("Table 1 seasonal periods: {:?}", seasonal_periods(freq));

    // 2. value-index assessment
    println!(
        "zero-crossing estimate  : {:?}",
        zero_crossing_lookback(&values)
    );
    for period in seasonal_periods(freq) {
        if period < values.len() {
            println!(
                "spectral estimate (≤{period:>3}): {:?}",
                spectral_lookback(&values, period)
            );
        }
    }

    // 3. full discovery with influence ranking
    let config = LookbackConfig::default();
    let discovered = discover_univariate(&values, Some(&timestamps), &config);
    println!("ranked look-backs       : {discovered:?} (expect 7 near the front)");

    // 4. multivariate: ten series → the cap rule limits flattened width
    let cols: Vec<Vec<f64>> = (0..10)
        .map(|c| {
            (0..365)
                .map(|i| weekly[(i + c) % 7] * (1.0 + c as f64 * 0.1))
                .collect()
        })
        .collect();
    let frame = TimeSeriesFrame::from_columns(cols).with_timestamps(timestamps);
    let capped = discover_multivariate(
        &frame,
        &LookbackConfig {
            max_look_back: Some(40),
            ..Default::default()
        },
        MultivariateMode::Cap,
    );
    println!(
        "multivariate (10 series, max_look_back 40): {capped:?} \
         (values capped so lw x 10 <= 40)"
    );
}
