//! Multivariate cloud-telemetry forecasting with dirty data.
//!
//! The paper's motivating domains include "cloud application and service
//! monitoring data" (§1); this example runs the zero-conf system on a
//! multivariate telemetry frame containing NaN gaps, demonstrates the
//! automatic quality check + cleaning, and round-trips the data through
//! CSV the way the paper's container benchmark reads from disk.
//!
//! Run with: `cargo run --release --example cloud_monitoring`

use autoai_ts_repro::core_ts::AutoAITS;
use autoai_ts_repro::datasets::{load_csv, multivariate_catalog, save_csv};

fn main() {
    // the "cloud" stand-in from Table 2 (proprietary source → simulated)
    let entry = multivariate_catalog()
        .into_iter()
        .find(|e| e.name == "cloud")
        .expect("catalog");
    let mut frame = entry.generate(5);
    println!(
        "dataset {}: {} samples x {} series",
        entry.name,
        frame.len(),
        frame.n_series()
    );

    // telemetry pipelines drop points: punch NaN holes into two series
    for &idx in &[100usize, 101, 102, 500, 900] {
        frame.series_mut(0)[idx] = f64::NAN;
        frame.series_mut(2)[idx] = f64::NAN;
    }

    // round-trip through CSV (the benchmarking framework's disk interface)
    let path = std::env::temp_dir().join("autoai_cloud_example.csv");
    save_csv(&frame, &path).expect("save csv");
    let loaded = load_csv(&path).expect("load csv");
    std::fs::remove_file(&path).ok();
    println!(
        "csv round-trip: {} rows, {} series",
        loaded.len(),
        loaded.n_series()
    );

    let mut system = AutoAITS::new();
    system.fit(&loaded).expect("fit despite NaN gaps");
    let summary = system.summary().expect("fitted");
    println!(
        "\nquality check found {} issue(s), including {} missing cells (auto-interpolated)",
        summary.quality.issues.len(),
        summary.quality.missing_count
    );
    println!("selected pipeline: {}", summary.best_pipeline);
    println!("holdout SMAPE    : {:.2}", summary.holdout_smape);

    let forecast = system.predict(12).expect("predict");
    println!(
        "\nnext 12 steps (all {} telemetry series):",
        forecast.n_series()
    );
    for h in 0..forecast.len() {
        let row: Vec<String> = forecast
            .row(h)
            .iter()
            .map(|v| format!("{v:>8.2}"))
            .collect();
        println!("  t+{:<2} {}", h + 1, row.join(" "));
    }
}
