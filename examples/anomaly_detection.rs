//! Anomaly detection on forecast residuals — the §6 future-work extension.
//!
//! Flow: select a pipeline with the zero-conf system, then wrap the same
//! pipeline class in a [`ResidualDetector`] to monitor the series. The
//! model-based detector stays quiet on seasonal peaks that a plain rolling
//! z-score would flag, and fires only on genuine departures.
//!
//! Run with: `cargo run --release --example anomaly_detection`

use autoai_ts_repro::anomaly::{ResidualDetector, RollingZScoreDetector};
use autoai_ts_repro::core_ts::{AutoAITS, AutoAITSConfig, PipelineContext};
use autoai_ts_repro::pipelines::pipeline_by_name;

fn main() {
    // strong weekly seasonality with two injected incidents
    let mut values: Vec<f64> = (0..400)
        .map(|i| 100.0 + 40.0 * (2.0 * std::f64::consts::PI * i as f64 / 7.0).sin())
        .collect();
    values[250] += 120.0; // incident 1: spike
    values[320] -= 110.0; // incident 2: dip

    // 1. let the zero-conf system choose a model family for this data
    let mut system = AutoAITS::with_config(AutoAITSConfig {
        pipeline_names: Some(vec!["MT2RForecaster".into(), "HW-Additive".into()]),
        ..Default::default()
    });
    system
        .fit(&autoai_ts_repro::tsdata::TimeSeriesFrame::univariate(
            values.clone(),
        ))
        .expect("fit");
    let chosen = system.best_pipeline_name().unwrap();
    println!("zero-conf selected pipeline: {chosen}");

    // 2. model-based residual detector built from the same pipeline class
    let ctx = PipelineContext::new(7, 7, vec![7]);
    let prototype = pipeline_by_name(&chosen, &ctx)
        .unwrap_or_else(|| pipeline_by_name("MT2RForecaster", &ctx).unwrap());
    let detector = ResidualDetector::new(prototype, 6.0);
    let model_hits = detector.detect(&values);
    println!("\nmodel-based detector ({} hits):", model_hits.len());
    for a in &model_hits {
        println!(
            "  t={:<4} value {:>8.1}  expected {:>8.1}  z = {:+.1}",
            a.index, a.value, a.expected, a.score
        );
    }

    // 3. contrast with a model-free rolling z-score at the same strictness
    let naive_hits = RollingZScoreDetector::new(14, 6.0).detect(&values);
    println!(
        "\nrolling z-score at the same threshold: {} hits (no model → the \
         seasonal swings inflate its variance estimate)",
        naive_hits.len()
    );
    println!(
        "\nthe model-based detector should flag exactly t=250 and t=320; \
         found: {:?}",
        model_hits.iter().map(|a| a.index).collect::<Vec<_>>()
    );
}
