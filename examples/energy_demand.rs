//! Energy-demand forecasting: the workload class the paper's largest
//! benchmarks come from (PJM hourly load, Table 4 rows 52–62).
//!
//! Demonstrates horizon sweeps (the paper varies horizon 6..30 in steps of
//! 6, §5.3) and comparison against the Zero Model baseline.
//!
//! Run with: `cargo run --release --example energy_demand`

use autoai_ts_repro::core_ts::{AutoAITS, AutoAITSConfig};
use autoai_ts_repro::datasets::univariate_catalog;
use autoai_ts_repro::tsdata::{holdout_split, smape};

fn main() {
    // the PJME-MW stand-in: hourly load with daily+weekly seasonality
    let entry = univariate_catalog()
        .into_iter()
        .find(|e| e.name == "PJME-MW")
        .expect("catalog");
    let frame = entry.generate(3);
    println!(
        "dataset {} ({} samples, scaled from {})",
        entry.name,
        frame.len(),
        entry.original_len
    );

    let (train, holdout) = holdout_split(&frame, frame.len() / 5);

    println!(
        "\n{:>8} {:>14} {:>14} {:>20}",
        "horizon", "autoai smape", "zero smape", "selected pipeline"
    );
    for horizon in [6usize, 12, 18, 24, 30] {
        let mut system = AutoAITS::with_config(AutoAITSConfig {
            horizon,
            ..Default::default()
        });
        system.fit(&train).expect("fit");
        let truth = holdout.slice(0, horizon);

        let pred = system.predict(horizon).expect("predict");
        let auto_smape = smape(truth.series(0), pred.series(0));

        let zero = system.predict_zero_model(horizon).expect("zero model");
        let zero_smape = smape(truth.series(0), zero.series(0));

        println!(
            "{horizon:>8} {auto_smape:>14.2} {zero_smape:>14.2} {:>20}",
            system.best_pipeline_name().unwrap()
        );
    }
    println!("\n(the selected pipeline should beat the repeat-last-value Zero Model)");
}
