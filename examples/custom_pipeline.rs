//! Extending the system: add your own pipeline to the pool and let T-Daub
//! rank it against the built-ins.
//!
//! §4: "The system is designed to incorporate any other type of model
//! family without requiring any changes to the system as long as the new
//! models implement the common APIs". This example implements a custom
//! seasonal-median forecaster against the `Forecaster` trait and runs
//! T-Daub directly over a mixed pool.
//!
//! Run with: `cargo run --release --example custom_pipeline`

use autoai_ts_repro::pipelines::{default_pipelines, Forecaster, PipelineContext, PipelineError};
use autoai_ts_repro::tdaub::{run_tdaub, TDaubConfig};
use autoai_ts_repro::tsdata::TimeSeriesFrame;

/// A custom pipeline: forecast the per-phase *median* of a known season —
/// robust to outliers in a way the built-in mean-based models are not.
struct SeasonalMedian {
    period: usize,
    tables: Vec<Vec<f64>>,
    n: usize,
}

impl SeasonalMedian {
    fn new(period: usize) -> Self {
        Self {
            period,
            tables: Vec::new(),
            n: 0,
        }
    }
}

impl Forecaster for SeasonalMedian {
    fn fit(&mut self, frame: &TimeSeriesFrame) -> Result<(), PipelineError> {
        if frame.len() < 2 * self.period {
            return Err(PipelineError::InvalidInput("need two full seasons".into()));
        }
        self.n = frame.len();
        self.tables = (0..frame.n_series())
            .map(|c| {
                let s = frame.series(c);
                (0..self.period)
                    .map(|phase| {
                        let vals: Vec<f64> =
                            s.iter().skip(phase).step_by(self.period).copied().collect();
                        autoai_ts_repro::linalg::median(&vals)
                    })
                    .collect()
            })
            .collect();
        Ok(())
    }

    fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
        if self.tables.is_empty() {
            return Err(PipelineError::NotFitted);
        }
        let cols: Vec<Vec<f64>> = self
            .tables
            .iter()
            .map(|table| {
                (0..horizon)
                    .map(|h| table[(self.n + h) % self.period])
                    .collect()
            })
            .collect();
        Ok(TimeSeriesFrame::from_columns(cols))
    }

    fn name(&self) -> String {
        format!("SeasonalMedian({})", self.period)
    }

    fn clone_unfitted(&self) -> Box<dyn Forecaster> {
        Box::new(Self::new(self.period))
    }
}

fn main() {
    // a seasonal signal with heavy outliers: the robust custom pipeline's
    // natural habitat
    let pattern = [10.0, 30.0, 55.0, 70.0, 55.0, 30.0, 10.0, 5.0];
    let data: Vec<f64> = (0..400)
        .map(|i| {
            let outlier = if i % 37 == 0 { 300.0 } else { 0.0 };
            pattern[i % 8] + outlier
        })
        .collect();
    let frame = TimeSeriesFrame::univariate(data);

    // mixed pool: the 10 defaults + the custom pipeline
    let ctx = PipelineContext::new(8, 12, vec![8]);
    let mut pool = default_pipelines(&ctx);
    pool.push(Box::new(SeasonalMedian::new(8)));
    println!("pool: {} pipelines (10 built-in + 1 custom)", pool.len());

    let result = run_tdaub(pool, &frame, &TDaubConfig::default()).expect("tdaub");
    println!("\nT-Daub ranking:");
    for r in &result.reports {
        println!(
            "  #{:<2} {:<36} projected {:>10.2}  evaluations {}",
            r.rank,
            r.name,
            r.projected_score,
            r.scores.len()
        );
    }
    println!("\nwinner: {}", result.best.name());
    let f = result.best.predict(8).expect("predict");
    println!(
        "one season ahead: {:?}",
        f.series(0)
            .iter()
            .map(|v| (v * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
}
