//! Quickstart: the zero-configuration path.
//!
//! Drop a 2-D array in (rows = samples, columns = series), call `fit`,
//! get forecasts — the paper's §1 promise: "the user simply drops-in their
//! data set and the system transparently performs all the complex tasks".
//!
//! Run with: `cargo run --release --example quickstart`

use autoai_ts_repro::core_ts::{AutoAITS, LogProgress};
use std::sync::Arc;

fn main() {
    // monthly airline-style data: trend + multiplicative seasonality
    let data: Vec<Vec<f64>> = (0..240)
        .map(|i| {
            let t = i as f64;
            let trend = 100.0 + 2.0 * t;
            let season = 1.0 + 0.3 * (2.0 * std::f64::consts::PI * t / 12.0).sin();
            vec![trend * season]
        })
        .collect();

    // zero-conf: no look-back, no model choice, no parameters
    let mut system = AutoAITS::new().with_progress(Arc::new(LogProgress));
    system.fit_rows(&data).expect("fit");

    let summary = system.summary().expect("fitted");
    println!("\nselected pipeline : {}", summary.best_pipeline);
    println!("look-back window  : {}", summary.lookback);
    println!("holdout SMAPE     : {:.2}", summary.holdout_smape);
    println!("fit wall-clock    : {:.1}s", summary.fit_seconds);

    println!("\npipeline ranking (T-Daub):");
    for r in &summary.reports {
        println!(
            "  #{:<2} {:<36} projected {:>8.2}  final {}",
            r.rank,
            r.name,
            r.projected_score,
            r.final_score.map_or("-".to_string(), |s| format!("{s:.2}"))
        );
    }

    let forecast = system.predict_rows(12).expect("predict");
    println!("\nnext 12 months:");
    for (h, row) in forecast.iter().enumerate() {
        println!("  t+{:<2} {:>10.1}", h + 1, row[0]);
    }
}
