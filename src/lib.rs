//! Umbrella crate for the AutoAI-TS reproduction: re-exports every
//! sub-crate so examples and integration tests have a single import root.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use autoai_anomaly as anomaly;
pub use autoai_chaos as chaos;
pub use autoai_datasets as datasets;
pub use autoai_linalg as linalg;
pub use autoai_lookback as lookback;
pub use autoai_ml_models as ml_models;
pub use autoai_neural as neural;
pub use autoai_pipelines as pipelines;
pub use autoai_sota as sota;
pub use autoai_stat_models as stat_models;
pub use autoai_tdaub as tdaub;
pub use autoai_transforms as transforms;
pub use autoai_ts as core_ts;
pub use autoai_tsdata as tsdata;
