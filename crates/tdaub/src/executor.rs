//! Fault-isolated, budgeted execution engine for T-Daub.
//!
//! T-Daub's promise (§4.2) is that many heterogeneous pipelines can be
//! ranked cheaply **and safely**. The executor provides the safety half:
//! every pipeline `fit` + `score` on a data allocation runs as an isolated
//! unit of work with
//!
//! * **panic isolation** — a panic deep inside a model is caught
//!   (`catch_unwind`, plus a second net inside the parallel work queue),
//!   converted into the typed [`PipelineError::Crashed`], and the pipeline
//!   is quarantined instead of the whole run aborting;
//! * **a per-pipeline soft time budget** — a cooperative deadline over the
//!   pipeline's cumulative wall time, checked between allocations; a
//!   pipeline that blows its budget stops receiving data and is recorded as
//!   [`FailureKind::TimedOut`];
//! * **typed failure accounting** — every pipeline's wall time, allocation
//!   count, and failure (if any) land in an [`ExecutionReport`] that the
//!   orchestrator surfaces through `core::Progress` and `FitSummary`.
//!
//! Parallel rounds run on `autoai_linalg::parallel_try_map_mut`, a shared
//! work queue: workers pull pipelines dynamically, so one slow BATS fit no
//! longer serializes a whole contiguous chunk of cheap evaluations behind
//! it. Serial and parallel modes execute the identical per-pipeline
//! evaluation sequence, so rankings are order-independent and reproducible.
//!
//! On top of the safety policy the executor carries the performance layer:
//! a shared [`TransformCache`] is re-attached to every pipeline before each
//! unit of work, so pipelines with the same look-back reuse flattened
//! design matrices within a fixed-allocation round; under reverse
//! allocations a candidate whose previous fit is a suffix of the next
//! allocation is offered a [`Forecaster::fit_incremental`] warm start; and
//! every successful fit+score unit is memoized per candidate, keyed by the
//! allocation slice's [`FrameFingerprint`] — re-evaluating a bitwise
//! identical allocation (the acceleration→scoring phase boundary, or a
//! stalled acceleration step) replays the recorded score instead of
//! refitting. All of it is instrumented (cache counters, warm-start count,
//! fits avoided, duplicate fits, bytes the zero-copy allocation views
//! avoided) in the [`ExecutionReport`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use autoai_linalg::{parallel_try_map_mut, simple_linreg, WorkerPanic};
use autoai_pipelines::{Forecaster, PipelineError};
use autoai_transforms::{CacheStats, TransformCache};
use autoai_tsdata::{FrameFingerprint, Metric, TimeSeriesFrame};

/// Why a pipeline was removed from the candidate pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The pipeline panicked; the payload message is preserved.
    Crashed(String),
    /// Every allocation ended in a typed error (last message preserved).
    Errored(String),
    /// The pipeline exceeded its per-pipeline soft time budget.
    TimedOut,
    /// The pipeline ran but never produced a finite score (NaN/∞).
    NonFinite,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Crashed(m) => write!(f, "crashed: {m}"),
            FailureKind::Errored(m) => write!(f, "errored: {m}"),
            FailureKind::TimedOut => write!(f, "timed out"),
            FailureKind::NonFinite => write!(f, "produced no finite score"),
        }
    }
}

/// Execution accounting for one pipeline across the whole T-Daub run.
#[derive(Debug, Clone)]
pub struct PipelineExecution {
    /// Pipeline display name.
    pub name: String,
    /// Cumulative wall time spent in this pipeline's fit/score calls.
    pub wall_time: Duration,
    /// Number of allocations attempted (including failed ones).
    pub allocations: usize,
    /// Why the pipeline left the pool; `None` for survivors.
    pub failure: Option<FailureKind>,
}

/// Per-run execution report: one entry per pipeline in the original pool.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Accounting entries, in original pool order.
    pub pipelines: Vec<PipelineExecution>,
    /// Shared transform-cache counters for the run (all zeros when the
    /// cache was disabled).
    pub cache: CacheStats,
    /// Successful `fit_incremental` warm starts across the pool.
    pub incremental_fits: u64,
    /// Fit+score units served from the per-candidate fingerprint memo
    /// instead of refitting bitwise-identical data (cross-round and across
    /// the acceleration→scoring phase boundary).
    pub fits_avoided: u64,
    /// Executed fits whose allocation fingerprint the same candidate had
    /// already fitted successfully — structurally zero while the memo is
    /// active; asserted zero by the bench smoke mode.
    pub duplicate_fits: u64,
    /// Bytes of frame data the zero-copy allocation views avoided copying
    /// (each unit of work used to materialize its allocation slice).
    pub slice_bytes_avoided: u64,
}

impl ExecutionReport {
    /// Entries for pipelines that failed (crashed/errored/timed out/NaN).
    pub fn failures(&self) -> impl Iterator<Item = &PipelineExecution> {
        self.pipelines.iter().filter(|p| p.failure.is_some())
    }

    /// Number of pipelines that survived to the final ranking.
    pub fn survivors(&self) -> usize {
        self.pipelines
            .iter()
            .filter(|p| p.failure.is_none())
            .count()
    }

    /// Total allocations attempted across the pool.
    pub fn total_allocations(&self) -> usize {
        self.pipelines.iter().map(|p| p.allocations).sum()
    }

    /// Entry for a pipeline by display name.
    pub fn find(&self, name: &str) -> Option<&PipelineExecution> {
        self.pipelines.iter().find(|p| p.name == name)
    }
}

/// Internal per-pipeline state during a T-Daub run.
pub(crate) struct Candidate {
    pub pipeline: Box<dyn Forecaster>,
    pub name: String,
    /// `(allocation length, score)` pairs; failed units record `+inf`.
    pub scores: Vec<(usize, f64)>,
    pub projected: f64,
    pub final_score: Option<f64>,
    pub train_time: Duration,
    pub allocations: usize,
    /// Why the executor removed this candidate; `None` while in the pool.
    pub failure: Option<FailureKind>,
    /// Most recent non-crash failure signal, for end-of-run classification.
    pub last_error: Option<FailureKind>,
    /// Rows of the last successful `fit` on this candidate's pipeline
    /// (0 = no valid fitted state). Drives the warm-start eligibility test:
    /// under reverse allocations the previous fit's slice is the trailing
    /// suffix of every later, larger allocation.
    pub last_fit_rows: usize,
    /// Per-run fit+score memo: `(allocation fingerprint, score)` for every
    /// unit that fit and scored finitely. Equal fingerprints mean the same
    /// buffers and the same window — bitwise-identical input — so replaying
    /// the deterministic score is exact and the memo stays on even in the
    /// uncached comparison modes.
    pub memo: Vec<(FrameFingerprint, f64)>,
    /// Fingerprints of every allocation this candidate's pipeline
    /// successfully fitted (superset of `memo`'s keys: includes fits whose
    /// score came out non-finite). Used to count duplicate fits.
    pub fitted_fps: Vec<FrameFingerprint>,
}

impl Candidate {
    pub fn new(pipeline: Box<dyn Forecaster>) -> Self {
        Candidate {
            name: pipeline.name(),
            pipeline,
            scores: Vec::new(),
            projected: f64::INFINITY,
            final_score: None,
            train_time: Duration::ZERO,
            allocations: 0,
            failure: None,
            last_error: None,
            last_fit_rows: 0,
            memo: Vec::new(),
            fitted_fps: Vec::new(),
        }
    }

    /// Still in the pool (not crashed / timed out / classified failed).
    pub fn alive(&self) -> bool {
        self.failure.is_none()
    }

    /// Has at least one finite observed score.
    pub fn has_signal(&self) -> bool {
        self.scores.iter().any(|(_, s)| s.is_finite())
    }

    /// Largest allocation with a finite score, if any.
    pub fn best_finite_alloc(&self) -> Option<usize> {
        self.scores
            .iter()
            .filter(|(_, s)| s.is_finite())
            .map(|&(a, _)| a)
            .max()
    }

    /// Project the learning curve to `full_len` (linear regression on the
    /// finite partial scores, clamped at the metric's lower bound).
    pub fn project(&mut self, full_len: usize, use_projection: bool, metric: Metric) {
        let ok: Vec<(usize, f64)> = self
            .scores
            .iter()
            .filter(|(_, s)| s.is_finite())
            .copied()
            .collect();
        if ok.is_empty() {
            self.projected = f64::INFINITY;
            return;
        }
        // a full-length observation is ground truth; no projection needed
        if let Some(&(_, s)) = ok.iter().rev().find(|&&(alloc, _)| alloc >= full_len) {
            self.projected = s;
            return;
        }
        if !use_projection || ok.len() == 1 {
            // `ok` is non-empty: the is_empty branch above already returned
            self.projected = ok.last().map_or(f64::INFINITY, |&(_, s)| s);
            return;
        }
        let t: Vec<f64> = ok.iter().map(|(l, _)| *l as f64).collect();
        let y: Vec<f64> = ok.iter().map(|(_, s)| *s).collect();
        let (a, b) = simple_linreg(&t, &y);
        let mut projected = a + b * full_len as f64;
        // SMAPE/MAE/RMSE/MAPE are bounded below by 0 — an extrapolated
        // learning curve must not cross that floor, or a mediocre pipeline
        // with a steep partial-score slope outranks a near-perfect one
        if !metric.higher_is_better() {
            projected = projected.max(0.0);
        }
        self.projected = projected;
    }

    /// End-of-run classification: a candidate that is still nominally alive
    /// but never produced a finite score becomes a typed failure.
    pub fn finalize_failure(&mut self) {
        if self.failure.is_none() && !self.has_signal() {
            self.failure = Some(match self.last_error.take() {
                Some(kind) => kind,
                None => FailureKind::Errored("produced no score on any allocation".into()),
            });
        }
    }

    fn execution_entry(&self) -> PipelineExecution {
        PipelineExecution {
            name: self.name.clone(),
            wall_time: self.train_time,
            allocations: self.allocations,
            failure: self.failure.clone(),
        }
    }
}

/// Build the per-run execution report from the final candidate states and
/// the executor's instrumentation counters.
pub(crate) fn execution_report(cands: &[Candidate], exec: &Executor<'_>) -> ExecutionReport {
    ExecutionReport {
        pipelines: cands.iter().map(Candidate::execution_entry).collect(),
        cache: exec.cache.as_ref().map(|c| c.stats()).unwrap_or_default(),
        incremental_fits: exec.incremental_fits.load(Ordering::Relaxed),
        fits_avoided: exec.fits_avoided.load(Ordering::Relaxed),
        duplicate_fits: exec.duplicate_fits.load(Ordering::Relaxed),
        slice_bytes_avoided: exec.slice_bytes_avoided.load(Ordering::Relaxed),
    }
}

/// Outcome of one isolated fit+score unit.
struct EvalUnit {
    /// Finite score on success, `+inf` otherwise.
    score: f64,
    /// Wall time of the unit.
    elapsed: Duration,
    /// Failure signal, if the unit did not produce a finite score.
    error: Option<FailureKind>,
    /// Rows the pipeline is validly fitted on after this unit (`None` when
    /// the fit itself failed or panicked — state cannot be warm-started).
    fitted_rows: Option<usize>,
    /// Fingerprint of the allocation slice the unit fit (`None` only for
    /// the queue-level `WorkerPanic` fallback, which never reached a fit).
    fp: Option<FrameFingerprint>,
    /// The unit was replayed from the candidate's memo: no fit happened and
    /// the pipeline's fitted state is unchanged.
    from_memo: bool,
}

/// Render a caught panic payload as text (mirrors `WorkerPanic`).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The execution engine: shared evaluation context plus the isolation and
/// budget policy. One instance drives a whole `run_tdaub` call.
pub(crate) struct Executor<'a> {
    pub t1: &'a TimeSeriesFrame,
    pub t2: &'a TimeSeriesFrame,
    pub metric: Metric,
    pub reverse: bool,
    pub parallel: bool,
    /// Per-pipeline cumulative soft budget; `None` = unlimited.
    pub budget: Option<Duration>,
    /// Shared transform cache re-attached to every pipeline before each
    /// unit of work; `None` disables cross-pipeline memoization.
    pub cache: Option<Arc<TransformCache>>,
    /// Offer warm-started `fit_incremental` refits when a reverse
    /// allocation extends a candidate's previous successful fit.
    pub incremental: bool,
    /// Bytes the O(1) allocation views avoided copying (one slice
    /// materialization per unit of work before zero-copy frames).
    pub slice_bytes_avoided: AtomicU64,
    /// Successful warm starts across the run.
    pub incremental_fits: AtomicU64,
    /// Units replayed from a candidate's fingerprint memo (no fit executed).
    pub fits_avoided: AtomicU64,
    /// Executed fits on an allocation the candidate had already fitted.
    pub duplicate_fits: AtomicU64,
}

impl Executor<'_> {
    fn remaining(&self, spent: Duration) -> Option<Duration> {
        self.budget.map(|b| b.saturating_sub(spent))
    }

    /// The allocation slice of `t1` for one unit of work (a zero-copy view).
    fn allocation_slice(&self, alloc_len: usize) -> TimeSeriesFrame {
        let l = self.t1.len();
        let alloc_len = alloc_len.min(l);
        if self.reverse {
            // most recent data: T1[L - alloc + 1 : L] in the paper's notation
            self.t1.slice(l - alloc_len, l)
        } else {
            // original DAUB: oldest data first — note the pipeline then
            // forecasts across a gap, which is why reverse wins on time series
            self.t1.slice(0, alloc_len)
        }
    }

    /// Serve one unit of work for a candidate: replay it from the
    /// fingerprint memo when this allocation was already fit and scored
    /// (bitwise-identical input ⇒ identical deterministic outcome), or
    /// evaluate it for real. Identical in serial and parallel modes.
    fn evaluate_or_replay(&self, c: &mut Candidate, alloc_len: usize) -> EvalUnit {
        let slice = self.allocation_slice(alloc_len);
        let fp = slice.fingerprint();
        if let Some(&(_, score)) = c.memo.iter().find(|(m, _)| *m == fp) {
            self.fits_avoided.fetch_add(1, Ordering::Relaxed);
            return EvalUnit {
                score,
                elapsed: Duration::ZERO,
                error: None,
                fitted_rows: None,
                fp: None,
                from_memo: true,
            };
        }
        let remaining = self.remaining(c.train_time);
        let previous_rows = c.last_fit_rows;
        self.evaluate_unit(&mut c.pipeline, slice, fp, previous_rows, remaining)
    }

    /// Train a pipeline on an allocation slice of `t1` and score it on
    /// `t2`, with panic isolation and a cooperative budget hint.
    /// `previous_rows` is the candidate's last successful fit length
    /// (0 = none); under reverse allocations a larger allocation extends
    /// that fit as a suffix, so the pipeline is offered a
    /// `fit_incremental` warm start.
    ///
    /// `AssertUnwindSafe` is sound because a crashed pipeline is quarantined
    /// by the caller: its (possibly corrupt) state is never fitted or
    /// queried again.
    fn evaluate_unit(
        &self,
        pipeline: &mut Box<dyn Forecaster>,
        slice: TimeSeriesFrame,
        fp: FrameFingerprint,
        previous_rows: usize,
        remaining: Option<Duration>,
    ) -> EvalUnit {
        let alloc_len = slice.len();
        // the O(1) view replaces what used to be a full row copy of the
        // allocation for every unit of work
        self.slice_bytes_avoided.fetch_add(
            (slice.len() as u64)
                .saturating_mul(slice.n_series() as u64)
                .saturating_mul(8),
            Ordering::Relaxed,
        );
        // warm starts are only sound in reverse mode: forward allocations
        // grow at the *end*, so the previous fit is a prefix, not a suffix
        let warm_eligible =
            self.incremental && self.reverse && previous_rows > 0 && previous_rows <= alloc_len;
        let cache = self.cache.clone();
        let start = Instant::now();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pipeline.set_time_budget(remaining);
            pipeline.set_transform_cache(cache);
            let mut warm = false;
            let fitted = if warm_eligible {
                match pipeline.fit_incremental(&slice, previous_rows) {
                    Ok(true) => {
                        warm = true;
                        Ok(())
                    }
                    Ok(false) => pipeline.fit(&slice),
                    Err(e) => Err(e),
                }
            } else {
                pipeline.fit(&slice)
            };
            match fitted {
                Ok(()) => (true, warm, pipeline.score(self.t2, self.metric)),
                Err(e) => (false, warm, Err(e)),
            }
        }));
        let elapsed = start.elapsed();
        match caught {
            Ok((fit_ok, warm, score)) => {
                if warm {
                    self.incremental_fits.fetch_add(1, Ordering::Relaxed);
                }
                let fitted_rows = fit_ok.then_some(alloc_len);
                match score {
                    Ok(s) if s.is_finite() => EvalUnit {
                        score: s,
                        elapsed,
                        error: None,
                        fitted_rows,
                        fp: Some(fp),
                        from_memo: false,
                    },
                    Ok(_) => EvalUnit {
                        score: f64::INFINITY,
                        elapsed,
                        error: Some(FailureKind::NonFinite),
                        fitted_rows,
                        fp: Some(fp),
                        from_memo: false,
                    },
                    Err(e) => EvalUnit {
                        score: f64::INFINITY,
                        elapsed,
                        error: Some(FailureKind::Errored(e.to_string())),
                        fitted_rows,
                        fp: Some(fp),
                        from_memo: false,
                    },
                }
            }
            Err(payload) => EvalUnit {
                score: f64::INFINITY,
                elapsed,
                error: Some(FailureKind::Crashed(payload_message(payload.as_ref()))),
                fitted_rows: None,
                fp: Some(fp),
                from_memo: false,
            },
        }
    }

    /// Record one unit outcome on a candidate and apply the isolation and
    /// budget policy. Identical in serial and parallel modes.
    fn apply(&self, c: &mut Candidate, alloc_len: usize, unit: EvalUnit) {
        c.scores.push((alloc_len, unit.score));
        c.train_time += unit.elapsed;
        c.allocations += 1;
        if unit.from_memo {
            // a replay leaves the pipeline's fitted state untouched — no
            // error, no time, nothing to memoize
            return;
        }
        c.last_fit_rows = unit.fitted_rows.unwrap_or(0);
        if let (Some(fp), Some(_)) = (unit.fp.as_ref(), unit.fitted_rows) {
            if c.fitted_fps.contains(fp) {
                self.duplicate_fits.fetch_add(1, Ordering::Relaxed);
            } else {
                c.fitted_fps.push(fp.clone());
            }
            if unit.error.is_none() {
                c.memo.push((fp.clone(), unit.score));
            }
        }
        match unit.error {
            Some(FailureKind::Crashed(m)) => {
                // corrupt state: quarantine immediately
                c.failure = Some(FailureKind::Crashed(m));
                return;
            }
            Some(kind) => c.last_error = Some(kind),
            None => {}
        }
        if let Some(budget) = self.budget {
            if c.train_time > budget {
                c.failure = Some(FailureKind::TimedOut);
            }
        }
    }

    /// Evaluate one live candidate on one allocation (memo-aware).
    pub fn run_single(&self, c: &mut Candidate, alloc_len: usize) {
        if !c.alive() {
            return;
        }
        let unit = self.evaluate_or_replay(c, alloc_len);
        self.apply(c, alloc_len, unit);
    }

    /// Evaluate every live candidate on the same allocation — one T-Daub
    /// fixed-allocation round. In parallel mode the candidates go through
    /// the shared work queue; the recorded outcome sequence is identical to
    /// serial mode.
    pub fn run_round(&self, cands: &mut [Candidate], alloc_len: usize) {
        if !self.parallel {
            for c in cands.iter_mut().filter(|c| c.alive()) {
                self.run_single(c, alloc_len);
            }
            return;
        }
        let mut live: Vec<&mut Candidate> = cands.iter_mut().filter(|c| c.alive()).collect();
        let outcomes: Vec<Result<EvalUnit, WorkerPanic>> =
            parallel_try_map_mut(&mut live, |c| self.evaluate_or_replay(c, alloc_len));
        for (c, outcome) in live.iter_mut().zip(outcomes) {
            // the inner catch_unwind already absorbs pipeline panics; the
            // queue-level WorkerPanic arm is a second net (e.g. a panicking
            // set_time_budget ripping through a poisoned invariant)
            let unit = match outcome {
                Ok(unit) => unit,
                Err(p) => EvalUnit {
                    score: f64::INFINITY,
                    elapsed: Duration::ZERO,
                    error: Some(FailureKind::Crashed(p.message)),
                    fitted_rows: None,
                    fp: None,
                    from_memo: false,
                },
            };
            self.apply(c, alloc_len, unit);
        }
    }

    /// Refit a winner on the full training input, with the same panic
    /// isolation as every other unit of work.
    pub fn fit_full(
        &self,
        pipeline: &mut Box<dyn Forecaster>,
        train: &TimeSeriesFrame,
    ) -> Result<(), PipelineError> {
        let cache = self.cache.clone();
        match catch_unwind(AssertUnwindSafe(|| {
            pipeline.set_transform_cache(cache);
            pipeline.fit(train)
        })) {
            Ok(result) => result,
            Err(payload) => Err(PipelineError::Crashed(payload_message(payload.as_ref()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Always(f64);
    impl Forecaster for Always {
        fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
            Ok(())
        }
        fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
            Ok(TimeSeriesFrame::univariate(vec![self.0; horizon]))
        }
        fn name(&self) -> String {
            format!("Always({})", self.0)
        }
        fn clone_unfitted(&self) -> Box<dyn Forecaster> {
            Box::new(Always(self.0))
        }
    }

    struct Panicky;
    impl Forecaster for Panicky {
        fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
            panic!("executor test crash")
        }
        fn predict(&self, _: usize) -> Result<TimeSeriesFrame, PipelineError> {
            Err(PipelineError::NotFitted)
        }
        fn name(&self) -> String {
            "Panicky".into()
        }
        fn clone_unfitted(&self) -> Box<dyn Forecaster> {
            Box::new(Panicky)
        }
    }

    fn frames() -> (TimeSeriesFrame, TimeSeriesFrame) {
        let t1 = TimeSeriesFrame::univariate((0..80).map(|i| i as f64).collect());
        let t2 = TimeSeriesFrame::univariate((80..90).map(|i| i as f64).collect());
        (t1, t2)
    }

    fn executor<'a>(
        t1: &'a TimeSeriesFrame,
        t2: &'a TimeSeriesFrame,
        parallel: bool,
        budget: Option<Duration>,
    ) -> Executor<'a> {
        Executor {
            t1,
            t2,
            metric: Metric::Smape,
            reverse: true,
            parallel,
            budget,
            cache: None,
            incremental: false,
            slice_bytes_avoided: AtomicU64::new(0),
            incremental_fits: AtomicU64::new(0),
            fits_avoided: AtomicU64::new(0),
            duplicate_fits: AtomicU64::new(0),
        }
    }

    #[test]
    fn crash_is_captured_as_typed_failure() {
        let (t1, t2) = frames();
        let exec = executor(&t1, &t2, false, None);
        let mut c = Candidate::new(Box::new(Panicky));
        exec.run_single(&mut c, 40);
        assert!(!c.alive());
        match &c.failure {
            Some(FailureKind::Crashed(m)) => assert!(m.contains("executor test crash")),
            other => panic!("expected crash, got {other:?}"),
        }
        assert_eq!(c.allocations, 1);
    }

    #[test]
    fn budget_marks_timeout_between_allocations() {
        let (t1, t2) = frames();
        let exec = executor(&t1, &t2, false, Some(Duration::ZERO));
        let mut c = Candidate::new(Box::new(Always(1.0)));
        exec.run_single(&mut c, 40);
        // the unit itself completes (soft budget), then the deadline fires
        assert_eq!(c.scores.len(), 1);
        assert_eq!(c.failure, Some(FailureKind::TimedOut));
        // a dead candidate receives no further allocations
        exec.run_single(&mut c, 80);
        assert_eq!(c.scores.len(), 1);
    }

    #[test]
    fn round_skips_dead_candidates_and_matches_serial() {
        let (t1, t2) = frames();
        let mk = |parallel| executor(&t1, &t2, parallel, None);
        let build = || {
            vec![
                Candidate::new(Box::new(Always(85.0))),
                Candidate::new(Box::new(Panicky)),
                Candidate::new(Box::new(Always(84.0))),
            ]
        };
        let mut serial = build();
        let mut parallel = build();
        for alloc in [20, 40, 80] {
            mk(false).run_round(&mut serial, alloc);
            mk(true).run_round(&mut parallel, alloc);
        }
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.scores, p.scores, "{}", s.name);
            assert_eq!(s.failure.is_some(), p.failure.is_some());
        }
        // the panicking candidate stopped after its first allocation
        assert_eq!(serial.get(1).map(|c| c.allocations), Some(1));
    }

    /// Scores like `Always` but counts how many times `fit` actually ran,
    /// observable from outside the boxed pipeline.
    struct CountingFits {
        value: f64,
        fits: Arc<AtomicU64>,
    }
    impl Forecaster for CountingFits {
        fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
            self.fits.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
            Ok(TimeSeriesFrame::univariate(vec![self.value; horizon]))
        }
        fn name(&self) -> String {
            "CountingFits".into()
        }
        fn clone_unfitted(&self) -> Box<dyn Forecaster> {
            Box::new(CountingFits {
                value: self.value,
                fits: Arc::clone(&self.fits),
            })
        }
    }

    #[test]
    fn full_length_fit_is_replayed_not_repeated_across_the_phase_boundary() {
        let (t1, t2) = frames();
        let exec = executor(&t1, &t2, false, None);
        let fits = Arc::new(AtomicU64::new(0));
        let mut c = Candidate::new(Box::new(CountingFits {
            value: 85.0,
            fits: Arc::clone(&fits),
        }));
        let full = t1.len();
        // acceleration confirms the leader at full length…
        exec.run_single(&mut c, full);
        // …and the scoring phase re-requests the identical allocation
        exec.run_single(&mut c, full);
        assert_eq!(
            fits.load(Ordering::Relaxed),
            1,
            "the second unit must not refit"
        );
        assert_eq!(c.scores.len(), 2);
        assert_eq!(
            c.scores.first().map(|&(_, s)| s.to_bits()),
            c.scores.last().map(|&(_, s)| s.to_bits()),
            "a replay must be bit-identical to the recorded score"
        );
        assert_eq!(exec.fits_avoided.load(Ordering::Relaxed), 1);
        assert_eq!(exec.duplicate_fits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn memo_distinguishes_different_allocations() {
        let (t1, t2) = frames();
        let exec = executor(&t1, &t2, false, None);
        let fits = Arc::new(AtomicU64::new(0));
        let mut c = Candidate::new(Box::new(CountingFits {
            value: 85.0,
            fits: Arc::clone(&fits),
        }));
        exec.run_single(&mut c, 40);
        exec.run_single(&mut c, 60);
        exec.run_single(&mut c, 40); // only this one is a replay
        assert_eq!(fits.load(Ordering::Relaxed), 2);
        assert_eq!(exec.fits_avoided.load(Ordering::Relaxed), 1);
        assert_eq!(c.scores.len(), 3);
    }

    #[test]
    fn non_finite_scores_classify_as_nonfinite() {
        let (t1, t2) = frames();
        let exec = executor(&t1, &t2, false, None);
        let mut c = Candidate::new(Box::new(Always(f64::NAN)));
        exec.run_single(&mut c, 40);
        assert!(c.alive()); // not yet classified — might recover
        c.finalize_failure();
        assert_eq!(c.failure, Some(FailureKind::NonFinite));
    }
}
