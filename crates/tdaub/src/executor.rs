//! Fault-isolated, budgeted execution engine for T-Daub.
//!
//! T-Daub's promise (§4.2) is that many heterogeneous pipelines can be
//! ranked cheaply **and safely**. The executor provides the safety half:
//! every pipeline `fit` + `score` on a data allocation runs as an isolated
//! unit of work with
//!
//! * **panic isolation** — a panic deep inside a model is caught
//!   (`catch_unwind`, plus a second net inside the parallel work queue),
//!   converted into the typed [`PipelineError::Crashed`], and the pipeline
//!   is quarantined instead of the whole run aborting;
//! * **a per-pipeline soft time budget** — a cooperative deadline over the
//!   pipeline's cumulative wall time, checked between allocations; a
//!   pipeline that blows its budget stops receiving data and is recorded as
//!   [`FailureKind::TimedOut`];
//! * **a per-unit hard deadline** — with a hard deadline set, every round
//!   runs through `autoai_linalg::supervised_try_map`: a monitor thread
//!   quarantines any unit that exceeds the deadline
//!   ([`FailureKind::HardTimeout`]), detaching its worker thread and
//!   retiring its transform-cache epoch so the abandoned zombie can neither
//!   stall the run nor corrupt shared state — `run_tdaub`'s wall time gets
//!   a provable upper bound even against `loop {}` in a pipeline;
//! * **typed failure accounting** — every pipeline's wall time, allocation
//!   count, and failure (if any) land in an [`ExecutionReport`] that the
//!   orchestrator surfaces through `core::Progress` and `FitSummary`.
//!
//! Parallel rounds run on `autoai_linalg::parallel_try_map_mut`, a shared
//! work queue: workers pull pipelines dynamically, so one slow BATS fit no
//! longer serializes a whole contiguous chunk of cheap evaluations behind
//! it. Serial and parallel modes execute the identical per-pipeline
//! evaluation sequence, so rankings are order-independent and reproducible.
//!
//! On top of the safety policy the executor carries the performance layer:
//! a shared [`TransformCache`] is re-attached to every pipeline before each
//! unit of work, so pipelines with the same look-back reuse flattened
//! design matrices within a fixed-allocation round; under reverse
//! allocations a candidate whose previous fit is a suffix of the next
//! allocation is offered a [`Forecaster::fit_incremental`] warm start; and
//! every successful fit+score unit is memoized per candidate, keyed by the
//! allocation slice's [`FrameFingerprint`] — re-evaluating a bitwise
//! identical allocation (the acceleration→scoring phase boundary, or a
//! stalled acceleration step) replays the recorded score instead of
//! refitting. All of it is instrumented (cache counters, warm-start count,
//! fits avoided, duplicate fits, bytes the zero-copy allocation views
//! avoided) in the [`ExecutionReport`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use autoai_linalg::{
    parallel_try_map_mut, simple_linreg, supervised_try_map, SupervisedOutcome, WorkerPanic,
};
use autoai_pipelines::{Forecaster, PipelineError};
use autoai_transforms::{CacheStats, TransformCache};
use autoai_tsdata::{FrameFingerprint, Metric, TimeSeriesFrame};

/// Why a pipeline was removed from the candidate pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The pipeline panicked; the payload message is preserved.
    Crashed(String),
    /// Every allocation ended in a typed error (last message preserved).
    Errored(String),
    /// The pipeline exceeded its per-pipeline soft time budget.
    TimedOut,
    /// One unit of work blew the per-unit **hard** deadline: the watchdog
    /// detached the worker thread and quarantined the pipeline (its state is
    /// owned by the abandoned zombie and is never touched again).
    HardTimeout,
    /// The pipeline ran but never produced a finite score (NaN/∞).
    NonFinite,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Crashed(m) => write!(f, "crashed: {m}"),
            FailureKind::Errored(m) => write!(f, "errored: {m}"),
            FailureKind::TimedOut => write!(f, "timed out"),
            FailureKind::HardTimeout => {
                write!(f, "exceeded the hard deadline and was quarantined")
            }
            FailureKind::NonFinite => write!(f, "produced no finite score"),
        }
    }
}

/// Execution accounting for one pipeline across the whole T-Daub run.
#[derive(Debug, Clone)]
pub struct PipelineExecution {
    /// Pipeline display name.
    pub name: String,
    /// Cumulative wall time spent in this pipeline's fit/score calls.
    pub wall_time: Duration,
    /// Number of allocations attempted (including failed ones).
    pub allocations: usize,
    /// Why the pipeline left the pool; `None` for survivors.
    pub failure: Option<FailureKind>,
}

/// Per-run execution report: one entry per pipeline in the original pool.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Accounting entries, in original pool order.
    pub pipelines: Vec<PipelineExecution>,
    /// Shared transform-cache counters for the run (all zeros when the
    /// cache was disabled).
    pub cache: CacheStats,
    /// Successful `fit_incremental` warm starts across the pool.
    pub incremental_fits: u64,
    /// Fit+score units served from the per-candidate fingerprint memo
    /// instead of refitting bitwise-identical data (cross-round and across
    /// the acceleration→scoring phase boundary).
    pub fits_avoided: u64,
    /// Executed fits whose allocation fingerprint the same candidate had
    /// already fitted successfully — structurally zero while the memo is
    /// active; asserted zero by the bench smoke mode.
    pub duplicate_fits: u64,
    /// Bytes of frame data the zero-copy allocation views avoided copying
    /// (each unit of work used to materialize its allocation slice).
    pub slice_bytes_avoided: u64,
    /// Faults the deterministic chaos layer injected during this run
    /// (delta of `autoai_chaos::injected_count()` across the run; always
    /// zero when no fault plan is installed).
    pub injected_faults: u64,
    /// True when [`crate::TDaubConfig::run_hard_deadline`] expired before
    /// the run finished: later allocation rounds, acceleration steps, or
    /// scoring finalists were skipped and the ranking was built from the
    /// scores gathered up to that point. The orchestrator surfaces this as
    /// a typed `Survivors` degradation.
    pub run_deadline_hit: bool,
    /// Units of work re-run after a transient typed error
    /// ([`FailureKind::Errored`]) under [`crate::TDaubConfig::retry_transient`].
    /// Crashes and hard timeouts are never retried.
    pub retries: u64,
}

impl ExecutionReport {
    /// Entries for pipelines that failed (crashed/errored/timed out/NaN).
    pub fn failures(&self) -> impl Iterator<Item = &PipelineExecution> {
        self.pipelines.iter().filter(|p| p.failure.is_some())
    }

    /// Number of pipelines that survived to the final ranking.
    pub fn survivors(&self) -> usize {
        self.pipelines
            .iter()
            .filter(|p| p.failure.is_none())
            .count()
    }

    /// Total allocations attempted across the pool.
    pub fn total_allocations(&self) -> usize {
        self.pipelines.iter().map(|p| p.allocations).sum()
    }

    /// Entry for a pipeline by display name.
    pub fn find(&self, name: &str) -> Option<&PipelineExecution> {
        self.pipelines.iter().find(|p| p.name == name)
    }
}

/// Internal per-pipeline state during a T-Daub run.
pub(crate) struct Candidate {
    pub pipeline: Box<dyn Forecaster>,
    pub name: String,
    /// `(allocation length, score)` pairs; failed units record `+inf`.
    pub scores: Vec<(usize, f64)>,
    pub projected: f64,
    pub final_score: Option<f64>,
    pub train_time: Duration,
    pub allocations: usize,
    /// Why the executor removed this candidate; `None` while in the pool.
    pub failure: Option<FailureKind>,
    /// Most recent non-crash failure signal, for end-of-run classification.
    pub last_error: Option<FailureKind>,
    /// Rows of the last successful `fit` on this candidate's pipeline
    /// (0 = no valid fitted state). Drives the warm-start eligibility test:
    /// under reverse allocations the previous fit's slice is the trailing
    /// suffix of every later, larger allocation.
    pub last_fit_rows: usize,
    /// Per-run fit+score memo: `(allocation fingerprint, score)` for every
    /// unit that fit and scored finitely. Equal fingerprints mean the same
    /// buffers and the same window — bitwise-identical input — so replaying
    /// the deterministic score is exact and the memo stays on even in the
    /// uncached comparison modes.
    pub memo: Vec<(FrameFingerprint, f64)>,
    /// Fingerprints of every allocation this candidate's pipeline
    /// successfully fitted (superset of `memo`'s keys: includes fits whose
    /// score came out non-finite). Used to count duplicate fits.
    pub fitted_fps: Vec<FrameFingerprint>,
}

impl Candidate {
    pub fn new(pipeline: Box<dyn Forecaster>) -> Self {
        Candidate {
            name: pipeline.name(),
            pipeline,
            scores: Vec::new(),
            projected: f64::INFINITY,
            final_score: None,
            train_time: Duration::ZERO,
            allocations: 0,
            failure: None,
            last_error: None,
            last_fit_rows: 0,
            memo: Vec::new(),
            fitted_fps: Vec::new(),
        }
    }

    /// Still in the pool (not crashed / timed out / classified failed).
    pub fn alive(&self) -> bool {
        self.failure.is_none()
    }

    /// Has at least one finite observed score.
    pub fn has_signal(&self) -> bool {
        self.scores.iter().any(|(_, s)| s.is_finite())
    }

    /// Largest allocation with a finite score, if any.
    pub fn best_finite_alloc(&self) -> Option<usize> {
        self.scores
            .iter()
            .filter(|(_, s)| s.is_finite())
            .map(|&(a, _)| a)
            .max()
    }

    /// Project the learning curve to `full_len` (linear regression on the
    /// finite partial scores, clamped at the metric's lower bound).
    pub fn project(&mut self, full_len: usize, use_projection: bool, metric: Metric) {
        let ok: Vec<(usize, f64)> = self
            .scores
            .iter()
            .filter(|(_, s)| s.is_finite())
            .copied()
            .collect();
        if ok.is_empty() {
            self.projected = f64::INFINITY;
            return;
        }
        // a full-length observation is ground truth; no projection needed
        if let Some(&(_, s)) = ok.iter().rev().find(|&&(alloc, _)| alloc >= full_len) {
            self.projected = s;
            return;
        }
        if !use_projection || ok.len() == 1 {
            // `ok` is non-empty: the is_empty branch above already returned
            self.projected = ok.last().map_or(f64::INFINITY, |&(_, s)| s);
            return;
        }
        let t: Vec<f64> = ok.iter().map(|(l, _)| *l as f64).collect();
        let y: Vec<f64> = ok.iter().map(|(_, s)| *s).collect();
        let (a, b) = simple_linreg(&t, &y);
        let mut projected = a + b * full_len as f64;
        // SMAPE/MAE/RMSE/MAPE are bounded below by 0 — an extrapolated
        // learning curve must not cross that floor, or a mediocre pipeline
        // with a steep partial-score slope outranks a near-perfect one
        if !metric.higher_is_better() {
            projected = projected.max(0.0);
        }
        self.projected = projected;
    }

    /// End-of-run classification: a candidate that is still nominally alive
    /// but never produced a finite score becomes a typed failure.
    pub fn finalize_failure(&mut self) {
        if self.failure.is_none() && !self.has_signal() {
            self.failure = Some(match self.last_error.take() {
                Some(kind) => kind,
                None => FailureKind::Errored("produced no score on any allocation".into()),
            });
        }
    }

    fn execution_entry(&self) -> PipelineExecution {
        PipelineExecution {
            name: self.name.clone(),
            wall_time: self.train_time,
            allocations: self.allocations,
            failure: self.failure.clone(),
        }
    }
}

/// Build the per-run execution report from the final candidate states and
/// the executor's instrumentation counters.
pub(crate) fn execution_report(cands: &[Candidate], exec: &Executor<'_>) -> ExecutionReport {
    ExecutionReport {
        pipelines: cands.iter().map(Candidate::execution_entry).collect(),
        cache: exec.cache.as_ref().map(|c| c.stats()).unwrap_or_default(),
        incremental_fits: exec.incremental_fits.load(Ordering::Relaxed),
        fits_avoided: exec.fits_avoided.load(Ordering::Relaxed),
        duplicate_fits: exec.duplicate_fits.load(Ordering::Relaxed),
        slice_bytes_avoided: exec.slice_bytes_avoided.load(Ordering::Relaxed),
        injected_faults: autoai_chaos::injected_count().saturating_sub(exec.chaos_start),
        run_deadline_hit: false,
        retries: exec.retries.load(Ordering::Relaxed),
    }
}

/// Outcome of one isolated fit+score unit.
struct EvalUnit {
    /// Finite score on success, `+inf` otherwise.
    score: f64,
    /// Wall time of the unit.
    elapsed: Duration,
    /// Failure signal, if the unit did not produce a finite score.
    error: Option<FailureKind>,
    /// Rows the pipeline is validly fitted on after this unit (`None` when
    /// the fit itself failed or panicked — state cannot be warm-started).
    fitted_rows: Option<usize>,
    /// Fingerprint of the allocation slice the unit fit (`None` only for
    /// the queue-level `WorkerPanic` fallback, which never reached a fit).
    fp: Option<FrameFingerprint>,
    /// The unit was replayed from the candidate's memo: no fit happened and
    /// the pipeline's fitted state is unchanged.
    from_memo: bool,
    /// The fit succeeded via a `fit_incremental` warm start. Counted in
    /// [`Executor::apply`] (not at evaluation time) so a quarantined
    /// zombie's work never reaches the shared counters.
    warm: bool,
    /// Bytes the zero-copy allocation view avoided copying for this unit;
    /// credited in [`Executor::apply`] for the same reason.
    slice_bytes: u64,
    /// Transient-error retries consumed by this unit; credited in
    /// [`Executor::apply`] for the same zombie-safety reason.
    retries: u8,
}

impl EvalUnit {
    /// A unit served from the candidate's fingerprint memo: no fit ran and
    /// the pipeline's fitted state is unchanged.
    fn replayed(score: f64) -> Self {
        EvalUnit {
            score,
            elapsed: Duration::ZERO,
            error: None,
            fitted_rows: None,
            fp: None,
            from_memo: true,
            warm: false,
            slice_bytes: 0,
            retries: 0,
        }
    }

    /// A unit that never produced a fit at all: the queue-level panic net
    /// or a watchdog quarantine.
    fn failed(kind: FailureKind) -> Self {
        EvalUnit {
            score: f64::INFINITY,
            elapsed: Duration::ZERO,
            error: Some(kind),
            fitted_rows: None,
            fp: None,
            from_memo: false,
            warm: false,
            slice_bytes: 0,
            retries: 0,
        }
    }
}

/// Everything one isolated fit+score unit needs besides the pipeline
/// itself. All owned (the frames are zero-copy `Arc`-backed views, the rest
/// is cheap), so a unit can be shipped to a supervised worker thread
/// without borrowing the executor.
struct UnitSpec {
    slice: TimeSeriesFrame,
    t2: TimeSeriesFrame,
    metric: Metric,
    fp: FrameFingerprint,
    warm_eligible: bool,
    previous_rows: usize,
    remaining: Option<Duration>,
    cache: Option<Arc<TransformCache>>,
    retry_transient: u8,
}

/// A unit of work shipped through the supervised watchdog queue. The
/// candidate's pipeline travels with the unit (a [`Tombstone`] holds its
/// slot meanwhile) and comes back inside `SupervisedOutcome::Completed`; on
/// a hard timeout it stays with the zombie worker forever.
struct WorkUnit {
    idx: usize,
    /// Transform-cache work-unit epoch; retired on quarantine so the
    /// zombie's late cache writes are detected and discarded.
    epoch: u64,
    pipeline: Box<dyn Forecaster>,
    spec: UnitSpec,
}

/// Placeholder installed in a candidate's pipeline slot while the real
/// pipeline is out with a supervised worker. It becomes permanent when the
/// watchdog quarantines that worker: the real pipeline's state is then
/// owned by a detached zombie thread and must never be touched again, so
/// the tombstone answers every call with a typed error.
struct Tombstone {
    name: String,
}

impl Forecaster for Tombstone {
    fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
        Err(PipelineError::Crashed(
            "pipeline quarantined by the hard-deadline watchdog".into(),
        ))
    }
    fn predict(&self, _: usize) -> Result<TimeSeriesFrame, PipelineError> {
        Err(PipelineError::NotFitted)
    }
    fn name(&self) -> String {
        self.name.clone()
    }
    fn clone_unfitted(&self) -> Box<dyn Forecaster> {
        Box::new(Tombstone {
            name: self.name.clone(),
        })
    }
}

/// Chaos injection point for the executor itself: an installed
/// [`autoai_chaos::FaultPlan`] may stall a unit of work right here. Only
/// [`autoai_chaos::Fault::Delay`] is realized at this site — panics, typed
/// errors and NaN forecasts are exercised inside the pipelines, where they
/// have a real blast radius.
fn chaos_unit_delay(pipeline: &str, alloc_len: usize) {
    if !autoai_chaos::enabled() {
        return;
    }
    let k = autoai_chaos::key(pipeline) ^ (alloc_len as u64);
    if let Some(autoai_chaos::Fault::Delay(ms)) = autoai_chaos::inject("executor.unit", k) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// Train a pipeline on its allocation slice and score it on `t2`, with
/// panic isolation and a cooperative budget hint. `spec.previous_rows` is
/// the candidate's last successful fit length (0 = none); when
/// `spec.warm_eligible` the pipeline is offered a `fit_incremental` warm
/// start. Free-standing (no executor borrow) so the supervised watchdog can
/// run it on a detachable worker thread.
///
/// `AssertUnwindSafe` is sound because a crashed pipeline is quarantined by
/// the caller: its (possibly corrupt) state is never fitted or queried
/// again.
fn evaluate_unit(pipeline: &mut Box<dyn Forecaster>, spec: &UnitSpec) -> EvalUnit {
    let alloc_len = spec.slice.len();
    // the O(1) view replaces what used to be a full row copy of the
    // allocation for every unit of work
    let slice_bytes = (alloc_len as u64)
        .saturating_mul(spec.slice.n_series() as u64)
        .saturating_mul(8);
    let cache = spec.cache.clone();
    let start = Instant::now();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        chaos_unit_delay(&pipeline.name(), alloc_len);
        pipeline.set_time_budget(spec.remaining);
        pipeline.set_transform_cache(cache);
        let mut warm = false;
        let fitted = if spec.warm_eligible {
            match pipeline.fit_incremental(&spec.slice, spec.previous_rows) {
                Ok(true) => {
                    warm = true;
                    Ok(())
                }
                Ok(false) => pipeline.fit(&spec.slice),
                Err(e) => Err(e),
            }
        } else {
            pipeline.fit(&spec.slice)
        };
        match fitted {
            Ok(()) => (true, warm, pipeline.score(&spec.t2, spec.metric)),
            Err(e) => (false, warm, Err(e)),
        }
    }));
    let elapsed = start.elapsed();
    match caught {
        Ok((fit_ok, warm, score)) => {
            let fitted_rows = fit_ok.then_some(alloc_len);
            let (score, error) = match score {
                Ok(s) if s.is_finite() => (s, None),
                Ok(_) => (f64::INFINITY, Some(FailureKind::NonFinite)),
                Err(e) => (f64::INFINITY, Some(FailureKind::Errored(e.to_string()))),
            };
            EvalUnit {
                score,
                elapsed,
                error,
                fitted_rows,
                fp: Some(spec.fp.clone()),
                from_memo: false,
                warm,
                slice_bytes,
                retries: 0,
            }
        }
        Err(payload) => EvalUnit {
            score: f64::INFINITY,
            elapsed,
            error: Some(FailureKind::Crashed(payload_message(payload.as_ref()))),
            fitted_rows: None,
            fp: Some(spec.fp.clone()),
            from_memo: false,
            warm: false,
            slice_bytes,
            retries: 0,
        },
    }
}

/// Run a unit and, if it ended in a **typed error** only, re-run it up to
/// `spec.retry_transient` times within the same budget window. Crashes,
/// hard timeouts (watchdog-level, never seen here), and non-finite scores
/// are final on the first attempt; the retried unit carries the cumulative
/// wall time so budget accounting is unchanged. Deterministic: the retry
/// decision depends only on the unit outcome, so serial, parallel, and
/// supervised execution retry identically.
fn evaluate_unit_with_retry(pipeline: &mut Box<dyn Forecaster>, spec: &UnitSpec) -> EvalUnit {
    let mut unit = evaluate_unit(pipeline, spec);
    let mut used: u8 = 0;
    while used < spec.retry_transient && matches!(unit.error, Some(FailureKind::Errored(_))) {
        used = used.saturating_add(1);
        let prior_elapsed = unit.elapsed;
        unit = evaluate_unit(pipeline, spec);
        unit.elapsed += prior_elapsed;
        unit.retries = used;
    }
    unit
}

/// Render a caught panic payload as text (mirrors `WorkerPanic`).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The execution engine: shared evaluation context plus the isolation and
/// budget policy. One instance drives a whole `run_tdaub` call.
pub(crate) struct Executor<'a> {
    pub t1: &'a TimeSeriesFrame,
    pub t2: &'a TimeSeriesFrame,
    pub metric: Metric,
    pub reverse: bool,
    pub parallel: bool,
    /// Per-pipeline cumulative soft budget; `None` = unlimited.
    pub budget: Option<Duration>,
    /// Shared transform cache re-attached to every pipeline before each
    /// unit of work; `None` disables cross-pipeline memoization.
    pub cache: Option<Arc<TransformCache>>,
    /// Offer warm-started `fit_incremental` refits when a reverse
    /// allocation extends a candidate's previous successful fit.
    pub incremental: bool,
    /// Per-unit **hard** wall-clock deadline enforced by the supervised
    /// watchdog; `None` runs the cooperative-only paths (no watchdog).
    pub hard_deadline: Option<Duration>,
    /// Re-run a unit that ended in a typed error up to this many times
    /// (transient-failure tolerance; crashes and hard timeouts are final).
    pub retry_transient: u8,
    /// `autoai_chaos::injected_count()` snapshot at executor construction;
    /// the run's report carries the delta.
    pub chaos_start: u64,
    /// Bytes the O(1) allocation views avoided copying (one slice
    /// materialization per unit of work before zero-copy frames).
    pub slice_bytes_avoided: AtomicU64,
    /// Successful warm starts across the run.
    pub incremental_fits: AtomicU64,
    /// Units replayed from a candidate's fingerprint memo (no fit executed).
    pub fits_avoided: AtomicU64,
    /// Executed fits on an allocation the candidate had already fitted.
    pub duplicate_fits: AtomicU64,
    /// Transient-error retries consumed across the run.
    pub retries: AtomicU64,
}

impl Executor<'_> {
    fn remaining(&self, spent: Duration) -> Option<Duration> {
        self.budget.map(|b| b.saturating_sub(spent))
    }

    /// The allocation slice of `t1` for one unit of work (a zero-copy view).
    fn allocation_slice(&self, alloc_len: usize) -> TimeSeriesFrame {
        let l = self.t1.len();
        let alloc_len = alloc_len.min(l);
        if self.reverse {
            // most recent data: T1[L - alloc + 1 : L] in the paper's notation
            self.t1.slice(l - alloc_len, l)
        } else {
            // original DAUB: oldest data first — note the pipeline then
            // forecasts across a gap, which is why reverse wins on time series
            self.t1.slice(0, alloc_len)
        }
    }

    /// Serve one unit of work for a candidate: replay it from the
    /// fingerprint memo when this allocation was already fit and scored
    /// (bitwise-identical input ⇒ identical deterministic outcome), or
    /// evaluate it for real. Identical in serial and parallel modes.
    fn evaluate_or_replay(&self, c: &mut Candidate, alloc_len: usize) -> EvalUnit {
        let slice = self.allocation_slice(alloc_len);
        let fp = slice.fingerprint();
        if let Some(&(_, score)) = c.memo.iter().find(|(m, _)| *m == fp) {
            self.fits_avoided.fetch_add(1, Ordering::Relaxed);
            return EvalUnit::replayed(score);
        }
        let spec = self.unit_spec(slice, fp, c);
        evaluate_unit_with_retry(&mut c.pipeline, &spec)
    }

    /// Everything one unit of work for this candidate needs besides the
    /// pipeline itself (owned, so it can cross into a supervised worker).
    fn unit_spec(&self, slice: TimeSeriesFrame, fp: FrameFingerprint, c: &Candidate) -> UnitSpec {
        // warm starts are only sound in reverse mode: forward allocations
        // grow at the *end*, so the previous fit is a prefix, not a suffix
        let warm_eligible = self.incremental
            && self.reverse
            && c.last_fit_rows > 0
            && c.last_fit_rows <= slice.len();
        UnitSpec {
            t2: self.t2.clone(),
            metric: self.metric,
            warm_eligible,
            previous_rows: c.last_fit_rows,
            remaining: self.remaining(c.train_time),
            cache: self.cache.clone(),
            slice,
            fp,
            retry_transient: self.retry_transient,
        }
    }

    /// Record one unit outcome on a candidate and apply the isolation and
    /// budget policy. Identical in serial and parallel modes.
    fn apply(&self, c: &mut Candidate, alloc_len: usize, unit: EvalUnit) {
        // shared counters are credited here, on the monitor side, so a
        // quarantined zombie's half-finished unit can never touch them
        self.slice_bytes_avoided
            .fetch_add(unit.slice_bytes, Ordering::Relaxed);
        if unit.warm {
            self.incremental_fits.fetch_add(1, Ordering::Relaxed);
        }
        if unit.retries > 0 {
            self.retries
                .fetch_add(unit.retries as u64, Ordering::Relaxed);
        }
        c.scores.push((alloc_len, unit.score));
        c.train_time += unit.elapsed;
        c.allocations += 1;
        if unit.from_memo {
            // a replay leaves the pipeline's fitted state untouched — no
            // error, no time, nothing to memoize
            return;
        }
        c.last_fit_rows = unit.fitted_rows.unwrap_or(0);
        if let (Some(fp), Some(_)) = (unit.fp.as_ref(), unit.fitted_rows) {
            if c.fitted_fps.contains(fp) {
                self.duplicate_fits.fetch_add(1, Ordering::Relaxed);
            } else {
                c.fitted_fps.push(fp.clone());
            }
            if unit.error.is_none() {
                c.memo.push((fp.clone(), unit.score));
            }
        }
        match unit.error {
            Some(FailureKind::Crashed(m)) => {
                // corrupt state: quarantine immediately
                c.failure = Some(FailureKind::Crashed(m));
                return;
            }
            Some(FailureKind::HardTimeout) => {
                // the zombie worker owns the pipeline's state now; the
                // candidate keeps a tombstone and leaves the pool for good
                c.failure = Some(FailureKind::HardTimeout);
                return;
            }
            Some(kind) => c.last_error = Some(kind),
            None => {}
        }
        if let Some(budget) = self.budget {
            if c.train_time > budget {
                c.failure = Some(FailureKind::TimedOut);
            }
        }
    }

    /// Evaluate one live candidate on one allocation (memo-aware).
    pub fn run_single(&self, c: &mut Candidate, alloc_len: usize) {
        if !c.alive() {
            return;
        }
        if let Some(hard) = self.hard_deadline {
            self.run_round_supervised(std::slice::from_mut(c), alloc_len, hard);
            return;
        }
        let unit = self.evaluate_or_replay(c, alloc_len);
        self.apply(c, alloc_len, unit);
    }

    /// Evaluate every live candidate on the same allocation — one T-Daub
    /// fixed-allocation round. In parallel mode the candidates go through
    /// the shared work queue; the recorded outcome sequence is identical to
    /// serial mode. With a hard deadline set, both modes run under the
    /// supervised watchdog instead (serial = one supervised worker).
    pub fn run_round(&self, cands: &mut [Candidate], alloc_len: usize) {
        if let Some(hard) = self.hard_deadline {
            self.run_round_supervised(cands, alloc_len, hard);
            return;
        }
        if !self.parallel {
            for c in cands.iter_mut().filter(|c| c.alive()) {
                self.run_single(c, alloc_len);
            }
            return;
        }
        let mut live: Vec<&mut Candidate> = cands.iter_mut().filter(|c| c.alive()).collect();
        let outcomes: Vec<Result<EvalUnit, WorkerPanic>> =
            parallel_try_map_mut(&mut live, |c| self.evaluate_or_replay(c, alloc_len));
        for (c, outcome) in live.iter_mut().zip(outcomes) {
            // the inner catch_unwind already absorbs pipeline panics; the
            // queue-level WorkerPanic arm is a second net (e.g. a panicking
            // set_time_budget ripping through a poisoned invariant)
            let unit = match outcome {
                Ok(unit) => unit,
                Err(p) => EvalUnit::failed(FailureKind::Crashed(p.message)),
            };
            self.apply(c, alloc_len, unit);
        }
    }

    /// One round under the hard-deadline watchdog. Every live candidate's
    /// unit of work is shipped through [`supervised_try_map`], whose
    /// monitor enforces `hard` per unit: a unit that blows the deadline
    /// loses its worker thread (detached, never joined) *and* its pipeline
    /// (the candidate keeps a [`Tombstone`] and is quarantined as
    /// [`FailureKind::HardTimeout`]), and its transform-cache epoch is
    /// retired so any late cache writes from the zombie are detected and
    /// discarded. Memo replays and the recorded outcome sequence are
    /// identical to the unsupervised paths, so the watchdog never changes a
    /// surviving pipeline's ranking.
    fn run_round_supervised(&self, cands: &mut [Candidate], alloc_len: usize, hard: Duration) {
        let mut units: Vec<WorkUnit> = Vec::new();
        for (idx, c) in cands.iter_mut().enumerate() {
            if !c.alive() {
                continue;
            }
            let slice = self.allocation_slice(alloc_len);
            let fp = slice.fingerprint();
            if let Some(&(_, score)) = c.memo.iter().find(|(m, _)| *m == fp) {
                // replays never leave the monitor thread — no watchdog risk
                self.fits_avoided.fetch_add(1, Ordering::Relaxed);
                self.apply(c, alloc_len, EvalUnit::replayed(score));
                continue;
            }
            let spec = self.unit_spec(slice, fp, c);
            let epoch = self.cache.as_ref().map_or(0, |cache| cache.begin_unit());
            let name = c.name.clone();
            units.push(WorkUnit {
                idx,
                epoch,
                pipeline: std::mem::replace(&mut c.pipeline, Box::new(Tombstone { name })),
                spec,
            });
        }
        if units.is_empty() {
            return;
        }
        let workers = if self.parallel {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            1
        };
        let keys: Vec<(usize, u64)> = units.iter().map(|u| (u.idx, u.epoch)).collect();
        let outcomes = supervised_try_map(units, hard, workers, |u: &mut WorkUnit| {
            // announce the unit's epoch so cache writes from this thread
            // can be discarded if the watchdog retires the unit mid-flight
            if let Some(cache) = u.spec.cache.as_ref() {
                cache.enter_unit(u.epoch);
            }
            let unit = evaluate_unit_with_retry(&mut u.pipeline, &u.spec);
            if let Some(cache) = u.spec.cache.as_ref() {
                cache.exit_unit();
            }
            unit
        });
        for (outcome, (idx, epoch)) in outcomes.into_iter().zip(keys) {
            let Some(c) = cands.get_mut(idx) else {
                continue;
            };
            match outcome {
                SupervisedOutcome::Completed { item, result } => {
                    c.pipeline = item.pipeline;
                    let unit = match result {
                        Ok(unit) => unit,
                        // second net: a panic that escaped the unit's own
                        // catch_unwind
                        Err(p) => EvalUnit::failed(FailureKind::Crashed(p.message)),
                    };
                    self.apply(c, alloc_len, unit);
                }
                SupervisedOutcome::HardTimeout => {
                    if let Some(cache) = self.cache.as_ref() {
                        cache.retire_unit(epoch);
                    }
                    // charge the full hard deadline: that is the wall time
                    // the run verifiably spent waiting on this unit
                    let mut unit = EvalUnit::failed(FailureKind::HardTimeout);
                    unit.elapsed = hard;
                    self.apply(c, alloc_len, unit);
                }
            }
        }
    }

    /// Refit a winner on the full training input, with the same panic
    /// isolation as every other unit of work.
    pub fn fit_full(
        &self,
        pipeline: &mut Box<dyn Forecaster>,
        train: &TimeSeriesFrame,
    ) -> Result<(), PipelineError> {
        let cache = self.cache.clone();
        match catch_unwind(AssertUnwindSafe(|| {
            pipeline.set_transform_cache(cache);
            pipeline.fit(train)
        })) {
            Ok(result) => result,
            Err(payload) => Err(PipelineError::Crashed(payload_message(payload.as_ref()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Always(f64);
    impl Forecaster for Always {
        fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
            Ok(())
        }
        fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
            Ok(TimeSeriesFrame::univariate(vec![self.0; horizon]))
        }
        fn name(&self) -> String {
            format!("Always({})", self.0)
        }
        fn clone_unfitted(&self) -> Box<dyn Forecaster> {
            Box::new(Always(self.0))
        }
    }

    struct Panicky;
    impl Forecaster for Panicky {
        fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
            panic!("executor test crash")
        }
        fn predict(&self, _: usize) -> Result<TimeSeriesFrame, PipelineError> {
            Err(PipelineError::NotFitted)
        }
        fn name(&self) -> String {
            "Panicky".into()
        }
        fn clone_unfitted(&self) -> Box<dyn Forecaster> {
            Box::new(Panicky)
        }
    }

    /// Errors with a typed error for the first `failures_left` fit calls,
    /// then behaves like `Always(value)` — a transient fault.
    struct FlakyOnce {
        failures_left: u8,
        value: f64,
    }
    impl Forecaster for FlakyOnce {
        fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
            if self.failures_left > 0 {
                self.failures_left = self.failures_left.saturating_sub(1);
                return Err(PipelineError::InvalidInput("transient hiccup".into()));
            }
            Ok(())
        }
        fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
            Ok(TimeSeriesFrame::univariate(vec![self.value; horizon]))
        }
        fn name(&self) -> String {
            "FlakyOnce".into()
        }
        fn clone_unfitted(&self) -> Box<dyn Forecaster> {
            Box::new(FlakyOnce {
                failures_left: self.failures_left,
                value: self.value,
            })
        }
    }

    fn frames() -> (TimeSeriesFrame, TimeSeriesFrame) {
        let t1 = TimeSeriesFrame::univariate((0..80).map(|i| i as f64).collect());
        let t2 = TimeSeriesFrame::univariate((80..90).map(|i| i as f64).collect());
        (t1, t2)
    }

    fn executor<'a>(
        t1: &'a TimeSeriesFrame,
        t2: &'a TimeSeriesFrame,
        parallel: bool,
        budget: Option<Duration>,
    ) -> Executor<'a> {
        Executor {
            t1,
            t2,
            metric: Metric::Smape,
            reverse: true,
            parallel,
            budget,
            cache: None,
            incremental: false,
            hard_deadline: None,
            chaos_start: 0,
            retry_transient: 1,
            slice_bytes_avoided: AtomicU64::new(0),
            incremental_fits: AtomicU64::new(0),
            fits_avoided: AtomicU64::new(0),
            duplicate_fits: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    #[test]
    fn crash_is_captured_as_typed_failure() {
        let (t1, t2) = frames();
        let exec = executor(&t1, &t2, false, None);
        let mut c = Candidate::new(Box::new(Panicky));
        exec.run_single(&mut c, 40);
        assert!(!c.alive());
        match &c.failure {
            Some(FailureKind::Crashed(m)) => assert!(m.contains("executor test crash")),
            other => panic!("expected crash, got {other:?}"),
        }
        assert_eq!(c.allocations, 1);
    }

    #[test]
    fn budget_marks_timeout_between_allocations() {
        let (t1, t2) = frames();
        let exec = executor(&t1, &t2, false, Some(Duration::ZERO));
        let mut c = Candidate::new(Box::new(Always(1.0)));
        exec.run_single(&mut c, 40);
        // the unit itself completes (soft budget), then the deadline fires
        assert_eq!(c.scores.len(), 1);
        assert_eq!(c.failure, Some(FailureKind::TimedOut));
        // a dead candidate receives no further allocations
        exec.run_single(&mut c, 80);
        assert_eq!(c.scores.len(), 1);
    }

    #[test]
    fn round_skips_dead_candidates_and_matches_serial() {
        let (t1, t2) = frames();
        let mk = |parallel| executor(&t1, &t2, parallel, None);
        let build = || {
            vec![
                Candidate::new(Box::new(Always(85.0))),
                Candidate::new(Box::new(Panicky)),
                Candidate::new(Box::new(Always(84.0))),
            ]
        };
        let mut serial = build();
        let mut parallel = build();
        for alloc in [20, 40, 80] {
            mk(false).run_round(&mut serial, alloc);
            mk(true).run_round(&mut parallel, alloc);
        }
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.scores, p.scores, "{}", s.name);
            assert_eq!(s.failure.is_some(), p.failure.is_some());
        }
        // the panicking candidate stopped after its first allocation
        assert_eq!(serial.get(1).map(|c| c.allocations), Some(1));
    }

    #[test]
    fn transient_error_is_retried_and_counted() {
        let (t1, t2) = frames();
        let exec = executor(&t1, &t2, false, None);
        let mut c = Candidate::new(Box::new(FlakyOnce {
            failures_left: 1,
            value: 85.0,
        }));
        exec.run_single(&mut c, 40);
        // one retry absorbed the transient error: the unit scored normally
        assert!(c.alive());
        assert_eq!(c.last_error, None);
        assert!(c.scores.last().is_some_and(|&(_, s)| s.is_finite()));
        assert_eq!(exec.retries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn exhausted_retries_leave_the_typed_error() {
        let (t1, t2) = frames();
        let exec = executor(&t1, &t2, false, None);
        let mut c = Candidate::new(Box::new(FlakyOnce {
            failures_left: 5,
            value: 85.0,
        }));
        exec.run_single(&mut c, 40);
        // one retry was spent, the error stood — and only Errored retries
        assert!(matches!(c.last_error, Some(FailureKind::Errored(_))));
        assert_eq!(exec.retries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn crashes_are_never_retried() {
        let (t1, t2) = frames();
        let exec = executor(&t1, &t2, false, None);
        let mut c = Candidate::new(Box::new(Panicky));
        exec.run_single(&mut c, 40);
        assert!(matches!(c.failure, Some(FailureKind::Crashed(_))));
        assert_eq!(exec.retries.load(Ordering::Relaxed), 0);
        assert_eq!(c.allocations, 1);
    }

    #[test]
    fn retried_serial_round_matches_parallel() {
        let (t1, t2) = frames();
        let build = || {
            vec![
                Candidate::new(Box::new(Always(85.0))),
                Candidate::new(Box::new(FlakyOnce {
                    failures_left: 1,
                    value: 84.0,
                })),
                Candidate::new(Box::new(Always(83.0))),
            ]
        };
        let serial_exec = executor(&t1, &t2, false, None);
        let parallel_exec = executor(&t1, &t2, true, None);
        let mut serial = build();
        let mut parallel = build();
        for alloc in [20, 40, 80] {
            serial_exec.run_round(&mut serial, alloc);
            parallel_exec.run_round(&mut parallel, alloc);
        }
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.scores, p.scores, "{}", s.name);
            assert_eq!(s.last_error, p.last_error, "{}", s.name);
        }
        assert_eq!(
            serial_exec.retries.load(Ordering::Relaxed),
            parallel_exec.retries.load(Ordering::Relaxed)
        );
        assert_eq!(serial_exec.retries.load(Ordering::Relaxed), 1);
    }

    /// Scores like `Always` but counts how many times `fit` actually ran,
    /// observable from outside the boxed pipeline.
    struct CountingFits {
        value: f64,
        fits: Arc<AtomicU64>,
    }
    impl Forecaster for CountingFits {
        fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
            self.fits.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
            Ok(TimeSeriesFrame::univariate(vec![self.value; horizon]))
        }
        fn name(&self) -> String {
            "CountingFits".into()
        }
        fn clone_unfitted(&self) -> Box<dyn Forecaster> {
            Box::new(CountingFits {
                value: self.value,
                fits: Arc::clone(&self.fits),
            })
        }
    }

    #[test]
    fn full_length_fit_is_replayed_not_repeated_across_the_phase_boundary() {
        let (t1, t2) = frames();
        let exec = executor(&t1, &t2, false, None);
        let fits = Arc::new(AtomicU64::new(0));
        let mut c = Candidate::new(Box::new(CountingFits {
            value: 85.0,
            fits: Arc::clone(&fits),
        }));
        let full = t1.len();
        // acceleration confirms the leader at full length…
        exec.run_single(&mut c, full);
        // …and the scoring phase re-requests the identical allocation
        exec.run_single(&mut c, full);
        assert_eq!(
            fits.load(Ordering::Relaxed),
            1,
            "the second unit must not refit"
        );
        assert_eq!(c.scores.len(), 2);
        assert_eq!(
            c.scores.first().map(|&(_, s)| s.to_bits()),
            c.scores.last().map(|&(_, s)| s.to_bits()),
            "a replay must be bit-identical to the recorded score"
        );
        assert_eq!(exec.fits_avoided.load(Ordering::Relaxed), 1);
        assert_eq!(exec.duplicate_fits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn memo_distinguishes_different_allocations() {
        let (t1, t2) = frames();
        let exec = executor(&t1, &t2, false, None);
        let fits = Arc::new(AtomicU64::new(0));
        let mut c = Candidate::new(Box::new(CountingFits {
            value: 85.0,
            fits: Arc::clone(&fits),
        }));
        exec.run_single(&mut c, 40);
        exec.run_single(&mut c, 60);
        exec.run_single(&mut c, 40); // only this one is a replay
        assert_eq!(fits.load(Ordering::Relaxed), 2);
        assert_eq!(exec.fits_avoided.load(Ordering::Relaxed), 1);
        assert_eq!(c.scores.len(), 3);
    }

    /// Sleeps in `fit` far past any reasonable deadline, then scores like
    /// `Always` — the shape of a hung native solver.
    struct Sleeper(Duration);
    impl Forecaster for Sleeper {
        fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
            std::thread::sleep(self.0);
            Ok(())
        }
        fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
            Ok(TimeSeriesFrame::univariate(vec![85.0; horizon]))
        }
        fn name(&self) -> String {
            "Sleeper".into()
        }
        fn clone_unfitted(&self) -> Box<dyn Forecaster> {
            Box::new(Sleeper(self.0))
        }
    }

    #[test]
    fn watchdog_quarantines_a_unit_past_the_hard_deadline() {
        let (t1, t2) = frames();
        let mut exec = executor(&t1, &t2, true, None);
        exec.hard_deadline = Some(Duration::from_millis(150));
        let mut cands = vec![
            Candidate::new(Box::new(Always(85.0))),
            Candidate::new(Box::new(Sleeper(Duration::from_secs(60)))),
        ];
        let start = Instant::now();
        exec.run_round(&mut cands, 40);
        // the round returns without waiting for the 60 s sleeper
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "watchdog failed to bound the round: {:?}",
            start.elapsed()
        );
        let (healthy, hung) = (&cands[0], &cands[1]);
        assert!(healthy.alive(), "{:?}", healthy.failure);
        assert_eq!(healthy.scores.len(), 1);
        assert!(healthy.scores[0].1.is_finite());
        assert_eq!(hung.failure, Some(FailureKind::HardTimeout));
        assert_eq!(hung.scores, vec![(40, f64::INFINITY)]);
        assert!(hung.train_time >= Duration::from_millis(150));
        // the quarantined slot holds a tombstone that fails typed
        let mut tomb = cands[1].pipeline.clone_unfitted();
        assert_eq!(tomb.name(), "Sleeper");
        assert!(matches!(tomb.fit(&t1), Err(PipelineError::Crashed(_))));
        assert!(matches!(tomb.predict(4), Err(PipelineError::NotFitted)));
    }

    #[test]
    fn supervised_round_matches_unsupervised_scores_for_survivors() {
        let (t1, t2) = frames();
        let build = || {
            vec![
                Candidate::new(Box::new(Always(85.0))),
                Candidate::new(Box::new(Always(84.0))),
            ]
        };
        let mut plain = build();
        let mut watched = build();
        for alloc in [20, 40, 80] {
            executor(&t1, &t2, true, None).run_round(&mut plain, alloc);
            let mut exec = executor(&t1, &t2, true, None);
            exec.hard_deadline = Some(Duration::from_secs(30));
            exec.run_round(&mut watched, alloc);
        }
        for (p, w) in plain.iter().zip(&watched) {
            let pb: Vec<(usize, u64)> = p.scores.iter().map(|&(a, s)| (a, s.to_bits())).collect();
            let wb: Vec<(usize, u64)> = w.scores.iter().map(|&(a, s)| (a, s.to_bits())).collect();
            assert_eq!(pb, wb, "{}", p.name);
        }
    }

    #[test]
    fn non_finite_scores_classify_as_nonfinite() {
        let (t1, t2) = frames();
        let exec = executor(&t1, &t2, false, None);
        let mut c = Candidate::new(Box::new(Always(f64::NAN)));
        exec.run_single(&mut c, 40);
        assert!(c.alive()); // not yet classified — might recover
        c.finalize_failure();
        assert_eq!(c.failure, Some(FailureKind::NonFinite));
    }
}
