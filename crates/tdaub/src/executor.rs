//! Fault-isolated, budgeted execution engine for T-Daub.
//!
//! T-Daub's promise (§4.2) is that many heterogeneous pipelines can be
//! ranked cheaply **and safely**. The executor provides the safety half:
//! every pipeline `fit` + `score` on a data allocation runs as an isolated
//! unit of work with
//!
//! * **panic isolation** — a panic deep inside a model is caught
//!   (`catch_unwind`, plus a second net inside the parallel work queue),
//!   converted into the typed [`PipelineError::Crashed`], and the pipeline
//!   is quarantined instead of the whole run aborting;
//! * **a per-pipeline soft time budget** — a cooperative deadline over the
//!   pipeline's cumulative wall time, checked between allocations; a
//!   pipeline that blows its budget stops receiving data and is recorded as
//!   [`FailureKind::TimedOut`];
//! * **typed failure accounting** — every pipeline's wall time, allocation
//!   count, and failure (if any) land in an [`ExecutionReport`] that the
//!   orchestrator surfaces through `core::Progress` and `FitSummary`.
//!
//! Parallel rounds run on `autoai_linalg::parallel_try_map_mut`, a shared
//! work queue: workers pull pipelines dynamically, so one slow BATS fit no
//! longer serializes a whole contiguous chunk of cheap evaluations behind
//! it. Serial and parallel modes execute the identical per-pipeline
//! evaluation sequence, so rankings are order-independent and reproducible.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use autoai_linalg::{parallel_try_map_mut, simple_linreg, WorkerPanic};
use autoai_pipelines::{Forecaster, PipelineError};
use autoai_tsdata::{Metric, TimeSeriesFrame};

/// Why a pipeline was removed from the candidate pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The pipeline panicked; the payload message is preserved.
    Crashed(String),
    /// Every allocation ended in a typed error (last message preserved).
    Errored(String),
    /// The pipeline exceeded its per-pipeline soft time budget.
    TimedOut,
    /// The pipeline ran but never produced a finite score (NaN/∞).
    NonFinite,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Crashed(m) => write!(f, "crashed: {m}"),
            FailureKind::Errored(m) => write!(f, "errored: {m}"),
            FailureKind::TimedOut => write!(f, "timed out"),
            FailureKind::NonFinite => write!(f, "produced no finite score"),
        }
    }
}

/// Execution accounting for one pipeline across the whole T-Daub run.
#[derive(Debug, Clone)]
pub struct PipelineExecution {
    /// Pipeline display name.
    pub name: String,
    /// Cumulative wall time spent in this pipeline's fit/score calls.
    pub wall_time: Duration,
    /// Number of allocations attempted (including failed ones).
    pub allocations: usize,
    /// Why the pipeline left the pool; `None` for survivors.
    pub failure: Option<FailureKind>,
}

/// Per-run execution report: one entry per pipeline in the original pool.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Accounting entries, in original pool order.
    pub pipelines: Vec<PipelineExecution>,
}

impl ExecutionReport {
    /// Entries for pipelines that failed (crashed/errored/timed out/NaN).
    pub fn failures(&self) -> impl Iterator<Item = &PipelineExecution> {
        self.pipelines.iter().filter(|p| p.failure.is_some())
    }

    /// Number of pipelines that survived to the final ranking.
    pub fn survivors(&self) -> usize {
        self.pipelines
            .iter()
            .filter(|p| p.failure.is_none())
            .count()
    }

    /// Total allocations attempted across the pool.
    pub fn total_allocations(&self) -> usize {
        self.pipelines.iter().map(|p| p.allocations).sum()
    }

    /// Entry for a pipeline by display name.
    pub fn find(&self, name: &str) -> Option<&PipelineExecution> {
        self.pipelines.iter().find(|p| p.name == name)
    }
}

/// Internal per-pipeline state during a T-Daub run.
pub(crate) struct Candidate {
    pub pipeline: Box<dyn Forecaster>,
    pub name: String,
    /// `(allocation length, score)` pairs; failed units record `+inf`.
    pub scores: Vec<(usize, f64)>,
    pub projected: f64,
    pub final_score: Option<f64>,
    pub train_time: Duration,
    pub allocations: usize,
    /// Why the executor removed this candidate; `None` while in the pool.
    pub failure: Option<FailureKind>,
    /// Most recent non-crash failure signal, for end-of-run classification.
    pub last_error: Option<FailureKind>,
}

impl Candidate {
    pub fn new(pipeline: Box<dyn Forecaster>) -> Self {
        Candidate {
            name: pipeline.name(),
            pipeline,
            scores: Vec::new(),
            projected: f64::INFINITY,
            final_score: None,
            train_time: Duration::ZERO,
            allocations: 0,
            failure: None,
            last_error: None,
        }
    }

    /// Still in the pool (not crashed / timed out / classified failed).
    pub fn alive(&self) -> bool {
        self.failure.is_none()
    }

    /// Has at least one finite observed score.
    pub fn has_signal(&self) -> bool {
        self.scores.iter().any(|(_, s)| s.is_finite())
    }

    /// Largest allocation with a finite score, if any.
    pub fn best_finite_alloc(&self) -> Option<usize> {
        self.scores
            .iter()
            .filter(|(_, s)| s.is_finite())
            .map(|&(a, _)| a)
            .max()
    }

    /// Project the learning curve to `full_len` (linear regression on the
    /// finite partial scores, clamped at the metric's lower bound).
    pub fn project(&mut self, full_len: usize, use_projection: bool, metric: Metric) {
        let ok: Vec<(usize, f64)> = self
            .scores
            .iter()
            .filter(|(_, s)| s.is_finite())
            .copied()
            .collect();
        if ok.is_empty() {
            self.projected = f64::INFINITY;
            return;
        }
        // a full-length observation is ground truth; no projection needed
        if let Some(&(_, s)) = ok.iter().rev().find(|&&(alloc, _)| alloc >= full_len) {
            self.projected = s;
            return;
        }
        if !use_projection || ok.len() == 1 {
            // `ok` is non-empty: the is_empty branch above already returned
            self.projected = ok.last().map_or(f64::INFINITY, |&(_, s)| s);
            return;
        }
        let t: Vec<f64> = ok.iter().map(|(l, _)| *l as f64).collect();
        let y: Vec<f64> = ok.iter().map(|(_, s)| *s).collect();
        let (a, b) = simple_linreg(&t, &y);
        let mut projected = a + b * full_len as f64;
        // SMAPE/MAE/RMSE/MAPE are bounded below by 0 — an extrapolated
        // learning curve must not cross that floor, or a mediocre pipeline
        // with a steep partial-score slope outranks a near-perfect one
        if !metric.higher_is_better() {
            projected = projected.max(0.0);
        }
        self.projected = projected;
    }

    /// End-of-run classification: a candidate that is still nominally alive
    /// but never produced a finite score becomes a typed failure.
    pub fn finalize_failure(&mut self) {
        if self.failure.is_none() && !self.has_signal() {
            self.failure = Some(match self.last_error.take() {
                Some(kind) => kind,
                None => FailureKind::Errored("produced no score on any allocation".into()),
            });
        }
    }

    fn execution_entry(&self) -> PipelineExecution {
        PipelineExecution {
            name: self.name.clone(),
            wall_time: self.train_time,
            allocations: self.allocations,
            failure: self.failure.clone(),
        }
    }
}

/// Build the per-run execution report from the final candidate states.
pub(crate) fn execution_report(cands: &[Candidate]) -> ExecutionReport {
    ExecutionReport {
        pipelines: cands.iter().map(Candidate::execution_entry).collect(),
    }
}

/// Outcome of one isolated fit+score unit.
struct EvalUnit {
    /// Finite score on success, `+inf` otherwise.
    score: f64,
    /// Wall time of the unit.
    elapsed: Duration,
    /// Failure signal, if the unit did not produce a finite score.
    error: Option<FailureKind>,
}

/// Render a caught panic payload as text (mirrors `WorkerPanic`).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Train a pipeline on an allocation of `t1` and score it on `t2`, with
/// panic isolation and a cooperative budget hint.
///
/// `AssertUnwindSafe` is sound because a crashed pipeline is quarantined by
/// the caller: its (possibly corrupt) state is never fitted or queried
/// again.
fn evaluate_unit(
    pipeline: &mut Box<dyn Forecaster>,
    t1: &TimeSeriesFrame,
    t2: &TimeSeriesFrame,
    alloc_len: usize,
    metric: Metric,
    reverse: bool,
    remaining: Option<Duration>,
) -> EvalUnit {
    let l = t1.len();
    let alloc_len = alloc_len.min(l);
    let slice = if reverse {
        // most recent data: T1[L - alloc + 1 : L] in the paper's notation
        t1.slice(l - alloc_len, l)
    } else {
        // original DAUB: oldest data first — note the pipeline then
        // forecasts across a gap, which is why reverse wins on time series
        t1.slice(0, alloc_len)
    };
    let start = Instant::now();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pipeline.set_time_budget(remaining);
        pipeline
            .fit(&slice)
            .and_then(|()| pipeline.score(t2, metric))
    }));
    let elapsed = start.elapsed();
    match caught {
        Ok(Ok(s)) if s.is_finite() => EvalUnit {
            score: s,
            elapsed,
            error: None,
        },
        Ok(Ok(_)) => EvalUnit {
            score: f64::INFINITY,
            elapsed,
            error: Some(FailureKind::NonFinite),
        },
        Ok(Err(e)) => EvalUnit {
            score: f64::INFINITY,
            elapsed,
            error: Some(FailureKind::Errored(e.to_string())),
        },
        Err(payload) => EvalUnit {
            score: f64::INFINITY,
            elapsed,
            error: Some(FailureKind::Crashed(payload_message(payload.as_ref()))),
        },
    }
}

/// The execution engine: shared evaluation context plus the isolation and
/// budget policy. One instance drives a whole `run_tdaub` call.
pub(crate) struct Executor<'a> {
    pub t1: &'a TimeSeriesFrame,
    pub t2: &'a TimeSeriesFrame,
    pub metric: Metric,
    pub reverse: bool,
    pub parallel: bool,
    /// Per-pipeline cumulative soft budget; `None` = unlimited.
    pub budget: Option<Duration>,
}

impl Executor<'_> {
    fn remaining(&self, spent: Duration) -> Option<Duration> {
        self.budget.map(|b| b.saturating_sub(spent))
    }

    /// Record one unit outcome on a candidate and apply the isolation and
    /// budget policy. Identical in serial and parallel modes.
    fn apply(&self, c: &mut Candidate, alloc_len: usize, unit: EvalUnit) {
        c.scores.push((alloc_len, unit.score));
        c.train_time += unit.elapsed;
        c.allocations += 1;
        match unit.error {
            Some(FailureKind::Crashed(m)) => {
                // corrupt state: quarantine immediately
                c.failure = Some(FailureKind::Crashed(m));
                return;
            }
            Some(kind) => c.last_error = Some(kind),
            None => {}
        }
        if let Some(budget) = self.budget {
            if c.train_time > budget {
                c.failure = Some(FailureKind::TimedOut);
            }
        }
    }

    /// Evaluate one live candidate on one allocation.
    pub fn run_single(&self, c: &mut Candidate, alloc_len: usize) {
        if !c.alive() {
            return;
        }
        let remaining = self.remaining(c.train_time);
        let unit = evaluate_unit(
            &mut c.pipeline,
            self.t1,
            self.t2,
            alloc_len,
            self.metric,
            self.reverse,
            remaining,
        );
        self.apply(c, alloc_len, unit);
    }

    /// Evaluate every live candidate on the same allocation — one T-Daub
    /// fixed-allocation round. In parallel mode the candidates go through
    /// the shared work queue; the recorded outcome sequence is identical to
    /// serial mode.
    pub fn run_round(&self, cands: &mut [Candidate], alloc_len: usize) {
        if !self.parallel {
            for c in cands.iter_mut().filter(|c| c.alive()) {
                self.run_single(c, alloc_len);
            }
            return;
        }
        let mut live: Vec<&mut Candidate> = cands.iter_mut().filter(|c| c.alive()).collect();
        let outcomes: Vec<Result<EvalUnit, WorkerPanic>> = parallel_try_map_mut(&mut live, |c| {
            let remaining = self.remaining(c.train_time);
            evaluate_unit(
                &mut c.pipeline,
                self.t1,
                self.t2,
                alloc_len,
                self.metric,
                self.reverse,
                remaining,
            )
        });
        for (c, outcome) in live.iter_mut().zip(outcomes) {
            // the inner catch_unwind already absorbs pipeline panics; the
            // queue-level WorkerPanic arm is a second net (e.g. a panicking
            // set_time_budget ripping through a poisoned invariant)
            let unit = match outcome {
                Ok(unit) => unit,
                Err(p) => EvalUnit {
                    score: f64::INFINITY,
                    elapsed: Duration::ZERO,
                    error: Some(FailureKind::Crashed(p.message)),
                },
            };
            self.apply(c, alloc_len, unit);
        }
    }

    /// Refit a winner on the full training input, with the same panic
    /// isolation as every other unit of work.
    pub fn fit_full(
        &self,
        pipeline: &mut Box<dyn Forecaster>,
        train: &TimeSeriesFrame,
    ) -> Result<(), PipelineError> {
        match catch_unwind(AssertUnwindSafe(|| pipeline.fit(train))) {
            Ok(result) => result,
            Err(payload) => Err(PipelineError::Crashed(payload_message(payload.as_ref()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Always(f64);
    impl Forecaster for Always {
        fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
            Ok(())
        }
        fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
            Ok(TimeSeriesFrame::univariate(vec![self.0; horizon]))
        }
        fn name(&self) -> String {
            format!("Always({})", self.0)
        }
        fn clone_unfitted(&self) -> Box<dyn Forecaster> {
            Box::new(Always(self.0))
        }
    }

    struct Panicky;
    impl Forecaster for Panicky {
        fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
            panic!("executor test crash")
        }
        fn predict(&self, _: usize) -> Result<TimeSeriesFrame, PipelineError> {
            Err(PipelineError::NotFitted)
        }
        fn name(&self) -> String {
            "Panicky".into()
        }
        fn clone_unfitted(&self) -> Box<dyn Forecaster> {
            Box::new(Panicky)
        }
    }

    fn frames() -> (TimeSeriesFrame, TimeSeriesFrame) {
        let t1 = TimeSeriesFrame::univariate((0..80).map(|i| i as f64).collect());
        let t2 = TimeSeriesFrame::univariate((80..90).map(|i| i as f64).collect());
        (t1, t2)
    }

    #[test]
    fn crash_is_captured_as_typed_failure() {
        let (t1, t2) = frames();
        let exec = Executor {
            t1: &t1,
            t2: &t2,
            metric: Metric::Smape,
            reverse: true,
            parallel: false,
            budget: None,
        };
        let mut c = Candidate::new(Box::new(Panicky));
        exec.run_single(&mut c, 40);
        assert!(!c.alive());
        match &c.failure {
            Some(FailureKind::Crashed(m)) => assert!(m.contains("executor test crash")),
            other => panic!("expected crash, got {other:?}"),
        }
        assert_eq!(c.allocations, 1);
    }

    #[test]
    fn budget_marks_timeout_between_allocations() {
        let (t1, t2) = frames();
        let exec = Executor {
            t1: &t1,
            t2: &t2,
            metric: Metric::Smape,
            reverse: true,
            parallel: false,
            budget: Some(Duration::ZERO),
        };
        let mut c = Candidate::new(Box::new(Always(1.0)));
        exec.run_single(&mut c, 40);
        // the unit itself completes (soft budget), then the deadline fires
        assert_eq!(c.scores.len(), 1);
        assert_eq!(c.failure, Some(FailureKind::TimedOut));
        // a dead candidate receives no further allocations
        exec.run_single(&mut c, 80);
        assert_eq!(c.scores.len(), 1);
    }

    #[test]
    fn round_skips_dead_candidates_and_matches_serial() {
        let (t1, t2) = frames();
        let mk = |parallel| Executor {
            t1: &t1,
            t2: &t2,
            metric: Metric::Smape,
            reverse: true,
            parallel,
            budget: None,
        };
        let build = || {
            vec![
                Candidate::new(Box::new(Always(85.0))),
                Candidate::new(Box::new(Panicky)),
                Candidate::new(Box::new(Always(84.0))),
            ]
        };
        let mut serial = build();
        let mut parallel = build();
        for alloc in [20, 40, 80] {
            mk(false).run_round(&mut serial, alloc);
            mk(true).run_round(&mut parallel, alloc);
        }
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.scores, p.scores, "{}", s.name);
            assert_eq!(s.failure.is_some(), p.failure.is_some());
        }
        // the panicking candidate stopped after its first allocation
        assert_eq!(serial.get(1).map(|c| c.allocations), Some(1));
    }

    #[test]
    fn non_finite_scores_classify_as_nonfinite() {
        let (t1, t2) = frames();
        let exec = Executor {
            t1: &t1,
            t2: &t2,
            metric: Metric::Smape,
            reverse: true,
            parallel: false,
            budget: None,
        };
        let mut c = Candidate::new(Box::new(Always(f64::NAN)));
        exec.run_single(&mut c, 40);
        assert!(c.alive()); // not yet classified — might recover
        c.finalize_failure();
        assert_eq!(c.failure, Some(FailureKind::NonFinite));
    }
}
