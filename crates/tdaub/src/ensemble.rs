//! Greedy forward ensemble selection (Caruana-style, with replacement)
//! over the T-Daub survivor set.
//!
//! Selection runs on the internal T2 holdout using the candidates'
//! **already-fitted** states — predictions only, never a refit, so the
//! `duplicate_fits == 0` invariant and the T-Daub ranking are untouched.
//! Each round adds the candidate whose inclusion minimizes the blended
//! holdout score; replacement is allowed (picking a member twice doubles
//! its weight). The loop stops at the round budget or the first round with
//! no strict improvement. Because round one necessarily picks the best
//! single candidate, the ensemble's holdout score can never be worse than
//! the best single survivor's.
//!
//! Determinism: candidates are visited in rank order and ties broken by
//! strict `<` comparison, so the first (best-ranked) candidate wins ties.
//! All arithmetic is serial regardless of the executor's parallel mode —
//! serial and parallel T-Daub runs hand over bit-identical fitted states,
//! so they select bit-identical ensembles.

use autoai_tsdata::{Metric, TimeSeriesFrame};

/// One selected ensemble member.
#[derive(Debug, Clone)]
pub struct EnsembleMember {
    /// Pipeline display name.
    pub name: String,
    /// Normalized weight (`picks / total picks`), in (0, 1].
    pub weight: f64,
    /// How many greedy rounds picked this member.
    pub picks: usize,
    /// The member's own holdout score (for the contribution report).
    pub solo_score: f64,
}

/// Outcome of greedy forward selection.
#[derive(Debug, Clone)]
pub struct EnsembleSelection {
    /// Selected members in candidate-rank order, weights summing to one.
    pub members: Vec<EnsembleMember>,
    /// Holdout score of the weighted ensemble (same lower-is-better
    /// orientation as the T-Daub ranking).
    pub score: f64,
    /// Best single candidate's holdout score; `score <= best_single` by
    /// construction.
    pub best_single: f64,
    /// Number of greedy rounds actually taken.
    pub rounds: usize,
}

/// Score a blended forecast `(sum + next) / (k + 1)` against the holdout,
/// replicating the `Forecaster::score` semantics: per-series metric, mean
/// across series, higher-is-better metrics negated. Any non-finite value
/// (NaN forecasts from chaos poisoning included) scores `INFINITY` so it
/// can never be selected.
fn blended_score(
    sum: &[Vec<f64>],
    next: &TimeSeriesFrame,
    k: usize,
    t2: &TimeSeriesFrame,
    metric: Metric,
) -> f64 {
    let denom = (k + 1) as f64;
    let mut total = 0.0;
    for ((acc, fs), ts) in sum.iter().zip(next.series_iter()).zip(t2.series_iter()) {
        let blended: Vec<f64> = acc
            .iter()
            .zip(fs.iter())
            .map(|(a, v)| (a + v) / denom)
            .collect();
        if blended.iter().any(|v| !v.is_finite()) {
            return f64::INFINITY;
        }
        let v = metric.eval(ts, &blended);
        if !v.is_finite() {
            return f64::INFINITY;
        }
        total += if metric.higher_is_better() { -v } else { v };
    }
    total / sum.len().max(1) as f64
}

/// Greedy forward selection with replacement. `candidates` are
/// `(name, holdout forecast)` pairs in **rank order** (best first); the
/// forecast must be shaped like `t2`. Returns `None` when fewer than one
/// candidate produces a finite holdout score.
pub fn greedy_select(
    candidates: &[(String, TimeSeriesFrame)],
    t2: &TimeSeriesFrame,
    metric: Metric,
    max_rounds: usize,
) -> Option<EnsembleSelection> {
    if candidates.is_empty() || t2.len() == 0 || t2.n_series() == 0 {
        return None;
    }
    let n_series = t2.n_series();
    let zero: Vec<Vec<f64>> = vec![vec![0.0; t2.len()]; n_series];
    let usable = |f: &TimeSeriesFrame| f.n_series() == n_series && f.len() == t2.len();
    let solo: Vec<f64> = candidates
        .iter()
        .map(|(_, f)| {
            if usable(f) {
                blended_score(&zero, f, 0, t2, metric)
            } else {
                f64::INFINITY
            }
        })
        .collect();
    let best_single = solo.iter().copied().fold(f64::INFINITY, f64::min);
    if !best_single.is_finite() {
        return None;
    }

    let mut sum = zero;
    let mut picks = vec![0usize; candidates.len()];
    let mut rounds = 0usize;
    let mut current = f64::INFINITY;
    for _ in 0..max_rounds.max(1) {
        let mut best: Option<(f64, usize)> = None;
        for (i, (_, f)) in candidates.iter().enumerate() {
            if !usable(f) {
                continue;
            }
            let s = blended_score(&sum, f, rounds, t2, metric);
            if !s.is_finite() {
                continue;
            }
            // strict < keeps the earliest (best-ranked) candidate on ties
            if best.is_none_or(|(bs, _)| s < bs) {
                best = Some((s, i));
            }
        }
        let Some((s, i)) = best else { break };
        if rounds > 0 && s >= current {
            break;
        }
        let Some((_, f)) = candidates.get(i) else {
            break;
        };
        for (acc, fs) in sum.iter_mut().zip(f.series_iter()) {
            for (a, v) in acc.iter_mut().zip(fs.iter()) {
                *a += v;
            }
        }
        if let Some(p) = picks.get_mut(i) {
            *p += 1;
        }
        rounds += 1;
        current = s;
    }
    if rounds == 0 {
        return None;
    }

    let members: Vec<EnsembleMember> = candidates
        .iter()
        .zip(picks.iter().zip(solo.iter()))
        .filter(|(_, (p, _))| **p > 0)
        .map(|((name, _), (p, sc))| EnsembleMember {
            name: name.clone(),
            weight: *p as f64 / rounds as f64,
            picks: *p,
            solo_score: *sc,
        })
        .collect();
    Some(EnsembleSelection {
        members,
        score: current,
        best_single,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uni(vals: Vec<f64>) -> TimeSeriesFrame {
        TimeSeriesFrame::univariate(vals)
    }

    #[test]
    fn single_good_candidate_is_the_ensemble() {
        let t2 = uni(vec![1.0, 2.0, 3.0]);
        let sel = greedy_select(
            &[("A".into(), uni(vec![1.0, 2.0, 3.0]))],
            &t2,
            Metric::Smape,
            8,
        )
        .unwrap();
        assert_eq!(sel.members.len(), 1);
        let m = sel.members.first().unwrap();
        assert_eq!(m.name, "A");
        assert!((m.weight - 1.0).abs() < 1e-12);
        assert_eq!(sel.score, sel.best_single);
    }

    #[test]
    fn complementary_candidates_blend_below_best_single() {
        // truth is the midpoint of two biased forecasts: the blend is exact
        let t2 = uni(vec![10.0, 10.0, 10.0, 10.0]);
        let sel = greedy_select(
            &[
                ("high".into(), uni(vec![12.0, 12.0, 12.0, 12.0])),
                ("low".into(), uni(vec![8.0, 8.0, 8.0, 8.0])),
            ],
            &t2,
            Metric::Smape,
            8,
        )
        .unwrap();
        assert_eq!(sel.members.len(), 2, "{:?}", sel.members);
        assert!(sel.score < sel.best_single);
        assert!(
            sel.score < 1e-9,
            "perfect blend expected, got {}",
            sel.score
        );
        let total: f64 = sel.members.iter().map(|m| m.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ensemble_never_worse_than_best_single() {
        let t2 = uni(vec![5.0, 6.0, 7.0, 8.0, 9.0]);
        let cands = vec![
            ("good".into(), uni(vec![5.1, 6.1, 7.1, 8.1, 9.1])),
            ("bad".into(), uni(vec![50.0, 60.0, 70.0, 80.0, 90.0])),
            ("worse".into(), uni(vec![-5.0, -6.0, -7.0, -8.0, -9.0])),
        ];
        let sel = greedy_select(&cands, &t2, Metric::Smape, 8).unwrap();
        assert!(sel.score <= sel.best_single);
        // the bad candidates must not dominate the weights
        let good_weight = sel
            .members
            .iter()
            .find(|m| m.name == "good")
            .map_or(0.0, |m| m.weight);
        assert!(good_weight >= 0.5, "{:?}", sel.members);
    }

    #[test]
    fn nan_candidates_are_never_selected() {
        let t2 = uni(vec![1.0, 2.0]);
        let sel = greedy_select(
            &[
                ("poisoned".into(), uni(vec![f64::NAN, 2.0])),
                ("ok".into(), uni(vec![1.5, 2.5])),
            ],
            &t2,
            Metric::Smape,
            8,
        )
        .unwrap();
        assert!(sel.members.iter().all(|m| m.name != "poisoned"));
        // all-NaN pool selects nothing
        assert!(greedy_select(
            &[("poisoned".into(), uni(vec![f64::NAN, 2.0]))],
            &t2,
            Metric::Smape,
            8,
        )
        .is_none());
    }

    #[test]
    fn shape_mismatched_candidates_are_skipped() {
        let t2 = uni(vec![1.0, 2.0, 3.0]);
        let sel = greedy_select(
            &[
                ("short".into(), uni(vec![1.0])),
                ("ok".into(), uni(vec![1.0, 2.0, 3.0])),
            ],
            &t2,
            Metric::Smape,
            8,
        )
        .unwrap();
        assert_eq!(sel.members.len(), 1);
        assert_eq!(
            sel.members.first().map(|m| m.name.clone()),
            Some("ok".into())
        );
    }

    #[test]
    fn selection_is_deterministic_and_tie_breaks_by_rank() {
        let t2 = uni(vec![4.0, 5.0, 6.0]);
        // identical forecasts: the first (best-ranked) name must win
        let cands = vec![
            ("first".into(), uni(vec![4.2, 5.2, 6.2])),
            ("second".into(), uni(vec![4.2, 5.2, 6.2])),
        ];
        let a = greedy_select(&cands, &t2, Metric::Smape, 8).unwrap();
        let b = greedy_select(&cands, &t2, Metric::Smape, 8).unwrap();
        assert_eq!(a.members.len(), 1);
        assert_eq!(
            a.members.first().map(|m| m.name.clone()),
            Some("first".into())
        );
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn empty_inputs_select_nothing() {
        assert!(greedy_select(&[], &uni(vec![1.0]), Metric::Smape, 8).is_none());
        assert!(
            greedy_select(&[("a".into(), uni(vec![]))], &uni(vec![]), Metric::Smape, 8).is_none()
        );
    }
}
