//! The T-Daub algorithm (Algorithm 1 of the paper), driven by the
//! fault-isolated, budgeted [`executor`](crate::executor).

use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

use autoai_pipelines::{Forecaster, PipelineError};
use autoai_transforms::TransformCache;
use autoai_tsdata::{Metric, TimeSeriesFrame};

use crate::ensemble::{greedy_select, EnsembleSelection};
use crate::executor::{execution_report, Candidate, ExecutionReport, Executor};

/// T-Daub configuration; field names follow the paper's §4.2 definitions.
#[derive(Debug, Clone)]
pub struct TDaubConfig {
    /// The smallest data chunk provided to pipelines.
    pub min_allocation_size: usize,
    /// The increment to the allocation size (post-cutoff allocations are
    /// rounded to multiples of this).
    pub allocation_size: usize,
    /// Limit for fixed-size allocation; `None` = 5 × `allocation_size`
    /// (the paper's default).
    pub fixed_allocation_cutoff: Option<usize>,
    /// Geometric multiplier applied after the cutoff.
    pub geo_increment_size: f64,
    /// How many top pipelines run on all data in the scoring step.
    pub run_to_completion: usize,
    /// Scoring metric (paper: SMAPE).
    pub metric: Metric,
    /// Fraction of T reserved as the internal test split T2.
    pub test_fraction: f64,
    /// Evaluate pipelines in parallel within each fixed-allocation round.
    pub parallel: bool,
    /// Allocate most-recent-data-first (the T-Daub contribution). `false`
    /// reproduces the original DAUB's oldest-first allocation (ablation A3).
    pub reverse_allocation: bool,
    /// Rank by projected full-data score (`true`) or by the last observed
    /// allocation score (`false`, ablation).
    pub use_projection: bool,
    /// Per-pipeline soft wall-clock budget, cumulative across that
    /// pipeline's allocations. The deadline is cooperative — checked between
    /// allocations, never mid-fit — so a pipeline overshoots by at most one
    /// unit of work. A pipeline over budget stops receiving data, is
    /// excluded from the final ranking, and is reported as
    /// [`crate::FailureKind::TimedOut`]. `None` (default) = unlimited.
    pub pipeline_time_budget: Option<Duration>,
    /// Per-unit **hard** wall-clock deadline, enforced by a supervising
    /// watchdog rather than cooperatively: a fit+score unit still running
    /// when the deadline expires is abandoned on its (detached) worker
    /// thread and the pipeline is quarantined as
    /// [`crate::FailureKind::HardTimeout`]. This bounds `run_tdaub`'s wall
    /// time even against a pipeline that never returns. `None` (default)
    /// derives the deadline as 4× `pipeline_time_budget` when a soft budget
    /// is set, and disables the watchdog entirely otherwise.
    pub pipeline_hard_deadline: Option<Duration>,
    /// Whole-*run* hard wall-clock deadline for the selection process,
    /// measured from `run_tdaub` entry. Cooperative at phase granularity:
    /// checked before every fixed-allocation round (after the first, so
    /// every pipeline holds at least one score), every acceleration step,
    /// and every run-to-completion finalist. When it expires the remaining
    /// evaluation work is skipped and the survivors are ranked from the
    /// evidence gathered so far; [`ExecutionReport::run_deadline_hit`] is
    /// set and the orchestrator degrades the run to
    /// `DegradationLevel::Survivors`. `None` (default) = unlimited.
    pub run_hard_deadline: Option<Duration>,
    /// Share one [`TransformCache`] across the pool so pipelines with the
    /// same look-back reuse flattened design matrices within a round.
    /// `false` gives the uncached comparison mode used by benches and the
    /// isolation suite; rankings are identical either way.
    pub transform_cache: bool,
    /// Offer warm-started [`Forecaster::fit_incremental`] refits when a
    /// reverse allocation extends a candidate's previous fit. Cheap models
    /// (tier 1: ZeroModel, SeasonalNaive, AR, Theta) only accept when the
    /// warm state is bit-identical to a full fit. The heavy models (tier 2:
    /// Holt-Winters, ARIMA, BATS, the AutoEnsembler family) accept
    /// deterministic
    /// seeded restarts — verified against the previous fit's frame
    /// fingerprint, falling back to a cold fit whenever the data lineage
    /// does not extend the prior allocation. Disabling this (`false`)
    /// changes wall time, never the ranking order.
    pub incremental: bool,
    /// How many top-ranked survivors enter greedy forward ensemble
    /// selection after the final ranking. Selection uses the candidates'
    /// already-fitted states — holdout predictions only, zero additional
    /// fits — and never changes the single-winner ranking. `0` or `1`
    /// disables ensembling ([`TDaubResult::ensemble`] stays `None`).
    pub ensemble_top_k: usize,
    /// Maximum greedy selection rounds (picks with replacement). More
    /// rounds allow finer weights; the loop stops early at the first round
    /// without strict improvement.
    pub ensemble_rounds: usize,
    /// How many times a unit of work that ended in a **typed error**
    /// ([`crate::FailureKind::Errored`]) is re-run before the error stands —
    /// transient failures (a solver hiccup, an injected chaos error) get a
    /// second chance within the round's budget. Crashes and hard timeouts
    /// are never retried: their state is quarantined. Retries are counted in
    /// [`ExecutionReport::retries`]; serial and parallel runs retry
    /// identically, so determinism is preserved.
    pub retry_transient: u8,
    /// Warm-start priors from a previous run's ranking (best first):
    /// pipelines named here are evaluated first, in prior order, before the
    /// rest of the pool. Pure scheduling — per-pipeline scores and the final
    /// rank sort are unaffected. The service layer passes the previous
    /// [`crate::TDaubResult`] ranking here when a drift-triggered
    /// re-selection re-runs the search.
    pub warm_priors: Option<Vec<String>>,
}

impl Default for TDaubConfig {
    fn default() -> Self {
        Self {
            min_allocation_size: 50,
            allocation_size: 50,
            fixed_allocation_cutoff: None,
            geo_increment_size: 2.0,
            run_to_completion: 1,
            metric: Metric::Smape,
            test_fraction: 0.2,
            parallel: true,
            reverse_allocation: true,
            use_projection: true,
            pipeline_time_budget: None,
            pipeline_hard_deadline: None,
            run_hard_deadline: None,
            transform_cache: true,
            incremental: true,
            ensemble_top_k: 3,
            ensemble_rounds: 8,
            retry_transient: 1,
            warm_priors: None,
        }
    }
}

/// Evaluation record for one pipeline that survived to the final ranking.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Pipeline display name.
    pub name: String,
    /// `(allocation length, score)` pairs observed during allocation.
    pub scores: Vec<(usize, f64)>,
    /// Score projected to the full training length.
    pub projected_score: f64,
    /// Holdout score after full-data training (only for pipelines that ran
    /// to completion).
    pub final_score: Option<f64>,
    /// Wall-clock time spent fitting/scoring this pipeline.
    pub train_time: Duration,
    /// Final rank (1 = best).
    pub rank: usize,
}

/// Outcome of a T-Daub run.
pub struct TDaubResult {
    /// Per-pipeline evaluation reports for the **survivors**, ranked best
    /// first. Pipelines that crashed, errored out, timed out, or never
    /// produced a finite score are excluded — see [`TDaubResult::execution`]
    /// for their accounting.
    pub reports: Vec<PipelineReport>,
    /// The winning pipeline, retrained on the **entire** training input
    /// (the paper's final step: "the best pipelines(s) are trained on entire
    /// training dataset").
    pub best: Box<dyn Forecaster>,
    /// Total wall-clock time of the selection process.
    pub total_time: Duration,
    /// Per-pipeline execution accounting (wall time, allocations attempted,
    /// failure kind) for the whole pool, including excluded pipelines.
    pub execution: ExecutionReport,
    /// Greedy forward ensemble selection over the top
    /// [`TDaubConfig::ensemble_top_k`] survivors, when enabled and at least
    /// two survivors produced usable holdout forecasts. Purely additive:
    /// [`TDaubResult::best`] and the ranking are identical whether or not
    /// ensembling ran.
    pub ensemble: Option<EnsembleSelection>,
}

/// Run T-Daub over a pipeline pool (Algorithm 1).
///
/// `train` is the 80% training split of the user's data (the holdout for
/// final reporting is handled by the caller). Returns the ranked reports
/// and the winner refitted on all of `train`.
///
/// Execution is fault-isolated: a pipeline that panics, errors on every
/// allocation, exceeds `config.pipeline_time_budget`, or only ever yields
/// non-finite scores is removed from the pool and recorded in the returned
/// [`ExecutionReport`]; the survivors are still ranked. Only when *every*
/// pipeline fails does `run_tdaub` return an error.
pub fn run_tdaub(
    pipelines: Vec<Box<dyn Forecaster>>,
    train: &TimeSeriesFrame,
    config: &TDaubConfig,
) -> Result<TDaubResult, PipelineError> {
    run_tdaub_with_cache(pipelines, train, config, None)
}

/// [`run_tdaub`] with a caller-owned [`TransformCache`] shared **across**
/// runs. A long-lived service passes the same cache for every request on the
/// same series, so flattened design matrices built by one run are reused by
/// the next when the frame fingerprints extend (same buffers, grown tail).
/// `None` falls back to the per-run cache governed by
/// [`TDaubConfig::transform_cache`]. The cache affects wall time only —
/// rankings are identical with or without it.
pub fn run_tdaub_with_cache(
    pipelines: Vec<Box<dyn Forecaster>>,
    train: &TimeSeriesFrame,
    config: &TDaubConfig,
    shared_cache: Option<Arc<TransformCache>>,
) -> Result<TDaubResult, PipelineError> {
    if pipelines.is_empty() {
        return Err(PipelineError::InvalidInput(
            "run_tdaub requires at least one pipeline".into(),
        ));
    }
    let t_start = Instant::now();
    let n = train.len();

    let mut cands: Vec<Candidate> = pipelines.into_iter().map(Candidate::new).collect();

    // Warm priors: move pipelines ranked by a previous run to the front, in
    // prior order, so they hit the score memo / incremental tiers first.
    // Scheduling only — every candidate is still evaluated and the final
    // rank sort is by score.
    if let Some(priors) = &config.warm_priors {
        let mut prioritized: Vec<Candidate> = Vec::with_capacity(cands.len());
        for prior in priors {
            if let Some(pos) = cands.iter().position(|c| &c.name == prior) {
                prioritized.push(cands.remove(pos));
            }
        }
        prioritized.append(&mut cands);
        cands = prioritized;
    }

    // T-Daub executes only if the dataset is larger than min_allocation_size;
    // otherwise every pipeline is ranked on the full data directly (§4.2).
    let small_data = n <= config.min_allocation_size + 4;

    // split T into {T1, T2}
    let t2_len =
        ((n as f64 * config.test_fraction).round() as usize).clamp(1, n.saturating_sub(2).max(1));
    let t1 = train.slice(0, n - t2_len);
    let t2 = train.slice(n - t2_len, n);
    let l = t1.len();

    // an explicit hard deadline wins; otherwise derive one from the soft
    // budget (4× leaves cooperative early-exit room before the watchdog
    // fires) — no budget at all means no watchdog threads
    let hard_deadline = config.pipeline_hard_deadline.or(config
        .pipeline_time_budget
        .filter(|b| !b.is_zero())
        .map(|b| b * 4));

    // whole-run deadline: cooperative at phase granularity. `expired` is
    // re-sampled before each round / acceleration step / finalist; once it
    // fires, the remaining evaluation work is skipped and the survivors are
    // ranked from the evidence gathered so far.
    let run_deadline = config.run_hard_deadline.map(|d| t_start + d);
    let expired = || run_deadline.is_some_and(|d| Instant::now() >= d);
    let mut run_deadline_hit = false;

    let exec = Executor {
        t1: &t1,
        t2: &t2,
        metric: config.metric,
        reverse: config.reverse_allocation,
        parallel: config.parallel,
        budget: config.pipeline_time_budget,
        cache: shared_cache.or_else(|| {
            config
                .transform_cache
                .then(TransformCache::new)
                .map(Arc::new)
        }),
        incremental: config.incremental,
        retry_transient: config.retry_transient,
        hard_deadline,
        chaos_start: autoai_chaos::injected_count(),
        slice_bytes_avoided: AtomicU64::new(0),
        incremental_fits: AtomicU64::new(0),
        fits_avoided: AtomicU64::new(0),
        duplicate_fits: AtomicU64::new(0),
        retries: AtomicU64::new(0),
    };

    if small_data {
        exec.run_round(&mut cands, l);
        for c in cands.iter_mut().filter(|c| c.alive()) {
            if let Some(&(_, score)) = c.scores.last() {
                c.projected = score;
                c.final_score = Some(score);
            }
        }
    } else {
        // ---- 1. fixed allocation ----
        let cutoff = config
            .fixed_allocation_cutoff
            .unwrap_or(5 * config.allocation_size)
            .min(l);
        let num_fix_runs = (cutoff / config.min_allocation_size).max(1);
        for i in 1..=num_fix_runs {
            // the first round always runs so every pipeline holds at least
            // one score the ranking can use
            if i > 1 && expired() {
                run_deadline_hit = true;
                break;
            }
            let alloc = (config.min_allocation_size * i).min(l);
            exec.run_round(&mut cands, alloc);
            if alloc == l {
                break;
            }
        }
        for c in cands.iter_mut().filter(|c| c.alive()) {
            c.project(l, config.use_projection, config.metric);
        }

        // ---- 2. allocation acceleration ----
        // Only the (current) top pipeline gets more data; its allocation
        // grows geometrically from its own largest allocation so far,
        // rounded **up** to allocation_size multiples and floored at one
        // allocation_size above the previous step (lines 9–17) — rounding
        // down would let `geo_increment_size < 1 + allocation_size /
        // top_last` re-issue the same allocation forever. The priority
        // queue keeps re-ranking after every evaluation: the loop ends when
        // the projected-best pipeline has a *confirmed* full-data score —
        // stopping after the first full-length fit would crown a pipeline
        // whose optimistic projection the data then contradicts.
        let base_alloc = config.min_allocation_size * num_fix_runs;
        // generous budget: every pipeline could in principle climb the
        // geometric ladder to full length
        let max_accel_steps =
            cands.len() * (2 + (l / config.allocation_size.max(1)).max(1).ilog2() as usize + 1);
        for _ in 0..max_accel_steps {
            if run_deadline_hit || expired() {
                run_deadline_hit = true;
                break;
            }
            let top = cands
                .iter()
                .enumerate()
                .filter(|(_, c)| c.alive() && c.projected.is_finite())
                .min_by(|a, b| a.1.projected.total_cmp(&b.1.projected))
                .map(|(i, _)| i);
            let Some(top) = top else { break };
            let Some(c) = cands.get_mut(top) else { break };
            let top_last = c.best_finite_alloc().unwrap_or(base_alloc);
            if top_last >= l {
                // the current leader has proven itself on all the data
                break;
            }
            let grown = ((top_last.max(base_alloc) as f64 * config.geo_increment_size)
                / config.allocation_size.max(1) as f64)
                .ceil() as usize;
            let next = grown
                .max(1)
                .saturating_mul(config.allocation_size)
                .max(top_last.saturating_add(config.allocation_size));
            let alloc = next.min(l);
            exec.run_single(c, alloc);
            if !c.alive() {
                continue;
            }
            let last_finite = c.scores.last().is_some_and(|(_, s)| s.is_finite());
            if !last_finite && alloc >= l {
                // cannot even fit on the full data: out of the running
                c.projected = f64::INFINITY;
            } else {
                c.project(l, config.use_projection, config.metric);
            }
        }

        // ---- 3. T-Daub scoring ----
        // the top run_to_completion pipelines train on all of T1 and are
        // ranked by their true T2 score.
        let mut order: Vec<(f64, usize)> = cands
            .iter()
            .enumerate()
            .filter(|(_, c)| c.alive() && c.projected.is_finite())
            .map(|(i, c)| (c.projected, i))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(_, i) in order.iter().take(config.run_to_completion.max(1)) {
            if run_deadline_hit || expired() {
                run_deadline_hit = true;
                break;
            }
            let Some(c) = cands.get_mut(i) else { continue };
            // A finalist that already fit the full length during
            // acceleration is served from the executor's fingerprint memo:
            // `run_single` replays the recorded score instead of refitting
            // identical data across the phase boundary.
            exec.run_single(c, l);
            c.final_score = c
                .alive()
                .then(|| c.scores.last().map_or(f64::INFINITY, |&(_, s)| s));
        }
    }

    // ---- 4. failure classification + final ranking ----
    // candidates still alive but without a single finite score become typed
    // failures; survivors are ranked — completed pipelines by final score,
    // then the rest by projected score.
    for c in cands.iter_mut() {
        c.finalize_failure();
    }
    let mut execution = execution_report(&cands, &exec);
    execution.run_deadline_hit = run_deadline_hit;

    let mut order: Vec<(bool, f64, usize)> = cands
        .iter()
        .enumerate()
        .filter(|(_, c)| c.alive())
        .map(|(i, c)| {
            (
                c.final_score.is_none(),
                c.final_score.unwrap_or(c.projected),
                i,
            )
        })
        .collect();
    order.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.total_cmp(&b.1)));

    let viable = order.first().is_some_and(|&(no_final, key, _)| {
        // the best survivor must carry a usable signal: either a confirmed
        // final score or a finite projection
        !no_final || key.is_finite()
    });
    if !viable {
        return Err(PipelineError::Fit(
            "every pipeline failed during T-Daub".into(),
        ));
    }

    // ---- 5. greedy ensemble selection over the top survivors ----
    // predictions from the candidates' already-fitted states only: zero
    // additional fits (`duplicate_fits == 0` holds) and no effect on the
    // ranking above. A panicking predict (aggressive chaos) just excludes
    // that candidate.
    let ensemble = if config.ensemble_top_k >= 2 {
        let mut entries: Vec<(String, TimeSeriesFrame)> = Vec::new();
        for &(_, _, i) in order.iter().take(config.ensemble_top_k) {
            let Some(c) = cands.get(i) else { continue };
            let pred = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c.pipeline.predict(t2.len())
            }));
            if let Ok(Ok(pred)) = pred {
                entries.push((c.name.clone(), pred));
            }
        }
        if entries.len() >= 2 {
            greedy_select(&entries, &t2, config.metric, config.ensemble_rounds)
        } else {
            None
        }
    } else {
        None
    };

    // retrain the winner on the entire training input (isolated like every
    // other unit of work: a panic here is a typed Crashed error, not an
    // abort)
    let best_idx = order.first().map_or(0, |&(_, _, i)| i);
    let mut best = cands
        .get(best_idx)
        .map(|c| c.pipeline.clone_unfitted())
        .ok_or_else(|| PipelineError::Fit("winner index out of range".into()))?;
    let fit_start = Instant::now();
    exec.fit_full(&mut best, train)?;
    if let Some(c) = cands.get_mut(best_idx) {
        c.train_time += fit_start.elapsed();
    }

    let reports: Vec<PipelineReport> = order
        .iter()
        .enumerate()
        .filter_map(|(rank, &(_, _, i))| {
            cands.get(i).map(|c| PipelineReport {
                name: c.name.clone(),
                scores: c.scores.clone(),
                projected_score: c.projected,
                final_score: c.final_score,
                train_time: c.train_time,
                rank: rank + 1,
            })
        })
        .collect();

    Ok(TDaubResult {
        reports,
        best,
        total_time: t_start.elapsed(),
        execution,
        ensemble,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::FailureKind;
    use autoai_pipelines::{Mt2rForecaster, ThetaPipeline, ZeroModelPipeline};

    fn seasonal_frame(n: usize) -> TimeSeriesFrame {
        TimeSeriesFrame::univariate(
            (0..n)
                .map(|i| 20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin())
                .collect(),
        )
    }

    fn pool() -> Vec<Box<dyn Forecaster>> {
        vec![
            Box::new(ZeroModelPipeline::new()),
            Box::new(Mt2rForecaster::new(12, 6)),
            Box::new(ThetaPipeline::new()),
        ]
    }

    #[test]
    fn tdaub_picks_the_seasonal_model() {
        let frame = seasonal_frame(500);
        let cfg = TDaubConfig {
            parallel: false,
            ..Default::default()
        };
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        // MT2R can model the seasonality; ZeroModel and Theta cannot
        assert_eq!(
            result.best.name(),
            "MT2RForecaster",
            "ranking: {:?}",
            result
                .reports
                .iter()
                .map(|r| (&r.name, r.final_score))
                .collect::<Vec<_>>()
        );
        assert_eq!(result.reports[0].rank, 1);
    }

    #[test]
    fn best_pipeline_is_refitted_and_predicts() {
        let frame = seasonal_frame(400);
        let result = run_tdaub(pool(), &frame, &TDaubConfig::default()).unwrap();
        let f = result.best.predict(12).unwrap();
        assert_eq!(f.len(), 12);
        assert!(f.series(0).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn small_dataset_bypasses_allocation() {
        // shorter than min_allocation_size → everything runs on full data
        let frame = seasonal_frame(40);
        let cfg = TDaubConfig {
            min_allocation_size: 50,
            parallel: false,
            ..Default::default()
        };
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        for r in &result.reports {
            assert_eq!(r.scores.len(), 1, "{}: {:?}", r.name, r.scores);
            assert!(r.final_score.is_some());
        }
    }

    #[test]
    fn allocations_grow_and_stay_reverse() {
        let frame = seasonal_frame(600);
        let cfg = TDaubConfig {
            min_allocation_size: 50,
            allocation_size: 50,
            parallel: false,
            ..Default::default()
        };
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        // fixed allocations 50, 100, ..., 250 present for every pipeline
        for r in &result.reports {
            let allocs: Vec<usize> = r.scores.iter().map(|(a, _)| *a).collect();
            assert!(
                allocs.windows(2).all(|w| w[1] >= w[0]),
                "{}: {allocs:?}",
                r.name
            );
            assert!(allocs[0] == 50, "{allocs:?}");
        }
    }

    #[test]
    fn small_geometric_increment_still_grows_every_acceleration_step() {
        // regression: with geo_increment_size < 1 + allocation_size/top_last
        // the old floor-based growth re-issued the leader's current
        // allocation forever. Ceiling growth plus the one-allocation_size
        // minimum step must make every acceleration allocation strictly
        // larger than the last.
        let frame = seasonal_frame(600);
        let cfg = TDaubConfig {
            min_allocation_size: 50,
            allocation_size: 50,
            geo_increment_size: 1.1,
            parallel: false,
            ..Default::default()
        };
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        let l = 600 - (600.0_f64 * cfg.test_fraction).round() as usize;
        let mut reached_full = false;
        for r in &result.reports {
            let allocs: Vec<usize> = r.scores.iter().map(|(a, _)| *a).collect();
            // no allocation below full length may repeat; the full length
            // appears at most twice (acceleration confirm + the scoring
            // phase replaying it from the memo)
            let mut counts = std::collections::HashMap::new();
            for a in &allocs {
                *counts.entry(*a).or_insert(0usize) += 1;
            }
            for (a, k) in counts {
                let cap = if a == l { 2 } else { 1 };
                assert!(
                    k <= cap,
                    "{}: allocation {a} issued {k}x: {allocs:?}",
                    r.name
                );
            }
            reached_full |= allocs.contains(&l);
        }
        assert!(
            reached_full,
            "the acceleration ladder stalled before full length: {:?}",
            result
                .reports
                .iter()
                .map(|r| (&r.name, r.scores.clone()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn failing_pipeline_is_excluded_and_reported_not_fatal() {
        /// A pipeline that always fails to fit.
        struct Broken;
        impl Forecaster for Broken {
            fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
                Err(PipelineError::Fit("always broken".into()))
            }
            fn predict(&self, _: usize) -> Result<TimeSeriesFrame, PipelineError> {
                Err(PipelineError::NotFitted)
            }
            fn name(&self) -> String {
                "Broken".into()
            }
            fn clone_unfitted(&self) -> Box<dyn Forecaster> {
                Box::new(Broken)
            }
        }
        let mut pipelines = pool();
        pipelines.push(Box::new(Broken));
        let frame = seasonal_frame(400);
        let result = run_tdaub(pipelines, &frame, &TDaubConfig::default()).unwrap();
        // excluded from the ranking, reported as a typed failure
        assert!(result.reports.iter().all(|r| r.name != "Broken"));
        assert_ne!(result.best.name(), "Broken");
        let entry = result.execution.find("Broken").unwrap();
        assert!(
            matches!(entry.failure, Some(FailureKind::Errored(_))),
            "{:?}",
            entry.failure
        );
        assert!(entry.allocations >= 1);
        assert_eq!(result.execution.survivors(), 3);
    }

    #[test]
    fn all_failing_is_an_error() {
        struct Broken;
        impl Forecaster for Broken {
            fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
                Err(PipelineError::Fit("nope".into()))
            }
            fn predict(&self, _: usize) -> Result<TimeSeriesFrame, PipelineError> {
                Err(PipelineError::NotFitted)
            }
            fn name(&self) -> String {
                "Broken".into()
            }
            fn clone_unfitted(&self) -> Box<dyn Forecaster> {
                Box::new(Broken)
            }
        }
        let frame = seasonal_frame(300);
        let r = run_tdaub(vec![Box::new(Broken)], &frame, &TDaubConfig::default());
        assert!(r.is_err());
    }

    #[test]
    fn forward_allocation_ablation_runs() {
        let frame = seasonal_frame(400);
        let cfg = TDaubConfig {
            reverse_allocation: false,
            parallel: false,
            ..Default::default()
        };
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        assert!(!result.reports.is_empty());
    }

    #[test]
    fn last_score_ranking_ablation_runs() {
        let frame = seasonal_frame(400);
        let cfg = TDaubConfig {
            use_projection: false,
            parallel: false,
            ..Default::default()
        };
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        assert!(result.reports[0].final_score.is_some());
    }

    #[test]
    fn parallel_and_serial_agree_on_winner() {
        let frame = seasonal_frame(500);
        let serial = run_tdaub(
            pool(),
            &frame,
            &TDaubConfig {
                parallel: false,
                ..Default::default()
            },
        )
        .unwrap();
        let par = run_tdaub(
            pool(),
            &frame,
            &TDaubConfig {
                parallel: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(serial.best.name(), par.best.name());
    }

    #[test]
    fn run_to_completion_runs_multiple_finalists() {
        let frame = seasonal_frame(500);
        let cfg = TDaubConfig {
            run_to_completion: 3,
            parallel: false,
            ..Default::default()
        };
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        let finals = result
            .reports
            .iter()
            .filter(|r| r.final_score.is_some())
            .count();
        assert!(finals >= 3, "{finals} finalists");
    }

    #[test]
    fn execution_report_covers_every_pipeline() {
        let frame = seasonal_frame(400);
        let result = run_tdaub(pool(), &frame, &TDaubConfig::default()).unwrap();
        assert_eq!(result.execution.pipelines.len(), 3);
        assert_eq!(result.execution.survivors(), 3);
        assert!(result.execution.total_allocations() >= 3);
        for p in &result.execution.pipelines {
            assert!(p.failure.is_none(), "{}: {:?}", p.name, p.failure);
        }
    }

    #[test]
    fn ensemble_selection_runs_by_default_and_beats_no_single() {
        let frame = seasonal_frame(500);
        let cfg = TDaubConfig {
            parallel: false,
            ..Default::default()
        };
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        let sel = result.ensemble.expect("default config must select");
        let total: f64 = sel.members.iter().map(|m| m.weight).sum();
        assert!((total - 1.0).abs() < 1e-12, "weights sum {total}");
        assert!(
            sel.score <= sel.best_single,
            "ensemble {} worse than best single {}",
            sel.score,
            sel.best_single
        );
        assert!(sel.rounds >= 1);
    }

    #[test]
    fn disabling_ensembling_leaves_ranking_bit_identical() {
        let frame = seasonal_frame(500);
        let on = run_tdaub(
            pool(),
            &frame,
            &TDaubConfig {
                parallel: false,
                ..Default::default()
            },
        )
        .unwrap();
        let off = run_tdaub(
            pool(),
            &frame,
            &TDaubConfig {
                parallel: false,
                ensemble_top_k: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(on.ensemble.is_some());
        assert!(off.ensemble.is_none());
        assert_eq!(on.best.name(), off.best.name());
        assert_eq!(on.reports.len(), off.reports.len());
        for (a, b) in on.reports.iter().zip(off.reports.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.rank, b.rank);
            assert_eq!(
                a.projected_score.to_bits(),
                b.projected_score.to_bits(),
                "{} projected diverged",
                a.name
            );
            assert_eq!(
                a.final_score.map(f64::to_bits),
                b.final_score.map(f64::to_bits),
                "{} final diverged",
                a.name
            );
        }
    }

    #[test]
    fn ensemble_selection_is_deterministic_across_runs() {
        let frame = seasonal_frame(500);
        let run = |parallel: bool| {
            run_tdaub(
                pool(),
                &frame,
                &TDaubConfig {
                    parallel,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let sig = |r: &TDaubResult| {
            r.ensemble.as_ref().map(|s| {
                (
                    s.score.to_bits(),
                    s.rounds,
                    s.members
                        .iter()
                        .map(|m| (m.name.clone(), m.picks, m.weight.to_bits()))
                        .collect::<Vec<_>>(),
                )
            })
        };
        let a = run(false);
        let b = run(false);
        let c = run(true);
        assert_eq!(sig(&a), sig(&b), "serial reruns diverged");
        assert_eq!(sig(&a), sig(&c), "serial vs parallel diverged");
        assert!(sig(&a).is_some());
    }

    #[test]
    fn run_hard_deadline_degrades_to_ranked_survivors() {
        let frame = seasonal_frame(500);
        let cfg = TDaubConfig {
            run_hard_deadline: Some(Duration::ZERO),
            parallel: false,
            ..Default::default()
        };
        // the deadline is already expired at entry, yet the first fixed
        // round always runs: every pipeline holds at least one score and the
        // run still returns ranked survivors instead of an error
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        assert!(result.execution.run_deadline_hit, "flag not set");
        assert!(!result.reports.is_empty(), "no survivors ranked");
        assert_eq!(result.reports.first().map(|r| r.rank), Some(1));
        // the truncated run skipped the scoring phase entirely
        assert!(result.reports.iter().all(|r| r.final_score.is_none()));
    }

    #[test]
    fn generous_run_deadline_changes_nothing() {
        let frame = seasonal_frame(400);
        let base = run_tdaub(
            pool(),
            &frame,
            &TDaubConfig {
                parallel: false,
                ..Default::default()
            },
        )
        .unwrap();
        let timed = run_tdaub(
            pool(),
            &frame,
            &TDaubConfig {
                parallel: false,
                run_hard_deadline: Some(Duration::from_secs(3600)),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!timed.execution.run_deadline_hit);
        assert_eq!(base.best.name(), timed.best.name());
        assert_eq!(base.reports.len(), timed.reports.len());
        for (a, b) in base.reports.iter().zip(timed.reports.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(
                a.projected_score.to_bits(),
                b.projected_score.to_bits(),
                "{} projected diverged under a generous deadline",
                a.name
            );
        }
    }
}
