//! The T-Daub algorithm (Algorithm 1 of the paper).

use std::time::{Duration, Instant};

use autoai_linalg::{parallel_map_mut, simple_linreg};
use autoai_pipelines::{Forecaster, PipelineError};
use autoai_tsdata::{Metric, TimeSeriesFrame};

/// T-Daub configuration; field names follow the paper's §4.2 definitions.
#[derive(Debug, Clone)]
pub struct TDaubConfig {
    /// The smallest data chunk provided to pipelines.
    pub min_allocation_size: usize,
    /// The increment to the allocation size (post-cutoff allocations are
    /// rounded to multiples of this).
    pub allocation_size: usize,
    /// Limit for fixed-size allocation; `None` = 5 × `allocation_size`
    /// (the paper's default).
    pub fixed_allocation_cutoff: Option<usize>,
    /// Geometric multiplier applied after the cutoff.
    pub geo_increment_size: f64,
    /// How many top pipelines run on all data in the scoring step.
    pub run_to_completion: usize,
    /// Scoring metric (paper: SMAPE).
    pub metric: Metric,
    /// Fraction of T reserved as the internal test split T2.
    pub test_fraction: f64,
    /// Evaluate pipelines in parallel within each fixed-allocation round.
    pub parallel: bool,
    /// Allocate most-recent-data-first (the T-Daub contribution). `false`
    /// reproduces the original DAUB's oldest-first allocation (ablation A3).
    pub reverse_allocation: bool,
    /// Rank by projected full-data score (`true`) or by the last observed
    /// allocation score (`false`, ablation).
    pub use_projection: bool,
}

impl Default for TDaubConfig {
    fn default() -> Self {
        Self {
            min_allocation_size: 50,
            allocation_size: 50,
            fixed_allocation_cutoff: None,
            geo_increment_size: 2.0,
            run_to_completion: 1,
            metric: Metric::Smape,
            test_fraction: 0.2,
            parallel: true,
            reverse_allocation: true,
            use_projection: true,
        }
    }
}

/// Evaluation record for one pipeline.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Pipeline display name.
    pub name: String,
    /// `(allocation length, score)` pairs observed during allocation.
    pub scores: Vec<(usize, f64)>,
    /// Score projected to the full training length.
    pub projected_score: f64,
    /// Holdout score after full-data training (only for pipelines that ran
    /// to completion).
    pub final_score: Option<f64>,
    /// Wall-clock time spent fitting/scoring this pipeline.
    pub train_time: Duration,
    /// Final rank (1 = best).
    pub rank: usize,
}

/// Outcome of a T-Daub run.
pub struct TDaubResult {
    /// Per-pipeline evaluation reports, ranked best first.
    pub reports: Vec<PipelineReport>,
    /// The winning pipeline, retrained on the **entire** training input
    /// (the paper's final step: "the best pipelines(s) are trained on entire
    /// training dataset").
    pub best: Box<dyn Forecaster>,
    /// Total wall-clock time of the selection process.
    pub total_time: Duration,
}

/// Internal per-pipeline state during the run.
struct Candidate {
    pipeline: Box<dyn Forecaster>,
    name: String,
    scores: Vec<(usize, f64)>,
    projected: f64,
    final_score: Option<f64>,
    train_time: Duration,
    failed: bool,
}

impl Candidate {
    fn project(&mut self, full_len: usize, use_projection: bool, metric: Metric) {
        let ok: Vec<&(usize, f64)> = self.scores.iter().filter(|(_, s)| s.is_finite()).collect();
        if ok.is_empty() {
            self.projected = f64::INFINITY;
            self.failed = true;
            return;
        }
        // a full-length observation is ground truth; no projection needed
        if let Some(&&(alloc, s)) = ok.iter().rev().find(|&&&(alloc, _)| alloc >= full_len) {
            let _ = alloc;
            self.projected = s;
            return;
        }
        if !use_projection || ok.len() == 1 {
            // `ok` is non-empty: the is_empty branch above already returned
            self.projected = ok.last().map_or(f64::INFINITY, |&&(_, s)| s);
            return;
        }
        let t: Vec<f64> = ok.iter().map(|(l, _)| *l as f64).collect();
        let y: Vec<f64> = ok.iter().map(|(_, s)| *s).collect();
        let (a, b) = simple_linreg(&t, &y);
        let mut projected = a + b * full_len as f64;
        // SMAPE/MAE/RMSE/MAPE are bounded below by 0 — an extrapolated
        // learning curve must not cross that floor, or a mediocre pipeline
        // with a steep partial-score slope outranks a near-perfect one
        if !metric.higher_is_better() {
            projected = projected.max(0.0);
        }
        self.projected = projected;
    }
}

/// Train a pipeline on an allocation of `t1` and score it on `t2`.
/// Returns `(score, elapsed)`; failures yield `+inf`.
fn evaluate(
    pipeline: &mut Box<dyn Forecaster>,
    t1: &TimeSeriesFrame,
    t2: &TimeSeriesFrame,
    alloc_len: usize,
    metric: Metric,
    reverse: bool,
) -> (f64, Duration) {
    let l = t1.len();
    let alloc_len = alloc_len.min(l);
    let slice = if reverse {
        // most recent data: T1[L - alloc + 1 : L] in the paper's notation
        t1.slice(l - alloc_len, l)
    } else {
        // original DAUB: oldest data first — note the pipeline then
        // forecasts across a gap, which is why reverse wins on time series
        t1.slice(0, alloc_len)
    };
    let start = Instant::now();
    let result: Result<f64, PipelineError> = (|| {
        pipeline.fit(&slice)?;
        pipeline.score(t2, metric)
    })();
    let elapsed = start.elapsed();
    let score = match result {
        Ok(s) if s.is_finite() => s,
        _ => f64::INFINITY,
    };
    (score, elapsed)
}

/// Run T-Daub over a pipeline pool (Algorithm 1).
///
/// `train` is the 80% training split of the user's data (the holdout for
/// final reporting is handled by the caller). Returns the ranked reports
/// and the winner refitted on all of `train`.
pub fn run_tdaub(
    pipelines: Vec<Box<dyn Forecaster>>,
    train: &TimeSeriesFrame,
    config: &TDaubConfig,
) -> Result<TDaubResult, PipelineError> {
    if pipelines.is_empty() {
        return Err(PipelineError::InvalidInput(
            "run_tdaub requires at least one pipeline".into(),
        ));
    }
    let t_start = Instant::now();
    let n = train.len();

    let mut cands: Vec<Candidate> = pipelines
        .into_iter()
        .map(|p| Candidate {
            name: p.name(),
            pipeline: p,
            scores: Vec::new(),
            projected: f64::INFINITY,
            final_score: None,
            train_time: Duration::ZERO,
            failed: false,
        })
        .collect();

    // T-Daub executes only if the dataset is larger than min_allocation_size;
    // otherwise every pipeline is ranked on the full data directly (§4.2).
    let small_data = n <= config.min_allocation_size + 4;

    // split T into {T1, T2}
    let t2_len =
        ((n as f64 * config.test_fraction).round() as usize).clamp(1, n.saturating_sub(2).max(1));
    let t1 = train.slice(0, n - t2_len);
    let t2 = train.slice(n - t2_len, n);
    let l = t1.len();

    let metric = config.metric;
    let reverse = config.reverse_allocation;

    if small_data {
        let runs: Vec<(f64, Duration)> = if config.parallel {
            parallel_map_mut(&mut cands, |c| {
                evaluate(&mut c.pipeline, &t1, &t2, l, metric, reverse)
            })
        } else {
            cands
                .iter_mut()
                .map(|c| evaluate(&mut c.pipeline, &t1, &t2, l, metric, reverse))
                .collect()
        };
        for (c, (score, dt)) in cands.iter_mut().zip(runs) {
            c.scores.push((l, score));
            c.train_time += dt;
            c.projected = score;
            c.final_score = Some(score);
        }
    } else {
        // ---- 1. fixed allocation ----
        let cutoff = config
            .fixed_allocation_cutoff
            .unwrap_or(5 * config.allocation_size)
            .min(l);
        let num_fix_runs = (cutoff / config.min_allocation_size).max(1);
        for i in 1..=num_fix_runs {
            let alloc = (config.min_allocation_size * i).min(l);
            let runs: Vec<(f64, Duration)> = if config.parallel {
                parallel_map_mut(&mut cands, |c| {
                    evaluate(&mut c.pipeline, &t1, &t2, alloc, metric, reverse)
                })
            } else {
                cands
                    .iter_mut()
                    .map(|c| evaluate(&mut c.pipeline, &t1, &t2, alloc, metric, reverse))
                    .collect()
            };
            for (c, (score, dt)) in cands.iter_mut().zip(runs) {
                c.scores.push((alloc, score));
                c.train_time += dt;
            }
            if alloc == l {
                break;
            }
        }
        for c in cands.iter_mut() {
            c.project(l, config.use_projection, metric);
        }

        // ---- 2. allocation acceleration ----
        // Only the (current) top pipeline gets more data; its allocation
        // grows geometrically from its own largest allocation so far,
        // rounded to allocation_size multiples (lines 9–17). The priority
        // queue keeps re-ranking after every evaluation: the loop ends when
        // the projected-best pipeline has a *confirmed* full-data score —
        // stopping after the first full-length fit would crown a pipeline
        // whose optimistic projection the data then contradicts.
        let base_alloc = config.min_allocation_size * num_fix_runs;
        // generous budget: every pipeline could in principle climb the
        // geometric ladder to full length
        let max_accel_steps =
            cands.len() * (2 + (l / config.allocation_size.max(1)).max(1).ilog2() as usize + 1);
        for _ in 0..max_accel_steps {
            let top = cands
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.failed)
                .min_by(|a, b| a.1.projected.total_cmp(&b.1.projected))
                .map(|(i, _)| i);
            let Some(top) = top else { break };
            let top_last = cands[top]
                .scores
                .iter()
                .filter(|(_, s)| s.is_finite())
                .map(|&(a, _)| a)
                .max()
                .unwrap_or(base_alloc);
            if top_last >= l {
                // the current leader has proven itself on all the data
                break;
            }
            let next = (((top_last.max(base_alloc) as f64 * config.geo_increment_size)
                / config.allocation_size as f64) as usize)
                .max(1)
                * config.allocation_size;
            let alloc = next.min(l);
            let (score, dt) = evaluate(&mut cands[top].pipeline, &t1, &t2, alloc, metric, reverse);
            cands[top].scores.push((alloc, score));
            cands[top].train_time += dt;
            if !score.is_finite() && alloc >= l {
                // cannot even fit on the full data: out of the running
                cands[top].failed = true;
                cands[top].projected = f64::INFINITY;
            } else {
                cands[top].project(l, config.use_projection, metric);
            }
        }

        // ---- 3. T-Daub scoring ----
        // the top run_to_completion pipelines train on all of T1 and are
        // ranked by their true T2 score.
        let mut order: Vec<usize> = (0..cands.len()).collect();
        order.sort_by(|&a, &b| cands[a].projected.total_cmp(&cands[b].projected));
        for &i in order.iter().take(config.run_to_completion.max(1)) {
            if cands[i].failed {
                continue;
            }
            let full_score = cands[i]
                .scores
                .iter()
                .rev()
                .find(|&&(a, s)| a >= l && s.is_finite())
                .map(|&(_, s)| s);
            let (score, dt) = match full_score {
                Some(s) => (s, Duration::ZERO),
                None => evaluate(&mut cands[i].pipeline, &t1, &t2, l, metric, reverse),
            };
            cands[i].scores.push((l, score));
            cands[i].train_time += dt;
            cands[i].final_score = Some(score);
        }
    }

    // final ranking: completed pipelines by final score, then the rest by
    // projected score
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&a, &b| {
        let ka = (
            cands[a].final_score.is_none(),
            cands[a].final_score.unwrap_or(cands[a].projected),
        );
        let kb = (
            cands[b].final_score.is_none(),
            cands[b].final_score.unwrap_or(cands[b].projected),
        );
        ka.0.cmp(&kb.0).then_with(|| ka.1.total_cmp(&kb.1))
    });

    // retrain the winner on the entire training input
    let best_idx = order[0];
    if cands[best_idx].projected.is_infinite() && cands[best_idx].final_score.is_none() {
        return Err(PipelineError::Fit(
            "every pipeline failed during T-Daub".into(),
        ));
    }
    let mut best = cands[best_idx].pipeline.clone_unfitted();
    let fit_start = Instant::now();
    best.fit(train)?;
    cands[best_idx].train_time += fit_start.elapsed();

    let reports: Vec<PipelineReport> = order
        .iter()
        .enumerate()
        .map(|(rank, &i)| PipelineReport {
            name: cands[i].name.clone(),
            scores: cands[i].scores.clone(),
            projected_score: cands[i].projected,
            final_score: cands[i].final_score,
            train_time: cands[i].train_time,
            rank: rank + 1,
        })
        .collect();

    Ok(TDaubResult {
        reports,
        best,
        total_time: t_start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoai_pipelines::{Mt2rForecaster, ThetaPipeline, ZeroModelPipeline};

    fn seasonal_frame(n: usize) -> TimeSeriesFrame {
        TimeSeriesFrame::univariate(
            (0..n)
                .map(|i| 20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin())
                .collect(),
        )
    }

    fn pool() -> Vec<Box<dyn Forecaster>> {
        vec![
            Box::new(ZeroModelPipeline::new()),
            Box::new(Mt2rForecaster::new(12, 6)),
            Box::new(ThetaPipeline::new()),
        ]
    }

    #[test]
    fn tdaub_picks_the_seasonal_model() {
        let frame = seasonal_frame(500);
        let cfg = TDaubConfig {
            parallel: false,
            ..Default::default()
        };
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        // MT2R can model the seasonality; ZeroModel and Theta cannot
        assert_eq!(
            result.best.name(),
            "MT2RForecaster",
            "ranking: {:?}",
            result
                .reports
                .iter()
                .map(|r| (&r.name, r.final_score))
                .collect::<Vec<_>>()
        );
        assert_eq!(result.reports[0].rank, 1);
    }

    #[test]
    fn best_pipeline_is_refitted_and_predicts() {
        let frame = seasonal_frame(400);
        let result = run_tdaub(pool(), &frame, &TDaubConfig::default()).unwrap();
        let f = result.best.predict(12).unwrap();
        assert_eq!(f.len(), 12);
        assert!(f.series(0).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn small_dataset_bypasses_allocation() {
        // shorter than min_allocation_size → everything runs on full data
        let frame = seasonal_frame(40);
        let cfg = TDaubConfig {
            min_allocation_size: 50,
            parallel: false,
            ..Default::default()
        };
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        for r in &result.reports {
            assert_eq!(r.scores.len(), 1, "{}: {:?}", r.name, r.scores);
            assert!(r.final_score.is_some());
        }
    }

    #[test]
    fn allocations_grow_and_stay_reverse() {
        let frame = seasonal_frame(600);
        let cfg = TDaubConfig {
            min_allocation_size: 50,
            allocation_size: 50,
            parallel: false,
            ..Default::default()
        };
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        // fixed allocations 50, 100, ..., 250 present for every pipeline
        for r in &result.reports {
            let allocs: Vec<usize> = r.scores.iter().map(|(a, _)| *a).collect();
            assert!(
                allocs.windows(2).all(|w| w[1] >= w[0]),
                "{}: {allocs:?}",
                r.name
            );
            assert!(allocs[0] == 50, "{allocs:?}");
        }
    }

    #[test]
    fn failing_pipeline_is_ranked_last_not_fatal() {
        /// A pipeline that always fails to fit.
        struct Broken;
        impl Forecaster for Broken {
            fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
                Err(PipelineError::Fit("always broken".into()))
            }
            fn predict(&self, _: usize) -> Result<TimeSeriesFrame, PipelineError> {
                Err(PipelineError::NotFitted)
            }
            fn name(&self) -> String {
                "Broken".into()
            }
            fn clone_unfitted(&self) -> Box<dyn Forecaster> {
                Box::new(Broken)
            }
        }
        let mut pipelines = pool();
        pipelines.push(Box::new(Broken));
        let frame = seasonal_frame(400);
        let result = run_tdaub(pipelines, &frame, &TDaubConfig::default()).unwrap();
        assert_eq!(result.reports.last().unwrap().name, "Broken");
        assert_ne!(result.best.name(), "Broken");
    }

    #[test]
    fn all_failing_is_an_error() {
        struct Broken;
        impl Forecaster for Broken {
            fn fit(&mut self, _: &TimeSeriesFrame) -> Result<(), PipelineError> {
                Err(PipelineError::Fit("nope".into()))
            }
            fn predict(&self, _: usize) -> Result<TimeSeriesFrame, PipelineError> {
                Err(PipelineError::NotFitted)
            }
            fn name(&self) -> String {
                "Broken".into()
            }
            fn clone_unfitted(&self) -> Box<dyn Forecaster> {
                Box::new(Broken)
            }
        }
        let frame = seasonal_frame(300);
        let r = run_tdaub(vec![Box::new(Broken)], &frame, &TDaubConfig::default());
        assert!(r.is_err());
    }

    #[test]
    fn forward_allocation_ablation_runs() {
        let frame = seasonal_frame(400);
        let cfg = TDaubConfig {
            reverse_allocation: false,
            parallel: false,
            ..Default::default()
        };
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        assert!(!result.reports.is_empty());
    }

    #[test]
    fn last_score_ranking_ablation_runs() {
        let frame = seasonal_frame(400);
        let cfg = TDaubConfig {
            use_projection: false,
            parallel: false,
            ..Default::default()
        };
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        assert!(result.reports[0].final_score.is_some());
    }

    #[test]
    fn parallel_and_serial_agree_on_winner() {
        let frame = seasonal_frame(500);
        let serial = run_tdaub(
            pool(),
            &frame,
            &TDaubConfig {
                parallel: false,
                ..Default::default()
            },
        )
        .unwrap();
        let par = run_tdaub(
            pool(),
            &frame,
            &TDaubConfig {
                parallel: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(serial.best.name(), par.best.name());
    }

    #[test]
    fn run_to_completion_runs_multiple_finalists() {
        let frame = seasonal_frame(500);
        let cfg = TDaubConfig {
            run_to_completion: 3,
            parallel: false,
            ..Default::default()
        };
        let result = run_tdaub(pool(), &frame, &cfg).unwrap();
        let finals = result
            .reports
            .iter()
            .filter(|r| r.final_score.is_some())
            .count();
        assert!(finals >= 3, "{finals} finalists");
    }
}
