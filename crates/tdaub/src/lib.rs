//! T-Daub: Time series Data Allocation Using Upper Bounds (§4.2,
//! Algorithm 1).
//!
//! T-Daub ranks a pool of forecasting pipelines without training every one
//! of them on the full dataset. It allocates growing slices of the training
//! data — **in reverse, most recent data first** (Figure 3) — scores each
//! pipeline on a held-out test split, projects every pipeline's learning
//! curve to the full data length with a linear regression on its partial
//! scores, and then lets only the projected-best pipelines acquire more data
//! through geometrically accelerated allocations. Finally the top
//! `run_to_completion` pipelines are trained on all the data and ranked by
//! their true holdout score.
//!
//! The implementation keeps two ablation switches used by the paper-design
//! benches: `reverse_allocation` (vs. the original DAUB's oldest-first
//! allocation) and `use_projection` (learning-curve projection vs. ranking
//! by the last observed score).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod ensemble;
pub mod executor;
pub mod runner;

pub use ensemble::{greedy_select, EnsembleMember, EnsembleSelection};
pub use executor::{ExecutionReport, FailureKind, PipelineExecution};
pub use runner::{run_tdaub, run_tdaub_with_cache, PipelineReport, TDaubConfig, TDaubResult};
