//! Ablation A1/A3 (DESIGN.md §5): the value of T-Daub's design choices.
//!
//! Three comparisons on a subset of the univariate catalog:
//!   1. T-Daub selection vs exhaustive full-data evaluation of all 10
//!      pipelines — selection quality and cost.
//!   2. Reverse (most-recent-first) allocation vs the original DAUB's
//!      forward allocation — the §4.2 contribution.
//!   3. Learning-curve projection vs last-observed-score ranking.

use std::time::Instant;

use autoai_datasets::univariate_catalog;
use autoai_pipelines::{default_pipelines, Forecaster, PipelineContext};
use autoai_tdaub::{run_tdaub, TDaubConfig};
use autoai_tsdata::{holdout_split, Metric, TimeSeriesFrame};

/// Holdout SMAPE of the pipeline a selection strategy picked.
fn holdout_smape(best: &dyn Forecaster, holdout: &TimeSeriesFrame) -> f64 {
    // tscheck:allow(nan): usize window clamp, not a float metric reduction
    best.score(&holdout.slice(0, 12.min(holdout.len())), Metric::Smape)
        .unwrap_or(f64::INFINITY)
}

/// Exhaustive baseline: fit every pipeline on all training data, pick the
/// best by internal validation.
fn exhaustive(
    pipelines: Vec<Box<dyn Forecaster>>,
    train: &TimeSeriesFrame,
) -> (Box<dyn Forecaster>, f64) {
    let start = Instant::now();
    let n = train.len();
    let cut = n - (n / 5).max(1);
    let (t1, t2) = (train.slice(0, cut), train.slice(cut, n));
    let mut best: Option<(f64, Box<dyn Forecaster>)> = None;
    for mut p in pipelines {
        let score = (|| -> Option<f64> {
            p.fit(&t1).ok()?;
            p.score(&t2, Metric::Smape).ok()
        })()
        .unwrap_or(f64::INFINITY);
        if best.as_ref().is_none_or(|(b, _)| score < *b) {
            best = Some((score, p));
        }
    }
    // tscheck:allow(panic): experiment driver fails fast on a broken setup
    let (_, mut winner) = best.expect("at least one pipeline");
    let _ = winner.fit(train);
    (winner, start.elapsed().as_secs_f64())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut catalog = univariate_catalog();
    // medium-size subset where allocation effects are visible
    catalog.retain(|e| e.scaled_len() >= 400);
    catalog.truncate(if quick { 4 } else { 10 });
    println!("T-Daub ablation over {} datasets\n", catalog.len());

    let ctx = PipelineContext::new(12, 12, vec![12, 24]);
    let mut rows = Vec::new();
    for entry in &catalog {
        let frame = entry.generate(23);
        let holdout_len = (frame.len() / 5).max(1);
        let (train, holdout) = holdout_split(&frame, holdout_len);

        // 1. T-Daub (reverse + projection, the paper configuration)
        let t0 = Instant::now();
        let tdaub = run_tdaub(default_pipelines(&ctx), &train, &TDaubConfig::default())
            // tscheck:allow(panic): experiment driver fails fast on a broken setup
            .expect("tdaub runs");
        let tdaub_time = t0.elapsed().as_secs_f64();
        let tdaub_smape = holdout_smape(tdaub.best.as_ref(), &holdout);

        // 2. exhaustive
        let (ex_best, ex_time) = exhaustive(default_pipelines(&ctx), &train);
        let ex_smape = holdout_smape(ex_best.as_ref(), &holdout);

        // 3. forward allocation (original DAUB)
        let fwd_cfg = TDaubConfig {
            reverse_allocation: false,
            ..Default::default()
        };
        // tscheck:allow(panic): experiment driver fails fast on a broken setup
        let fwd = run_tdaub(default_pipelines(&ctx), &train, &fwd_cfg).expect("tdaub fwd");
        let fwd_smape = holdout_smape(fwd.best.as_ref(), &holdout);

        // 4. last-score ranking (no learning-curve projection)
        let ls_cfg = TDaubConfig {
            use_projection: false,
            ..Default::default()
        };
        // tscheck:allow(panic): experiment driver fails fast on a broken setup
        let ls = run_tdaub(default_pipelines(&ctx), &train, &ls_cfg).expect("tdaub last-score");
        let ls_smape = holdout_smape(ls.best.as_ref(), &holdout);

        println!(
            "{:<26} tdaub {:>7.2} ({:>6.1}s, {:<28}) | exhaustive {:>7.2} ({:>6.1}s) | fwd-alloc {:>7.2} | last-score {:>7.2}",
            entry.name,
            tdaub_smape,
            tdaub_time,
            tdaub.best.name(),
            ex_smape,
            ex_time,
            fwd_smape,
            ls_smape
        );
        rows.push((
            tdaub_smape,
            tdaub_time,
            ex_smape,
            ex_time,
            fwd_smape,
            ls_smape,
        ));
    }

    /// One ablation row: (tdaub smape, tdaub secs, exhaustive smape,
    /// exhaustive secs, forward-alloc smape, last-score smape).
    type Row = (f64, f64, f64, f64, f64, f64);
    let n = rows.len() as f64;
    let mean =
        |f: &dyn Fn(&Row) -> f64| rows.iter().map(f).filter(|v| v.is_finite()).sum::<f64>() / n;
    println!("\n== summary (means over {} datasets) ==", rows.len());
    println!(
        "T-Daub      : smape {:>7.2}  time {:>7.1}s",
        mean(&|r| r.0),
        mean(&|r| r.1)
    );
    println!(
        "Exhaustive  : smape {:>7.2}  time {:>7.1}s",
        mean(&|r| r.2),
        mean(&|r| r.3)
    );
    println!("Fwd-alloc   : smape {:>7.2}", mean(&|r| r.4));
    println!("Last-score  : smape {:>7.2}", mean(&|r| r.5));
    println!(
        "\nshape check: T-Daub should approach exhaustive accuracy at lower cost, \
         and reverse allocation should not lose to forward allocation."
    );
}
