//! Experiment 1 (§5.2, Figure 5): synthetic-signal validation.
//!
//! 1700 samples train / 300 test on the 21-signal synthetic suite. The
//! paper showcases four signals — cosine with increasing amplitude (5a),
//! cosine with outliers (5b), logarithmic increase with variance (5c), and
//! dual seasonality (5d) — and claims "error between actual and predicted
//! value for all time series was below 1%". We reproduce the per-signal
//! table, render ASCII overlays for the four showcase signals, and check
//! the <1% claim on the noise-free signals (noisy variants report their
//! SMAPE for comparison; the claim cannot hold pointwise under injected
//! noise, which the paper's own figures show as unmodeled residual).

use autoai_datasets::{synthetic_suite, SyntheticSignal};
use autoai_ts::{AutoAITS, AutoAITSConfig, TimeSeriesFrame};

const TRAIN: usize = 1700;
const TEST: usize = 300;

fn forecast_signal(values: &[f64]) -> (Vec<f64>, f64) {
    let train = TimeSeriesFrame::univariate(values[..TRAIN].to_vec());
    let truth = &values[TRAIN..TRAIN + TEST];
    let mut system = AutoAITS::with_config(AutoAITSConfig {
        horizon: 12,
        ..Default::default()
    });
    system
        .fit(&train)
        // tscheck:allow(panic): experiment driver fails fast on a broken setup
        .expect("synthetic signals are well-formed");
    // tscheck:allow(panic): experiment driver fails fast on a broken setup
    let pred = system.predict(TEST).expect("fitted");
    let smape = autoai_tsdata::smape(truth, pred.series(0));
    (pred.series(0).to_vec(), smape)
}

fn ascii_overlay(name: &str, actual: &[f64], predicted: &[f64]) -> String {
    // 60-column, 12-row overlay of the last 120 test points
    let take = actual.len().min(120);
    let a = &actual[actual.len() - take..];
    let p = &predicted[predicted.len() - take..];
    let lo = a.iter().chain(p).cloned().fold(f64::INFINITY, f64::min);
    let hi = a.iter().chain(p).cloned().fold(f64::NEG_INFINITY, f64::max);
    let rows = 12usize;
    let cols = 60usize;
    let mut grid = vec![vec![' '; cols]; rows];
    #[allow(clippy::needless_range_loop)]
    let place = |grid: &mut Vec<Vec<char>>, series: &[f64], ch: char| {
        for c in 0..cols {
            let idx = c * (take - 1) / (cols - 1);
            let v = series[idx];
            let r = if hi - lo < 1e-12 {
                rows / 2
            } else {
                ((hi - v) / (hi - lo) * (rows - 1) as f64).round() as usize
            };
            let cell = &mut grid[r.min(rows - 1)][c];
            *cell = if *cell == ' ' || *cell == ch { ch } else { '*' };
        }
    };
    place(&mut grid, a, '.');
    place(&mut grid, p, 'o');
    let mut out = format!("\n-- {name}: actual '.', predicted 'o', overlap '*' --\n");
    for row in grid {
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out
}

fn main() {
    println!(
        "Experiment 1: synthetic dataset ({} signals, {TRAIN} train / {TEST} test)",
        21
    );
    let suite = synthetic_suite(7);
    let showcase = [
        SyntheticSignal::CosineGrowingAmplitude.name(), // Fig 5a
        SyntheticSignal::CosineOutliers.name(),         // Fig 5b
        SyntheticSignal::LogVariance.name(),            // Fig 5c
        SyntheticSignal::DualSeasonality.name(),        // Fig 5d
    ];
    // signals with injected randomness, where pointwise <1% error is not
    // achievable by any forecaster (the noise itself exceeds 1%)
    let noisy = [
        "linear_noise",
        "sine_outliers",
        "cosine_outliers",
        "log_variance",
        "random_walk_drift",
        "level_shifts",
    ];

    println!("\n{:<26} {:>10} {:>8}", "signal", "smape", "<1% ok");
    let mut clean_failures = 0;
    for (name, values) in &suite {
        let (pred, smape) = forecast_signal(values);
        let is_noisy = noisy.contains(name);
        // SMAPE on the 0-200 scale: 1% error ≈ smape 1.0
        let ok = smape < 1.0;
        if !is_noisy && !ok {
            clean_failures += 1;
        }
        println!(
            "{name:<26} {smape:>10.3} {:>8}",
            if is_noisy {
                "(noisy)"
            } else if ok {
                "yes"
            } else {
                "NO"
            }
        );
        if showcase.contains(name) {
            let truth = &values[TRAIN..TRAIN + TEST];
            print!("{}", ascii_overlay(name, truth, &pred));
        }
    }
    println!(
        "\nnoise-free signals above 1% error: {clean_failures} (paper claims 0; \
         see EXPERIMENTS.md for the measured discussion)"
    );
}
