//! Pipeline-pool scaling (§4): "We have tested the system with about 80
//! different pipelines including deep learning models and the system
//! successfully selected the best pipeline independent of type and nature
//! of underlying models."
//!
//! This experiment runs T-Daub over growing pools — the 10 defaults, the
//! ~40-pipeline extended registry, and the extended registry duplicated
//! with varied look-backs (~80) — and verifies that (a) selection still
//! completes, (b) the winner's holdout SMAPE does not degrade as the pool
//! grows, and (c) the selection cost grows sub-linearly thanks to the
//! allocation mechanism.

use std::time::Instant;

use autoai_datasets::univariate_catalog;
use autoai_pipelines::{default_pipelines, extended_pipelines, Forecaster, PipelineContext};
use autoai_tdaub::{run_tdaub, TDaubConfig};
use autoai_tsdata::{holdout_split, Metric};

fn big_pool(ctx: &PipelineContext) -> Vec<Box<dyn Forecaster>> {
    // ~80 pipelines: the extended registry at two base look-backs
    let mut pool = extended_pipelines(ctx);
    let alt = PipelineContext::new(
        ctx.lookback * 3 / 2 + 2,
        ctx.horizon,
        ctx.seasonal_periods.clone(),
    );
    pool.extend(extended_pipelines(&alt));
    pool
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut catalog = univariate_catalog();
    catalog.retain(|e| e.scaled_len() >= 400 && e.scaled_len() <= 1500);
    catalog.truncate(if quick { 2 } else { 4 });
    println!("Pipeline-pool scaling over {} datasets\n", catalog.len());
    println!(
        "{:<26} {:>6} {:>12} {:>10} {:>12} {:>28}",
        "dataset", "pool", "evaluations", "time (s)", "holdout", "winner"
    );

    for entry in &catalog {
        let frame = entry.generate(41);
        let (train, holdout) = holdout_split(&frame, frame.len() / 5);
        let ctx = PipelineContext::new(12, 12, vec![12, 24]);
        for (label, pool) in [
            ("10", default_pipelines(&ctx)),
            ("~40", extended_pipelines(&ctx)),
            ("~80", big_pool(&ctx)),
        ] {
            let size = pool.len();
            let t0 = Instant::now();
            match run_tdaub(pool, &train, &TDaubConfig::default()) {
                Ok(result) => {
                    let secs = t0.elapsed().as_secs_f64();
                    let evals: usize = result.reports.iter().map(|r| r.scores.len()).sum();
                    let score = result
                        .best
                        // tscheck:allow(nan): usize window clamp, not a float metric reduction
                        .score(&holdout.slice(0, 12.min(holdout.len())), Metric::Smape)
                        .unwrap_or(f64::INFINITY);
                    println!(
                        "{:<26} {:>3}={:<2} {:>12} {:>10.1} {:>12.2} {:>28}",
                        entry.name,
                        label,
                        size,
                        evals,
                        secs,
                        score,
                        result.best.name()
                    );
                }
                Err(e) => println!("{:<26} {label:>6} FAILED: {e}", entry.name),
            }
        }
        println!();
    }
    println!(
        "shape check: holdout SMAPE must not degrade as the pool grows; \
         evaluations-per-pipeline stay flat (the fixed-allocation phase is \
         linear in pool size) while full-data fits remain restricted to the \
         projected leaders."
    );
}
