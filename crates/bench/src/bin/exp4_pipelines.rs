//! Experiment 4 (§5.3, Figures 14–15, Table 6): the 10 internal AutoAI-TS
//! pipelines evaluated individually on the univariate and multivariate
//! benchmarks — the evidence for "no single model works best on all 62
//! data sets".
//!
//! Flags: `--quick` (first 20 UTS), `--table` (Table 6 analogue),
//! `--horizon H`. Results go to `results/exp4_pipelines_{uts,mts}.csv`.

use autoai_bench::{
    ascii_rank_chart, ascii_rank_histogram, evaluate_forecaster, results_table, score_matrix,
    write_results_csv, EvalOutcome,
};
use autoai_datasets::{multivariate_catalog, univariate_catalog, CatalogEntry};
use autoai_linalg::parallel_try_map_range;
use autoai_pipelines::{pipeline_by_name, PipelineContext, PIPELINE_NAMES};
use autoai_tsdata::average_ranks;

fn run(
    catalog: &[CatalogEntry],
    horizon: usize,
    seed: u64,
) -> (Vec<String>, Vec<Vec<EvalOutcome>>) {
    let cells: Vec<Vec<EvalOutcome>> = parallel_try_map_range(catalog.len(), |di| {
        let entry = &catalog[di];
        let frame = entry.generate(seed);
        // pipelines need a context; use the discovery default the
        // orchestrator would pick, with seasonal hints from the domain
        let ctx = PipelineContext::new(12, horizon, vec![12, 7, 24]);
        let row: Vec<EvalOutcome> = PIPELINE_NAMES
            .iter()
            .map(|name| {
                // tscheck:allow(panic): experiment driver fails fast on a broken setup
                let p = pipeline_by_name(name, &ctx).expect("registered");
                evaluate_forecaster(p, &frame, horizon)
            })
            .collect();
        eprintln!("  done {}", entry.name);
        row
    })
    .into_iter()
    // tscheck:allow(panic): experiment driver fails fast on a broken setup
    .map(|r| r.expect("dataset evaluation panicked"))
    .collect();
    (catalog.iter().map(|e| e.name.to_string()).collect(), cells)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let show_table = args.iter().any(|a| a == "--table");
    let horizon = args
        .iter()
        .position(|a| a == "--horizon")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(12);

    let names: Vec<&str> = PIPELINE_NAMES.to_vec();

    // ---- univariate (Figure 14) ----
    let mut uts = univariate_catalog();
    if quick {
        uts.truncate(20);
    }
    println!(
        "Experiment 4a: {} UTS x {} pipelines, horizon {horizon}",
        uts.len(),
        names.len()
    );
    let (uts_names, uts_cells) = run(&uts, horizon, 17);
    let uts_ranks = average_ranks(&names, &score_matrix(&uts_cells, false));
    println!(
        "{}",
        ascii_rank_chart(
            "Figure 14: internal pipeline SMAPE ranks (univariate)",
            &uts_ranks
        )
    );
    println!(
        "{}",
        ascii_rank_histogram(
            "Figure 14 detail: pipelines per rank (univariate)",
            &uts_ranks
        )
    );
    // tscheck:allow(panic): experiment driver fails fast on a broken setup
    write_results_csv("exp4_pipelines_uts.csv", &uts_names, &names, &uts_cells).expect("write csv");

    // the paper's core hypothesis: several different pipelines occupy the
    // top-3 ranks across datasets
    let distinct_winners = uts_ranks
        .iter()
        .filter(|s| s.histogram.first().copied().unwrap_or(0) > 0)
        .count();
    println!("pipelines winning at least one UTS dataset: {distinct_winners} (paper: top-3 spread across model classes)");

    // ---- multivariate (Figure 15 / Table 6) ----
    let mts = multivariate_catalog();
    println!(
        "\nExperiment 4b: {} MTS x {} pipelines, horizon {horizon}",
        mts.len(),
        names.len()
    );
    let (mts_names, mts_cells) = run(&mts, horizon, 19);
    let mts_ranks = average_ranks(&names, &score_matrix(&mts_cells, false));
    println!(
        "{}",
        ascii_rank_chart(
            "Figure 15: internal pipeline SMAPE ranks (multivariate)",
            &mts_ranks
        )
    );
    println!(
        "{}",
        ascii_rank_histogram(
            "Figure 15 detail: pipelines per rank (multivariate)",
            &mts_ranks
        )
    );
    if show_table {
        println!(
            "{}",
            results_table(
                "Table 6: smape (seconds) per MTS dataset per pipeline",
                &mts_names,
                &names,
                &mts_cells
            )
        );
    }
    // tscheck:allow(panic): experiment driver fails fast on a broken setup
    write_results_csv("exp4_pipelines_mts.csv", &mts_names, &names, &mts_cells).expect("write csv");
    println!("\nwrote results/exp4_pipelines_uts.csv and results/exp4_pipelines_mts.csv");
}
