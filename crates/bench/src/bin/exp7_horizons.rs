//! Horizon-consistency check (§5.3): "we vary the forecasting horizon
//! between 6 and 30 in steps of 6. The experimental results are quite
//! consistent across these settings."
//!
//! Protocol: on a subset of the univariate catalog, rank AutoAI-TS against
//! three representative SOTA simulators at every horizon in {6, 12, 18,
//! 24, 30}; report the average rank per horizon and the rank correlation
//! between horizons.

use autoai_bench::{evaluate_autoai, evaluate_forecaster, score_matrix, EvalOutcome};
use autoai_datasets::univariate_catalog;
use autoai_linalg::parallel_try_map_range;
use autoai_sota::sota_by_name;
use autoai_tsdata::average_ranks;

const SYSTEMS: [&str; 4] = ["AutoAI-TS", "PMDArima", "GLS", "Component"];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut catalog = univariate_catalog();
    catalog.retain(|e| e.scaled_len() >= 300);
    catalog.truncate(if quick { 5 } else { 12 });
    let horizons = [6usize, 12, 18, 24, 30];
    println!(
        "Horizon consistency: {} datasets x {} systems x horizons {:?}",
        catalog.len(),
        SYSTEMS.len(),
        horizons
    );

    let mut per_horizon_ranks: Vec<Vec<f64>> = Vec::new(); // [horizon][system]
    for &h in &horizons {
        let cells: Vec<Vec<EvalOutcome>> = parallel_try_map_range(catalog.len(), |di| {
            let entry = &catalog[di];
            let frame = entry.generate(37);
            let mut row = Vec::with_capacity(SYSTEMS.len());
            row.push(evaluate_autoai(&frame, h));
            for name in &SYSTEMS[1..] {
                // tscheck:allow(panic): experiment driver fails fast on a broken setup
                row.push(evaluate_forecaster(sota_by_name(name).unwrap(), &frame, h));
            }
            row
        })
        .into_iter()
        // tscheck:allow(panic): experiment driver fails fast on a broken setup
        .map(|r| r.expect("dataset evaluation panicked"))
        .collect();
        let summaries = average_ranks(&SYSTEMS, &score_matrix(&cells, false));
        // reorder back to SYSTEMS order
        let ranks: Vec<f64> = SYSTEMS
            .iter()
            .map(|s| {
                summaries
                    .iter()
                    .find(|x| &x.name == s)
                    // tscheck:allow(panic): experiment driver fails fast on a broken setup
                    .unwrap()
                    .average_rank
            })
            .collect();
        println!("\nhorizon {h:>2}:");
        for (s, r) in SYSTEMS.iter().zip(&ranks) {
            println!("  {s:<12} avg rank {r:.2}");
        }
        per_horizon_ranks.push(ranks);
    }

    // Spearman-style consistency: correlation of system orderings between
    // adjacent horizons
    println!("\nrank correlation between adjacent horizons:");
    for w in per_horizon_ranks.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let ma = a.iter().sum::<f64>() / a.len() as f64;
        let mb = b.iter().sum::<f64>() / b.len() as f64;
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let da: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>().sqrt();
        let db: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum::<f64>().sqrt();
        let corr = num / (da * db).max(1e-12);
        println!("  corr = {corr:.3}");
    }
    println!("\nshape check: correlations near 1.0 reproduce the paper's consistency claim.");
}
