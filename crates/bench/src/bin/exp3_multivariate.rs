//! Experiment 3 (§5.3, Figures 10–13, Table 5): AutoAI-TS vs the 10 SOTA
//! toolkits on the 9 multivariate benchmark datasets, horizon 12.
//!
//! Flags: `--table` prints the Table 5 analogue; `--horizon H` overrides
//! the default 12. Results go to `results/exp3_multivariate.csv`.

use autoai_bench::{
    ascii_rank_chart, ascii_rank_histogram, evaluate_autoai, evaluate_forecaster, results_table,
    score_matrix, write_results_csv, EvalOutcome,
};
use autoai_datasets::multivariate_catalog;
use autoai_linalg::parallel_try_map_range;
use autoai_sota::{sota_by_name, SOTA_NAMES};
use autoai_tsdata::average_ranks;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let show_table = args.iter().any(|a| a == "--table");
    let horizon = args
        .iter()
        .position(|a| a == "--horizon")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(12);

    let catalog = multivariate_catalog();
    let systems: Vec<&str> = std::iter::once("AutoAI-TS").chain(SOTA_NAMES).collect();
    println!(
        "Experiment 3: {} multivariate datasets x {} systems, horizon {horizon}",
        catalog.len(),
        systems.len()
    );

    let cells: Vec<Vec<EvalOutcome>> = parallel_try_map_range(catalog.len(), |di| {
        let entry = &catalog[di];
        let frame = entry.generate(13);
        let mut row = Vec::with_capacity(systems.len());
        row.push(evaluate_autoai(&frame, horizon));
        for name in SOTA_NAMES {
            // tscheck:allow(panic): experiment driver fails fast on a broken setup
            let sim = sota_by_name(name).expect("registered");
            row.push(evaluate_forecaster(sim, &frame, horizon));
        }
        eprintln!("  done {}", entry.name);
        row
    })
    .into_iter()
    // tscheck:allow(panic): experiment driver fails fast on a broken setup
    .map(|r| r.expect("dataset evaluation panicked"))
    .collect();

    let dataset_names: Vec<String> = catalog.iter().map(|e| e.name.to_string()).collect();

    let smape_scores = score_matrix(&cells, false);
    let smape_ranks = average_ranks(&systems, &smape_scores);
    println!(
        "{}",
        ascii_rank_chart("Figure 10: average SMAPE rank (multivariate)", &smape_ranks)
    );
    println!(
        "{}",
        ascii_rank_histogram(
            "Figure 11: SMAPE rank histogram (multivariate)",
            &smape_ranks
        )
    );

    let time_scores = score_matrix(&cells, true);
    let time_ranks = average_ranks(&systems, &time_scores);
    println!(
        "{}",
        ascii_rank_chart(
            "Figure 12: average training-time rank (multivariate)",
            &time_ranks
        )
    );
    println!(
        "{}",
        ascii_rank_histogram(
            "Figure 13: training-time rank histogram (multivariate)",
            &time_ranks
        )
    );

    if show_table {
        println!(
            "{}",
            results_table(
                "Table 5: smape (seconds) per dataset",
                &dataset_names,
                &systems,
                &cells
            )
        );
    }

    write_results_csv("exp3_multivariate.csv", &dataset_names, &systems, &cells)
        // tscheck:allow(panic): experiment driver fails fast on a broken setup
        .expect("write results csv");
    autoai_bench::write_results_json("exp3_multivariate.json", &dataset_names, &systems, &cells)
        // tscheck:allow(panic): experiment driver fails fast on a broken setup
        .expect("write results json");
    println!("\nwrote results/exp3_multivariate.csv");

    if let Some(first) = smape_ranks.first() {
        println!(
            "headline: best average SMAPE rank = {} ({:.2}); paper: AutoAI-TS",
            first.name, first.average_rank
        );
    }
}
