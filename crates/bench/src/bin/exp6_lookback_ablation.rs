//! Ablation A2 (DESIGN.md §5): does automatic look-back discovery (§4.1)
//! beat the fixed default of 8, and how close does it get to an oracle
//! sweep over look-back values?
//!
//! Protocol: for seasonal catalog datasets, fit a WindowRandomForest
//! pipeline with (a) the discovered look-back, (b) the fixed default 8,
//! (c) every look-back in a sweep grid (oracle = best of sweep on the
//! holdout). Reports SMAPE per dataset and the mean regret vs oracle.

use autoai_bench::evaluate_forecaster;
use autoai_datasets::univariate_catalog;
use autoai_lookback::{discover_univariate, LookbackConfig};
use autoai_pipelines::WindowRegressorPipeline;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut catalog = univariate_catalog();
    catalog.retain(|e| e.scaled_len() >= 300);
    catalog.truncate(if quick { 5 } else { 15 });
    let horizon = 12;
    let sweep = [4usize, 8, 12, 24, 48, 96];

    println!(
        "Look-back ablation over {} datasets (horizon {horizon})",
        catalog.len()
    );
    println!(
        "\n{:<28} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "dataset", "discovered", "smape(disc)", "smape(8)", "oracle-lb", "smape(orc)"
    );

    let mut regret_disc = Vec::new();
    let mut regret_fixed = Vec::new();
    for entry in &catalog {
        let frame = entry.generate(29);
        let train_len = frame.len() - frame.len() / 5;
        let train = frame.slice(0, train_len);
        let discovered = discover_univariate(
            train.series(0),
            train.timestamps(),
            &LookbackConfig::default(),
        )[0];

        let eval_lb = |lb: usize| -> f64 {
            let p = WindowRegressorPipeline::random_forest(lb);
            evaluate_forecaster(Box::new(p), &frame, horizon)
                .smape
                .unwrap_or(f64::INFINITY)
        };

        let disc_smape = eval_lb(discovered);
        let fixed_smape = eval_lb(8);
        let (oracle_lb, oracle_smape) = sweep
            .iter()
            .map(|&lb| (lb, eval_lb(lb)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((8, fixed_smape));

        println!(
            "{:<28} {:>10} {:>12.2} {:>10.2} {:>12} {:>10.2}",
            entry.name, discovered, disc_smape, fixed_smape, oracle_lb, oracle_smape
        );
        if oracle_smape.is_finite() {
            regret_disc.push(disc_smape - oracle_smape);
            regret_fixed.push(fixed_smape - oracle_smape);
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("\n== summary ==");
    println!(
        "mean SMAPE regret vs oracle — discovered: {:.2}",
        mean(&regret_disc)
    );
    println!(
        "mean SMAPE regret vs oracle — fixed 8   : {:.2}",
        mean(&regret_fixed)
    );
    println!(
        "shape check: discovered look-backs should have no more regret than the fixed default."
    );
}
