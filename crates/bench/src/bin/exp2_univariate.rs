//! Experiment 2 (§5.3, Figures 6–9, Table 4): AutoAI-TS vs the 10 SOTA
//! toolkits on the 62 univariate benchmark datasets, horizon 12.
//!
//! Flags: `--quick` evaluates the first 20 datasets only; `--table` prints
//! the full Table 4 analogue; `--horizon H` overrides the default 12.
//! Results are always written to `results/exp2_univariate.csv`.

use autoai_bench::{
    ascii_rank_chart, ascii_rank_histogram, evaluate_autoai, evaluate_forecaster, results_table,
    score_matrix, write_results_csv, EvalOutcome,
};
use autoai_datasets::univariate_catalog;
use autoai_linalg::parallel_try_map_range;
use autoai_sota::{sota_by_name, SOTA_NAMES};
use autoai_tsdata::average_ranks;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let show_table = args.iter().any(|a| a == "--table");
    let horizon = args
        .iter()
        .position(|a| a == "--horizon")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(12);

    let mut catalog = univariate_catalog();
    if quick {
        catalog.truncate(20);
    }
    let systems: Vec<&str> = std::iter::once("AutoAI-TS").chain(SOTA_NAMES).collect();
    println!(
        "Experiment 2: {} univariate datasets x {} systems, horizon {horizon}",
        catalog.len(),
        systems.len()
    );

    let cells: Vec<Vec<EvalOutcome>> = parallel_try_map_range(catalog.len(), |di| {
        let entry = &catalog[di];
        let frame = entry.generate(11);
        let mut row = Vec::with_capacity(systems.len());
        row.push(evaluate_autoai(&frame, horizon));
        for name in SOTA_NAMES {
            // tscheck:allow(panic): experiment driver fails fast on a broken setup
            let sim = sota_by_name(name).expect("registered");
            row.push(evaluate_forecaster(sim, &frame, horizon));
        }
        eprintln!("  done {}", entry.name);
        row
    })
    .into_iter()
    // tscheck:allow(panic): experiment driver fails fast on a broken setup
    .map(|r| r.expect("dataset evaluation panicked"))
    .collect();

    let dataset_names: Vec<String> = catalog.iter().map(|e| e.name.to_string()).collect();

    // Figure 6: average SMAPE rank
    let smape_scores = score_matrix(&cells, false);
    let smape_ranks = average_ranks(&systems, &smape_scores);
    println!(
        "{}",
        ascii_rank_chart("Figure 6: average SMAPE rank (univariate)", &smape_ranks)
    );

    // Figure 7: datasets per rank
    println!(
        "{}",
        ascii_rank_histogram("Figure 7: SMAPE rank histogram (univariate)", &smape_ranks)
    );

    // Figures 8/9: training-time ranks
    let time_scores = score_matrix(&cells, true);
    let time_ranks = average_ranks(&systems, &time_scores);
    println!(
        "{}",
        ascii_rank_chart(
            "Figure 8: average training-time rank (univariate)",
            &time_ranks
        )
    );
    println!(
        "{}",
        ascii_rank_histogram(
            "Figure 9: training-time rank histogram (univariate)",
            &time_ranks
        )
    );

    if show_table {
        println!(
            "{}",
            results_table(
                "Table 4: smape (seconds) per dataset",
                &dataset_names,
                &systems,
                &cells
            )
        );
    }

    write_results_csv("exp2_univariate.csv", &dataset_names, &systems, &cells)
        // tscheck:allow(panic): experiment driver fails fast on a broken setup
        .expect("write results csv");
    autoai_bench::write_results_json("exp2_univariate.json", &dataset_names, &systems, &cells)
        // tscheck:allow(panic): experiment driver fails fast on a broken setup
        .expect("write results json");
    println!("\nwrote results/exp2_univariate.csv");

    // headline check: the paper's Figure 6 puts AutoAI-TS at the best
    // average rank
    if let Some(first) = smape_ranks.first() {
        println!(
            "headline: best average SMAPE rank = {} ({:.2}); paper: AutoAI-TS",
            first.name, first.average_rank
        );
    }
}
