//! Table 1 + §4.1 demonstration: print the frequency→seasonal-period
//! mapping and run look-back discovery on representative catalog datasets.

use autoai_datasets::univariate_catalog;
use autoai_lookback::{discover_univariate, seasonal_periods, LookbackConfig};
use autoai_tsdata::Frequency;

fn main() {
    println!("Table 1: mapping of data frequency to seasonal periods\n");
    println!("{:<10} {:>40}", "frequency", "candidate seasonal periods");
    for f in [
        Frequency::Years,
        Frequency::Months,
        Frequency::Weeks,
        Frequency::Days,
        Frequency::Hours,
        Frequency::Minutes,
        Frequency::Seconds,
    ] {
        let periods = seasonal_periods(f);
        println!("{:<10} {:>40}", f.code(), format!("{periods:?}"));
    }

    println!("\n§4.1 discovery on catalog datasets (ordered candidates, best first):\n");
    for name in [
        "AirPassengers",
        "elecdaily",
        "Sunspots",
        "Twitter-volume-AAPL",
        "PJME-MW",
    ] {
        let entry = univariate_catalog()
            .into_iter()
            .find(|e| e.name == name)
            // tscheck:allow(panic): experiment driver fails fast on a broken setup
            .expect("catalog name");
        let frame = entry.generate(31);
        let lbs = discover_univariate(
            frame.series(0),
            frame.timestamps(),
            &LookbackConfig::default(),
        );
        println!(
            "{:<24} len {:>5}  look-backs {:?}",
            entry.name,
            frame.len(),
            lbs
        );
    }
}
