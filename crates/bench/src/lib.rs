//! Shared benchmark harness: the Rust counterpart of the paper's container
//! benchmarking framework (Figure 4).
//!
//! "The benchmarking mechanism system also implements or imports existing
//! implementations of the state-of-the-art (SOTA) time series toolkits which
//! enables us to run experiments both on our system … as well as on the 10
//! SOTA frameworks with the same train-test split to get comparative
//! performance results."
//!
//! The harness evaluates any [`Forecaster`] (AutoAI-TS included) on any
//! dataset with one protocol: 80/20 temporal split, fit on the training
//! part, forecast `horizon` steps, SMAPE against the first `horizon` holdout
//! values. Helpers render the paper's figures as ASCII charts and its tables
//! as aligned text + CSV.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::time::Instant;

use autoai_pipelines::Forecaster;
use autoai_ts::{AutoAITS, AutoAITSConfig};
use autoai_tsdata::{holdout_split, RankSummary, TimeSeriesFrame};

/// Outcome of one (system, dataset) evaluation.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// SMAPE over the first `horizon` holdout values (`None` = failed, the
    /// paper's `0 (0)` did-not-finish marker).
    pub smape: Option<f64>,
    /// Wall-clock seconds of fit + forecast.
    pub seconds: f64,
}

impl EvalOutcome {
    /// Format like the paper's tables: `smape (secs)` or `0 (0)` for DNF.
    pub fn cell(&self) -> String {
        match self.smape {
            Some(s) => format!("{:.2} ({:.2})", s, self.seconds),
            None => "0 (0)".to_string(),
        }
    }
}

/// The shared evaluation protocol: 80/20 split, forecast `horizon`, SMAPE
/// on the first `horizon` holdout rows (averaged across series).
pub fn evaluate_forecaster(
    mut system: Box<dyn Forecaster>,
    frame: &TimeSeriesFrame,
    horizon: usize,
) -> EvalOutcome {
    let holdout_len = (frame.len() / 5).max(1);
    let (train, holdout) = holdout_split(frame, holdout_len);
    let target = holdout.slice(0, horizon.min(holdout.len()));
    let start = Instant::now();
    let smape = (|| -> Option<f64> {
        system.fit(&train).ok()?;
        let pred = system.predict(target.len()).ok()?;
        if pred.n_series() != target.n_series() {
            return None;
        }
        let mut total = 0.0;
        for c in 0..target.n_series() {
            total += autoai_tsdata::smape(target.series(c), pred.series(c));
        }
        let s = total / target.n_series().max(1) as f64;
        s.is_finite().then_some(s)
    })();
    EvalOutcome {
        smape,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Evaluate the full AutoAI-TS system (quality check → look-back discovery
/// → T-Daub → retrain), with the paper's timing convention: "the total time
/// that T-Daub took until it discovered the best out of 10 pipelines … and
/// retrained it on full data".
pub fn evaluate_autoai(frame: &TimeSeriesFrame, horizon: usize) -> EvalOutcome {
    let holdout_len = (frame.len() / 5).max(1);
    let (train, holdout) = holdout_split(frame, holdout_len);
    let target = holdout.slice(0, horizon.min(holdout.len()));
    let start = Instant::now();
    let smape = (|| -> Option<f64> {
        let mut system = AutoAITS::with_config(AutoAITSConfig {
            horizon,
            ..Default::default()
        });
        system.fit(&train).ok()?;
        let pred = system.predict(target.len()).ok()?;
        let mut total = 0.0;
        for c in 0..target.n_series() {
            total += autoai_tsdata::smape(target.series(c), pred.series(c));
        }
        let s = total / target.n_series().max(1) as f64;
        s.is_finite().then_some(s)
    })();
    EvalOutcome {
        smape,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Render an average-rank bar chart (Figures 6/8/10/12 analogue).
pub fn ascii_rank_chart(title: &str, summaries: &[RankSummary]) -> String {
    let mut out = format!("\n== {title} ==\n");
    let max_rank = summaries
        .iter()
        .map(|s| s.average_rank)
        .filter(|r| r.is_finite())
        .fold(1.0f64, f64::max);
    for s in summaries {
        let label = format!("{:<22}", s.name);
        if s.average_rank.is_finite() {
            let width = ((s.average_rank / max_rank) * 40.0).round() as usize;
            out.push_str(&format!(
                "{label} {:>5.2} |{}\n",
                s.average_rank,
                "#".repeat(width.max(1))
            ));
        } else {
            out.push_str(&format!("{label}   DNF |\n"));
        }
    }
    out
}

/// Render a datasets-per-rank histogram (Figures 7/9/11/13 analogue).
pub fn ascii_rank_histogram(title: &str, summaries: &[RankSummary]) -> String {
    let mut out = format!("\n== {title} ==\n");
    let k = summaries.first().map_or(0, |s| s.histogram.len());
    out.push_str(&format!("{:<22}", "system \\ rank"));
    for r in 1..=k {
        out.push_str(&format!("{r:>4}"));
    }
    out.push('\n');
    for s in summaries {
        out.push_str(&format!("{:<22}", s.name));
        for &c in &s.histogram {
            out.push_str(&format!("{c:>4}"));
        }
        out.push('\n');
    }
    out
}

/// Render a paper-style results table (Tables 4/5/6 analogue).
pub fn results_table(
    title: &str,
    datasets: &[String],
    systems: &[&str],
    cells: &[Vec<EvalOutcome>],
) -> String {
    let mut out = format!("\n== {title} ==\n");
    out.push_str(&format!("{:<28}", "dataset"));
    for s in systems {
        out.push_str(&format!("{s:>22}"));
    }
    out.push('\n');
    for (d, row) in datasets.iter().zip(cells) {
        out.push_str(&format!("{d:<28}"));
        for c in row {
            out.push_str(&format!("{:>22}", c.cell()));
        }
        out.push('\n');
    }
    out
}

/// Emit results as CSV (`dataset,system,smape,seconds`) for downstream
/// plotting; written under `results/`.
pub fn write_results_csv(
    path: &str,
    datasets: &[String],
    systems: &[&str],
    cells: &[Vec<EvalOutcome>],
) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let mut out = String::from("dataset,system,smape,seconds\n");
    for (d, row) in datasets.iter().zip(cells) {
        for (s, c) in systems.iter().zip(row) {
            match c.smape {
                Some(v) => out.push_str(&format!("{d},{s},{v:.4},{:.3}\n", c.seconds)),
                None => out.push_str(&format!("{d},{s},,\n")),
            }
        }
    }
    std::fs::write(format!("results/{path}"), out)
}

/// Minimal JSON string escaping (quotes, backslashes, control characters) —
/// dataset and system names are ASCII identifiers, so this covers the full
/// range of values this harness emits without an external serializer.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Emit results as a JSON document (`[{dataset, system, smape, seconds}]`)
/// for downstream tooling; written under `results/`. The document is built
/// by hand — the schema is four flat fields, which does not justify a
/// serialization dependency in the hermetic build.
pub fn write_results_json(
    path: &str,
    datasets: &[String],
    systems: &[&str],
    cells: &[Vec<EvalOutcome>],
) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let mut rows = Vec::new();
    for (d, row) in datasets.iter().zip(cells) {
        for (s, c) in systems.iter().zip(row) {
            let smape = match c.smape {
                Some(v) if v.is_finite() => format!("{v}"),
                _ => "null".to_string(),
            };
            rows.push(format!(
                "  {{\n    \"dataset\": \"{}\",\n    \"system\": \"{}\",\n    \"smape\": {},\n    \"seconds\": {}\n  }}",
                json_escape(d),
                json_escape(s),
                smape,
                c.seconds
            ));
        }
    }
    let json = format!("[\n{}\n]", rows.join(",\n"));
    std::fs::write(format!("results/{path}"), json)
}

/// Convert an outcome matrix into the `Option<f64>` score rows the ranking
/// helpers consume. `by_time` ranks on seconds instead of SMAPE.
pub fn score_matrix(cells: &[Vec<EvalOutcome>], by_time: bool) -> Vec<Vec<Option<f64>>> {
    cells
        .iter()
        .map(|row| {
            row.iter()
                .map(|c| {
                    if by_time {
                        c.smape.is_some().then_some(c.seconds)
                    } else {
                        c.smape
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoai_pipelines::ZeroModelPipeline;
    use autoai_tsdata::average_ranks;

    fn frame() -> TimeSeriesFrame {
        TimeSeriesFrame::univariate((0..200).map(|i| (i as f64 * 0.3).sin() + 5.0).collect())
    }

    #[test]
    fn evaluate_forecaster_produces_finite_smape() {
        let out = evaluate_forecaster(Box::new(ZeroModelPipeline::new()), &frame(), 12);
        assert!(out.smape.is_some());
        assert!(out.seconds >= 0.0);
        assert!(out.cell().contains('('));
    }

    #[test]
    fn dnf_renders_paper_style() {
        let out = EvalOutcome {
            smape: None,
            seconds: 3.0,
        };
        assert_eq!(out.cell(), "0 (0)");
    }

    #[test]
    fn score_matrix_time_mode() {
        let cells = vec![vec![
            EvalOutcome {
                smape: Some(1.0),
                seconds: 9.0,
            },
            EvalOutcome {
                smape: None,
                seconds: 5.0,
            },
        ]];
        let by_smape = score_matrix(&cells, false);
        assert_eq!(by_smape[0], vec![Some(1.0), None]);
        let by_time = score_matrix(&cells, true);
        assert_eq!(by_time[0], vec![Some(9.0), None]);
    }

    #[test]
    fn chart_rendering_smoke() {
        let cells = vec![vec![
            EvalOutcome {
                smape: Some(1.0),
                seconds: 1.0,
            },
            EvalOutcome {
                smape: Some(2.0),
                seconds: 0.5,
            },
        ]];
        let m = score_matrix(&cells, false);
        let summaries = average_ranks(&["a", "b"], &m);
        let chart = ascii_rank_chart("test", &summaries);
        assert!(chart.contains("a"));
        let hist = ascii_rank_histogram("test", &summaries);
        assert!(hist.contains("rank"));
        let table = results_table("t", &["d1".to_string()], &["a", "b"], &cells);
        assert!(table.contains("d1"));
    }
}
