//! Benchmark: the vectorized linalg kernels against naive textbook
//! references, plus batched vs point-by-point Nelder–Mead.
//!
//! Plain `std::time` harness (`harness = false`); run with
//! `cargo bench -p autoai-bench --bench kernels`.
//!
//! Modes:
//!
//! * default — full measurement; writes the machine-readable
//!   `BENCH_kernels.json` at the repo root (per-kernel naive/fast wall
//!   times and speedups, batched-NM parity and timing).
//! * `--smoke` — reduced sizes, no JSON; asserts every gated kernel
//!   (matmul, gram, dot) stays ≥ 2× ahead of its naive reference,
//!   that all kernels agree with the references within a
//!   reassociation-sized tolerance, and that the batched Nelder–Mead
//!   path is bitwise identical to the plain one. Exits non-zero on any
//!   violation; wired into `scripts/check.sh`.

use std::hint::black_box;
use std::time::Instant;

use autoai_linalg::{dot, nelder_mead, nelder_mead_batched, Matrix, NelderMeadOptions, Rng64};

// ---- naive references (the pre-optimization loop shapes) ---------------

fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.nrows(), b.ncols());
    for i in 0..a.nrows() {
        for j in 0..b.ncols() {
            let mut acc = 0.0;
            for k in 0..a.ncols() {
                acc += a[(i, k)] * b[(k, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

fn naive_gram(a: &Matrix) -> Matrix {
    let n = a.ncols();
    let mut g = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for r in 0..a.nrows() {
                acc += a[(r, i)] * a[(r, j)];
            }
            g[(i, j)] = acc;
        }
    }
    g
}

fn naive_t_matvec(a: &Matrix, v: &[f64]) -> Vec<f64> {
    (0..a.ncols())
        .map(|j| (0..a.nrows()).map(|r| a[(r, j)] * v[r]).sum())
        .collect()
}

// ---- harness -----------------------------------------------------------

fn random_matrix(rng: &mut Rng64, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.range_f64(-2.0, 2.0)).collect(),
    )
}

/// Best-of-`reps` wall time of `inner` calls to `f`, in milliseconds per call.
fn measure_ms(reps: usize, inner: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..inner {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e3 / inner as f64);
    }
    best
}

fn max_rel_err(fast: &Matrix, slow: &Matrix, len: usize) -> f64 {
    let mut worst: f64 = 0.0;
    for i in 0..fast.nrows() {
        for j in 0..fast.ncols() {
            let (f, s) = (fast[(i, j)], slow[(i, j)]);
            worst = worst.max((f - s).abs() / (1.0 + s.abs()));
        }
    }
    worst / (len.max(1) as f64)
}

struct KernelResult {
    name: &'static str,
    naive_ms: f64,
    fast_ms: f64,
    gated: bool,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.naive_ms / self.fast_ms
    }
}

/// One-step SES SSE with a damped-trend second parameter — the batched
/// variant walks the series once holding every candidate's state, which is
/// the access pattern the batched optimizer exists for.
fn ses_sse(series: &[f64], p: &[f64]) -> f64 {
    let alpha = p[0].clamp(0.01, 0.99);
    let phi = p[1].clamp(0.0, 1.0);
    let mut level = series[0];
    let mut trend = 0.0;
    let mut sse = 0.0;
    for &x in &series[1..] {
        let pred = level + phi * trend;
        let e = x - pred;
        sse += e * e;
        let new_level = pred + alpha * e;
        trend = phi * trend + alpha * e;
        level = new_level;
    }
    sse
}

fn ses_sse_batch(series: &[f64], points: &[Vec<f64>]) -> Vec<f64> {
    let k = points.len();
    let mut alpha = vec![0.0; k];
    let mut phi = vec![0.0; k];
    let mut level = vec![series[0]; k];
    let mut trend = vec![0.0; k];
    let mut sse = vec![0.0; k];
    for (c, p) in points.iter().enumerate() {
        alpha[c] = p[0].clamp(0.01, 0.99);
        phi[c] = p[1].clamp(0.0, 1.0);
    }
    // one pass over the series updates every candidate: the series is
    // loaded once instead of once per candidate, and each candidate's
    // arithmetic happens in exactly the order of `ses_sse`, so the result
    // is bitwise identical per candidate
    for &x in &series[1..] {
        for c in 0..k {
            let pred = level[c] + phi[c] * trend[c];
            let e = x - pred;
            sse[c] += e * e;
            let new_level = pred + alpha[c] * e;
            trend[c] = phi[c] * trend[c] + alpha[c] * e;
            level[c] = new_level;
        }
    }
    sse
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // shapes chosen from the workspace's real design matrices (hundreds of
    // window rows, tens of lookback columns) plus a square matmul stressing
    // the register tiling
    let (mm, gram_rows, gram_cols, dot_n, series_n, reps) = if smoke {
        (96, 512, 32, 4096, 50_000, 5)
    } else {
        (192, 2048, 48, 16384, 200_000, 9)
    };

    let mut rng = Rng64::seed_from_u64(0xBE7C);
    let a = random_matrix(&mut rng, mm, mm);
    let b = random_matrix(&mut rng, mm, mm);
    let g = random_matrix(&mut rng, gram_rows, gram_cols);
    let x: Vec<f64> = (0..dot_n).map(|_| rng.range_f64(-2.0, 2.0)).collect();
    let y: Vec<f64> = (0..dot_n).map(|_| rng.range_f64(-2.0, 2.0)).collect();
    let w: Vec<f64> = (0..gram_rows).map(|_| rng.range_f64(-2.0, 2.0)).collect();

    println!("== kernels vs naive references ==");
    let mut results = Vec::new();

    let fast = a.matmul(&b);
    let slow = naive_matmul(&a, &b);
    assert!(
        max_rel_err(&fast, &slow, mm) < 1e-13,
        "matmul diverged from the naive reference"
    );
    results.push(KernelResult {
        name: "matmul",
        naive_ms: measure_ms(reps, 1, || {
            black_box(naive_matmul(black_box(&a), black_box(&b)));
        }),
        fast_ms: measure_ms(reps, 1, || {
            black_box(black_box(&a).matmul(black_box(&b)));
        }),
        gated: true,
    });

    let fast = g.gram();
    let slow = naive_gram(&g);
    assert!(
        max_rel_err(&fast, &slow, gram_rows) < 1e-13,
        "gram diverged from the naive reference"
    );
    results.push(KernelResult {
        name: "gram",
        naive_ms: measure_ms(reps, 1, || {
            black_box(naive_gram(black_box(&g)));
        }),
        fast_ms: measure_ms(reps, 1, || {
            black_box(black_box(&g).gram());
        }),
        gated: true,
    });

    let (df, ds) = (dot(&x, &y), naive_dot(&x, &y));
    assert!(
        (df - ds).abs() / (1.0 + ds.abs()) < 1e-13 * dot_n as f64,
        "dot diverged from the naive reference: {df} vs {ds}"
    );
    results.push(KernelResult {
        name: "dot",
        naive_ms: measure_ms(reps, 64, || {
            black_box(naive_dot(black_box(&x), black_box(&y)));
        }),
        fast_ms: measure_ms(reps, 64, || {
            black_box(dot(black_box(&x), black_box(&y)));
        }),
        gated: true,
    });

    let fast_tv = g.t_matvec(&w);
    let slow_tv = naive_t_matvec(&g, &w);
    for (f, s) in fast_tv.iter().zip(&slow_tv) {
        assert!(
            (f - s).abs() / (1.0 + s.abs()) < 1e-13 * gram_rows as f64,
            "t_matvec diverged: {f} vs {s}"
        );
    }
    // t_matvec is memory-bound (one pass, no reduction restructuring to
    // exploit), so it is reported but not held to the 2x gate
    results.push(KernelResult {
        name: "t_matvec",
        naive_ms: measure_ms(reps, 16, || {
            black_box(naive_t_matvec(black_box(&g), black_box(&w)));
        }),
        fast_ms: measure_ms(reps, 16, || {
            black_box(black_box(&g).t_matvec(black_box(&w)));
        }),
        gated: false,
    });

    for r in &results {
        println!(
            "{:<10} naive {:>10.4} ms   fast {:>10.4} ms   {:>6.2}x{}",
            r.name,
            r.naive_ms,
            r.fast_ms,
            r.speedup(),
            if r.gated { "  [gated >= 2x]" } else { "" }
        );
    }

    println!("== batched Nelder-Mead ==");
    let series: Vec<f64> = (0..series_n)
        .map(|i| {
            20.0 + 0.002 * i as f64
                + 3.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin()
                + rng.range_f64(-0.4, 0.4)
        })
        .collect();
    let opts = NelderMeadOptions {
        max_evals: 120,
        ..NelderMeadOptions::default()
    };
    let x0 = [0.3, 0.5];
    let plain_ms = measure_ms(reps.min(5), 1, || {
        black_box(nelder_mead(|p| ses_sse(black_box(&series), p), &x0, &opts));
    });
    let batched_ms = measure_ms(reps.min(5), 1, || {
        black_box(nelder_mead_batched(
            |pts| ses_sse_batch(black_box(&series), pts),
            &x0,
            &opts,
        ));
    });
    let (px, pv) = nelder_mead(|p| ses_sse(&series, p), &x0, &opts);
    let (bx, bv, _) = nelder_mead_batched(|pts| ses_sse_batch(&series, pts), &x0, &opts);
    let nm_parity = pv.to_bits() == bv.to_bits()
        && px.len() == bx.len()
        && px.iter().zip(&bx).all(|(a, b)| a.to_bits() == b.to_bits());
    let nm_speedup = plain_ms / batched_ms;
    println!(
        "nelder_mead point-by-point {plain_ms:>10.4} ms   batched {batched_ms:>10.4} ms   \
         {nm_speedup:>6.2}x   bitwise parity: {nm_parity}"
    );
    assert!(
        nm_parity,
        "batched Nelder-Mead diverged from the plain path: {pv} vs {bv}"
    );

    let min_gated = results
        .iter()
        .filter(|r| r.gated)
        .map(KernelResult::speedup)
        .fold(f64::INFINITY, f64::min);

    if smoke {
        assert!(
            min_gated >= 2.0,
            "kernel speedup bar not met: {min_gated:.2}x (need 2x)"
        );
        println!("smoke: kernel speedups >= 2x, references matched, batched NM bit-identical");
        return;
    }

    // machine-readable record at the repo root (hand-built JSON: the schema
    // is flat and the hermetic build carries no serializer)
    let kernel_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"naive_ms\": {:.4}, \"fast_ms\": {:.4}, \
                 \"speedup\": {:.3}, \"gated\": {}}}",
                r.name,
                r.naive_ms,
                r.fast_ms,
                r.speedup(),
                r.gated
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"matmul_dim\": {mm},\n  \"gram_shape\": [{gram_rows}, {gram_cols}],\n  \"dot_len\": {dot_n},\n  \"reps\": {reps},\n  \"kernels\": [\n{}\n  ],\n  \"min_gated_speedup\": {min_gated:.3},\n  \"nelder_mead\": {{\n    \"series_len\": {series_n},\n    \"plain_ms\": {plain_ms:.4},\n    \"batched_ms\": {batched_ms:.4},\n    \"speedup\": {nm_speedup:.3},\n    \"bitwise_parity\": {nm_parity}\n  }}\n}}\n",
        kernel_json.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, json).expect("write BENCH_kernels.json");
    println!("wrote {path}");
}
