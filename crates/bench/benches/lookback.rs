//! Benchmark: cost of the §4.1 look-back discovery pieces — periodogram,
//! zero-crossing estimate, influence ranking, full discovery.
//!
//! Plain `std::time` harness (`harness = false`); run with
//! `cargo bench -p autoai-bench --bench lookback`.

use std::hint::black_box;
use std::time::Instant;

use autoai_linalg::periodogram;
use autoai_lookback::{
    discover_univariate, influence_order, zero_crossing_lookback, LookbackConfig,
};

fn seasonal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 10.0 + 4.0 * (2.0 * std::f64::consts::PI * i as f64 / 24.0).sin())
        .collect()
}

fn time<F: FnMut()>(name: &str, iters: usize, mut f: F) {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    println!(
        "{name:<36} {:>12.3} ms/iter  ({iters} iters)",
        per_iter * 1e3
    );
}

fn main() {
    println!("== lookback_estimators ==");
    for n in [500usize, 2000, 8000] {
        let x = seasonal(n);
        time(&format!("periodogram/{n}"), 20, || {
            let _ = periodogram(black_box(&x));
        });
        time(&format!("zero_crossing/{n}"), 50, || {
            let _ = zero_crossing_lookback(black_box(&x));
        });
    }
    println!("== lookback_discovery ==");
    let x = seasonal(2000);
    time("influence_order_3_candidates", 3, || {
        let _ = influence_order(black_box(&x), &[12, 24, 48], 400, 0);
    });
    time("discover_univariate_full", 3, || {
        let _ = discover_univariate(black_box(&x), None, &LookbackConfig::default());
    });
}
