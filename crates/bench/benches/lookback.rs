//! Criterion benchmark: cost of the §4.1 look-back discovery pieces —
//! periodogram, zero-crossing estimate, influence ranking, full discovery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use autoai_linalg::periodogram;
use autoai_lookback::{discover_univariate, influence_order, zero_crossing_lookback, LookbackConfig};

fn seasonal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 10.0 + 4.0 * (2.0 * std::f64::consts::PI * i as f64 / 24.0).sin())
        .collect()
}

fn bench_estimators(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookback_estimators");
    for n in [500usize, 2000, 8000] {
        let x = seasonal(n);
        g.bench_with_input(BenchmarkId::new("periodogram", n), &x, |b, x| {
            b.iter(|| periodogram(black_box(x)))
        });
        g.bench_with_input(BenchmarkId::new("zero_crossing", n), &x, |b, x| {
            b.iter(|| zero_crossing_lookback(black_box(x)))
        });
    }
    g.finish();
}

fn bench_influence_and_discovery(c: &mut Criterion) {
    let x = seasonal(2000);
    let mut g = c.benchmark_group("lookback_discovery");
    g.sample_size(10);
    g.bench_function("influence_order_3_candidates", |b| {
        b.iter(|| influence_order(black_box(&x), &[12, 24, 48], 400, 0))
    });
    g.bench_function("discover_univariate_full", |b| {
        b.iter(|| discover_univariate(black_box(&x), None, &LookbackConfig::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_estimators, bench_influence_and_discovery);
criterion_main!(benches);
