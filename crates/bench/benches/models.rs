//! Criterion microbenchmarks: fit cost of every model family on a
//! representative seasonal series — the per-pipeline training times behind
//! Tables 4–6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use autoai_ml_models::{
    GradientBoostingRegressor, LinearRegression, RandomForestConfig, RandomForestRegressor,
    Regressor,
};
use autoai_pipelines::{pipeline_by_name, PipelineContext};
use autoai_stat_models::{Arima, ArimaSpec, Bats, BatsConfig, HoltWinters, Seasonality};
use autoai_transforms::flatten_windows;
use autoai_tsdata::TimeSeriesFrame;

fn seasonal_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            50.0 + 0.05 * i as f64
                + 10.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin()
        })
        .collect()
}

fn bench_stat_models(c: &mut Criterion) {
    let series = seasonal_series(500);
    let mut g = c.benchmark_group("stat_models_fit");
    g.bench_function("arima_2_1_1", |b| {
        b.iter(|| Arima::fit(black_box(&series), ArimaSpec::new(2, 1, 1)).unwrap())
    });
    g.bench_function("holtwinters_additive_12", |b| {
        b.iter(|| HoltWinters::fit(black_box(&series), Seasonality::Additive(12)).unwrap())
    });
    g.bench_function("bats_period_12", |b| {
        b.iter(|| Bats::fit(black_box(&series), &BatsConfig::with_periods(vec![12])).unwrap())
    });
    g.finish();
}

fn bench_ml_models(c: &mut Criterion) {
    let frame = TimeSeriesFrame::univariate(seasonal_series(500));
    let ds = flatten_windows(&frame, 12, 1);
    let y = ds.y.col(0);
    let mut g = c.benchmark_group("ml_models_fit");
    g.bench_function("linear_regression", |b| {
        b.iter(|| {
            let mut m = LinearRegression::new();
            m.fit(black_box(&ds.x), black_box(&y)).unwrap();
        })
    });
    g.bench_function("random_forest_30", |b| {
        b.iter(|| {
            let mut m = RandomForestRegressor::with_config(RandomForestConfig {
                n_trees: 30,
                ..Default::default()
            });
            m.fit(black_box(&ds.x), black_box(&y)).unwrap();
        })
    });
    g.bench_function("gbm_60", |b| {
        b.iter(|| {
            let mut m = GradientBoostingRegressor::new();
            m.fit(black_box(&ds.x), black_box(&y)).unwrap();
        })
    });
    g.finish();
}

fn bench_pipelines(c: &mut Criterion) {
    let frame = TimeSeriesFrame::univariate(seasonal_series(400));
    let ctx = PipelineContext::new(12, 12, vec![12]);
    let mut g = c.benchmark_group("pipeline_fit");
    g.sample_size(10);
    for name in ["MT2RForecaster", "WindowRandomForest", "HW-Additive", "Arima"] {
        g.bench_with_input(BenchmarkId::from_parameter(name), name, |b, name| {
            b.iter(|| {
                let mut p = pipeline_by_name(name, &ctx).unwrap();
                p.fit(black_box(&frame)).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_stat_models, bench_ml_models, bench_pipelines);
criterion_main!(benches);
