//! Microbenchmarks: fit cost of every model family on a representative
//! seasonal series — the per-pipeline training times behind Tables 4–6.
//!
//! Plain `std::time` harness (`harness = false`); run with
//! `cargo bench -p autoai-bench --bench models`.

use std::hint::black_box;
use std::time::Instant;

use autoai_ml_models::{
    GradientBoostingRegressor, LinearRegression, RandomForestConfig, RandomForestRegressor,
    Regressor,
};
use autoai_pipelines::{pipeline_by_name, PipelineContext};
use autoai_stat_models::{Arima, ArimaSpec, Bats, BatsConfig, HoltWinters, Seasonality};
use autoai_transforms::flatten_windows;
use autoai_tsdata::TimeSeriesFrame;

fn seasonal_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            50.0 + 0.05 * i as f64 + 10.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin()
        })
        .collect()
}

fn time<F: FnMut()>(name: &str, iters: usize, mut f: F) {
    // one warm-up iteration, then the timed loop
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    println!(
        "{name:<32} {:>12.3} ms/iter  ({iters} iters)",
        per_iter * 1e3
    );
}

fn bench_stat_models() {
    let series = seasonal_series(500);
    time("arima_2_1_1", 20, || {
        let _ = Arima::fit(black_box(&series), ArimaSpec::new(2, 1, 1));
    });
    time("holtwinters_additive_12", 20, || {
        let _ = HoltWinters::fit(black_box(&series), Seasonality::Additive(12));
    });
    time("bats_period_12", 20, || {
        let _ = Bats::fit(black_box(&series), &BatsConfig::with_periods(vec![12]));
    });
}

fn bench_ml_models() {
    let frame = TimeSeriesFrame::univariate(seasonal_series(500));
    let ds = flatten_windows(&frame, 12, 1);
    let y = ds.y.col(0);
    time("linear_regression", 20, || {
        let mut m = LinearRegression::new();
        let _ = m.fit(black_box(&ds.x), black_box(&y));
    });
    time("random_forest_30", 5, || {
        let mut m = RandomForestRegressor::with_config(RandomForestConfig {
            n_trees: 30,
            ..Default::default()
        });
        let _ = m.fit(black_box(&ds.x), black_box(&y));
    });
    time("gbm_60", 5, || {
        let mut m = GradientBoostingRegressor::new();
        let _ = m.fit(black_box(&ds.x), black_box(&y));
    });
}

fn bench_pipelines() {
    let frame = TimeSeriesFrame::univariate(seasonal_series(400));
    let ctx = PipelineContext::new(12, 12, vec![12]);
    for name in [
        "MT2RForecaster",
        "WindowRandomForest",
        "HW-Additive",
        "Arima",
    ] {
        time(&format!("pipeline/{name}"), 5, || {
            if let Some(mut p) = pipeline_by_name(name, &ctx) {
                let _ = p.fit(black_box(&frame));
            }
        });
    }
}

fn main() {
    println!("== stat_models_fit ==");
    bench_stat_models();
    println!("== ml_models_fit ==");
    bench_ml_models();
    println!("== pipeline_fit ==");
    bench_pipelines();
}
