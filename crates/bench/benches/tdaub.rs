//! Benchmark: the cost of T-Daub selection with and without the
//! cross-pipeline transform cache and incremental warm starts, plus the
//! original ablations (reverse vs forward allocation, exhaustive full-data
//! evaluation, and the per-pipeline soft time budget).
//!
//! Plain `std::time` harness (`harness = false`); run with
//! `cargo bench -p autoai-bench --bench tdaub`.
//!
//! Modes:
//!
//! * default — full measurement; writes the machine-readable
//!   `BENCH_tdaub.json` at the repo root (wall times, cache hit rate, bytes
//!   copied before/after the zero-copy + caching work).
//! * `--smoke` — reduced problem size, no JSON; asserts the cache is
//!   actually effective (hits, extensions, warm starts all non-trivial),
//!   that cached and uncached runs rank the pool identically, that the
//!   scoring phase replays full-length acceleration fits from the memo
//!   (fits avoided > 0, duplicate full-length fits == 0), and that a
//!   drift-style warm re-selection (previous ranking as priors, restricted
//!   pool, carried cross-run cache) beats a cold full-pool re-fit by the
//!   0.6x wall bar while preserving rank parity. Exits non-zero on any
//!   violation; wired into `scripts/check.sh`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use autoai_pipelines::{
    default_pipelines, pipeline_by_name, predict_interval_or_conformal, ConformalCalibration,
    Forecaster, PipelineContext, PipelineError,
};
use std::sync::Arc;

use autoai_tdaub::{run_tdaub, run_tdaub_with_cache, TDaubConfig, TDaubResult};
use autoai_transforms::TransformCache;
use autoai_tsdata::{interval_coverage, pinball_loss, GrowthKind, Metric, TimeSeriesFrame};

/// Two seasonal series with deterministic LCG noise — multivariate so the
/// localized-flatten path is exercised.
fn frame(n: usize) -> TimeSeriesFrame {
    let mut seed = 7u64;
    let mut noise = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let a: Vec<f64> = (0..n)
        .map(|i| 20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin() + 0.3 * noise())
        .collect();
    let b: Vec<f64> = (0..n)
        .map(|i| {
            10.0 + 0.01 * i as f64
                + 2.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).cos()
                + 0.3 * noise()
        })
        .collect();
    TimeSeriesFrame::from_columns(vec![a, b])
}

/// Fresh rows continuing the two seasonal signals past `from` — the tail a
/// serving loop would `observe` between a fit and a drift-triggered
/// re-selection. Deterministic, distinct noise seed.
fn tail_frame(from: usize, extra: usize) -> TimeSeriesFrame {
    let mut seed = 99u64;
    let mut noise = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let a: Vec<f64> = (from..from + extra)
        .map(|i| 20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin() + 0.3 * noise())
        .collect();
    let b: Vec<f64> = (from..from + extra)
        .map(|i| {
            10.0 + 0.01 * i as f64
                + 2.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).cos()
                + 0.3 * noise()
        })
        .collect();
    TimeSeriesFrame::from_columns(vec![a, b])
}

/// The paper's 10 default pipelines plus the extension pipelines — the
/// extensions add warm-start-capable models (ZeroModel, AR, SeasonalNaive)
/// and extra flatten-key sharers (FlattenAutoEnsembler, NeuralWindow).
fn pool() -> Vec<Box<dyn Forecaster>> {
    let ctx = PipelineContext::new(8, 12, vec![12]);
    let mut out = default_pipelines(&ctx);
    for name in [
        "ZeroModel",
        "Theta",
        "NeuralWindow",
        "FlattenAutoEnsembler",
        "AR",
        "SeasonalNaive",
    ] {
        if let Some(p) = pipeline_by_name(name, &ctx) {
            out.push(p);
        }
    }
    out
}

/// Fine-grained allocation rounds (25-row steps to a 250-row cutoff): the
/// regime T-Daub's incremental growth targets — an uncached run rebuilds
/// every design matrix from scratch at each round (quadratic bytes), the
/// cache extends the previous round's matrix (linear bytes).
fn config(cached: bool, parallel: bool) -> TDaubConfig {
    TDaubConfig {
        min_allocation_size: 25,
        allocation_size: 25,
        fixed_allocation_cutoff: Some(250),
        parallel,
        transform_cache: cached,
        incremental: cached,
        ..Default::default()
    }
}

/// Best-of-`iters` wall time in milliseconds, plus the last result.
fn measure(iters: usize, mut f: impl FnMut() -> TDaubResult) -> (f64, TDaubResult) {
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters {
        let start = Instant::now();
        let r = f();
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best_ms, last.expect("at least one iteration"))
}

/// Ranking-parity signature: pipeline names in rank order. Tier-2 warm
/// starts (seeded Nelder–Mead restarts, ensemble tournament reuse) are
/// deterministic but not bit-identical to cold fits, so the cached vs
/// uncached comparison checks T-Daub's actual output — the ranking —
/// rather than raw score bits. Bit-exactness of the tier-1 pipelines is
/// enforced separately by `tests/cache_correctness.rs`.
fn ranking(r: &TDaubResult) -> Vec<String> {
    r.reports.iter().map(|rep| rep.name.clone()).collect()
}

/// A pipeline whose every fit stalls for a fixed delay — the pool-polluter
/// the soft budget exists to contain.
struct SlowPipeline {
    delay: Duration,
    inner: Box<dyn Forecaster>,
}

impl SlowPipeline {
    fn new(delay: Duration) -> Self {
        let ctx = PipelineContext::new(8, 12, vec![12]);
        Self {
            delay,
            inner: pipeline_by_name("ZeroModel", &ctx).expect("ZeroModel registered"),
        }
    }
}

impl Forecaster for SlowPipeline {
    fn fit(&mut self, frame: &TimeSeriesFrame) -> Result<(), PipelineError> {
        std::thread::sleep(self.delay);
        self.inner.fit(frame)
    }
    fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
        self.inner.predict(horizon)
    }
    fn name(&self) -> String {
        "SlowPipeline".into()
    }
    fn clone_unfitted(&self) -> Box<dyn Forecaster> {
        Box::new(Self::new(self.delay))
    }
}

fn time<F: FnMut()>(name: &str, iters: usize, mut f: F) {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    println!(
        "{name:<32} {:>12.3} ms/iter  ({iters} iters)",
        per_iter * 1e3
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, iters) = if smoke { (300, 1) } else { (720, 3) };
    let data = frame(n);
    let pool_size = pool().len();

    println!("== cache & warm starts ({pool_size} pipelines, {n} rows x 2 series) ==");
    // smoke runs in parallel for speed — cache stats and rankings are
    // deterministic across execution modes, and smoke verifies exactly that;
    // the full benchmark stays serial so wall times compare like-for-like
    let (uncached_ms, uncached) = measure(iters, || {
        run_tdaub(pool(), &data, &config(false, smoke)).expect("uncached run")
    });
    let (cached_ms, cached) = measure(iters, || {
        run_tdaub(pool(), &data, &config(true, smoke)).expect("cached run")
    });
    let stats = cached.execution.cache;
    let speedup = uncached_ms / cached_ms;
    // "before" reconstructs the seed implementation's traffic: every
    // allocation slice was a row copy, and every design matrix (and shared
    // transform output) was rebuilt from scratch per pipeline.
    let bytes_after = stats.bytes_built;
    let bytes_before = stats
        .bytes_built
        .saturating_add(stats.bytes_saved)
        .saturating_add(cached.execution.slice_bytes_avoided);
    let copy_reduction = if bytes_after == 0 {
        f64::INFINITY
    } else {
        bytes_before as f64 / bytes_after as f64
    };
    let rankings_match = ranking(&uncached) == ranking(&cached);

    println!("uncached                         {uncached_ms:>12.3} ms");
    println!("cached + incremental             {cached_ms:>12.3} ms   ({speedup:.2}x)");
    println!(
        "cache: {} hits / {} misses ({} extensions), hit rate {:.1}%",
        stats.hits,
        stats.misses,
        stats.extensions,
        stats.hit_rate() * 100.0
    );
    println!(
        "bytes copied: {bytes_before} before -> {bytes_after} after ({copy_reduction:.1}x less)"
    );
    println!(
        "warm starts: {}   slice bytes avoided: {}",
        cached.execution.incremental_fits, cached.execution.slice_bytes_avoided
    );
    println!(
        "fits avoided (memo replays): {} cached / {} uncached   duplicate full fits: {} / {}",
        cached.execution.fits_avoided,
        uncached.execution.fits_avoided,
        cached.execution.duplicate_fits,
        uncached.execution.duplicate_fits
    );
    println!("rankings identical: {rankings_match}");

    assert!(rankings_match, "cached and uncached rankings diverged");
    // the memo is unconditional (fingerprint equality implies bitwise
    // identical inputs), so both arms must replay the full-length
    // acceleration fit in the scoring phase instead of refitting
    assert_eq!(
        cached.execution.duplicate_fits, 0,
        "cached run repeated a fit on an identical frame view"
    );
    assert_eq!(
        uncached.execution.duplicate_fits, 0,
        "uncached run repeated a fit on an identical frame view"
    );
    println!("== warm re-selection (drift response) ==");
    // Mirror the serving loop: fit once against a service-owned cross-run
    // cache, observe a fresh tail (in-place append keeps buffer identity,
    // so the cache extends), then compare the drift responses — a cold
    // full-pool re-fit versus the service's warm re-selection (previous
    // ranking as priors, previous top ranks + ZeroModel as the pool, same
    // carried cache).
    let mut live = frame(n);
    let service_cache = Arc::new(TransformCache::new());
    let initial = run_tdaub_with_cache(
        pool(),
        &live,
        &config(true, smoke),
        Some(Arc::clone(&service_cache)),
    )
    .expect("initial service fit");
    let priors = ranking(&initial);
    drop(initial); // release every view of `live` so growth stays in place
                   // the cache's ABA pins co-own the buffers; release them exactly as the
                   // service's `observe` does so the append stays in place
    service_cache.release_pins(live.fingerprint().buffers());
    let record = live.append(&tail_frame(n, 24));
    assert_eq!(
        record.kind,
        GrowthKind::InPlace,
        "observe-style append re-based the buffers; fingerprint continuity lost"
    );
    let (cold_refit_ms, cold_refit) = measure(iters, || {
        run_tdaub(pool(), &live, &config(true, smoke)).expect("cold re-fit")
    });
    let warm_pool = || -> Vec<Box<dyn Forecaster>> {
        let ctx = PipelineContext::new(8, 12, vec![12]);
        let mut names: Vec<String> = priors.iter().take(3).cloned().collect();
        if !names.iter().any(|p| p == "ZeroModel") {
            names.push("ZeroModel".to_string());
        }
        names
            .iter()
            .filter_map(|nm| pipeline_by_name(nm, &ctx))
            .collect()
    };
    let warm_cfg = TDaubConfig {
        warm_priors: Some(priors.clone()),
        ..config(true, smoke)
    };
    let (warm_ms, warm_sel) = measure(iters, || {
        run_tdaub_with_cache(
            warm_pool(),
            &live,
            &warm_cfg,
            Some(Arc::clone(&service_cache)),
        )
        .expect("warm re-selection")
    });
    let warm_ratio = warm_ms / cold_refit_ms.max(1e-9);
    let warm_names = ranking(&warm_sel);
    let cold_restricted: Vec<String> = ranking(&cold_refit)
        .into_iter()
        .filter(|nm| warm_names.contains(nm))
        .collect();
    let reselect_parity = warm_names == cold_restricted;
    println!(
        "cold re-fit ({} pipelines)        {cold_refit_ms:>12.3} ms",
        pool_size
    );
    println!(
        "warm re-select ({} pipelines)      {warm_ms:>12.3} ms   ({warm_ratio:.2}x of cold)",
        warm_names.len()
    );
    println!(
        "warm winner: {}   rank parity vs cold: {reselect_parity}",
        warm_names[0]
    );
    assert!(
        reselect_parity,
        "warm re-selection ranked its pool differently than the cold re-fit: \
         warm {warm_names:?} vs cold {cold_restricted:?}"
    );

    println!("== ensemble selection & probabilistic bands ==");
    // the default config runs greedy forward selection over the top
    // survivors — selection is prediction-only, so it must not perturb the
    // ranking: an ensembling-disabled run ranks bit-identically
    let selection = cached
        .ensemble
        .as_ref()
        .expect("default config runs ensemble selection");
    let weight_sum: f64 = selection.members.iter().map(|m| m.weight).sum();
    assert!(
        (weight_sum - 1.0).abs() < 1e-9,
        "ensemble weights sum to {weight_sum}"
    );
    assert!(
        selection.score <= selection.best_single,
        "ensemble {} worse than best single {}",
        selection.score,
        selection.best_single
    );
    let plain = run_tdaub(
        pool(),
        &data,
        &TDaubConfig {
            ensemble_top_k: 0,
            ..config(true, smoke)
        },
    )
    .expect("ensembling-disabled run");
    assert!(plain.ensemble.is_none(), "disabled run still ensembled");
    let rank_bits = |r: &TDaubResult| -> Vec<(String, usize, u64, u64)> {
        r.reports
            .iter()
            .map(|rep| {
                (
                    rep.name.clone(),
                    rep.rank,
                    rep.projected_score.to_bits(),
                    rep.final_score.unwrap_or(f64::NAN).to_bits(),
                )
            })
            .collect()
    };
    assert_eq!(
        rank_bits(&cached),
        rank_bits(&plain),
        "ensembling perturbed the ranking"
    );
    let members: Vec<String> = selection
        .members
        .iter()
        .map(|m| format!("{}:{:.3}", m.name, m.weight))
        .collect();
    println!(
        "ensemble [{}]  holdout {:.4} vs best single {:.4} ({} rounds)",
        members.join(", "),
        selection.score,
        selection.best_single,
        selection.rounds
    );

    // split-conformal winner bands scored out-of-sample: fit on the prefix,
    // calibrate on the next 12 rows, evaluate pinball + coverage (alongside
    // SMAPE) on the final 12 rows the calibration never saw
    let ctx = PipelineContext::new(8, 12, vec![12]);
    let mut champ = pipeline_by_name(&cached.best.name(), &ctx)
        .or_else(|| pipeline_by_name("ZeroModel", &ctx))
        .expect("winner resolvable by name");
    champ
        .fit(&data.slice(0, n - 24))
        .expect("winner fits the bench prefix");
    let calibration = ConformalCalibration::calibrate(champ.as_ref(), &data.slice(n - 24, n - 12));
    let iv = predict_interval_or_conformal(champ.as_ref(), 24, &[0.8, 0.95], calibration.as_ref())
        .expect("winner always has bands");
    let t_eval = data.slice(n - 12, n);
    let p_eval = iv.point().slice(12, 24);
    let (lo80, hi80) = iv.band(0).expect("80% band");
    let (lo95, hi95) = iv.band(1).expect("95% band");
    let (lo80, hi80) = (lo80.slice(12, 24), hi80.slice(12, 24));
    let (lo95, hi95) = (lo95.slice(12, 24), hi95.slice(12, 24));
    let mut eval_smape = 0.0;
    let (mut pinball_q10, mut pinball_q90) = (0.0, 0.0);
    let (mut coverage_80, mut coverage_95) = (0.0, 0.0);
    let n_series = t_eval.n_series();
    for c in 0..n_series {
        let actual = t_eval.series(c);
        eval_smape += Metric::Smape.eval(actual, p_eval.series(c));
        // the 80% band's edges are the 10%/90% quantiles
        pinball_q10 += pinball_loss(actual, lo80.series(c), 0.10).expect("pinball q10");
        pinball_q90 += pinball_loss(actual, hi80.series(c), 0.90).expect("pinball q90");
        coverage_80 += interval_coverage(actual, lo80.series(c), hi80.series(c)).expect("cov 80");
        coverage_95 += interval_coverage(actual, lo95.series(c), hi95.series(c)).expect("cov 95");
    }
    let scale = n_series.max(1) as f64;
    eval_smape /= scale;
    pinball_q10 /= scale;
    pinball_q90 /= scale;
    coverage_80 /= scale;
    coverage_95 /= scale;
    println!(
        "winner bands ({}): smape {eval_smape:.3}  pinball q10/q90 {pinball_q10:.4}/{pinball_q90:.4}  coverage 80%/95%: {coverage_80:.2}/{coverage_95:.2}",
        iv.source()
    );
    assert!(
        pinball_q10.is_finite() && pinball_q90.is_finite() && eval_smape.is_finite(),
        "probabilistic metrics must be finite"
    );
    assert!(
        (0.0..=1.0).contains(&coverage_80) && (0.0..=1.0).contains(&coverage_95),
        "coverage out of range: {coverage_80} / {coverage_95}"
    );
    assert!(
        coverage_95 >= coverage_80,
        "nested bands lost coverage ordering: {coverage_95} < {coverage_80}"
    );

    if smoke {
        assert!(stats.hits > 0, "transform cache recorded no hits");
        assert!(stats.misses > 0, "transform cache recorded no misses");
        assert!(
            stats.extensions > 0,
            "no incremental matrix extensions across allocations"
        );
        assert!(
            cached.execution.incremental_fits > 0,
            "no warm-started fits"
        );
        assert!(
            cached.execution.fits_avoided > 0,
            "scoring phase refit a full-length pipeline instead of \
             replaying the memoized acceleration score"
        );
        assert!(
            cached.execution.slice_bytes_avoided > 0,
            "zero-copy views recorded no avoided slice copies"
        );
        // the deterministic acceptance bar — wall time is too noisy for a
        // CI gate, bytes copied are exact
        assert!(
            copy_reduction >= 5.0,
            "bytes-copied bar not met: {copy_reduction:.1}x (need 5x)"
        );
        // coarse wall-clock regression floor: warm starts + transform cache
        // currently buy ≈2.5x on this workload; 2.0 leaves margin for
        // scheduler noise on a loaded runner while still catching a lost
        // warm-start path (which drops the ratio toward 1x)
        let speedup = uncached_ms / cached_ms.max(1e-9);
        assert!(
            speedup >= 2.0,
            "tdaub smoke speedup regressed: {speedup:.2}x (floor 2.0x, expected ~2.5x)"
        );
        // the serving loop's economics: responding to drift with a warm
        // re-selection (priors + restricted pool + carried cache) must stay
        // well under a cold full-pool re-fit or the online path is pointless
        assert!(
            warm_ratio <= 0.6,
            "warm re-selection too close to a cold re-fit: \
             {warm_ms:.3} ms vs {cold_refit_ms:.3} ms ({warm_ratio:.2}x, bar 0.6x)"
        );
        println!(
            "smoke: all cache-effectiveness, ensemble, and warm-reselection assertions passed"
        );
        return;
    }

    println!("== selection ablations ==");
    time("tdaub_forward", iters, || {
        let cfg = TDaubConfig {
            reverse_allocation: false,
            ..config(true, false)
        };
        let _ = run_tdaub(pool(), black_box(&data), &cfg);
    });
    time("exhaustive_full_data", iters, || {
        let len = data.len();
        let cut = len - len / 5;
        let (t1, t2) = (data.slice(0, cut), data.slice(cut, len));
        let mut best = f64::INFINITY;
        for mut p in pool() {
            if p.fit(black_box(&t1)).is_err() {
                continue;
            }
            if let Ok(s) = p.score(&t2, Metric::Smape) {
                best = best.min(s);
            }
        }
        black_box(best);
    });

    println!("== budgeted execution (pool polluted by a 60 ms/fit pipeline) ==");
    let slow_pool = || -> Vec<Box<dyn Forecaster>> {
        let mut p = pool();
        p.push(Box::new(SlowPipeline::new(Duration::from_millis(60))));
        p
    };
    time("polluted_unbudgeted", 2, || {
        let _ = run_tdaub(slow_pool(), black_box(&data), &config(true, false));
    });
    time("polluted_budget_100ms", 2, || {
        let cfg = TDaubConfig {
            pipeline_time_budget: Some(Duration::from_millis(100)),
            ..config(true, false)
        };
        let r = run_tdaub(slow_pool(), black_box(&data), &cfg);
        if let Ok(r) = r {
            // the slow pipeline must have been cut off, not ranked
            assert!(r.reports.iter().all(|rep| rep.name != "SlowPipeline"));
            black_box(r.execution.total_allocations());
        }
    });

    // machine-readable record at the repo root (hand-built JSON: the schema
    // is flat and the hermetic build carries no serializer)
    let member_json: Vec<String> = selection
        .members
        .iter()
        .map(|m| {
            format!(
                "{{\"name\": \"{}\", \"weight\": {:.4}, \"picks\": {}}}",
                m.name, m.weight, m.picks
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"tdaub\",\n  \"pool_size\": {pool_size},\n  \"rows\": {n},\n  \"series\": 2,\n  \"iters\": {iters},\n  \"uncached_ms\": {uncached_ms:.3},\n  \"cached_ms\": {cached_ms:.3},\n  \"speedup\": {speedup:.3},\n  \"cache\": {{\n    \"hits\": {},\n    \"misses\": {},\n    \"extensions\": {},\n    \"hit_rate\": {:.4},\n    \"bytes_saved\": {},\n    \"bytes_built\": {}\n  }},\n  \"incremental_fits\": {},\n  \"fits_avoided\": {},\n  \"duplicate_fits\": {},\n  \"slice_bytes_avoided\": {},\n  \"bytes_copied_before\": {bytes_before},\n  \"bytes_copied_after\": {bytes_after},\n  \"copy_reduction\": {copy_reduction:.3},\n  \"rankings_match\": {rankings_match},\n  \"ensemble\": {{\n    \"members\": [{}],\n    \"score\": {:.4},\n    \"best_single\": {:.4},\n    \"rounds\": {}\n  }},\n  \"probabilistic\": {{\n    \"source\": \"{}\",\n    \"smape\": {eval_smape:.4},\n    \"pinball_q10\": {pinball_q10:.4},\n    \"pinball_q90\": {pinball_q90:.4},\n    \"coverage_80\": {coverage_80:.4},\n    \"coverage_95\": {coverage_95:.4}\n  }},\n  \"reselection\": {{\n    \"cold_refit_ms\": {cold_refit_ms:.3},\n    \"warm_ms\": {warm_ms:.3},\n    \"warm_ratio\": {warm_ratio:.3},\n    \"warm_pool\": {},\n    \"rank_parity\": {reselect_parity},\n    \"winner\": \"{}\"\n  }}\n}}\n",
        stats.hits,
        stats.misses,
        stats.extensions,
        stats.hit_rate(),
        stats.bytes_saved,
        stats.bytes_built,
        cached.execution.incremental_fits,
        cached.execution.fits_avoided,
        cached.execution.duplicate_fits,
        cached.execution.slice_bytes_avoided,
        member_json.join(", "),
        selection.score,
        selection.best_single,
        selection.rounds,
        iv.source(),
        warm_names.len(),
        warm_names[0],
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tdaub.json");
    std::fs::write(path, json).expect("write BENCH_tdaub.json");
    println!("wrote {path}");
}
