//! Benchmark: T-Daub selection cost vs exhaustive full-data evaluation
//! (ablation A1), the cost of reverse vs forward allocation, and the
//! wall-clock effect of the per-pipeline soft time budget when a slow
//! pipeline pollutes the pool.
//!
//! Plain `std::time` harness (`harness = false`); run with
//! `cargo bench -p autoai-bench --bench tdaub`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use autoai_pipelines::{
    Forecaster, Mt2rForecaster, PipelineError, ThetaPipeline, ZeroModelPipeline,
};
use autoai_tdaub::{run_tdaub, TDaubConfig};
use autoai_tsdata::{Metric, TimeSeriesFrame};

fn frame(n: usize) -> TimeSeriesFrame {
    TimeSeriesFrame::univariate(
        (0..n)
            .map(|i| 20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin())
            .collect(),
    )
}

fn pool() -> Vec<Box<dyn Forecaster>> {
    vec![
        Box::new(ZeroModelPipeline::new()),
        Box::new(Mt2rForecaster::new(12, 12)),
        Box::new(ThetaPipeline::new()),
    ]
}

/// A pipeline whose every fit stalls for a fixed delay — the pool-polluter
/// the soft budget exists to contain.
struct SlowPipeline {
    delay: Duration,
    inner: ZeroModelPipeline,
}

impl SlowPipeline {
    fn new(delay: Duration) -> Self {
        Self {
            delay,
            inner: ZeroModelPipeline::new(),
        }
    }
}

impl Forecaster for SlowPipeline {
    fn fit(&mut self, frame: &TimeSeriesFrame) -> Result<(), PipelineError> {
        std::thread::sleep(self.delay);
        self.inner.fit(frame)
    }
    fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
        self.inner.predict(horizon)
    }
    fn name(&self) -> String {
        "SlowPipeline".into()
    }
    fn clone_unfitted(&self) -> Box<dyn Forecaster> {
        Box::new(Self::new(self.delay))
    }
}

fn time<F: FnMut()>(name: &str, iters: usize, mut f: F) {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    println!(
        "{name:<32} {:>12.3} ms/iter  ({iters} iters)",
        per_iter * 1e3
    );
}

fn main() {
    let data = frame(1000);
    println!("== selection ==");
    time("tdaub_reverse", 5, || {
        let cfg = TDaubConfig {
            parallel: false,
            ..Default::default()
        };
        let _ = run_tdaub(pool(), black_box(&data), &cfg);
    });
    time("tdaub_forward", 5, || {
        let cfg = TDaubConfig {
            parallel: false,
            reverse_allocation: false,
            ..Default::default()
        };
        let _ = run_tdaub(pool(), black_box(&data), &cfg);
    });
    time("exhaustive_full_data", 5, || {
        let n = data.len();
        let cut = n - n / 5;
        let (t1, t2) = (data.slice(0, cut), data.slice(cut, n));
        let mut best = f64::INFINITY;
        for mut p in pool() {
            if p.fit(black_box(&t1)).is_err() {
                continue;
            }
            if let Ok(s) = p.score(&t2, Metric::Smape) {
                best = best.min(s);
            }
        }
        black_box(best);
    });

    println!("== budgeted execution (pool polluted by a 60 ms/fit pipeline) ==");
    let slow_pool = || -> Vec<Box<dyn Forecaster>> {
        let mut p = pool();
        p.push(Box::new(SlowPipeline::new(Duration::from_millis(60))));
        p
    };
    time("polluted_unbudgeted", 3, || {
        let cfg = TDaubConfig {
            parallel: false,
            ..Default::default()
        };
        let _ = run_tdaub(slow_pool(), black_box(&data), &cfg);
    });
    time("polluted_budget_100ms", 3, || {
        let cfg = TDaubConfig {
            parallel: false,
            pipeline_time_budget: Some(Duration::from_millis(100)),
            ..Default::default()
        };
        let r = run_tdaub(slow_pool(), black_box(&data), &cfg);
        if let Ok(r) = r {
            // the slow pipeline must have been cut off, not ranked
            assert!(r.reports.iter().all(|rep| rep.name != "SlowPipeline"));
            black_box(r.execution.total_allocations());
        }
    });
}
