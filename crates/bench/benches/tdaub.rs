//! Criterion benchmark: T-Daub selection cost vs exhaustive full-data
//! evaluation (ablation A1) and the cost of reverse vs forward allocation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use autoai_pipelines::{Forecaster, Mt2rForecaster, ThetaPipeline, ZeroModelPipeline};
use autoai_tdaub::{run_tdaub, TDaubConfig};
use autoai_tsdata::{Metric, TimeSeriesFrame};

fn frame(n: usize) -> TimeSeriesFrame {
    TimeSeriesFrame::univariate(
        (0..n)
            .map(|i| 20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin())
            .collect(),
    )
}

fn pool() -> Vec<Box<dyn Forecaster>> {
    vec![
        Box::new(ZeroModelPipeline::new()),
        Box::new(Mt2rForecaster::new(12, 12)),
        Box::new(ThetaPipeline::new()),
    ]
}

fn bench_tdaub_vs_full(c: &mut Criterion) {
    let data = frame(1000);
    let mut g = c.benchmark_group("selection");
    g.sample_size(10);
    g.bench_function("tdaub_reverse", |b| {
        b.iter(|| {
            let cfg = TDaubConfig { parallel: false, ..Default::default() };
            run_tdaub(pool(), black_box(&data), &cfg).unwrap()
        })
    });
    g.bench_function("tdaub_forward", |b| {
        b.iter(|| {
            let cfg = TDaubConfig {
                parallel: false,
                reverse_allocation: false,
                ..Default::default()
            };
            run_tdaub(pool(), black_box(&data), &cfg).unwrap()
        })
    });
    g.bench_function("exhaustive_full_data", |b| {
        b.iter(|| {
            let n = data.len();
            let cut = n - n / 5;
            let (t1, t2) = (data.slice(0, cut), data.slice(cut, n));
            let mut best = f64::INFINITY;
            for mut p in pool() {
                p.fit(black_box(&t1)).unwrap();
                let s = p.score(&t2, Metric::Smape).unwrap();
                best = best.min(s);
            }
            best
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tdaub_vs_full);
criterion_main!(benches);
