//! Hash-ordered iteration in a determinism-critical path is flagged;
//! keyed lookups are not.

struct Stats {
    by_name: HashMap<String, u64>,
}

impl Stats {
    fn report(&self) -> Vec<String> {
        let mut out = Vec::new();
        for k in self.by_name.keys() {
            out.push(k.clone());
        }
        out
    }

    fn lookup(&self, k: &str) -> Option<u64> {
        self.by_name.get(k).copied()
    }
}

fn locals() -> u64 {
    let seen: HashSet<u64> = HashSet::new();
    let mut total = 0;
    for v in &seen {
        total += *v;
    }
    total
}
