//! Decoys in nested block comments and char literals must not fire.

/* outer /* nested .unwrap() panic!("x") */ still a comment */
fn lifetimes<'a>(x: &'a [u8]) -> char {
    let marker: char = 'p';
    let _ = x;
    marker
}

fn real(v: Option<u8>) -> u8 {
    v.expect("boom")
}
