//! One half of a cross-file lock-order cycle: alpha before beta.

fn forward(alpha: &OrderedMutex<u32>, beta: &OrderedMutex<u32>) {
    if let Ok(a) = alpha.lock() {
        if let Ok(b) = beta.lock() {
            let _ = (*a, *b);
        }
    }
}
