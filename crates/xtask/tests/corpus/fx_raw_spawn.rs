//! Raw thread creation outside the persistent pool module is flagged;
//! sleeping, querying parallelism, and waived one-offs are not.

fn fan_out(items: Vec<u64>) -> Vec<u64> {
    std::thread::scope(|s| {
        let h = s.spawn(move || items);
        h.join().unwrap_or_default()
    })
}

fn fire_and_forget() {
    std::thread::spawn(|| background_work());
}

fn named_worker() {
    let b = thread::Builder::new().name("worker".into());
    drop(b);
}

fn harmless() {
    std::thread::sleep(std::time::Duration::from_millis(1));
    let n = std::thread::available_parallelism();
    drop(n);
}

fn waived() {
    // tscheck:allow(raw-spawn): startup probe, joined before the pool exists
    std::thread::spawn(|| probe());
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn_freely() {
        std::thread::spawn(|| {}).join().ok();
    }
}
