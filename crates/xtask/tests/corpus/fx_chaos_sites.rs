//! Chaos injection sites must come from the registry: the online-loop
//! sites (`observe.append`, `drift.update`, `reselect.swap`) are valid,
//! a typo'd site is flagged, and non-literal site arguments (the generic
//! gate helper forwarding a variable) are left alone.

fn gates(name: &str) -> Option<Fault> {
    let k = autoai_chaos::key(name);
    if autoai_chaos::inject("observe.append", k).is_some() {
        return None;
    }
    if autoai_chaos::inject("drift.update", k).is_some() {
        return None;
    }
    self.chaos_gate("reselect.swap", k)?;
    // typo: the registered site is `reselect.swap`
    self.chaos_gate("reselect.swp", k)?;
    autoai_chaos::inject("drift.updates", k)
}

fn forwarded(site: &str, k: u64) -> Option<Fault> {
    // a variable site is the generic helper itself, not a registration
    autoai_chaos::inject(site, k)
}
