//! Raw lock construction outside the ordered wrappers is flagged.

fn build() -> (Mutex<u32>, RwLock<u32>) {
    let m = Mutex::new(0);
    let r = RwLock::new(0);
    (m, r)
}

fn good() -> OrderedMutex<u32> {
    OrderedMutex::new("fx.good", 0)
}
