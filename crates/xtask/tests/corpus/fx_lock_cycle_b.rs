//! The other half: beta before alpha — closes the workspace cycle.

fn backward(alpha: &OrderedMutex<u32>, beta: &OrderedMutex<u32>) {
    if let Ok(b) = beta.lock() {
        if let Ok(a) = alpha.lock() {
            let _ = (*a, *b);
        }
    }
}
