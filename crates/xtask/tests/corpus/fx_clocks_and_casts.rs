//! Wall-clock reads outside the whitelist and truncating length casts.

fn timed(xs: &[f64]) -> (u32, f64) {
    let t0 = Instant::now();
    let n = xs.len() as u32;
    let _ = SystemTime::now();
    let wide = xs.len() as u64;
    let _ = wide;
    (n, t0.elapsed().as_secs_f64())
}
