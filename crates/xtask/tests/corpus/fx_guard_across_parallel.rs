//! A guard held across a fan-out call is flagged; a scoped guard is not.

fn bad(m: &OrderedMutex<Vec<u32>>, items: &mut [u32]) {
    let g = m.lock();
    let out = supervised_try_map(items, hard, 4, worker);
    drop(g);
    let _ = out;
}

fn good(m: &OrderedMutex<Vec<u32>>, items: &mut [u32]) {
    {
        let g = m.lock();
        let _ = g;
    }
    let _ = supervised_try_map(items, hard, 4, worker);
}
