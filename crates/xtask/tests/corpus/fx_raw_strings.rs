//! Decoy panics inside raw strings must not fire; the real one must.

fn decoys() -> String {
    let a = r#"x.unwrap() and panic!("no") and "quoted" inside"#;
    let b = r##"outer "# inner fence .expect("boom") still string"##;
    let c = br#"byte string with .unwrap()"#;
    format!("{a} {b} {c:?}")
}

fn real(v: Option<i32>) -> i32 {
    v.unwrap()
}
