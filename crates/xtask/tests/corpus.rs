//! Golden corpus for the token analyzer: every fixture under
//! `tests/corpus/` carries a `.golden` companion listing exactly the
//! violations it must reproduce (`<line> <rule-id>` per line, with the
//! synthetic in-scope path on a `path ` header line). The whole corpus is
//! analyzed as one workspace so the cross-file lock-order cycle fixtures
//! exercise the real graph, not a per-file shortcut.
//!
//! A final test runs the analyzer over its *own* source tree (which is
//! deliberately outside the default scope) under a widened config and
//! asserts it comes back clean — the linter holds itself to its rules.

use std::collections::BTreeSet;
use std::path::PathBuf;

use xtask::{check_locks, check_source, Config};

type Finding = (String, usize, String);

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Load `(synthetic_path, source)` pairs and the expected finding set.
fn load_corpus() -> (Vec<(String, String)>, BTreeSet<Finding>) {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "golden"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "corpus is empty");

    let mut sources = Vec::new();
    let mut expected = BTreeSet::new();
    for golden in entries {
        let text = std::fs::read_to_string(&golden).expect("golden readable");
        let mut lines = text.lines();
        let synth = lines
            .next()
            .and_then(|l| l.strip_prefix("path "))
            .unwrap_or_else(|| panic!("{golden:?}: first line must be `path <synthetic>`"))
            .trim()
            .to_string();
        let src = std::fs::read_to_string(golden.with_extension("rs")).expect("fixture readable");
        sources.push((synth.clone(), src));
        for l in lines {
            let l = l.trim();
            if l.is_empty() || l.starts_with('#') {
                continue;
            }
            let (line, rule) = l.split_once(' ').expect("`<line> <rule>` format");
            expected.insert((
                synth.clone(),
                line.parse().expect("line number"),
                rule.into(),
            ));
        }
    }
    (sources, expected)
}

#[test]
fn corpus_reproduces_exactly_the_golden_violations() {
    let (sources, expected) = load_corpus();
    let cfg = Config::default();
    let mut actual: BTreeSet<Finding> = BTreeSet::new();
    for (path, src) in &sources {
        for v in check_source(path, src, &cfg) {
            actual.insert((v.file.clone(), v.line, v.rule.id().to_string()));
        }
    }
    for v in check_locks(&sources, &cfg) {
        actual.insert((v.file.clone(), v.line, v.rule.id().to_string()));
    }
    let missing: Vec<_> = expected.difference(&actual).collect();
    let spurious: Vec<_> = actual.difference(&expected).collect();
    assert!(
        missing.is_empty() && spurious.is_empty(),
        "corpus drift — missing: {missing:?}, spurious: {spurious:?}"
    );
}

#[test]
fn corpus_covers_every_new_rule_family() {
    let (_, expected) = load_corpus();
    let covered: BTreeSet<&str> = expected.iter().map(|(_, _, r)| r.as_str()).collect();
    for rule in [
        "lock-order",
        "lock-across-par",
        "raw-lock",
        "hash-iter",
        "wall-clock",
        "trunc-cast",
        "panic",
        "raw-spawn",
        "chaos-site",
    ] {
        assert!(covered.contains(rule), "no fixture exercises `{rule}`");
    }
}

#[test]
fn tscheck_is_clean_on_its_own_source() {
    let src_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut cfg = Config::default();
    cfg.scoped_crates.push("xtask".to_string());
    // the CLI's --timing flag is the one legitimate clock consumer here
    cfg.clock_paths.push("crates/xtask/src/main.rs".to_string());

    let mut sources = Vec::new();
    for name in ["lib.rs", "lexer.rs", "locks.rs", "main.rs"] {
        let src = std::fs::read_to_string(src_dir.join(name)).expect("own source readable");
        sources.push((format!("crates/xtask/src/{name}"), src));
    }
    let mut violations = Vec::new();
    for (path, src) in &sources {
        violations.extend(check_source(path, src, &cfg));
    }
    violations.extend(check_locks(&sources, &cfg));
    assert!(
        violations.is_empty(),
        "tscheck flags its own source:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
