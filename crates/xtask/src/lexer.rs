//! A zero-dependency Rust token lexer for the `tscheck` analyzer.
//!
//! Produces a flat token stream with per-token line numbers, handling the
//! lexical constructs a line-stripping scanner cannot: raw strings with
//! arbitrary `#` fences, *nested* block comments, byte strings/chars, and
//! the lifetime-vs-char-literal ambiguity. Comments are kept as tokens so
//! `tscheck:allow` waiver tags can be located per line; rule matching runs
//! over the comment-free code tokens.
//!
//! The lexer is intentionally forgiving: unterminated literals consume to
//! end of file instead of erroring, so the analyzer never aborts on a file
//! it cannot fully parse (it just sees fewer tokens).

use std::collections::HashMap;

/// The lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `let`, `r#match` is lexed as `match`).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinct from [`TokKind::Char`].
    Lifetime,
    /// String literal, including raw (`"…"`, `r#"…"#`) and byte variants.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// A single punctuation character.
    Punct(char),
    /// Line or block comment (full text preserved, line = starting line).
    Comment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Source text. Ordinary string literals keep their quoted source so
    /// registry rules (e.g. chaos-site) can match contents; raw/byte
    /// strings and chars are placeholders (`""`/`' '`) so rule patterns
    /// never match their contents; comments keep their full text for
    /// waiver-tag lookup.
    pub text: String,
    /// 1-based starting line.
    pub line: usize,
}

impl Tok {
    /// Is this token the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Is this token the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a token stream. Never panics; unterminated constructs
/// consume to end of input.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut toks: Vec<Tok> = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    let at = |j: usize| -> char { b.get(j).copied().unwrap_or('\0') };

    while i < n {
        let c = at(i);

        // whitespace
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // line comment (also doc comments)
        if c == '/' && at(i + 1) == '/' {
            let start = i;
            while i < n && at(i) != '\n' {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Comment,
                text: b.get(start..i).map(String::from_iter).unwrap_or_default(),
                line,
            });
            continue;
        }

        // block comment, nested
        if c == '/' && at(i + 1) == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if at(i) == '/' && at(i + 1) == '*' {
                    depth += 1;
                    i += 2;
                } else if at(i) == '*' && at(i + 1) == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if at(i) == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Comment,
                text: b.get(start..i).map(String::from_iter).unwrap_or_default(),
                line: start_line,
            });
            continue;
        }

        // raw strings / byte strings / byte chars: r"…", r#"…"#, b"…",
        // br#"…"#, b'…'. Check before generic identifiers.
        if (c == 'r' || c == 'b') && !is_ident_continue_at_prev(&b, i) {
            let mut j = i + 1;
            let mut is_raw = c == 'r';
            if c == 'b' && (at(j) == 'r') {
                is_raw = true;
                j += 1;
            }
            if is_raw && (at(j) == '"' || at(j) == '#') {
                // raw (byte) string: count fence hashes
                let mut hashes = 0usize;
                while at(j) == '#' {
                    hashes += 1;
                    j += 1;
                }
                if at(j) == '"' {
                    j += 1;
                    let start_line = line;
                    loop {
                        if j >= n {
                            break;
                        }
                        let ch = at(j);
                        if ch == '\n' {
                            line += 1;
                            j += 1;
                            continue;
                        }
                        if ch == '"' {
                            let mut k = 0usize;
                            while k < hashes && at(j + 1 + k) == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break;
                            }
                        }
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: "\"\"".to_string(),
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
                // `r#ident` raw identifier: fall through to ident lexing
                // below starting after `r#`.
                if hashes == 1 && is_ident_start(at(j)) && c == 'r' {
                    let start = j;
                    while j < n && is_ident_continue(at(j)) {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text: b.get(start..j).map(String::from_iter).unwrap_or_default(),
                        line,
                    });
                    i = j;
                    continue;
                }
            }
            if c == 'b' && at(i + 1) == '"' {
                // byte string: ordinary escape rules
                let start_line = line;
                let mut j = i + 2;
                while j < n {
                    match at(j) {
                        '\\' => j += 2,
                        '"' => break,
                        '\n' => {
                            line += 1;
                            j += 1;
                        }
                        _ => j += 1,
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: "\"\"".to_string(),
                    line: start_line,
                });
                i = j + 1;
                continue;
            }
            if c == 'b' && at(i + 1) == '\'' {
                // byte char
                let mut j = i + 2;
                if at(j) == '\\' {
                    j += 2;
                    while j < n && at(j) != '\'' {
                        j += 1;
                    }
                } else {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: "' '".to_string(),
                    line,
                });
                i = j + 1;
                continue;
            }
            // plain identifier starting with r/b
        }

        // ordinary string literal
        if c == '"' {
            let start_line = line;
            let mut j = i + 1;
            while j < n {
                match at(j) {
                    '\\' => j += 2,
                    '"' => break,
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            // Ordinary string literals keep their source text (rules
            // that match registered literals, e.g. chaos-site, need the
            // contents); raw/byte strings stay redacted to `""`.
            toks.push(Tok {
                kind: TokKind::Str,
                text: b
                    .get(i..(j + 1).min(n))
                    .map(String::from_iter)
                    .unwrap_or_default(),
                line: start_line,
            });
            i = j + 1;
            continue;
        }

        // lifetime vs char literal
        if c == '\'' {
            let c1 = at(i + 1);
            if is_ident_start(c1) && at(i + 2) != '\'' {
                // lifetime: 'a, 'static — an ident char followed by
                // anything but a closing quote
                let start = i + 1;
                let mut j = i + 1;
                while j < n && is_ident_continue(at(j)) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: format!(
                        "'{}",
                        b.get(start..j).map(String::from_iter).unwrap_or_default()
                    ),
                    line,
                });
                i = j;
                continue;
            }
            // char literal: 'x', '\n', '\u{1F600}', '\''
            let mut j = i + 1;
            if at(j) == '\\' {
                j += 2;
                while j < n && at(j) != '\'' {
                    j += 1;
                }
            } else {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Char,
                text: "' '".to_string(),
                line,
            });
            i = j + 1;
            continue;
        }

        // numeric literal
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i + 1;
            while j < n {
                let ch = at(j);
                if is_ident_continue(ch) {
                    j += 1;
                } else if ch == '.' && at(j + 1).is_ascii_digit() {
                    // decimal point, but not a range `0..n`
                    j += 2;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: b.get(start..j).map(String::from_iter).unwrap_or_default(),
                line,
            });
            i = j;
            continue;
        }

        // identifier / keyword
        if is_ident_start(c) {
            let start = i;
            let mut j = i + 1;
            while j < n && is_ident_continue(at(j)) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: b.get(start..j).map(String::from_iter).unwrap_or_default(),
                line,
            });
            i = j;
            continue;
        }

        // single punctuation char
        toks.push(Tok {
            kind: TokKind::Punct(c),
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

/// Is the char *before* position `i` an identifier-continue char? Used to
/// keep `br` / `r` prefixes from firing inside longer identifiers like
/// `attr` or `expr` (`expr"…"` is not valid Rust anyway, but `var` followed
/// by `"` across a macro boundary should not lex as a raw string).
fn is_ident_continue_at_prev(b: &[char], i: usize) -> bool {
    i > 0 && b.get(i - 1).copied().is_some_and(is_ident_continue)
}

/// A lexed file with test-region and comment metadata, ready for rule scans.
pub struct FileTokens {
    /// Comment-free code tokens in source order.
    pub code: Vec<Tok>,
    /// Parallel to `code`: true when the token sits inside a
    /// `#[cfg(test)]`-gated region (matched at token level, so strings and
    /// comments never confuse the brace tracking).
    pub in_test: Vec<bool>,
    /// Comment text per 1-based line (concatenated when several comments
    /// share a line), for `tscheck:allow` waiver lookup.
    pub comments: HashMap<usize, String>,
}

/// Lex `src` and compute test-region and comment metadata.
pub fn analyze_file(src: &str) -> FileTokens {
    let all = lex(src);
    let mut comments: HashMap<usize, String> = HashMap::new();
    let mut code: Vec<Tok> = Vec::new();
    for t in all {
        if t.kind == TokKind::Comment {
            comments.entry(t.line).or_default().push_str(&t.text);
        } else {
            code.push(t);
        }
    }
    let in_test = test_mask(&code);
    FileTokens {
        code,
        in_test,
        comments,
    }
}

/// Mark the token ranges covered by `#[cfg(test)]` (or `#[cfg(all(test,…))]`)
/// attributes: the gated item's brace block, or through the terminating `;`
/// for block-less items.
fn test_mask(code: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if code.get(i).is_some_and(|t| t.is_punct('#'))
            && code.get(i + 1).is_some_and(|t| t.is_punct('['))
        {
            // find the attribute's closing `]`
            let mut depth = 0i64;
            let mut j = i + 1;
            let mut end = None;
            while let Some(t) = code.get(j) {
                match t.kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            end = Some(j);
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(close) = end else { break };
            let body = code.get(i + 2..close).unwrap_or_default();
            let is_cfg_test = body.first().is_some_and(|t| t.is_ident("cfg"))
                && body.iter().any(|t| t.is_ident("test"));
            if is_cfg_test {
                // mark from the attribute through the gated item
                let item_end = gated_item_end(code, close + 1);
                for m in mask
                    .get_mut(i..=item_end.min(code.len().saturating_sub(1)))
                    .unwrap_or_default()
                {
                    *m = true;
                }
                i = item_end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Token index of the end of the item starting at `start` (inclusive):
/// skips further attributes, then either the matching `}` of the item's
/// first top-level `{`, or the first top-level `;` for block-less items.
fn gated_item_end(code: &[Tok], start: usize) -> usize {
    let mut j = start;
    // skip stacked attributes
    while code.get(j).is_some_and(|t| t.is_punct('#'))
        && code.get(j + 1).is_some_and(|t| t.is_punct('['))
    {
        let mut depth = 0i64;
        while let Some(t) = code.get(j) {
            match t.kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j += 1;
    }
    // find first `{` or `;` outside parens/brackets
    let mut pd = 0i64;
    while let Some(t) = code.get(j) {
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => pd += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => pd -= 1,
            TokKind::Punct(';') if pd == 0 => return j,
            TokKind::Punct('{') if pd == 0 => {
                // match braces to the item's closing `}`
                let mut bd = 0i64;
                while let Some(u) = code.get(j) {
                    match u.kind {
                        TokKind::Punct('{') => bd += 1,
                        TokKind::Punct('}') => {
                            bd -= 1;
                            if bd == 0 {
                                return j;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return code.len().saturating_sub(1);
            }
            _ => {}
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).iter().map(|t| t.kind).collect()
    }

    #[test]
    fn raw_strings_with_fences_do_not_leak_contents() {
        let toks = lex(r####"let s = r#"contains .unwrap() and panic!"#;"####);
        assert!(toks.iter().all(|t| !t.text.contains("unwrap")));
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn nested_block_comments_lex_as_one_comment() {
        let toks = lex("a /* outer /* inner */ still comment */ b");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["a", "b"]);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Comment).count(),
            1
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn escaped_char_literals_and_static_lifetime() {
        let toks = lex(r"let c = '\n'; let s: &'static str = x;");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
        assert!(toks.iter().any(|t| t.text == "'static"));
    }

    #[test]
    fn byte_strings_and_chars() {
        let toks = lex(r##"let a = b"panic!"; let c = b'\n'; let r = br#"x"#;"##);
        assert!(toks.iter().all(|t| !t.text.contains("panic")));
        assert!(toks.iter().filter(|t| t.kind == TokKind::Str).count() >= 2);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\";\nlet b = 1; /* c\nd */ let e = 2;";
        let toks = lex(src);
        let b_tok = toks.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        let e_tok = toks.iter().find(|t| t.is_ident("e")).map(|t| t.line);
        assert_eq!(b_tok, Some(3));
        assert_eq!(e_tok, Some(4));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let k = kinds("for i in 0..n {}");
        assert!(k.contains(&TokKind::Punct('.')));
        let toks = lex("let x = 1.5e3; let r = 0..10;");
        assert!(toks.iter().any(|t| t.text == "1.5e3"));
    }

    #[test]
    fn cfg_test_region_masks_item_block() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}";
        let ft = analyze_file(src);
        let unwrap_masked = ft
            .code
            .iter()
            .zip(&ft.in_test)
            .find(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, m)| *m);
        assert_eq!(unwrap_masked, Some(true));
        let after_masked = ft
            .code
            .iter()
            .zip(&ft.in_test)
            .find(|(t, _)| t.is_ident("after"))
            .map(|(_, m)| *m);
        assert_eq!(after_masked, Some(false));
    }

    #[test]
    fn cfg_all_test_is_masked_and_cfg_feature_is_not() {
        let src = "#[cfg(all(test, unix))]\nmod t { fn a() {} }\n#[cfg(unix)]\nfn b() {}";
        let ft = analyze_file(src);
        let a = ft
            .code
            .iter()
            .zip(&ft.in_test)
            .find(|(t, _)| t.is_ident("a"))
            .map(|(_, m)| *m);
        let b = ft
            .code
            .iter()
            .zip(&ft.in_test)
            .find(|(t, _)| t.is_ident("b"))
            .map(|(_, m)| *m);
        assert_eq!(a, Some(true));
        assert_eq!(b, Some(false));
    }

    #[test]
    fn comments_are_indexed_by_line() {
        let src = "let a = 1; // tscheck:allow(panic): reason here\nlet b = 2;";
        let ft = analyze_file(src);
        assert!(ft
            .comments
            .get(&1)
            .is_some_and(|c| c.contains("tscheck:allow(panic)")));
        assert!(!ft.comments.contains_key(&2));
    }
}
