//! CLI driver for the `tscheck` static-analysis pass.
//!
//! Usage: `cargo run -p xtask -- check [--strict] [--json] [--timing]`
//!
//! Walks the workspace (rooted two levels above this crate's manifest, so
//! the command works from any cwd), runs the token-based per-file rules on
//! every `.rs` file, the cross-file lock-order graph over all sources, and
//! [`xtask::check_manifest`] on every `Cargo.toml`, prints each violation
//! as `path:line [rule] message`, and exits non-zero when anything fired.
//!
//! * `--strict` additionally holds the hot-path files (the T-Daub execution
//!   engine, the parallel work queue, the stat-model fit loops, and the
//!   registry/cache layers) to the strict rule family.
//! * `--json` emits the violation list as a JSON array on stdout instead of
//!   the human format, for tooling.
//! * `--timing` reports per-phase wall time (walk / lex+scan / lock graph /
//!   manifests) on stderr so `scripts/check.sh` can hold the pass to a
//!   wall-time budget.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use xtask::{check_locks, check_manifest, check_source, Config, Violation, ALLOWED_EXTERNAL};

const USAGE: &str = "tscheck: usage: cargo run -p xtask -- check [--strict] [--json] [--timing]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let rest = args.get(1..).unwrap_or_default();
            let strict = rest.iter().any(|a| a == "--strict");
            let json = rest.iter().any(|a| a == "--json");
            let timing = rest.iter().any(|a| a == "--timing");
            if let Some(unknown) = rest
                .iter()
                .find(|a| *a != "--strict" && *a != "--json" && *a != "--timing")
            {
                eprintln!("tscheck: unknown flag `{unknown}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            run_check(strict, json, timing)
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Repo root: two levels above `crates/xtask`.
fn repo_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Collect every file under `dir` (recursively) whose name passes `keep`,
/// skipping `target` and hidden directories.
fn walk(dir: &Path, keep: &dyn Fn(&Path) -> bool, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, keep, out);
        } else if keep(&path) {
            out.push(path);
        }
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(violations: &[Violation]) {
    println!("[");
    for (i, v) in violations.iter().enumerate() {
        let comma = if i + 1 == violations.len() { "" } else { "," };
        println!(
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{comma}",
            json_escape(&v.file),
            v.line,
            v.rule.id(),
            json_escape(&v.message)
        );
    }
    println!("]");
}

fn run_check(strict: bool, json: bool, timing: bool) -> ExitCode {
    let started = Instant::now();
    let root = repo_root();
    let cfg = Config {
        strict,
        ..Config::default()
    };
    let mut violations: Vec<Violation> = Vec::new();

    let mut source_paths: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        walk(
            &root.join(top),
            &|p| p.extension().is_some_and(|e| e == "rs"),
            &mut source_paths,
        );
    }
    source_paths.sort();

    let mut manifests: Vec<PathBuf> = vec![root.join("Cargo.toml")];
    walk(
        &root.join("crates"),
        &|p| p.file_name().is_some_and(|n| n == "Cargo.toml"),
        &mut manifests,
    );
    manifests.sort();

    let rel = |p: &Path| -> String {
        p.strip_prefix(&root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/")
    };
    let t_walk = started.elapsed();

    let mut unreadable = 0usize;
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &source_paths {
        match std::fs::read_to_string(path) {
            Ok(src) => sources.push((rel(path), src)),
            Err(e) => {
                eprintln!("tscheck: cannot read {}: {e}", rel(path));
                unreadable += 1;
            }
        }
    }
    for (path, src) in &sources {
        violations.extend(check_source(path, src, &cfg));
    }
    let t_scan = started.elapsed();

    violations.extend(check_locks(&sources, &cfg));
    let t_locks = started.elapsed();

    for path in &manifests {
        match std::fs::read_to_string(path) {
            Ok(src) => violations.extend(check_manifest(&rel(path), &src, ALLOWED_EXTERNAL)),
            Err(e) => {
                eprintln!("tscheck: cannot read {}: {e}", rel(path));
                unreadable += 1;
            }
        }
    }
    let t_total = started.elapsed();

    violations.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));

    if timing {
        eprintln!(
            "tscheck: timing walk={}ms scan={}ms locks={}ms manifests={}ms total={}ms",
            t_walk.as_millis(),
            (t_scan - t_walk).as_millis(),
            (t_locks - t_scan).as_millis(),
            (t_total - t_locks).as_millis(),
            t_total.as_millis()
        );
    }

    if json {
        print_json(&violations);
        return if violations.is_empty() && unreadable == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() && unreadable == 0 {
        println!(
            "tscheck: ok{} ({} source files, {} manifests)",
            if strict { " [strict]" } else { "" },
            sources.len(),
            manifests.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "tscheck: {} violation(s) across {} source files and {} manifests",
            violations.len(),
            sources.len(),
            manifests.len()
        );
        ExitCode::FAILURE
    }
}
