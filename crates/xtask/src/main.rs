//! CLI driver for the `tscheck` static-analysis pass.
//!
//! Usage: `cargo run -p xtask -- check [--strict]`
//!
//! Walks the workspace (rooted two levels above this crate's manifest, so
//! the command works from any cwd), runs [`xtask::check_source`] on every
//! `.rs` file and [`xtask::check_manifest`] on every `Cargo.toml`, prints
//! each violation as `path:line [rule] message`, and exits non-zero when
//! anything fired.
//!
//! `--strict` additionally holds the hot-path files (the T-Daub execution
//! engine and the parallel work queue) to the strict rule family: no slice
//! indexing at all, and no `.join().unwrap()`-style panic propagation.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::{check_manifest, check_source, Config, Violation, ALLOWED_EXTERNAL};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let rest = args.get(1..).unwrap_or_default();
            let strict = rest.iter().any(|a| a == "--strict");
            if let Some(unknown) = rest.iter().find(|a| *a != "--strict") {
                eprintln!("tscheck: unknown flag `{unknown}`");
                eprintln!("tscheck: usage: cargo run -p xtask -- check [--strict]");
                return ExitCode::from(2);
            }
            run_check(strict)
        }
        _ => {
            eprintln!("tscheck: usage: cargo run -p xtask -- check [--strict]");
            ExitCode::from(2)
        }
    }
}

/// Repo root: two levels above `crates/xtask`.
fn repo_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Collect every file under `dir` (recursively) whose name passes `keep`,
/// skipping `target` and hidden directories.
fn walk(dir: &Path, keep: &dyn Fn(&Path) -> bool, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, keep, out);
        } else if keep(&path) {
            out.push(path);
        }
    }
}

fn run_check(strict: bool) -> ExitCode {
    let root = repo_root();
    let cfg = Config {
        strict,
        ..Config::default()
    };
    let mut violations: Vec<Violation> = Vec::new();

    let mut sources: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        walk(
            &root.join(top),
            &|p| p.extension().is_some_and(|e| e == "rs"),
            &mut sources,
        );
    }
    sources.sort();

    let mut manifests: Vec<PathBuf> = vec![root.join("Cargo.toml")];
    walk(
        &root.join("crates"),
        &|p| p.file_name().is_some_and(|n| n == "Cargo.toml"),
        &mut manifests,
    );
    manifests.sort();

    let rel = |p: &Path| -> String {
        p.strip_prefix(&root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/")
    };

    let mut unreadable = 0usize;
    for path in &sources {
        match std::fs::read_to_string(path) {
            Ok(src) => violations.extend(check_source(&rel(path), &src, &cfg)),
            Err(e) => {
                eprintln!("tscheck: cannot read {}: {e}", rel(path));
                unreadable += 1;
            }
        }
    }
    for path in &manifests {
        match std::fs::read_to_string(path) {
            Ok(src) => violations.extend(check_manifest(&rel(path), &src, ALLOWED_EXTERNAL)),
            Err(e) => {
                eprintln!("tscheck: cannot read {}: {e}", rel(path));
                unreadable += 1;
            }
        }
    }

    violations.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    for v in &violations {
        println!("{v}");
    }

    if violations.is_empty() && unreadable == 0 {
        println!(
            "tscheck: ok{} ({} source files, {} manifests)",
            if strict { " [strict]" } else { "" },
            sources.len(),
            manifests.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "tscheck: {} violation(s) across {} source files and {} manifests",
            violations.len(),
            sources.len(),
            manifests.len()
        );
        ExitCode::FAILURE
    }
}
