//! Lock-discipline analysis on the token stream: guard-scope extraction,
//! lock-order edge collection, and guard-across-parallel detection.
//!
//! An *acquisition* is the token pattern `name . lock ( )` (or `.read()` /
//! `.write()` with empty argument lists, which distinguishes lock guards
//! from `io::Read::read`-style calls that always take a buffer). The lock's
//! order class is the identifier before the dot — `self.datasets.lock()`
//! is the class `datasets`, matching the `OrderedMutex` naming convention
//! (`"cache.datasets"`).
//!
//! The *extent* of a guard — the token range over which it is held — is
//! derived structurally:
//!
//! * `match x.lock() { … }` / `if let Ok(g) = x.lock() { … }`: the brace
//!   block following the acquisition (a `{` is reached before the
//!   statement's `;`);
//! * `let g = x.lock()…;`: from the acquisition to the end of the
//!   enclosing brace block (the binding lives until scope end), truncated
//!   at an explicit `drop(g_name)`;
//! * anything else (a temporary like `x.lock().map(…).unwrap_or(…)`): to
//!   the end of the statement.
//!
//! Within an extent, a nested acquisition of class `B` under class `A`
//! records the directed edge `A → B`; the workspace-wide edge set is
//! checked for cycles by the caller ([`crate::check_locks`]). A call to a
//! `parallel_*` / `supervised_try_map` / `spawn` / `scope` function or a
//! zero-argument `.join()` inside an extent is a guard-across-parallel
//! finding: holding any lock across a fan-out or join point serializes the
//! workers at best and deadlocks against them at worst.

use crate::lexer::{FileTokens, TokKind};

/// Fan-out/join calls a guard must never be held across.
const PAR_CALLS: &[&str] = &[
    "parallel_try_map_mut",
    "parallel_try_map_range",
    "supervised_try_map",
    "spawn",
    "scope",
];

/// Methods that acquire a guard when called with no arguments.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// One lock acquisition with its held-extent as a token range.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Order-class name: the identifier before `.lock()`.
    pub name: String,
    /// Token index of the name identifier.
    pub idx: usize,
    /// 1-based source line of the acquisition.
    pub line: usize,
    /// Token range `[start, end)` over which the guard is held.
    pub extent: (usize, usize),
}

/// A nested acquisition: `to` acquired while a guard of `from` is held.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The class already held.
    pub from: String,
    /// The class being acquired under it.
    pub to: String,
    /// File of the nested acquisition.
    pub file: String,
    /// Line of the nested acquisition.
    pub line: usize,
}

/// A fan-out or join call made while a guard is held.
#[derive(Debug, Clone)]
pub struct ParCrossing {
    /// The held guard's class name.
    pub guard: String,
    /// The offending call (`spawn`, `join`, `supervised_try_map`, …).
    pub call: String,
    /// Line of the call.
    pub line: usize,
}

fn ident_at<'a>(ft: &'a FileTokens, i: usize) -> Option<&'a str> {
    ft.code
        .get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

fn punct_at(ft: &FileTokens, i: usize, c: char) -> bool {
    ft.code.get(i).is_some_and(|t| t.kind == TokKind::Punct(c))
}

fn in_test(ft: &FileTokens, i: usize) -> bool {
    ft.in_test.get(i).copied().unwrap_or(false)
}

/// Find every lock acquisition in the file's non-test code, with extents.
pub fn find_acquisitions(ft: &FileTokens) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for i in 0..ft.code.len() {
        if in_test(ft, i) {
            continue;
        }
        let Some(name) = ident_at(ft, i) else {
            continue;
        };
        if !(punct_at(ft, i + 1, '.')
            && ident_at(ft, i + 2).is_some_and(|m| ACQUIRE_METHODS.contains(&m))
            && punct_at(ft, i + 3, '(')
            && punct_at(ft, i + 4, ')'))
        {
            continue;
        }
        let line = ft.code.get(i).map(|t| t.line).unwrap_or(0);
        let extent = guard_extent(ft, i, i + 5);
        let extent = truncate_at_drop(ft, name, extent);
        out.push(Acquisition {
            name: name.to_string(),
            idx: i,
            line,
            extent,
        });
    }
    out
}

/// Compute the held-extent of a guard acquired at token `acq` whose call
/// closes just before token `after`.
fn guard_extent(ft: &FileTokens, acq: usize, after: usize) -> (usize, usize) {
    // Scan forward for the first structural event at paren/bracket depth 0:
    // a brace block (the guard scopes to it), the statement's `;`, or a
    // closing `)`/`]` of an enclosing call (the guard is a temporary
    // argument and dies with it).
    let mut pd = 0i64;
    let mut j = after;
    while let Some(t) = ft.code.get(j) {
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => pd += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => {
                pd -= 1;
                if pd < 0 {
                    return (after, j);
                }
            }
            TokKind::Punct('{') if pd == 0 => {
                // `match` / `if let` / `while let`: the guard lives for the
                // brace block.
                let mut bd = 0i64;
                let mut k = j;
                while let Some(u) = ft.code.get(k) {
                    match u.kind {
                        TokKind::Punct('{') => bd += 1,
                        TokKind::Punct('}') => {
                            bd -= 1;
                            if bd == 0 {
                                return (j, k + 1);
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                return (j, ft.code.len());
            }
            TokKind::Punct('}') if pd == 0 => {
                // Tail expression: no `;` before the enclosing block closes,
                // so the temporary guard dies at the block's end.
                return (after, j);
            }
            TokKind::Punct(';') if pd == 0 => {
                if is_let_statement(ft, acq) {
                    // A bound guard lives to the end of the enclosing block.
                    let mut bd = 0i64;
                    let mut k = j;
                    while let Some(u) = ft.code.get(k) {
                        match u.kind {
                            TokKind::Punct('{') => bd += 1,
                            TokKind::Punct('}') => {
                                bd -= 1;
                                if bd < 0 {
                                    return (after, k);
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    return (after, ft.code.len());
                }
                // Temporary: dies at the end of the statement.
                return (after, j);
            }
            _ => {}
        }
        j += 1;
    }
    (after, ft.code.len())
}

/// Does the statement containing token `acq` start with `let` (scanning
/// back to the nearest `;`, `{`, or `}`)?
fn is_let_statement(ft: &FileTokens, acq: usize) -> bool {
    let mut k = acq;
    while k > 0 {
        k -= 1;
        match ft.code.get(k).map(|t| t.kind) {
            Some(TokKind::Punct(';')) | Some(TokKind::Punct('{')) | Some(TokKind::Punct('}')) => {
                return false
            }
            Some(TokKind::Ident) => {
                if ident_at(ft, k) == Some("let") {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Truncate `extent` at an explicit `drop(<binding>)` call. The binding
/// name usually differs from the lock's field name, so we accept a `drop(`
/// of *any* single identifier as ending the most recent guard — an
/// over-approximation that errs toward fewer false cycle reports.
fn truncate_at_drop(ft: &FileTokens, _name: &str, extent: (usize, usize)) -> (usize, usize) {
    let (start, end) = extent;
    let mut j = start;
    while j + 3 < end {
        if ident_at(ft, j) == Some("drop")
            && punct_at(ft, j + 1, '(')
            && ident_at(ft, j + 2).is_some()
            && punct_at(ft, j + 3, ')')
        {
            return (start, j);
        }
        j += 1;
    }
    extent
}

/// Extract this file's lock-order edges and guard-across-parallel findings.
/// Self-edges (`A` nested directly under `A`) are reported as edges too —
/// the caller turns them into immediate cycle findings.
pub fn lock_facts(path: &str, ft: &FileTokens) -> (Vec<LockEdge>, Vec<ParCrossing>) {
    let acqs = find_acquisitions(ft);
    let mut edges = Vec::new();
    let mut crossings = Vec::new();
    for a in &acqs {
        // nested acquisitions inside a's extent
        for b in &acqs {
            if b.idx > a.extent.0 && b.idx < a.extent.1 && b.idx != a.idx {
                edges.push(LockEdge {
                    from: a.name.clone(),
                    to: b.name.clone(),
                    file: path.to_string(),
                    line: b.line,
                });
            }
        }
        // fan-out / join calls inside a's extent
        let (start, end) = a.extent;
        let mut j = start.max(a.idx + 5);
        while j < end {
            if let Some(id) = ident_at(ft, j) {
                if PAR_CALLS.contains(&id) && punct_at(ft, j + 1, '(') {
                    crossings.push(ParCrossing {
                        guard: a.name.clone(),
                        call: id.to_string(),
                        line: ft.code.get(j).map(|t| t.line).unwrap_or(a.line),
                    });
                } else if id == "join"
                    && punct_at(ft, j.wrapping_sub(1), '.')
                    && punct_at(ft, j + 1, '(')
                    && punct_at(ft, j + 2, ')')
                {
                    crossings.push(ParCrossing {
                        guard: a.name.clone(),
                        call: "join".to_string(),
                        line: ft.code.get(j).map(|t| t.line).unwrap_or(a.line),
                    });
                }
            }
            j += 1;
        }
    }
    (edges, crossings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::analyze_file;

    #[test]
    fn if_let_guard_scopes_to_block() {
        let ft = analyze_file(
            "fn f(&self) {\n  if let Ok(mut set) = self.retired.lock() {\n    set.insert(1);\n  }\n  self.other.lock();\n}\n",
        );
        let acqs = find_acquisitions(&ft);
        assert_eq!(acqs.len(), 2);
        let retired = &acqs[0];
        let other = &acqs[1];
        assert_eq!(retired.name, "retired");
        // `other` is acquired after the if-let block ends: no nesting
        assert!(other.idx >= retired.extent.1);
    }

    #[test]
    fn let_bound_guard_extends_to_scope_end_and_nests() {
        let ft = analyze_file("fn f() {\n  let a = m1.lock();\n  let b = m2.lock();\n}\n");
        let (edges, _) = lock_facts("x.rs", &ft);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].from, "m1");
        assert_eq!(edges[0].to, "m2");
    }

    #[test]
    fn inner_block_guard_does_not_leak_out() {
        let ft = analyze_file(
            "fn f() {\n  let x = {\n    let g = m1.lock();\n    g.len()\n  };\n  let h = m2.lock();\n}\n",
        );
        let (edges, _) = lock_facts("x.rs", &ft);
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let ft = analyze_file(
            "fn f(&self) -> bool {\n  self.retired.lock().map(|s| s.contains(&1)).unwrap_or(true);\n  self.slots.lock();\n  true\n}\n",
        );
        let (edges, _) = lock_facts("x.rs", &ft);
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn tail_expression_guard_dies_at_block_end() {
        // `is_retired`-style accessors: the temporary guard in the tail
        // expression must not leak into the next function.
        let ft = analyze_file(
            "fn a(&self) -> bool {\n  self.retired.lock().map(|s| s.contains(&1)).unwrap_or(true)\n}\nfn b(&self) {\n  if let Ok(mut s) = self.retired.lock() {\n    s.insert(1);\n  }\n}\n",
        );
        let (edges, _) = lock_facts("x.rs", &ft);
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn drop_truncates_a_bound_guard() {
        let ft =
            analyze_file("fn f() {\n  let g = m1.lock();\n  drop(g);\n  let h = m2.lock();\n}\n");
        let (edges, _) = lock_facts("x.rs", &ft);
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn guard_across_spawn_and_join_is_detected() {
        let ft = analyze_file(
            "fn f() {\n  let g = m.lock();\n  let h = std::thread::spawn(|| 1);\n  let r = h.join();\n}\n",
        );
        let (_, crossings) = lock_facts("x.rs", &ft);
        let calls: Vec<&str> = crossings.iter().map(|c| c.call.as_str()).collect();
        assert!(calls.contains(&"spawn"), "{crossings:?}");
    }

    #[test]
    fn join_with_arguments_is_not_a_join_point() {
        // PathBuf::join takes an argument; only zero-arg `.join()` counts.
        let ft = analyze_file("fn f() {\n  let g = m.lock();\n  let p = base.join(\"x\");\n}\n");
        let (_, crossings) = lock_facts("x.rs", &ft);
        assert!(crossings.is_empty(), "{crossings:?}");
    }

    #[test]
    fn read_write_with_args_are_not_acquisitions() {
        let ft = analyze_file(
            "fn f() {\n  file.read(&mut buf);\n  sink.write(bytes);\n  let g = rw.read();\n}\n",
        );
        let acqs = find_acquisitions(&ft);
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].name, "rw");
    }

    #[test]
    fn test_region_locks_are_ignored() {
        let ft = analyze_file(
            "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn t() {\n    let a = m1.lock();\n    let b = m2.lock();\n  }\n}\n",
        );
        let acqs = find_acquisitions(&ft);
        assert!(acqs.is_empty(), "{acqs:?}");
    }
}
