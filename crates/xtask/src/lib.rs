//! `tscheck` — the in-repo static-analysis pass run as `cargo run -p xtask -- check`.
//!
//! Four rule families, all implemented with zero external dependencies:
//!
//! 1. **Panic-freedom** (`panic`): forbids `unwrap()`, `expect(`, `panic!`,
//!    `unreachable!`, `todo!`, `unimplemented!` and slice indexing through an
//!    unchecked `as usize` cast in the non-test code of the library crates
//!    (see [`Config::default`]). Library code must surface failures as typed
//!    `Result` errors so a malformed series can never abort a long AutoML
//!    run from deep inside a model fit.
//! 2. **NaN-safe ordering** (`nan`): forbids `partial_cmp` (which invites
//!    `unwrap`/`unwrap_or(Equal)` on float comparisons) and raw `f64::max`/
//!    `f64::min` on SMAPE/MAPE metric values, where a silent NaN would
//!    corrupt T-Daub's ranking instead of failing loudly. Use `total_cmp`.
//! 3. **Lint hygiene** (`docs`): every crate root must carry
//!    `#![warn(missing_docs)]` and `#![deny(unsafe_code)]`.
//! 4. **Hermeticity** (`deps`): every `Cargo.toml` dependency must be an
//!    in-workspace `path` dependency (or appear in [`ALLOWED_EXTERNAL`]),
//!    so the default build works with an empty cargo registry.
//!
//! A violation can be waived in place with an escape hatch comment on the
//! same line or the line above, **with a justification**:
//!
//! ```text
//! // tscheck:allow(panic): index bounded by the loop above
//! ```
//!
//! An allow without a justification is itself a violation (`allow`).
//!
//! A fifth, opt-in **strict** family (`check --strict`) holds the hot-path
//! files in [`Config::strict_paths`] to tighter standards: no slice
//! indexing at all (`strict-index`), no re-raised worker panics
//! (`propagate`), and no unchecked `*`/`+` sizing arithmetic inside
//! allocation or capacity expressions (`alloc-arith`).
//!
//! The scanner is line-based: it strips `//` comments, string/char literals
//! and `/* … */` block comments before matching, and skips `#[cfg(test)]`
//! regions by brace tracking, so doc examples and unit tests stay free to
//! use `unwrap()`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;

/// External crates a manifest may depend on. Empty: the build is fully
/// hermetic today. Extend this list (with a PR-reviewed justification) if a
/// dependency ever becomes unavoidable.
pub const ALLOWED_EXTERNAL: &[&str] = &[];

/// Which rule family a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Panic-freedom: `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`.
    Panic,
    /// NaN-safe ordering: `partial_cmp`, raw metric `max`/`min`.
    NanOrdering,
    /// Slice indexing through an unchecked `as usize` cast.
    Indexing,
    /// Crate-root lint hygiene (`missing_docs` + `deny(unsafe_code)`).
    Hygiene,
    /// Non-path dependency outside the allowlist.
    Hermeticity,
    /// `tscheck:allow` escape hatch without a justification.
    BadAllow,
    /// Strict mode: *any* slice/array indexing in a hot-path file.
    StrictIndexing,
    /// Strict mode: re-raising worker panics (`.join().unwrap()`,
    /// `resume_unwind`) instead of routing them into a typed error.
    PanicPropagation,
    /// Strict mode: unchecked `a * b` / `a + b` sizing arithmetic inside an
    /// allocation or capacity expression (`with_capacity`, `reserve`,
    /// `::zeros`, `vec![_; n]`) — overflow panics instead of returning an
    /// error. Use `checked_*`/`saturating_*`.
    AllocArith,
}

impl Rule {
    /// Short id used in output and in `tscheck:allow(<id>)` comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::NanOrdering => "nan",
            Rule::Indexing => "index",
            Rule::Hygiene => "docs",
            Rule::Hermeticity => "deps",
            Rule::BadAllow => "allow",
            Rule::StrictIndexing => "strict-index",
            Rule::PanicPropagation => "propagate",
            Rule::AllocArith => "alloc-arith",
        }
    }
}

/// One finding: file, 1-based line, rule family, human message.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Rule family that fired.
    pub rule: Rule,
    /// What was found and what to do instead.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Scanner configuration: which crates the panic/NaN/index rules apply to.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate directory names under `crates/` whose `src/` trees are held to
    /// the panic-freedom and NaN-ordering rules.
    pub scoped_crates: Vec<String>,
    /// Run the strict rule family ([`Rule::StrictIndexing`],
    /// [`Rule::PanicPropagation`], [`Rule::AllocArith`]) over
    /// [`Config::strict_paths`].
    pub strict: bool,
    /// Repo-relative path prefixes held to the strict rules: the T-Daub
    /// execution engine, the parallel work queue, the windowing kernels,
    /// the warm-startable Holt-Winters/ARIMA recursions, and the
    /// transform-cache layer, where an out-of-bounds index, a re-raised
    /// worker panic, or an overflowing capacity computation would take
    /// down a whole AutoML run.
    pub strict_paths: Vec<String>,
}

impl Default for Config {
    /// The library crates of the reproduction. Binaries and simulators
    /// (`bench`, `sota`, `datasets`, `anomaly`, `xtask`) are exempt from the
    /// panic rules — they are leaves, not infrastructure — but still get the
    /// hygiene and hermeticity checks.
    fn default() -> Self {
        Config {
            scoped_crates: [
                "linalg",
                "tsdata",
                "transforms",
                "stat-models",
                "ml-models",
                "neural",
                "lookback",
                "pipelines",
                "tdaub",
                "core",
                "chaos",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            strict: false,
            strict_paths: vec![
                "crates/tdaub/src/".to_string(),
                "crates/linalg/src/par.rs".to_string(),
                "crates/transforms/src/window.rs".to_string(),
                "crates/stat-models/src/holtwinters.rs".to_string(),
                "crates/stat-models/src/arima.rs".to_string(),
                "crates/stat-models/src/bats.rs".to_string(),
                "crates/pipelines/src/caching.rs".to_string(),
                "crates/chaos/src/".to_string(),
            ],
        }
    }
}

impl Config {
    /// Does `path` (repo-relative, `/`-separated) fall under the panic-rule
    /// scope? Test trees, benches and examples are never in scope.
    pub fn is_scoped(&self, path: &str) -> bool {
        if path.contains("/tests/") || path.contains("/benches/") || path.contains("/examples/") {
            return false;
        }
        self.scoped_crates
            .iter()
            .any(|c| path.starts_with(&format!("crates/{c}/src/")))
    }

    /// Does `path` fall under the strict-rule scope? Only meaningful when
    /// [`Config::strict`] is set; test trees are never in scope.
    pub fn is_strict_scoped(&self, path: &str) -> bool {
        self.strict
            && !path.contains("/tests/")
            && !path.contains("/benches/")
            && !path.contains("/examples/")
            && self.strict_paths.iter().any(|p| path.starts_with(p))
    }
}

/// Strip `//` comments and blank out string/char literal contents so rule
/// matching never fires on prose. Returns the code-only residue of `line`.
fn strip_code(line: &str) -> String {
    let b: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // line comment: drop the rest
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            break;
        }
        // raw string literal r"…" / r#"…"#
        if c == 'r' && i + 1 < b.len() && (b[i + 1] == '"' || b[i + 1] == '#') {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while j < b.len() && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == '"' {
                j += 1;
                while j < b.len() {
                    if b[j] == '"' {
                        let mut k = 0;
                        while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break;
                        }
                    }
                    j += 1;
                }
                out.push_str("\"\"");
                i = j;
                continue;
            }
        }
        // ordinary string literal
        if c == '"' {
            i += 1;
            while i < b.len() {
                if b[i] == '\\' {
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    break;
                }
                i += 1;
            }
            out.push_str("\"\"");
            i += 1;
            continue;
        }
        // char literal (but not a lifetime)
        if c == '\'' {
            if i + 1 < b.len() && b[i + 1] == '\\' {
                let mut j = i + 2;
                while j < b.len() && b[j] != '\'' {
                    j += 1;
                }
                out.push_str("' '");
                i = j + 1;
                continue;
            }
            if i + 2 < b.len() && b[i + 2] == '\'' {
                out.push_str("' '");
                i += 3;
                continue;
            }
            // lifetime — keep the tick, drop nothing
        }
        out.push(c);
        i += 1;
    }
    out
}

/// True when `needle` occurs in `code` *not* preceded by an identifier
/// character (so `not_todo!` does not match `todo!`).
fn word_hit(code: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let abs = from + pos;
        let boundary = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|p| p.is_alphanumeric() || p == '_');
        if boundary {
            return true;
        }
        from = abs + needle.len();
    }
    false
}

/// Rule hits on one (already stripped) line of scoped code.
fn line_hits(code: &str) -> Vec<(Rule, String)> {
    let mut hits = Vec::new();
    for pat in [".unwrap()", ".expect("] {
        if code.contains(pat) {
            hits.push((
                Rule::Panic,
                format!("`{pat}` in library code; return a typed error instead"),
            ));
        }
    }
    for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        if word_hit(code, mac) {
            hits.push((
                Rule::Panic,
                format!("`{mac}` in library code; return a typed error instead"),
            ));
        }
    }
    if code.contains("partial_cmp") {
        hits.push((
            Rule::NanOrdering,
            "`partial_cmp` on floats; use `total_cmp` for a NaN-safe total order".into(),
        ));
    }
    let lower = code.to_ascii_lowercase();
    if (code.contains(".max(") || code.contains(".min("))
        && (lower.contains("smape") || lower.contains("mape"))
    {
        hits.push((
            Rule::NanOrdering,
            "raw `max`/`min` on a metric value silently drops NaN; compare explicitly".into(),
        ));
    }
    if code.contains("as usize]") {
        hits.push((
            Rule::Indexing,
            "slice index through unchecked `as usize` cast; bound-check or use `.get`".into(),
        ));
    }
    hits
}

/// True when position `open` in `code` is a subscript `[` — i.e. directly
/// preceded by an expression (identifier, `)`, or `]`). Array literals,
/// slice types, attributes (`#[...]`) and macros (`vec![...]`) are preceded
/// by other characters and do not count.
fn is_subscript(code: &str, open: usize) -> bool {
    code[..open]
        .chars()
        .next_back()
        .is_some_and(|p| p.is_alphanumeric() || p == '_' || p == ')' || p == ']')
}

/// Argument region of the first `marker` occurrence in `code`: the text
/// between the marker's opening delimiter and its matching close (or the
/// rest of the line when the call spans lines).
fn arg_region<'a>(code: &'a str, marker: &str, open: char, close: char) -> Option<&'a str> {
    let start = code.find(marker)? + marker.len();
    let rest = code.get(start..)?;
    let mut depth = 1i32;
    for (i, c) in rest.char_indices() {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return rest.get(..i);
            }
        }
    }
    Some(rest)
}

/// `alloc-arith` hits: unchecked `*`/`+` sizing arithmetic inside an
/// allocation or capacity expression. Overflow in a capacity computation
/// panics (or aborts on OOM) instead of surfacing a typed error, so hot
/// paths must size with `checked_*`/`saturating_*`.
fn alloc_arith_hits(code: &str) -> Vec<(Rule, String)> {
    let suspicious = |region: &str| {
        (region.contains(" * ") || region.contains(" + "))
            && !region.contains("checked_")
            && !region.contains("saturating_")
    };
    let mut hits = Vec::new();
    for marker in ["with_capacity(", ".reserve(", "::zeros("] {
        if let Some(region) = arg_region(code, marker, '(', ')') {
            if suspicious(region) {
                hits.push((
                    Rule::AllocArith,
                    format!(
                        "unchecked sizing arithmetic in `{marker}..)`; use \
                         `checked_mul`/`checked_add` or `saturating_*`"
                    ),
                ));
            }
        }
    }
    // `vec![elem; len]`: only the length expression after `;` allocates
    if let Some(region) = arg_region(code, "vec![", '[', ']') {
        if let Some((_, len_expr)) = region.rsplit_once(';') {
            if suspicious(len_expr) {
                hits.push((
                    Rule::AllocArith,
                    "unchecked sizing arithmetic in `vec![_; ..]`; use \
                     `checked_mul`/`checked_add` or `saturating_*`"
                        .into(),
                ));
            }
        }
    }
    hits
}

/// Strict rule hits on one (already stripped) line of hot-path code.
fn strict_line_hits(code: &str) -> Vec<(Rule, String)> {
    let mut hits = Vec::new();
    if code
        .char_indices()
        .any(|(i, c)| c == '[' && is_subscript(code, i))
    {
        hits.push((
            Rule::StrictIndexing,
            "slice indexing in a hot-path file; use `.get`/`.get_mut` or an iterator".into(),
        ));
    }
    for pat in [".join().unwrap(", ".join().expect(", "resume_unwind"] {
        if code.contains(pat) {
            hits.push((
                Rule::PanicPropagation,
                format!(
                    "`{pat}` re-raises a worker panic; route it into the typed \
                     `WorkerPanic` error path instead"
                ),
            ));
        }
    }
    hits.extend(alloc_arith_hits(code));
    hits
}

/// Look for `tscheck:allow(<id>)` on `raw` (the unstripped line) or the
/// line above. Returns:
/// * `None` — no escape hatch, the violation stands;
/// * `Some(true)` — waived with a justification;
/// * `Some(false)` — escape hatch present but no justification.
fn allow_state(rule: Rule, raw: &str, prev_raw: Option<&str>) -> Option<bool> {
    let tag = format!("tscheck:allow({})", rule.id());
    for cand in [Some(raw), prev_raw].into_iter().flatten() {
        if let Some(pos) = cand.find(&tag) {
            let rest = cand[pos + tag.len()..]
                .trim_start_matches([':', '-', '—', ' '])
                .trim();
            return Some(rest.len() >= 8);
        }
    }
    None
}

/// Scan one source file. `path` is the repo-relative path (forward slashes)
/// used both for scoping and in reported violations; `src` is the file
/// contents. Pure function of its inputs so tests can seed violations
/// without touching the filesystem.
pub fn check_source(path: &str, src: &str, cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();

    // Rule 3: crate-root lint hygiene applies to every crate root.
    if path.ends_with("src/lib.rs") {
        for attr in ["#![warn(missing_docs)]", "#![deny(unsafe_code)]"] {
            if !src.contains(attr) {
                out.push(Violation {
                    file: path.to_string(),
                    line: 1,
                    rule: Rule::Hygiene,
                    message: format!("crate root is missing `{attr}`"),
                });
            }
        }
    }

    let scoped = cfg.is_scoped(path);
    let strict = cfg.is_strict_scoped(path);
    if !scoped && !strict {
        return out;
    }

    let lines: Vec<&str> = src.lines().collect();
    let mut depth: i64 = 0;
    let mut pending_cfg_test = false;
    let mut test_region_depth: Option<i64> = None;
    let mut in_block_comment = false;

    for (idx, raw) in lines.iter().enumerate() {
        let mut code = strip_code(raw);
        // minimal block-comment tracking across lines
        if in_block_comment {
            match code.find("*/") {
                Some(p) => {
                    code = code[p + 2..].to_string();
                    in_block_comment = false;
                }
                None => continue,
            }
        }
        while let Some(p) = code.find("/*") {
            match code[p..].find("*/") {
                Some(q) => {
                    code = format!("{}{}", &code[..p], &code[p + q + 2..]);
                }
                None => {
                    code = code[..p].to_string();
                    in_block_comment = true;
                    break;
                }
            }
        }

        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            pending_cfg_test = true;
        }

        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;

        if pending_cfg_test && opens > 0 {
            test_region_depth = Some(depth);
            pending_cfg_test = false;
        }

        let in_test = test_region_depth.is_some();
        if !in_test && !pending_cfg_test {
            let prev = if idx > 0 { Some(lines[idx - 1]) } else { None };
            let mut hits = if scoped { line_hits(&code) } else { Vec::new() };
            if strict {
                hits.extend(strict_line_hits(&code));
            }
            for (rule, message) in hits {
                match allow_state(rule, raw, prev) {
                    Some(true) => {}
                    Some(false) => out.push(Violation {
                        file: path.to_string(),
                        line: idx + 1,
                        rule: Rule::BadAllow,
                        message: format!(
                            "`tscheck:allow({})` needs a justification after the tag",
                            rule.id()
                        ),
                    }),
                    None => out.push(Violation {
                        file: path.to_string(),
                        line: idx + 1,
                        rule,
                        message,
                    }),
                }
            }
        }

        depth += opens - closes;
        if let Some(d) = test_region_depth {
            if depth <= d {
                test_region_depth = None;
            }
        }
    }
    out
}

/// Scan one `Cargo.toml`. Every dependency in any `*dependencies*` table
/// must be a `path` dependency, a `workspace = true` reference, or appear
/// in `allowlist`.
pub fn check_manifest(path: &str, src: &str, allowlist: &[&str]) -> Vec<Violation> {
    let mut out = Vec::new();
    // state: (a) inside a dependency *list* section; (b) inside a single
    // dependency *table* section like `[dependencies.foo]`
    let mut in_dep_list = false;
    let mut dep_table: Option<(String, usize, bool)> = None; // (name, line, saw path/workspace)

    let is_dep_list = |s: &str| {
        s == "dependencies"
            || s == "dev-dependencies"
            || s == "build-dependencies"
            || s == "workspace.dependencies"
            || s.ends_with(".dependencies")
            || s.ends_with(".dev-dependencies")
            || s.ends_with(".build-dependencies")
    };

    let flush_table = |out: &mut Vec<Violation>, tbl: &mut Option<(String, usize, bool)>| {
        if let Some((name, line, ok)) = tbl.take() {
            if !ok && !allowlist.contains(&name.as_str()) {
                out.push(Violation {
                    file: path.to_string(),
                    line,
                    rule: Rule::Hermeticity,
                    message: format!("dependency `{name}` is not an in-workspace path dependency"),
                });
            }
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_table(&mut out, &mut dep_table);
            let section = line.trim_matches(['[', ']']).trim();
            in_dep_list = false;
            if let Some((list, name)) = section.rsplit_once('.') {
                if is_dep_list(list) {
                    dep_table = Some((name.to_string(), idx + 1, false));
                    continue;
                }
            }
            in_dep_list = is_dep_list(section);
            continue;
        }
        if let Some((_, _, ok)) = dep_table.as_mut() {
            let key = line.split('=').next().map(str::trim).unwrap_or("");
            if key == "path" || key == "workspace" {
                *ok = true;
            }
            continue;
        }
        if in_dep_list {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            let base = key.split('.').next().unwrap_or(key).to_string();
            let ok = key.ends_with(".workspace")
                || value.contains("path =")
                || value.contains("path=")
                || value.contains("workspace = true")
                || value.contains("workspace=true");
            if !ok && !allowlist.contains(&base.as_str()) {
                out.push(Violation {
                    file: path.to_string(),
                    line: idx + 1,
                    rule: Rule::Hermeticity,
                    message: format!(
                        "dependency `{base}` is not an in-workspace path dependency \
                         (hermetic builds allow only `path` deps; see xtask::ALLOWED_EXTERNAL)"
                    ),
                });
            }
        }
    }
    flush_table(&mut out, &mut dep_table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::default()
    }

    fn scoped(src: &str) -> Vec<Violation> {
        check_source("crates/linalg/src/fake.rs", src, &cfg())
    }

    #[test]
    fn unwrap_in_scoped_code_is_flagged() {
        let v = scoped("fn f() {\n    let x = y.unwrap();\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Panic);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn expect_and_panic_macros_are_flagged() {
        let v = scoped("fn f() {\n    a.expect(\"boom\");\n    panic!(\"no\");\n    unreachable!();\n    todo!();\n}\n");
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|x| x.rule == Rule::Panic));
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let v = scoped("fn f() {\n    let x = y.unwrap_or(0);\n    let z = y.unwrap_or_else(|| 1);\n    let w = y.unwrap_or_default();\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_test_region_is_skipped() {
        let src = "fn f() -> i32 { 1 }\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        x.unwrap();\n        panic!(\"fine in tests\");\n    }\n}\n";
        assert!(scoped(src).is_empty());
    }

    #[test]
    fn code_after_cfg_test_region_is_scanned_again() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n\nfn g() { y.unwrap(); }\n";
        let v = scoped(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "fn f() {\n    // calling unwrap() here would panic!\n    /* block: .unwrap() */\n    let s = \"don't .unwrap() or panic! me\";\n}\n";
        assert!(scoped(src).is_empty());
    }

    #[test]
    fn doc_comment_examples_do_not_fire() {
        let src = "/// ```\n/// let v = f().unwrap();\n/// ```\nfn f() -> Option<i32> { None }\n";
        assert!(scoped(src).is_empty());
    }

    #[test]
    fn allow_with_justification_waives() {
        let src = "fn f() {\n    // tscheck:allow(panic): index bounded by the check above\n    let x = v.unwrap();\n}\n";
        assert!(scoped(src).is_empty());
        let same_line =
            "fn f() {\n    let x = v.unwrap(); // tscheck:allow(panic): bounded above\n}\n";
        assert!(scoped(same_line).is_empty());
    }

    #[test]
    fn allow_without_justification_is_a_violation() {
        let src = "fn f() {\n    let x = v.unwrap(); // tscheck:allow(panic)\n}\n";
        let v = scoped(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::BadAllow);
    }

    #[test]
    fn partial_cmp_is_flagged_total_cmp_is_not() {
        let bad = scoped("fn f() {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n");
        assert!(bad.iter().any(|x| x.rule == Rule::NanOrdering));
        assert!(bad.iter().any(|x| x.rule == Rule::Panic));
        let good = scoped("fn f() {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n");
        assert!(good.is_empty());
    }

    #[test]
    fn metric_max_min_is_flagged() {
        let v = scoped("fn f() {\n    best_smape = best_smape.min(smape);\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NanOrdering);
        // max/min on non-metric values is fine
        assert!(scoped("fn f() {\n    let n = a.max(b);\n}\n").is_empty());
    }

    #[test]
    fn cast_indexing_is_flagged() {
        let v = scoped("fn f() {\n    let x = data[i as usize];\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Indexing);
    }

    #[test]
    fn unscoped_crates_are_exempt_from_panic_rules() {
        let v = check_source(
            "crates/bench/src/fake.rs",
            "fn f() { x.unwrap(); }\n",
            &cfg(),
        );
        assert!(v.is_empty());
        let t = check_source(
            "crates/linalg/tests/itest.rs",
            "fn f() { x.unwrap(); }\n",
            &cfg(),
        );
        assert!(t.is_empty());
    }

    #[test]
    fn crate_root_hygiene() {
        let v = check_source("crates/bench/src/lib.rs", "//! docs\n", &cfg());
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.rule == Rule::Hygiene));
        let ok = check_source(
            "crates/bench/src/lib.rs",
            "//! docs\n#![warn(missing_docs)]\n#![deny(unsafe_code)]\n",
            &cfg(),
        );
        assert!(ok.is_empty());
    }

    fn strict_cfg() -> Config {
        Config {
            strict: true,
            ..Config::default()
        }
    }

    #[test]
    fn strict_indexing_fires_only_in_strict_paths_with_flag() {
        let src = "fn f() {\n    let x = data[i];\n}\n";
        // strict path + strict flag → strict-index fires
        let v = check_source("crates/tdaub/src/executor.rs", src, &strict_cfg());
        assert!(v.iter().any(|x| x.rule == Rule::StrictIndexing), "{v:?}");
        // same file without the flag → silent
        let off = check_source("crates/tdaub/src/executor.rs", src, &cfg());
        assert!(off.is_empty(), "{off:?}");
        // non-strict path with the flag → silent (linalg matrix code may
        // index freely)
        let other = check_source("crates/linalg/src/matrix.rs", src, &strict_cfg());
        assert!(other.is_empty(), "{other:?}");
    }

    #[test]
    fn strict_indexing_ignores_literals_types_attrs_and_macros() {
        let src = "#[derive(Debug)]\nfn f(xs: &[f64]) -> Vec<f64> {\n    let a = [1.0, 2.0];\n    let v = vec![0.0; 4];\n    xs.to_vec()\n}\n";
        let v = check_source("crates/tdaub/src/executor.rs", src, &strict_cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn strict_indexing_catches_chained_subscripts() {
        for line in ["m.rows()[0]", "(a + b)[i]", "grid[r][c]"] {
            let src = format!("fn f() {{\n    let x = {line};\n}}\n");
            let v = check_source("crates/tdaub/src/runner.rs", &src, &strict_cfg());
            assert!(
                v.iter().any(|x| x.rule == Rule::StrictIndexing),
                "`{line}` not flagged"
            );
        }
    }

    #[test]
    fn panic_propagation_is_flagged_in_strict_scope() {
        let src =
            "fn f() {\n    let r = handle.join().unwrap();\n    std::panic::resume_unwind(p);\n}\n";
        let v = check_source("crates/linalg/src/par.rs", src, &strict_cfg());
        let props: Vec<_> = v
            .iter()
            .filter(|x| x.rule == Rule::PanicPropagation)
            .collect();
        assert_eq!(props.len(), 2, "{v:?}");
        // typed-error joining is fine
        let good = "fn f() {\n    if let Ok(part) = h.join() { out.extend(part); }\n}\n";
        let ok = check_source("crates/linalg/src/par.rs", good, &strict_cfg());
        assert!(ok.iter().all(|x| x.rule != Rule::PanicPropagation));
    }

    #[test]
    fn alloc_arith_flags_unchecked_sizing() {
        for line in [
            "let v: Vec<f64> = Vec::with_capacity(rows * cols);",
            "out.reserve(extra + 1);",
            "let m = Matrix::zeros(n, lookback * s);",
            "let buf = vec![0.0; rows * cols];",
        ] {
            let src = format!("fn f() {{\n    {line}\n}}\n");
            let v = check_source("crates/tdaub/src/executor.rs", &src, &strict_cfg());
            assert!(
                v.iter().any(|x| x.rule == Rule::AllocArith),
                "`{line}` not flagged: {v:?}"
            );
        }
    }

    #[test]
    fn alloc_arith_accepts_checked_and_plain_sizing() {
        for line in [
            "let v: Vec<f64> = Vec::with_capacity(n);",
            "let v = Vec::with_capacity(rows.saturating_mul(cols));",
            "out.reserve(extra.checked_add(1).ok_or(Error::TooBig)?);",
            "let m = Matrix::zeros(n, lookback.saturating_mul(s));",
            "let buf = vec![0.0; len];",
            "let pair = vec![a * b];",  // element expr, not a length
            "let total = rows * cols;", // arithmetic outside an allocation
        ] {
            let src = format!("fn f() {{\n    {line}\n}}\n");
            let v = check_source("crates/tdaub/src/executor.rs", &src, &strict_cfg());
            assert!(
                v.iter().all(|x| x.rule != Rule::AllocArith),
                "`{line}` wrongly flagged: {v:?}"
            );
        }
    }

    #[test]
    fn alloc_arith_is_strict_only_and_waivable() {
        let src = "fn f() {\n    let v = Vec::with_capacity(rows * cols);\n}\n";
        // outside strict mode → silent
        let off = check_source("crates/tdaub/src/executor.rs", src, &cfg());
        assert!(off.is_empty(), "{off:?}");
        // non-strict path with the flag → silent
        let other = check_source("crates/linalg/src/matrix.rs", src, &strict_cfg());
        assert!(other.is_empty(), "{other:?}");
        // window kernels are in the strict set
        let win = check_source("crates/transforms/src/window.rs", src, &strict_cfg());
        assert!(win.iter().any(|x| x.rule == Rule::AllocArith), "{win:?}");
        // a justified allow waives
        let waived = "fn f() {\n    // tscheck:allow(alloc-arith): both factors < 2^16 by construction\n    let v = Vec::with_capacity(rows * cols);\n}\n";
        let ok = check_source("crates/tdaub/src/executor.rs", waived, &strict_cfg());
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn strict_rules_skip_test_regions() {
        let src = "fn f() { g(); }\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let x = data[0];\n    }\n}\n";
        let v = check_source("crates/tdaub/src/executor.rs", src, &strict_cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn strict_violation_can_be_waived_with_justification() {
        let src = "fn f() {\n    // tscheck:allow(strict-index): bounds checked two lines up\n    let x = data[i];\n}\n";
        let v = check_source("crates/tdaub/src/executor.rs", src, &strict_cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn manifest_path_and_workspace_deps_pass() {
        let src = "[package]\nname = \"x\"\n\n[dependencies]\nfoo = { path = \"../foo\" }\nbar.workspace = true\nbaz = { workspace = true }\n";
        assert!(check_manifest("crates/x/Cargo.toml", src, &[]).is_empty());
    }

    #[test]
    fn manifest_version_dep_fails() {
        let src = "[dependencies]\nserde = { version = \"1\", features = [\"derive\"] }\nrand = \"0.8\"\n";
        let v = check_manifest("Cargo.toml", src, &[]);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.rule == Rule::Hermeticity));
        // allowlist waives
        let waived = check_manifest("Cargo.toml", src, &["serde", "rand"]);
        assert!(waived.is_empty());
    }

    #[test]
    fn manifest_dep_table_sections() {
        let bad = "[dependencies.foo]\nversion = \"1\"\n\n[package.metadata]\nx = 1\n";
        let v = check_manifest("Cargo.toml", bad, &[]);
        assert_eq!(v.len(), 1);
        let good = "[dependencies.foo]\npath = \"../foo\"\n";
        assert!(check_manifest("Cargo.toml", good, &[]).is_empty());
    }

    #[test]
    fn workspace_dependency_section_is_checked() {
        let src = "[workspace.dependencies]\nautoai-linalg = { path = \"crates/linalg\" }\nrayon = \"1\"\n";
        let v = check_manifest("Cargo.toml", src, &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("rayon"));
    }

    #[test]
    fn strip_code_handles_literals() {
        assert_eq!(strip_code("let x = 1; // unwrap()"), "let x = 1; ");
        assert_eq!(strip_code("let s = \"panic!\";"), "let s = \"\";");
        assert_eq!(
            strip_code("let c = '\\n'; let l: &'a str = s;"),
            "let c = ' '; let l: &'a str = s;"
        );
        assert_eq!(strip_code("let r = r\"todo!\";"), "let r = \"\";");
    }
}
