//! `tscheck` — the in-repo static-analysis pass run as `cargo run -p xtask -- check`.
//!
//! Since PR 6 the scanner is a real **token-stream analyzer** built on the
//! zero-dependency lexer in [`lexer`]: raw strings, nested block comments,
//! byte literals and lifetimes are lexed correctly, and `#[cfg(test)]`
//! regions are masked by token-level attribute + brace matching instead of
//! line heuristics. Rules match token patterns, so string and comment
//! contents can never fire (or suppress) a finding.
//!
//! Rule families, all default-on for the scoped crates:
//!
//! 1. **Panic-freedom** (`panic`): forbids `.unwrap()`, `.expect(`,
//!    `panic!`, `unreachable!`, `todo!`, `unimplemented!` in non-test
//!    library code. Failures surface as typed `Result` errors so a
//!    malformed series can never abort a long AutoML run.
//! 2. **NaN-safe ordering** (`nan`): forbids `partial_cmp` and raw
//!    `max`/`min` on SMAPE/MAPE metric values, where a silent NaN would
//!    corrupt T-Daub's ranking. Use `total_cmp`.
//! 3. **Indexing** (`index`): slice indexing through an unchecked
//!    `as usize` cast.
//! 4. **Lint hygiene** (`docs`): crate roots carry `#![warn(missing_docs)]`
//!    and `#![deny(unsafe_code)]`.
//! 5. **Hermeticity** (`deps`): every manifest dependency is an
//!    in-workspace `path` dependency (or is in [`ALLOWED_EXTERNAL`]).
//! 6. **Lock discipline** (`raw-lock`, `lock-order`, `lock-across-par`):
//!    all lock construction goes through `linalg::sync`'s ordered wrappers;
//!    guard scopes are extracted from the token stream ([`locks`]), nested
//!    acquisitions build a workspace-wide lock-order graph whose cycles are
//!    flagged ([`check_locks`]), and no guard may be held across a
//!    `parallel_*`/`supervised_try_map`/`spawn`/`scope`/`join` call.
//! 7. **Determinism** (`hash-iter`, `wall-clock`, `trunc-cast`): iteration
//!    over `HashMap`/`HashSet` in ranking/report/cache paths
//!    ([`Config::hash_iter_paths`]), `Instant::now`/`SystemTime::now`
//!    outside the budget/watchdog whitelist ([`Config::clock_paths`]), and
//!    truncating casts on length-like values are all flagged — these are
//!    exactly the bug classes that silently break the serial==parallel
//!    equivalence T-Daub's ranking guarantees.
//! 8. **Thread discipline** (`raw-spawn`): `thread::spawn`, `thread::scope`
//!    and `thread::Builder` are forbidden outside the persistent worker
//!    pool in [`Config::spawn_exempt_paths`] (`crates/linalg/src/par.rs`).
//!    Every fan-out must go through the pool so worker threads stay
//!    accounted, panic-quarantined, and visible to deadline supervision.
//!
//! A violation can be waived in place with an escape hatch comment on the
//! same line or the line above, **with a justification**:
//!
//! ```text
//! // tscheck:allow(panic): index bounded by the loop above
//! ```
//!
//! An allow without a justification is itself a violation (`allow`).
//!
//! The opt-in **strict** family (`check --strict`) holds the hot-path files
//! in [`Config::strict_paths`] to tighter standards: no slice indexing at
//! all (`strict-index`), no re-raised worker panics (`propagate`), and no
//! unchecked `*`/`+` sizing arithmetic inside allocation or capacity
//! expressions (`alloc-arith`).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod lexer;
pub mod locks;

use std::collections::{HashMap, HashSet};
use std::fmt;

use lexer::{FileTokens, TokKind};

/// External crates a manifest may depend on. Empty: the build is fully
/// hermetic today. Extend this list (with a PR-reviewed justification) if a
/// dependency ever becomes unavoidable.
pub const ALLOWED_EXTERNAL: &[&str] = &[];

/// Which rule family a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Panic-freedom: `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`.
    Panic,
    /// NaN-safe ordering: `partial_cmp`, raw metric `max`/`min`.
    NanOrdering,
    /// Slice indexing through an unchecked `as usize` cast.
    Indexing,
    /// Crate-root lint hygiene (`missing_docs` + `deny(unsafe_code)`).
    Hygiene,
    /// Non-path dependency outside the allowlist.
    Hermeticity,
    /// `tscheck:allow` escape hatch without a justification.
    BadAllow,
    /// Raw `Mutex::new`/`RwLock::new` outside the `linalg::sync` wrappers.
    RawLock,
    /// A lock-order cycle (or same-class self-nesting) in the workspace
    /// lock-order graph.
    LockOrder,
    /// A lock guard held across a fan-out or join call.
    LockAcrossPar,
    /// Raw `thread::spawn`/`thread::scope`/`thread::Builder` outside the
    /// persistent worker pool module.
    RawSpawn,
    /// Iteration over hash-ordered state in a determinism-critical path.
    HashIter,
    /// Wall-clock read outside the budget/watchdog whitelist.
    WallClock,
    /// Truncating cast on a length-like value.
    TruncCast,
    /// Strict mode: *any* slice/array indexing in a hot-path file.
    StrictIndexing,
    /// Strict mode: re-raising worker panics (`.join().unwrap()`,
    /// `resume_unwind`) instead of routing them into a typed error.
    PanicPropagation,
    /// Strict mode: unchecked `a * b` / `a + b` sizing arithmetic inside an
    /// allocation or capacity expression (`with_capacity`, `reserve`,
    /// `::zeros`, `vec![_; n]`) — overflow panics instead of returning an
    /// error. Use `checked_*`/`saturating_*`.
    AllocArith,
    /// A chaos injection-site literal (`inject("…")` / `chaos_gate("…")`)
    /// that is not in the [`Config::chaos_sites`] registry — typo'd sites
    /// silently never fire, so the gauntlet stops covering them.
    ChaosSite,
}

impl Rule {
    /// Short id used in output and in `tscheck:allow(<id>)` comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::NanOrdering => "nan",
            Rule::Indexing => "index",
            Rule::Hygiene => "docs",
            Rule::Hermeticity => "deps",
            Rule::BadAllow => "allow",
            Rule::RawLock => "raw-lock",
            Rule::LockOrder => "lock-order",
            Rule::LockAcrossPar => "lock-across-par",
            Rule::RawSpawn => "raw-spawn",
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::TruncCast => "trunc-cast",
            Rule::StrictIndexing => "strict-index",
            Rule::PanicPropagation => "propagate",
            Rule::AllocArith => "alloc-arith",
            Rule::ChaosSite => "chaos-site",
        }
    }
}

/// One finding: file, 1-based line, rule family, human message.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Rule family that fired.
    pub rule: Rule,
    /// What was found and what to do instead.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Scanner configuration: which crates and paths each rule family covers.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate directory names under `crates/` whose `src/` trees are held to
    /// the panic/NaN/index/lock/determinism rules.
    pub scoped_crates: Vec<String>,
    /// Run the strict rule family ([`Rule::StrictIndexing`],
    /// [`Rule::PanicPropagation`], [`Rule::AllocArith`]) over
    /// [`Config::strict_paths`].
    pub strict: bool,
    /// Repo-relative path prefixes held to the strict rules: the T-Daub
    /// execution engine, the parallel work queue, the windowing kernels,
    /// the stat-model fit recursions, the registry/cache layers, and the
    /// long-lived forecasting service front end, where an out-of-bounds
    /// index, a re-raised worker panic, or an overflowing capacity
    /// computation would take down a whole AutoML run.
    pub strict_paths: Vec<String>,
    /// Path prefixes allowed to read the wall clock (`Instant::now` /
    /// `SystemTime::now`): the budget/watchdog modules whose *outputs* are
    /// kept out of ranking decisions, and the benchmark harness whose whole
    /// purpose is timing.
    pub clock_paths: Vec<String>,
    /// Determinism-critical path prefixes where iteration over
    /// `HashMap`/`HashSet` is flagged: ranking, reports, and cache stats
    /// must never depend on hash-iteration order.
    pub hash_iter_paths: Vec<String>,
    /// Path prefixes exempt from [`Rule::RawLock`] — the `linalg::sync`
    /// module itself, which wraps the raw primitives.
    pub lock_exempt_paths: Vec<String>,
    /// Path prefixes exempt from [`Rule::RawSpawn`] — the persistent worker
    /// pool in `linalg::par`, the one place allowed to create OS threads.
    pub spawn_exempt_paths: Vec<String>,
    /// The registry of valid chaos injection-site names. Every string
    /// literal passed to `inject(` or `chaos_gate(` in scoped code must be
    /// listed here ([`Rule::ChaosSite`]); registering a site is the same
    /// commitment as naming a lock class — the gauntlet sweeps it.
    pub chaos_sites: Vec<String>,
}

impl Default for Config {
    /// All workspace crates except `xtask` itself are in scope for the
    /// panic/NaN/lock/determinism rules (since PR 6 this includes the leaf
    /// crates `bench`, `sota`, `datasets`, `anomaly` — previously exempt).
    fn default() -> Self {
        Config {
            scoped_crates: [
                "linalg",
                "tsdata",
                "transforms",
                "stat-models",
                "ml-models",
                "neural",
                "lookback",
                "pipelines",
                "tdaub",
                "core",
                "chaos",
                "bench",
                "sota",
                "datasets",
                "anomaly",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            strict: false,
            strict_paths: vec![
                "crates/tdaub/src/".to_string(),
                "crates/linalg/src/par.rs".to_string(),
                "crates/transforms/src/window.rs".to_string(),
                "crates/stat-models/src/holtwinters.rs".to_string(),
                "crates/stat-models/src/arima.rs".to_string(),
                "crates/stat-models/src/bats.rs".to_string(),
                "crates/stat-models/src/simple.rs".to_string(),
                "crates/stat-models/src/garch.rs".to_string(),
                "crates/stat-models/src/incremental_ar.rs".to_string(),
                "crates/pipelines/src/caching.rs".to_string(),
                "crates/pipelines/src/registry.rs".to_string(),
                "crates/pipelines/src/interval.rs".to_string(),
                "crates/pipelines/src/weighted_ensemble.rs".to_string(),
                "crates/transforms/src/conformal.rs".to_string(),
                "crates/tsdata/src/metrics.rs".to_string(),
                "crates/chaos/src/".to_string(),
                "crates/core/src/service.rs".to_string(),
                "crates/core/src/online.rs".to_string(),
            ],
            clock_paths: vec![
                "crates/linalg/src/par.rs".to_string(),
                "crates/linalg/src/optimize.rs".to_string(),
                "crates/tdaub/src/".to_string(),
                "crates/pipelines/src/stat_pipelines.rs".to_string(),
                "crates/stat-models/src/arima.rs".to_string(),
                "crates/stat-models/src/bats.rs".to_string(),
                "crates/bench/src/".to_string(),
            ],
            hash_iter_paths: vec![
                "crates/tdaub/src/".to_string(),
                "crates/transforms/src/cache.rs".to_string(),
                "crates/core/src/".to_string(),
                "crates/pipelines/src/".to_string(),
                "crates/linalg/src/par.rs".to_string(),
            ],
            lock_exempt_paths: vec!["crates/linalg/src/sync.rs".to_string()],
            spawn_exempt_paths: vec!["crates/linalg/src/par.rs".to_string()],
            chaos_sites: [
                "service.submit",
                "executor.unit",
                "cache.flatten",
                "pipeline.fit",
                "pipeline.predict",
                "predict.interval",
                "quality.assess",
                "lookback.discover",
                "observe.append",
                "drift.update",
                "reselect.swap",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        }
    }
}

impl Config {
    /// Does `path` (repo-relative, `/`-separated) fall under the panic-rule
    /// scope? Test trees, benches and examples are never in scope.
    pub fn is_scoped(&self, path: &str) -> bool {
        if path.contains("/tests/") || path.contains("/benches/") || path.contains("/examples/") {
            return false;
        }
        self.scoped_crates
            .iter()
            .any(|c| path.starts_with(&format!("crates/{c}/src/")))
    }

    /// Does `path` fall under the strict-rule scope? Only meaningful when
    /// [`Config::strict`] is set; test trees are never in scope.
    pub fn is_strict_scoped(&self, path: &str) -> bool {
        self.strict
            && !path.contains("/tests/")
            && !path.contains("/benches/")
            && !path.contains("/examples/")
            && self.strict_paths.iter().any(|p| path.starts_with(p))
    }
}

/// Reserved words that cannot be the base expression of a subscript: an
/// `[` after one of these opens an array literal or type, not an index.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "union", "unsafe", "use",
    "where", "while", "yield",
];

/// Methods whose call iterates a hash container in arbitrary order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// Narrow numeric types a length-like value must not be cast to.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Length-like zero-argument methods watched by [`Rule::TruncCast`].
const LENGTH_METHODS: &[&str] = &["len", "nrows", "ncols", "n_series", "count"];

/// Look up the waiver state for a violation of `rule` at `line`:
/// * `None` — no escape hatch, the violation stands;
/// * `Some(true)` — waived with a justification;
/// * `Some(false)` — escape hatch present but no justification.
fn allow_state(rule: Rule, line: usize, comments: &HashMap<usize, String>) -> Option<bool> {
    let tag = format!("tscheck:allow({})", rule.id());
    for l in [line, line.saturating_sub(1)] {
        if l == 0 {
            continue;
        }
        if let Some(c) = comments.get(&l) {
            if let Some(pos) = c.find(&tag) {
                let rest = c
                    .get(pos + tag.len()..)
                    .unwrap_or("")
                    .trim_start_matches([':', '-', '—', ' '])
                    .trim();
                // a justification may be cut off by the end of the comment;
                // require a minimum substance either way
                return Some(rest.len() >= 8);
            }
        }
    }
    None
}

/// Apply the waiver protocol to a raw hit list, producing final violations.
fn apply_waivers(
    path: &str,
    hits: Vec<(Rule, usize, String)>,
    comments: &HashMap<usize, String>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (rule, line, message) in hits {
        match allow_state(rule, line, comments) {
            Some(true) => {}
            Some(false) => out.push(Violation {
                file: path.to_string(),
                line,
                rule: Rule::BadAllow,
                message: format!(
                    "`tscheck:allow({})` needs a justification after the tag",
                    rule.id()
                ),
            }),
            None => out.push(Violation {
                file: path.to_string(),
                line,
                rule,
                message,
            }),
        }
    }
    out
}

/// Token-pattern scan context over one file's comment-free code tokens.
struct Scan<'a> {
    ft: &'a FileTokens,
}

impl<'a> Scan<'a> {
    fn ident(&self, i: usize) -> Option<&'a str> {
        self.ft
            .code
            .get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.ident(i) == Some(name)
    }

    fn punct(&self, i: usize, c: char) -> bool {
        self.ft
            .code
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct(c))
    }

    /// The string-literal token at `i`, with the surrounding quotes (and
    /// raw/byte sigils) stripped.
    fn str_text(&self, i: usize) -> Option<&'a str> {
        self.ft
            .code
            .get(i)
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| {
                t.text
                    .as_str()
                    .trim_start_matches(['b', 'r', '#'])
                    .trim_end_matches('#')
                    .trim_matches('"')
            })
    }

    fn line(&self, i: usize) -> usize {
        self.ft.code.get(i).map(|t| t.line).unwrap_or(0)
    }

    fn live(&self, i: usize) -> bool {
        !self.ft.in_test.get(i).copied().unwrap_or(false)
    }

    /// Token index of the matching close for the open delimiter at `open`.
    fn matching_close(&self, open: usize, oc: char, cc: char) -> Option<usize> {
        let mut depth = 0i64;
        let mut j = open;
        while let Some(t) = self.ft.code.get(j) {
            if t.kind == TokKind::Punct(oc) {
                depth += 1;
            } else if t.kind == TokKind::Punct(cc) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            j += 1;
        }
        None
    }

    /// Do any identifiers on `line` contain a metric name (smape/mape)?
    fn line_mentions_metric(&self, around: usize, line: usize) -> bool {
        let check = |t: &lexer::Tok| {
            t.line == line
                && t.kind == TokKind::Ident
                && (t.text.to_ascii_lowercase().contains("smape")
                    || t.text.to_ascii_lowercase().contains("mape"))
        };
        // scan outward from `around` while still on the same line
        let mut j = around;
        while let Some(t) = self.ft.code.get(j) {
            if t.line != line {
                break;
            }
            if check(t) {
                return true;
            }
            if j == 0 {
                break;
            }
            j -= 1;
        }
        let mut j = around + 1;
        while let Some(t) = self.ft.code.get(j) {
            if t.line != line {
                break;
            }
            if check(t) {
                return true;
            }
            j += 1;
        }
        false
    }

    /// Is a `*` or `+` at token `i` a binary operator (its left neighbor is
    /// a value-ending token)?
    fn is_binary_op(&self, i: usize) -> bool {
        if i == 0 {
            return false;
        }
        self.ft.code.get(i - 1).is_some_and(|t| match t.kind {
            TokKind::Ident | TokKind::Num => true,
            TokKind::Punct(')') | TokKind::Punct(']') => true,
            _ => false,
        })
    }

    /// Unchecked sizing arithmetic in the token range `[start, end)`:
    /// a binary `*`/`+` with no `checked_*`/`saturating_*` call in range.
    fn region_has_unchecked_arith(&self, start: usize, end: usize) -> bool {
        let mut has_op = false;
        for j in start..end {
            if let Some(t) = self.ft.code.get(j) {
                match t.kind {
                    TokKind::Punct('*') | TokKind::Punct('+') => {
                        if self.is_binary_op(j) {
                            has_op = true;
                        }
                    }
                    TokKind::Ident => {
                        if t.text.starts_with("checked_") || t.text.starts_with("saturating_") {
                            return false;
                        }
                    }
                    _ => {}
                }
            }
        }
        has_op
    }
}

/// Names bound to `HashMap`/`HashSet` values in this file's non-test code:
/// `let x: HashMap<…>`, struct fields `x: Mutex<HashSet<…>>`, and
/// `let x = HashMap::new()` all register `x`.
fn hash_bound_names(s: &Scan<'_>) -> HashSet<String> {
    let mut names = HashSet::new();
    for i in 0..s.ft.code.len() {
        if !s.live(i) {
            continue;
        }
        let Some(id) = s.ident(i) else { continue };
        if id != "HashMap" && id != "HashSet" {
            continue;
        }
        // walk back to the statement/field boundary, looking for the
        // nearest single-colon binding `name :` (skipping `::` paths), or
        // a `let [mut] name =` binding.
        let mut k = i;
        let mut bound: Option<String> = None;
        let mut let_at: Option<usize> = None;
        while k > 0 {
            k -= 1;
            let Some(t) = s.ft.code.get(k) else { break };
            match t.kind {
                TokKind::Punct(';')
                | TokKind::Punct('{')
                | TokKind::Punct('}')
                | TokKind::Punct(',')
                | TokKind::Punct('(') => break,
                TokKind::Ident => {
                    if t.text == "let" {
                        let_at = Some(k);
                        break;
                    }
                    if bound.is_none()
                        && s.punct(k + 1, ':')
                        && !s.punct(k + 2, ':')
                        && !(k > 0 && s.punct(k - 1, ':'))
                    {
                        bound = Some(t.text.clone());
                    }
                }
                _ => {}
            }
        }
        if let Some(name) = bound {
            names.insert(name);
            continue;
        }
        if let Some(l) = let_at {
            let mut j = l + 1;
            if s.is_ident(j, "mut") {
                j += 1;
            }
            if let Some(name) = s.ident(j) {
                if s.punct(j + 1, '=') || s.punct(j + 1, ':') {
                    names.insert(name.to_string());
                }
            }
        }
    }
    names
}

/// Scan one lexed file for all token-pattern rule hits (no waivers applied).
fn token_hits(path: &str, ft: &FileTokens, cfg: &Config) -> Vec<(Rule, usize, String)> {
    let scoped = cfg.is_scoped(path);
    let strict = cfg.is_strict_scoped(path);
    if !scoped && !strict {
        return Vec::new();
    }
    let s = Scan { ft };
    let clock_ok = cfg.clock_paths.iter().any(|p| path.starts_with(p));
    let hash_scoped = scoped && cfg.hash_iter_paths.iter().any(|p| path.starts_with(p));
    let lock_exempt = cfg.lock_exempt_paths.iter().any(|p| path.starts_with(p));
    let spawn_exempt = cfg.spawn_exempt_paths.iter().any(|p| path.starts_with(p));
    let hash_names = if hash_scoped {
        hash_bound_names(&s)
    } else {
        HashSet::new()
    };

    let mut hits: Vec<(Rule, usize, String)> = Vec::new();
    let n = ft.code.len();
    for i in 0..n {
        if !s.live(i) {
            continue;
        }
        let line = s.line(i);

        if scoped {
            // panic: `.unwrap()` / `.expect(`
            if s.punct(i, '.') {
                if s.is_ident(i + 1, "unwrap") && s.punct(i + 2, '(') && s.punct(i + 3, ')') {
                    hits.push((
                        Rule::Panic,
                        line,
                        "`.unwrap()` in library code; return a typed error instead".to_string(),
                    ));
                }
                if s.is_ident(i + 1, "expect") && s.punct(i + 2, '(') {
                    hits.push((
                        Rule::Panic,
                        line,
                        "`.expect(` in library code; return a typed error instead".to_string(),
                    ));
                }
            }
            // panic: aborting macros
            if let Some(mac) = s.ident(i) {
                if ["panic", "unreachable", "todo", "unimplemented"].contains(&mac)
                    && s.punct(i + 1, '!')
                {
                    hits.push((
                        Rule::Panic,
                        line,
                        format!("`{mac}!` in library code; return a typed error instead"),
                    ));
                }
            }
            // nan: partial_cmp
            if s.is_ident(i, "partial_cmp") {
                hits.push((
                    Rule::NanOrdering,
                    line,
                    "`partial_cmp` on floats; use `total_cmp` for a NaN-safe total order"
                        .to_string(),
                ));
            }
            // nan: raw max/min on metric values
            if s.punct(i, '.')
                && (s.is_ident(i + 1, "max") || s.is_ident(i + 1, "min"))
                && s.punct(i + 2, '(')
                && s.line_mentions_metric(i, line)
            {
                hits.push((
                    Rule::NanOrdering,
                    line,
                    "raw `max`/`min` on a metric value silently drops NaN; compare explicitly"
                        .to_string(),
                ));
            }
            // index: `… as usize]`
            if s.is_ident(i, "as") && s.is_ident(i + 1, "usize") && s.punct(i + 2, ']') {
                hits.push((
                    Rule::Indexing,
                    line,
                    "slice index through unchecked `as usize` cast; bound-check or use `.get`"
                        .to_string(),
                ));
            }
            // raw-lock: Mutex::new / RwLock::new outside the sync module
            if !lock_exempt {
                if let Some(id) = s.ident(i) {
                    if (id == "Mutex" || id == "RwLock")
                        && s.punct(i + 1, ':')
                        && s.punct(i + 2, ':')
                        && s.is_ident(i + 3, "new")
                    {
                        hits.push((
                            Rule::RawLock,
                            line,
                            format!(
                                "raw `{id}::new`; construct locks through \
                                 `linalg::sync::OrderedMutex`/`OrderedRwLock` so they \
                                 participate in lock-order tracking"
                            ),
                        ));
                    }
                }
            }
            // raw-spawn: thread::spawn / thread::scope / thread::Builder
            // outside the persistent worker pool module
            if !spawn_exempt
                && s.is_ident(i, "thread")
                && s.punct(i + 1, ':')
                && s.punct(i + 2, ':')
            {
                if let Some(what) = s
                    .ident(i + 3)
                    .filter(|id| ["spawn", "scope", "Builder"].contains(id))
                {
                    hits.push((
                        Rule::RawSpawn,
                        line,
                        format!(
                            "raw `thread::{what}` outside the persistent worker pool; fan out \
                             through `linalg::par` so threads stay accounted, \
                             panic-quarantined, and visible to deadline supervision"
                        ),
                    ));
                }
            }
            // wall-clock: Instant::now / SystemTime::now outside whitelist
            if !clock_ok {
                if let Some(id) = s.ident(i) {
                    if (id == "Instant" || id == "SystemTime")
                        && s.punct(i + 1, ':')
                        && s.punct(i + 2, ':')
                        && s.is_ident(i + 3, "now")
                    {
                        hits.push((
                            Rule::WallClock,
                            line,
                            format!(
                                "`{id}::now` outside the budget/watchdog whitelist; wall-clock \
                                 reads in ranking paths break serial==parallel reproducibility"
                            ),
                        ));
                    }
                }
            }
            // trunc-cast: `.len() as u32`-style narrowing on lengths
            if s.punct(i, '.')
                && s.ident(i + 1).is_some_and(|m| LENGTH_METHODS.contains(&m))
                && s.punct(i + 2, '(')
                && s.punct(i + 3, ')')
                && s.is_ident(i + 4, "as")
                && s.ident(i + 5).is_some_and(|t| NARROW_TYPES.contains(&t))
            {
                hits.push((
                    Rule::TruncCast,
                    line,
                    format!(
                        "truncating cast `{}() as {}` on a length-like value; use `u64`/`usize` \
                         or `try_from`",
                        s.ident(i + 1).unwrap_or(""),
                        s.ident(i + 5).unwrap_or("")
                    ),
                ));
            }
            // chaos-site: injection-site literals must come from the
            // registry — a typo'd site never fires and the gauntlet
            // silently loses coverage
            if (s.is_ident(i, "inject") || s.is_ident(i, "chaos_gate")) && s.punct(i + 1, '(') {
                if let Some(site) = s.str_text(i + 2) {
                    if !cfg.chaos_sites.iter().any(|k| k == site) {
                        hits.push((
                            Rule::ChaosSite,
                            line,
                            format!(
                                "chaos site `{site}` is not in the registry; add it to \
                                 `Config::chaos_sites` (and the gauntlet) or fix the typo"
                            ),
                        ));
                    }
                }
            }
            // hash-iter: iteration over hash-ordered bindings
            if hash_scoped {
                if let Some(id) = s.ident(i) {
                    if hash_names.contains(id) {
                        let method_iter = s.punct(i + 1, '.')
                            && s.ident(i + 2)
                                .is_some_and(|m| HASH_ITER_METHODS.contains(&m))
                            && s.punct(i + 3, '(');
                        // `for x in name {` / `for x in &name {`
                        let mut k = i;
                        while k > 0
                            && (s.punct(k - 1, '&')
                                || s.is_ident(k - 1, "mut")
                                || s.punct(k - 1, '.'))
                        {
                            k -= 1;
                        }
                        let for_iter = k > 0 && s.is_ident(k - 1, "in") && s.punct(i + 1, '{');
                        if method_iter || for_iter {
                            hits.push((
                                Rule::HashIter,
                                line,
                                format!(
                                    "iteration over hash-ordered `{id}` in a \
                                     determinism-critical path; sort keys first or use an \
                                     ordered container"
                                ),
                            ));
                        }
                    }
                }
            }
        }

        if strict {
            // strict-index: any subscript `[` after a value-ending token
            if s.punct(i, '[') && i > 0 {
                let prev_ok = s.ft.code.get(i - 1).is_some_and(|t| match t.kind {
                    TokKind::Ident => !KEYWORDS.contains(&t.text.as_str()),
                    TokKind::Punct(')') | TokKind::Punct(']') => true,
                    _ => false,
                });
                if prev_ok {
                    hits.push((
                        Rule::StrictIndexing,
                        line,
                        "slice indexing in a hot-path file; use `.get`/`.get_mut` or an iterator"
                            .to_string(),
                    ));
                }
            }
            // propagate: `.join().unwrap(` / `.join().expect(` / resume_unwind
            if s.punct(i, '.')
                && s.is_ident(i + 1, "join")
                && s.punct(i + 2, '(')
                && s.punct(i + 3, ')')
                && s.punct(i + 4, '.')
                && (s.is_ident(i + 5, "unwrap") || s.is_ident(i + 5, "expect"))
                && s.punct(i + 6, '(')
            {
                hits.push((
                    Rule::PanicPropagation,
                    line,
                    "`.join().unwrap()` re-raises a worker panic; route it into the typed \
                     `WorkerPanic` error path instead"
                        .to_string(),
                ));
            }
            if s.is_ident(i, "resume_unwind") {
                hits.push((
                    Rule::PanicPropagation,
                    line,
                    "`resume_unwind` re-raises a worker panic; route it into the typed \
                     `WorkerPanic` error path instead"
                        .to_string(),
                ));
            }
            // alloc-arith markers
            if s.is_ident(i, "with_capacity") && s.punct(i + 1, '(') {
                if let Some(close) = s.matching_close(i + 1, '(', ')') {
                    if s.region_has_unchecked_arith(i + 2, close) {
                        hits.push((
                            Rule::AllocArith,
                            line,
                            "unchecked sizing arithmetic in `with_capacity(..)`; use \
                             `checked_mul`/`checked_add` or `saturating_*`"
                                .to_string(),
                        ));
                    }
                }
            }
            if s.punct(i, '.') && s.is_ident(i + 1, "reserve") && s.punct(i + 2, '(') {
                if let Some(close) = s.matching_close(i + 2, '(', ')') {
                    if s.region_has_unchecked_arith(i + 3, close) {
                        hits.push((
                            Rule::AllocArith,
                            line,
                            "unchecked sizing arithmetic in `.reserve(..)`; use \
                             `checked_mul`/`checked_add` or `saturating_*`"
                                .to_string(),
                        ));
                    }
                }
            }
            if s.is_ident(i, "zeros")
                && i >= 2
                && s.punct(i - 1, ':')
                && s.punct(i - 2, ':')
                && s.punct(i + 1, '(')
            {
                if let Some(close) = s.matching_close(i + 1, '(', ')') {
                    if s.region_has_unchecked_arith(i + 2, close) {
                        hits.push((
                            Rule::AllocArith,
                            line,
                            "unchecked sizing arithmetic in `::zeros(..)`; use \
                             `checked_mul`/`checked_add` or `saturating_*`"
                                .to_string(),
                        ));
                    }
                }
            }
            // vec![elem; len]: only the length expression allocates
            if s.is_ident(i, "vec") && s.punct(i + 1, '!') && s.punct(i + 2, '[') {
                if let Some(close) = s.matching_close(i + 2, '[', ']') {
                    // last top-level `;` inside the macro
                    let mut depth = 0i64;
                    let mut semi: Option<usize> = None;
                    for j in i + 3..close {
                        match s.ft.code.get(j).map(|t| t.kind) {
                            Some(TokKind::Punct('(')) | Some(TokKind::Punct('[')) => depth += 1,
                            Some(TokKind::Punct(')')) | Some(TokKind::Punct(']')) => depth -= 1,
                            Some(TokKind::Punct(';')) if depth == 0 => semi = Some(j),
                            _ => {}
                        }
                    }
                    if let Some(sp) = semi {
                        if s.region_has_unchecked_arith(sp + 1, close) {
                            hits.push((
                                Rule::AllocArith,
                                line,
                                "unchecked sizing arithmetic in `vec![_; ..]`; use \
                                 `checked_mul`/`checked_add` or `saturating_*`"
                                    .to_string(),
                            ));
                        }
                    }
                }
            }
        }
    }

    // lock discipline: per-file findings (self-nesting + guard-across-par)
    if scoped {
        let (edges, crossings) = locks::lock_facts(path, ft);
        for e in &edges {
            if e.from == e.to {
                hits.push((
                    Rule::LockOrder,
                    e.line,
                    format!(
                        "lock class `{}` acquired while a guard of the same class is held; \
                         same-class nesting deadlocks on a single instance",
                        e.from
                    ),
                ));
            }
        }
        for c in &crossings {
            hits.push((
                Rule::LockAcrossPar,
                c.line,
                format!(
                    "guard `{}` held across `{}`; release locks before fanning out or \
                     joining workers",
                    c.guard, c.call
                ),
            ));
        }
    }

    hits
}

/// Scan one source file. `path` is the repo-relative path (forward slashes)
/// used both for scoping and in reported violations; `src` is the file
/// contents. Pure function of its inputs so tests can seed violations
/// without touching the filesystem. Cross-file lock-order cycles are the
/// one analysis this per-file entry point cannot see — use [`check_locks`]
/// (or [`check_workspace`]) for those.
pub fn check_source(path: &str, src: &str, cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();

    // crate-root lint hygiene applies to every crate root
    if path.ends_with("src/lib.rs") {
        for attr in ["#![warn(missing_docs)]", "#![deny(unsafe_code)]"] {
            if !src.contains(attr) {
                out.push(Violation {
                    file: path.to_string(),
                    line: 1,
                    rule: Rule::Hygiene,
                    message: format!("crate root is missing `{attr}`"),
                });
            }
        }
    }

    if !cfg.is_scoped(path) && !cfg.is_strict_scoped(path) {
        return out;
    }

    let ft = lexer::analyze_file(src);
    let hits = token_hits(path, &ft, cfg);
    out.extend(apply_waivers(path, hits, &ft.comments));
    out
}

/// Is `to` reachable from `from` over the directed edge list?
fn reachable(edges: &[locks::LockEdge], from: &str, to: &str) -> bool {
    let mut stack: Vec<&str> = vec![from];
    let mut seen: Vec<&str> = Vec::new();
    while let Some(node) = stack.pop() {
        if node == to {
            return true;
        }
        if seen.contains(&node) {
            continue;
        }
        seen.push(node);
        for e in edges {
            if e.from == node {
                stack.push(&e.to);
            }
        }
    }
    false
}

/// Cross-file lock-order analysis: collect every nested-acquisition edge
/// from the scoped files, then flag each edge that closes a cycle in the
/// workspace-wide lock-order graph. Reported deterministically (edges are
/// sorted by file/line before checking) and waivable like any other rule.
pub fn check_locks(files: &[(String, String)], cfg: &Config) -> Vec<Violation> {
    let mut edges: Vec<locks::LockEdge> = Vec::new();
    let mut comments: HashMap<String, HashMap<usize, String>> = HashMap::new();
    for (path, src) in files {
        if !cfg.is_scoped(path) {
            continue;
        }
        let ft = lexer::analyze_file(src);
        let (e, _) = locks::lock_facts(path, &ft);
        // self-edges are reported by check_source; cycles need distinct ends
        edges.extend(e.into_iter().filter(|e| e.from != e.to));
        comments.insert(path.clone(), ft.comments);
    }
    edges.sort_by(|a, b| (&a.file, a.line, &a.from, &a.to).cmp(&(&b.file, b.line, &b.from, &b.to)));
    edges.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.from == b.from && a.to == b.to);

    let empty = HashMap::new();
    let mut out: Vec<Violation> = Vec::new();
    for e in &edges {
        if reachable(&edges, &e.to, &e.from) {
            let file_comments = comments.get(&e.file).unwrap_or(&empty);
            let hit = vec![(
                Rule::LockOrder,
                e.line,
                format!(
                    "acquiring `{}` while holding `{}` closes a lock-order cycle (the \
                     reverse nesting is recorded elsewhere in the workspace)",
                    e.to, e.from
                ),
            )];
            out.extend(apply_waivers(&e.file, hit, file_comments));
        }
    }
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

/// Run the full analysis over in-memory workspace contents: per-file rules
/// on every source, the cross-file lock-order graph, and manifest
/// hermeticity. Results are sorted by (file, line).
pub fn check_workspace(
    sources: &[(String, String)],
    manifests: &[(String, String)],
    cfg: &Config,
) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::new();
    for (path, src) in sources {
        out.extend(check_source(path, src, cfg));
    }
    out.extend(check_locks(sources, cfg));
    for (path, src) in manifests {
        out.extend(check_manifest(path, src, ALLOWED_EXTERNAL));
    }
    out.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    out
}

/// Scan one `Cargo.toml`. Every dependency in any `*dependencies*` table
/// must be a `path` dependency, a `workspace = true` reference, or appear
/// in `allowlist`.
pub fn check_manifest(path: &str, src: &str, allowlist: &[&str]) -> Vec<Violation> {
    let mut out = Vec::new();
    // state: (a) inside a dependency *list* section; (b) inside a single
    // dependency *table* section like `[dependencies.foo]`
    let mut in_dep_list = false;
    let mut dep_table: Option<(String, usize, bool)> = None; // (name, line, saw path/workspace)

    let is_dep_list = |s: &str| {
        s == "dependencies"
            || s == "dev-dependencies"
            || s == "build-dependencies"
            || s == "workspace.dependencies"
            || s.ends_with(".dependencies")
            || s.ends_with(".dev-dependencies")
            || s.ends_with(".build-dependencies")
    };

    let flush_table = |out: &mut Vec<Violation>, tbl: &mut Option<(String, usize, bool)>| {
        if let Some((name, line, ok)) = tbl.take() {
            if !ok && !allowlist.contains(&name.as_str()) {
                out.push(Violation {
                    file: path.to_string(),
                    line,
                    rule: Rule::Hermeticity,
                    message: format!("dependency `{name}` is not an in-workspace path dependency"),
                });
            }
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_table(&mut out, &mut dep_table);
            let section = line.trim_matches(['[', ']']).trim();
            in_dep_list = false;
            if let Some((list, name)) = section.rsplit_once('.') {
                if is_dep_list(list) {
                    dep_table = Some((name.to_string(), idx + 1, false));
                    continue;
                }
            }
            in_dep_list = is_dep_list(section);
            continue;
        }
        if let Some((_, _, ok)) = dep_table.as_mut() {
            let key = line.split('=').next().map(str::trim).unwrap_or("");
            if key == "path" || key == "workspace" {
                *ok = true;
            }
            continue;
        }
        if in_dep_list {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            let base = key.split('.').next().unwrap_or(key).to_string();
            let ok = key.ends_with(".workspace")
                || value.contains("path =")
                || value.contains("path=")
                || value.contains("workspace = true")
                || value.contains("workspace=true");
            if !ok && !allowlist.contains(&base.as_str()) {
                out.push(Violation {
                    file: path.to_string(),
                    line: idx + 1,
                    rule: Rule::Hermeticity,
                    message: format!(
                        "dependency `{base}` is not an in-workspace path dependency \
                         (hermetic builds allow only `path` deps; see xtask::ALLOWED_EXTERNAL)"
                    ),
                });
            }
        }
    }
    flush_table(&mut out, &mut dep_table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::default()
    }

    fn scoped(src: &str) -> Vec<Violation> {
        check_source("crates/linalg/src/fake.rs", src, &cfg())
    }

    #[test]
    fn unwrap_in_scoped_code_is_flagged() {
        let v = scoped("fn f() {\n    let x = y.unwrap();\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Panic);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn expect_and_panic_macros_are_flagged() {
        let v = scoped("fn f() {\n    a.expect(\"boom\");\n    panic!(\"no\");\n    unreachable!();\n    todo!();\n}\n");
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|x| x.rule == Rule::Panic));
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let v = scoped("fn f() {\n    let x = y.unwrap_or(0);\n    let z = y.unwrap_or_else(|| 1);\n    let w = y.unwrap_or_default();\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_test_region_is_skipped() {
        let src = "fn f() -> i32 { 1 }\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        x.unwrap();\n        panic!(\"fine in tests\");\n    }\n}\n";
        assert!(scoped(src).is_empty());
    }

    #[test]
    fn code_after_cfg_test_region_is_scanned_again() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n\nfn g() { y.unwrap(); }\n";
        let v = scoped(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "fn f() {\n    // calling unwrap() here would panic!\n    /* block: .unwrap() */\n    let s = \"don't .unwrap() or panic! me\";\n}\n";
        assert!(scoped(src).is_empty());
    }

    #[test]
    fn raw_strings_and_nested_comments_do_not_fire() {
        let src = "fn f() {\n    let s = r#\"panic! .unwrap() \"quoted\" inside\"#;\n    /* outer /* nested .expect( */ still comment */\n    let t = s;\n}\n";
        assert!(scoped(src).is_empty(), "{:?}", scoped(src));
    }

    #[test]
    fn doc_comment_examples_do_not_fire() {
        let src = "/// ```\n/// let v = f().unwrap();\n/// ```\nfn f() -> Option<i32> { None }\n";
        assert!(scoped(src).is_empty());
    }

    #[test]
    fn allow_with_justification_waives() {
        let src = "fn f() {\n    // tscheck:allow(panic): index bounded by the check above\n    let x = v.unwrap();\n}\n";
        assert!(scoped(src).is_empty());
        let same_line =
            "fn f() {\n    let x = v.unwrap(); // tscheck:allow(panic): bounded above\n}\n";
        assert!(scoped(same_line).is_empty());
    }

    #[test]
    fn allow_without_justification_is_a_violation() {
        let src = "fn f() {\n    let x = v.unwrap(); // tscheck:allow(panic)\n}\n";
        let v = scoped(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::BadAllow);
    }

    #[test]
    fn allow_inside_a_string_does_not_waive() {
        let src =
            "fn f() {\n    let s = \"tscheck:allow(panic): not a comment\"; let x = v.unwrap();\n}\n";
        let v = scoped(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Panic);
    }

    #[test]
    fn partial_cmp_is_flagged_total_cmp_is_not() {
        let bad = scoped("fn f() {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n");
        assert!(bad.iter().any(|x| x.rule == Rule::NanOrdering));
        assert!(bad.iter().any(|x| x.rule == Rule::Panic));
        let good = scoped("fn f() {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n");
        assert!(good.is_empty());
    }

    #[test]
    fn metric_max_min_is_flagged() {
        let v = scoped("fn f() {\n    best_smape = best_smape.min(smape);\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NanOrdering);
        // max/min on non-metric values is fine
        assert!(scoped("fn f() {\n    let n = a.max(b);\n}\n").is_empty());
    }

    #[test]
    fn cast_indexing_is_flagged() {
        let v = scoped("fn f() {\n    let x = data[i as usize];\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Indexing);
    }

    #[test]
    fn leaf_crates_are_now_scoped_and_xtask_is_not() {
        for file in [
            "crates/bench/src/fake.rs",
            "crates/sota/src/fake.rs",
            "crates/datasets/src/fake.rs",
            "crates/anomaly/src/fake.rs",
        ] {
            let v = check_source(file, "fn f() { x.unwrap(); }\n", &cfg());
            assert_eq!(v.len(), 1, "{file} should be scoped");
        }
        let v = check_source(
            "crates/xtask/src/fake.rs",
            "fn f() { x.unwrap(); }\n",
            &cfg(),
        );
        assert!(v.is_empty());
        let t = check_source(
            "crates/linalg/tests/itest.rs",
            "fn f() { x.unwrap(); }\n",
            &cfg(),
        );
        assert!(t.is_empty());
    }

    #[test]
    fn crate_root_hygiene() {
        let v = check_source("crates/bench/src/lib.rs", "//! docs\n", &cfg());
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.rule == Rule::Hygiene));
        let ok = check_source(
            "crates/bench/src/lib.rs",
            "//! docs\n#![warn(missing_docs)]\n#![deny(unsafe_code)]\n",
            &cfg(),
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn raw_lock_construction_is_flagged_outside_sync_module() {
        let v = scoped(
            "fn f() {\n    let m = Mutex::new(0);\n    let r = std::sync::RwLock::new(1);\n}\n",
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == Rule::RawLock));
        // the sync module itself is exempt
        let sync = check_source(
            "crates/linalg/src/sync.rs",
            "fn f() {\n    let m = Mutex::new(0);\n}\n",
            &cfg(),
        );
        assert!(sync.iter().all(|x| x.rule != Rule::RawLock), "{sync:?}");
        // test regions are exempt
        let test = "#[cfg(test)]\nmod tests {\n    static GATE: Mutex<()> = Mutex::new(());\n}\n";
        assert!(scoped(test).is_empty());
        // OrderedMutex::new is of course fine
        let ok = scoped("fn f() {\n    let m = OrderedMutex::new(\"x\", 0);\n}\n");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn same_class_lock_nesting_is_flagged() {
        let src = "fn f() {\n    let a = m.lock();\n    let b = m.lock();\n}\n";
        let v = scoped(src);
        assert!(v.iter().any(|x| x.rule == Rule::LockOrder), "{v:?}");
    }

    #[test]
    fn guard_across_parallel_call_is_flagged() {
        let src = "fn f() {\n    let g = plan.lock();\n    let out = supervised_try_map(items, hard, 4, worker);\n}\n";
        let v = scoped(src);
        assert!(v.iter().any(|x| x.rule == Rule::LockAcrossPar), "{v:?}");
        // sequential guards are fine
        let ok = "fn f() {\n    if let Ok(g) = plan.lock() { g.check(); }\n    let out = supervised_try_map(items, hard, 4, worker);\n}\n";
        assert!(scoped(ok).is_empty(), "{:?}", scoped(ok));
    }

    #[test]
    fn cross_file_lock_cycle_is_detected() {
        let a = (
            "crates/tdaub/src/a.rs".to_string(),
            "fn f() {\n    let g1 = alpha.lock();\n    let g2 = beta.lock();\n}\n".to_string(),
        );
        let b = (
            "crates/core/src/b.rs".to_string(),
            "fn g() {\n    let g2 = beta.lock();\n    let g1 = alpha.lock();\n}\n".to_string(),
        );
        let v = check_locks(&[a.clone(), b.clone()], &cfg());
        assert!(
            v.iter().any(|x| x.rule == Rule::LockOrder),
            "cycle not found: {v:?}"
        );
        // consistent ordering in both files: no cycle
        let b_ok = (
            "crates/core/src/b.rs".to_string(),
            "fn g() {\n    let g1 = alpha.lock();\n    let g2 = beta.lock();\n}\n".to_string(),
        );
        let ok = check_locks(&[a, b_ok], &cfg());
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn hash_iteration_is_flagged_in_determinism_paths_only() {
        let src = "fn f() {\n    let mut m: HashMap<String, f64> = HashMap::new();\n    for (k, v) in &m {\n        use_it(k, v);\n    }\n    let total: f64 = m.values().sum();\n}\n";
        let v = check_source("crates/tdaub/src/fake.rs", src, &cfg());
        let hash: Vec<_> = v.iter().filter(|x| x.rule == Rule::HashIter).collect();
        assert_eq!(hash.len(), 2, "{v:?}");
        // outside the determinism paths the same code is silent
        let out = check_source("crates/lookback/src/fake.rs", src, &cfg());
        assert!(out.iter().all(|x| x.rule != Rule::HashIter), "{out:?}");
        // non-iterating access is fine anywhere
        let ok = "fn f() {\n    let mut m: HashMap<String, f64> = HashMap::new();\n    m.insert(k, v);\n    let x = m.get(&k);\n}\n";
        let okv = check_source("crates/tdaub/src/fake.rs", ok, &cfg());
        assert!(okv.is_empty(), "{okv:?}");
    }

    #[test]
    fn struct_field_hash_iteration_is_flagged() {
        let src = "struct S {\n    in_flight: HashMap<usize, u64>,\n}\nimpl S {\n    fn f(&self) {\n        for k in self.in_flight.keys() {\n            use_it(k);\n        }\n    }\n}\n";
        let v = check_source("crates/tdaub/src/fake.rs", src, &cfg());
        assert!(v.iter().any(|x| x.rule == Rule::HashIter), "{v:?}");
    }

    #[test]
    fn wall_clock_is_flagged_outside_whitelist() {
        let src = "fn f() {\n    let t = Instant::now();\n    let s = SystemTime::now();\n}\n";
        let v = check_source("crates/transforms/src/fake.rs", src, &cfg());
        assert_eq!(
            v.iter().filter(|x| x.rule == Rule::WallClock).count(),
            2,
            "{v:?}"
        );
        // whitelisted watchdog module is fine
        let ok = check_source("crates/linalg/src/par.rs", src, &cfg());
        assert!(ok.iter().all(|x| x.rule != Rule::WallClock), "{ok:?}");
        // waivable like everything else
        let waived = "fn f() {\n    // tscheck:allow(wall-clock): telemetry only, never ranked\n    let t = Instant::now();\n}\n";
        let w = check_source("crates/transforms/src/fake.rs", waived, &cfg());
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn raw_spawn_is_flagged_outside_the_pool_module() {
        let src = "fn f() {\n    std::thread::spawn(|| work());\n    thread::scope(|s| { s.spawn(|| {}); });\n    let b = thread::Builder::new();\n}\n";
        let v = check_source("crates/transforms/src/fake.rs", src, &cfg());
        assert_eq!(
            v.iter().filter(|x| x.rule == Rule::RawSpawn).count(),
            3,
            "{v:?}"
        );
        // the pool module itself is exempt
        let pool = check_source("crates/linalg/src/par.rs", src, &cfg());
        assert!(pool.iter().all(|x| x.rule != Rule::RawSpawn), "{pool:?}");
        // test regions may spawn freely
        let test = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
        assert!(scoped(test).is_empty(), "{:?}", scoped(test));
        // sleep / available_parallelism are not spawns
        let ok = "fn f() {\n    std::thread::sleep(d);\n    let n = std::thread::available_parallelism();\n}\n";
        assert!(scoped(ok).is_empty(), "{:?}", scoped(ok));
        // waivable like everything else
        let waived = "fn f() {\n    // tscheck:allow(raw-spawn): one-shot startup probe thread\n    std::thread::spawn(|| {});\n}\n";
        let w = check_source("crates/transforms/src/fake.rs", waived, &cfg());
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn truncating_length_casts_are_flagged() {
        let src = "fn f() {\n    let n = xs.len() as u32;\n    let m = frame.n_series() as i16;\n    let ok = xs.len() as u64;\n    let also = xs.len() as f64;\n}\n";
        let v = scoped(src);
        assert_eq!(
            v.iter().filter(|x| x.rule == Rule::TruncCast).count(),
            2,
            "{v:?}"
        );
    }

    fn strict_cfg() -> Config {
        Config {
            strict: true,
            ..Config::default()
        }
    }

    #[test]
    fn strict_indexing_fires_only_in_strict_paths_with_flag() {
        let src = "fn f() {\n    let x = data[i];\n}\n";
        // strict path + strict flag → strict-index fires
        let v = check_source("crates/tdaub/src/executor.rs", src, &strict_cfg());
        assert!(v.iter().any(|x| x.rule == Rule::StrictIndexing), "{v:?}");
        // same file without the flag → silent
        let off = check_source("crates/tdaub/src/executor.rs", src, &cfg());
        assert!(off.is_empty(), "{off:?}");
        // non-strict path with the flag → silent (linalg matrix code may
        // index freely)
        let other = check_source("crates/linalg/src/matrix.rs", src, &strict_cfg());
        assert!(other.is_empty(), "{other:?}");
    }

    #[test]
    fn strict_indexing_ignores_literals_types_attrs_and_macros() {
        let src = "#[derive(Debug)]\nfn f(xs: &[f64]) -> Vec<f64> {\n    let a = [1.0, 2.0];\n    let v = vec![0.0; 4];\n    xs.to_vec()\n}\n";
        let v = check_source("crates/tdaub/src/executor.rs", src, &strict_cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn strict_indexing_catches_chained_subscripts() {
        for line in ["m.rows()[0]", "(a + b)[i]", "grid[r][c]"] {
            let src = format!("fn f() {{\n    let x = {line};\n}}\n");
            let v = check_source("crates/tdaub/src/runner.rs", &src, &strict_cfg());
            assert!(
                v.iter().any(|x| x.rule == Rule::StrictIndexing),
                "`{line}` not flagged"
            );
        }
    }

    #[test]
    fn new_strict_paths_cover_theta_garch_and_registries() {
        let src = "fn f() {\n    let x = data[i];\n}\n";
        for file in [
            "crates/stat-models/src/simple.rs",
            "crates/stat-models/src/garch.rs",
            "crates/stat-models/src/incremental_ar.rs",
            "crates/pipelines/src/registry.rs",
            "crates/pipelines/src/interval.rs",
            "crates/pipelines/src/weighted_ensemble.rs",
            "crates/transforms/src/conformal.rs",
            "crates/tsdata/src/metrics.rs",
        ] {
            let v = check_source(file, src, &strict_cfg());
            assert!(
                v.iter().any(|x| x.rule == Rule::StrictIndexing),
                "{file} should be strict-scoped"
            );
        }
    }

    #[test]
    fn panic_propagation_is_flagged_in_strict_scope() {
        let src =
            "fn f() {\n    let r = handle.join().unwrap();\n    std::panic::resume_unwind(p);\n}\n";
        let v = check_source("crates/linalg/src/par.rs", src, &strict_cfg());
        let props: Vec<_> = v
            .iter()
            .filter(|x| x.rule == Rule::PanicPropagation)
            .collect();
        assert_eq!(props.len(), 2, "{v:?}");
        // typed-error joining is fine
        let good = "fn f() {\n    if let Ok(part) = h.join() { out.extend(part); }\n}\n";
        let ok = check_source("crates/linalg/src/par.rs", good, &strict_cfg());
        assert!(ok.iter().all(|x| x.rule != Rule::PanicPropagation));
    }

    #[test]
    fn alloc_arith_flags_unchecked_sizing() {
        for line in [
            "let v: Vec<f64> = Vec::with_capacity(rows * cols);",
            "out.reserve(extra + 1);",
            "let m = Matrix::zeros(n, lookback * s);",
            "let buf = vec![0.0; rows * cols];",
        ] {
            let src = format!("fn f() {{\n    {line}\n}}\n");
            let v = check_source("crates/tdaub/src/executor.rs", &src, &strict_cfg());
            assert!(
                v.iter().any(|x| x.rule == Rule::AllocArith),
                "`{line}` not flagged: {v:?}"
            );
        }
    }

    #[test]
    fn alloc_arith_accepts_checked_and_plain_sizing() {
        for line in [
            "let v: Vec<f64> = Vec::with_capacity(n);",
            "let v = Vec::with_capacity(rows.saturating_mul(cols));",
            "out.reserve(extra.checked_add(1).ok_or(Error::TooBig)?);",
            "let m = Matrix::zeros(n, lookback.saturating_mul(s));",
            "let buf = vec![0.0; len];",
            "let pair = vec![a * b];",  // element expr, not a length
            "let total = rows * cols;", // arithmetic outside an allocation
        ] {
            let src = format!("fn f() {{\n    {line}\n}}\n");
            let v = check_source("crates/tdaub/src/executor.rs", &src, &strict_cfg());
            assert!(
                v.iter().all(|x| x.rule != Rule::AllocArith),
                "`{line}` wrongly flagged: {v:?}"
            );
        }
    }

    #[test]
    fn alloc_arith_is_strict_only_and_waivable() {
        let src = "fn f() {\n    let v = Vec::with_capacity(rows * cols);\n}\n";
        // outside strict mode → silent
        let off = check_source("crates/tdaub/src/executor.rs", src, &cfg());
        assert!(off.is_empty(), "{off:?}");
        // non-strict path with the flag → silent
        let other = check_source("crates/linalg/src/matrix.rs", src, &strict_cfg());
        assert!(other.is_empty(), "{other:?}");
        // window kernels are in the strict set
        let win = check_source("crates/transforms/src/window.rs", src, &strict_cfg());
        assert!(win.iter().any(|x| x.rule == Rule::AllocArith), "{win:?}");
        // a justified allow waives
        let waived = "fn f() {\n    // tscheck:allow(alloc-arith): both factors < 2^16 by construction\n    let v = Vec::with_capacity(rows * cols);\n}\n";
        let ok = check_source("crates/tdaub/src/executor.rs", waived, &strict_cfg());
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn strict_rules_skip_test_regions() {
        let src = "fn f() { g(); }\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let x = data[0];\n    }\n}\n";
        let v = check_source("crates/tdaub/src/executor.rs", src, &strict_cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn strict_violation_can_be_waived_with_justification() {
        let src = "fn f() {\n    // tscheck:allow(strict-index): bounds checked two lines up\n    let x = data[i];\n}\n";
        let v = check_source("crates/tdaub/src/executor.rs", src, &strict_cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn manifest_path_and_workspace_deps_pass() {
        let src = "[package]\nname = \"x\"\n\n[dependencies]\nfoo = { path = \"../foo\" }\nbar.workspace = true\nbaz = { workspace = true }\n";
        assert!(check_manifest("crates/x/Cargo.toml", src, &[]).is_empty());
    }

    #[test]
    fn manifest_version_dep_fails() {
        let src = "[dependencies]\nserde = { version = \"1\", features = [\"derive\"] }\nrand = \"0.8\"\n";
        let v = check_manifest("Cargo.toml", src, &[]);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.rule == Rule::Hermeticity));
        // allowlist waives
        let waived = check_manifest("Cargo.toml", src, &["serde", "rand"]);
        assert!(waived.is_empty());
    }

    #[test]
    fn manifest_dep_table_sections() {
        let bad = "[dependencies.foo]\nversion = \"1\"\n\n[package.metadata]\nx = 1\n";
        let v = check_manifest("Cargo.toml", bad, &[]);
        assert_eq!(v.len(), 1);
        let good = "[dependencies.foo]\npath = \"../foo\"\n";
        assert!(check_manifest("Cargo.toml", good, &[]).is_empty());
    }

    #[test]
    fn workspace_dependency_section_is_checked() {
        let src = "[workspace.dependencies]\nautoai-linalg = { path = \"crates/linalg\" }\nrayon = \"1\"\n";
        let v = check_manifest("Cargo.toml", src, &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("rayon"));
    }

    #[test]
    fn check_workspace_combines_all_passes() {
        let sources = vec![
            (
                "crates/tdaub/src/a.rs".to_string(),
                "fn f() {\n    let g1 = alpha.lock();\n    let g2 = beta.lock();\n}\n".to_string(),
            ),
            (
                "crates/core/src/b.rs".to_string(),
                "fn g() {\n    let g2 = beta.lock();\n    let g1 = alpha.lock();\n    x.unwrap();\n}\n"
                    .to_string(),
            ),
        ];
        let manifests = vec![(
            "crates/x/Cargo.toml".to_string(),
            "[dependencies]\nrand = \"0.8\"\n".to_string(),
        )];
        let v = check_workspace(&sources, &manifests, &cfg());
        assert!(v.iter().any(|x| x.rule == Rule::LockOrder));
        assert!(v.iter().any(|x| x.rule == Rule::Panic));
        assert!(v.iter().any(|x| x.rule == Rule::Hermeticity));
        // sorted by (file, line)
        let keys: Vec<_> = v.iter().map(|x| (x.file.clone(), x.line)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
