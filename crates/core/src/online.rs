//! Online drift monitoring for the serving loop.
//!
//! [`super::service::ForecastService::observe`] grows a stored series one
//! tail at a time; this module watches whether the *deployed* winner is
//! still the right model for the data that keeps arriving. The monitor is
//! intentionally cheap and fully deterministic:
//!
//! - **Rolling one-step SMAPE, winner vs. baseline.** Every observed row
//!   yields two one-step losses: the live winner's forecast for that row
//!   (made before the row arrived) and the ZeroModel persistence baseline
//!   (the previous observed row). Both land in bounded rolling windows.
//! - **CUSUM-style change statistics.** Two one-sided cumulative sums:
//!   `excess` accumulates `winner_loss − baseline_loss − slack` (a *level
//!   shift* makes the adaptive persistence baseline far better than the
//!   stale winner, so the excess explodes), and `self_excess` accumulates
//!   `winner_loss − running_mean(winner_loss) − slack` (a *variance blowup*
//!   degrades the winner against its own history even while it still beats
//!   persistence). Both reset toward zero under stationary traffic.
//! - **Quality deltas.** Structural degradation reported by the growth
//!   path — [`QualityIssue::DroppedTimestamps`] and friends — bumps the
//!   change statistic directly: a series whose spacing is eroding deserves
//!   re-selection even before its losses do.
//!
//! The state is seed-free and replays bit-identically: the same sequence of
//! `observe_step`/`note_quality`/`reset` calls produces the same
//! [`DriftMonitor::state_bits`] on every run, which is what the property
//! suite in `tests/online_drift.rs` pins down. No wall clock, no RNG, no
//! hash iteration — just f64 arithmetic in call order.

use autoai_tsdata::QualityIssue;

/// SMAPE is bounded to `[0, 200]`; losses are clamped into this range so a
/// single absurd step cannot saturate the change statistics forever.
const SMAPE_CEILING: f64 = 200.0;

/// Floor for the baseline rolling mean when forming the loss ratio, so a
/// perfectly-predicted stretch cannot divide by zero.
const RATIO_FLOOR: f64 = 1e-9;

/// Typed outcome of a monitor update: how worried the serving loop should
/// be about the deployed winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftVerdict {
    /// The winner tracks the data; keep serving.
    Stable,
    /// Early evidence of degradation (elevated loss ratio or a partially
    /// charged change statistic); keep serving but keep watching.
    Suspect,
    /// The change statistic crossed the drift threshold; the serving loop
    /// should schedule a warm re-selection.
    Drifted,
}

/// Tuning knobs for the drift monitor. Defaults are deliberately
/// conservative: stationary noise must never trigger a re-selection, while
/// a genuine level shift should charge the statistic within a couple of
/// observation batches.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Rolling window length (steps) for the one-step loss means.
    pub window: usize,
    /// Minimum recorded steps before any verdict other than `Stable`.
    pub min_observations: u64,
    /// Per-step slack subtracted inside both CUSUM recursions; losses
    /// within `slack` SMAPE points of the reference charge nothing.
    pub cusum_slack: f64,
    /// `Suspect` once either change statistic reaches this level.
    pub cusum_suspect: f64,
    /// `Drifted` once either change statistic reaches this level.
    pub cusum_drift: f64,
    /// `Suspect` once `rolling_mean(winner) / rolling_mean(baseline)`
    /// reaches this ratio.
    pub ratio_suspect: f64,
    /// Charge added to the change statistic per reported quality issue.
    pub quality_weight: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            window: 24,
            min_observations: 8,
            cusum_slack: 2.0,
            cusum_suspect: 10.0,
            cusum_drift: 25.0,
            ratio_suspect: 1.5,
            quality_weight: 5.0,
        }
    }
}

/// A copyable snapshot of the full monitor state, for bit-identity
/// assertions (serial and parallel observe schedules must produce the same
/// bits) and dashboards.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSnapshot {
    /// Steps recorded since the last reset.
    pub observations: u64,
    /// Quality issues charged since the last reset.
    pub quality_events: u64,
    /// Times the monitor has been reset (one per completed re-selection).
    pub resets: u64,
    /// Baseline-relative change statistic (level-shift detector).
    pub excess: f64,
    /// Self-relative change statistic (variance-blowup detector).
    pub self_excess: f64,
    /// Rolling mean of the winner's one-step SMAPE.
    pub winner_mean: f64,
    /// Rolling mean of the persistence baseline's one-step SMAPE.
    pub baseline_mean: f64,
    /// Current verdict.
    pub verdict: DriftVerdict,
}

/// Per-series drift state: rolling loss windows plus two one-sided CUSUM
/// statistics. Deterministic and seed-free; see the module docs.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: DriftConfig,
    winner_window: Vec<f64>,
    baseline_window: Vec<f64>,
    /// Sum of every winner loss since the last reset (running reference for
    /// the self-relative statistic).
    winner_loss_sum: f64,
    excess: f64,
    self_excess: f64,
    observations: u64,
    quality_events: u64,
    resets: u64,
}

impl Default for DriftMonitor {
    fn default() -> Self {
        Self::new(DriftConfig::default())
    }
}

impl DriftMonitor {
    /// Build a monitor with explicit tuning.
    pub fn new(config: DriftConfig) -> Self {
        Self {
            config,
            winner_window: Vec::new(),
            baseline_window: Vec::new(),
            winner_loss_sum: 0.0,
            excess: 0.0,
            self_excess: 0.0,
            observations: 0,
            quality_events: 0,
            resets: 0,
        }
    }

    /// The tuning this monitor runs with.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Record one observed step: the winner's one-step SMAPE and the
    /// persistence baseline's one-step SMAPE for the same row. Returns the
    /// verdict after the update. A non-finite baseline loss discards the
    /// step (the row itself was unusable); a non-finite winner loss is
    /// charged at the SMAPE ceiling — a winner that cannot even produce a
    /// comparable forecast is maximal evidence of drift.
    pub fn observe_step(&mut self, winner_loss: f64, baseline_loss: f64) -> DriftVerdict {
        if !baseline_loss.is_finite() {
            return self.verdict();
        }
        let baseline = baseline_loss.clamp(0.0, SMAPE_CEILING);
        let winner = if winner_loss.is_finite() {
            winner_loss.clamp(0.0, SMAPE_CEILING)
        } else {
            SMAPE_CEILING
        };
        // self-relative reference is the running mean *before* this step
        let reference = if self.observations == 0 {
            winner
        } else {
            self.winner_loss_sum / self.observations as f64
        };
        push_window(&mut self.winner_window, winner, self.config.window);
        push_window(&mut self.baseline_window, baseline, self.config.window);
        self.winner_loss_sum += winner;
        self.observations = self.observations.saturating_add(1);
        self.excess = (self.excess + (winner - baseline) - self.config.cusum_slack).max(0.0);
        self.self_excess =
            (self.self_excess + (winner - reference) - self.config.cusum_slack).max(0.0);
        self.verdict()
    }

    /// Charge a quality-layer delta reported by the growth path. Every
    /// issue adds [`DriftConfig::quality_weight`] to the baseline-relative
    /// statistic; [`QualityIssue::DroppedTimestamps`] additionally counts
    /// the affected rows in [`DriftSnapshot::quality_events`].
    pub fn note_quality(&mut self, issue: &QualityIssue) -> DriftVerdict {
        let rows = match issue {
            QualityIssue::DroppedTimestamps(n) => (*n).max(1) as u64,
            _ => 1,
        };
        self.quality_events = self.quality_events.saturating_add(rows);
        self.excess += self.config.quality_weight;
        self.verdict()
    }

    /// Current verdict from the accumulated state. Pure read.
    pub fn verdict(&self) -> DriftVerdict {
        if self.observations < self.config.min_observations {
            return DriftVerdict::Stable;
        }
        let peak = if self.excess >= self.self_excess {
            self.excess
        } else {
            self.self_excess
        };
        if peak >= self.config.cusum_drift {
            return DriftVerdict::Drifted;
        }
        if peak >= self.config.cusum_suspect || self.loss_ratio() >= self.config.ratio_suspect {
            return DriftVerdict::Suspect;
        }
        DriftVerdict::Stable
    }

    /// `rolling_mean(winner) / rolling_mean(baseline)`, floored so the
    /// denominator can never be zero. `0.0` before any step is recorded.
    pub fn loss_ratio(&self) -> f64 {
        if self.winner_window.is_empty() {
            return 0.0;
        }
        mean(&self.winner_window) / mean(&self.baseline_window).max(RATIO_FLOOR)
    }

    /// Steps recorded since the last reset.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Forget the charged evidence after a completed re-selection: the new
    /// winner starts from a clean slate (and must re-earn
    /// [`DriftConfig::min_observations`] before it can be accused again).
    pub fn reset(&mut self) {
        self.winner_window.clear();
        self.baseline_window.clear();
        self.winner_loss_sum = 0.0;
        self.excess = 0.0;
        self.self_excess = 0.0;
        self.observations = 0;
        self.quality_events = 0;
        self.resets = self.resets.saturating_add(1);
    }

    /// Copyable snapshot of the full state.
    pub fn snapshot(&self) -> DriftSnapshot {
        DriftSnapshot {
            observations: self.observations,
            quality_events: self.quality_events,
            resets: self.resets,
            excess: self.excess,
            self_excess: self.self_excess,
            winner_mean: if self.winner_window.is_empty() {
                0.0
            } else {
                mean(&self.winner_window)
            },
            baseline_mean: if self.baseline_window.is_empty() {
                0.0
            } else {
                mean(&self.baseline_window)
            },
            verdict: self.verdict(),
        }
    }

    /// The complete monitor state as raw bits, for bit-identity assertions:
    /// two runs fed the same update sequence must return equal vectors.
    pub fn state_bits(&self) -> Vec<u64> {
        let mut bits = vec![
            self.observations,
            self.quality_events,
            self.resets,
            self.excess.to_bits(),
            self.self_excess.to_bits(),
            self.winner_loss_sum.to_bits(),
        ];
        bits.extend(self.winner_window.iter().map(|v| v.to_bits()));
        bits.extend(self.baseline_window.iter().map(|v| v.to_bits()));
        bits
    }
}

/// Push into a bounded chronological window, evicting the oldest entry.
fn push_window(window: &mut Vec<f64>, value: f64, cap: usize) {
    if cap == 0 {
        return;
    }
    if window.len() >= cap {
        window.remove(0);
    }
    window.push(value);
}

/// Mean of a non-empty slice (callers guard emptiness).
fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> DriftConfig {
        DriftConfig {
            window: 8,
            min_observations: 4,
            cusum_slack: 1.0,
            cusum_suspect: 5.0,
            cusum_drift: 12.0,
            ratio_suspect: 2.0,
            quality_weight: 3.0,
        }
    }

    #[test]
    fn stationary_matched_losses_stay_stable() {
        let mut m = DriftMonitor::new(tight());
        for i in 0..200 {
            let wobble = 0.3 * ((i % 7) as f64 - 3.0);
            let v = m.observe_step(4.0 + wobble, 4.0 - wobble);
            assert_ne!(v, DriftVerdict::Drifted, "step {i}: {:?}", m.snapshot());
        }
        assert_eq!(m.verdict(), DriftVerdict::Stable);
    }

    #[test]
    fn persistent_excess_drifts() {
        let mut m = DriftMonitor::new(tight());
        let mut fired = None;
        for i in 0..40 {
            if m.observe_step(20.0, 3.0) == DriftVerdict::Drifted {
                fired = Some(i);
                break;
            }
        }
        let at = fired.expect("sustained 17-point excess never drifted");
        assert!(at < 10, "drift verdict took {at} steps");
    }

    #[test]
    fn variance_blowup_drifts_even_when_winner_beats_baseline() {
        let mut m = DriftMonitor::new(tight());
        // calm regime: winner slightly better than baseline
        for _ in 0..20 {
            assert_eq!(m.observe_step(2.0, 3.0), DriftVerdict::Stable);
        }
        // variance regime: both degrade, winner still beats baseline, but
        // the self-relative statistic sees the winner leave its own history
        let mut fired = false;
        for _ in 0..30 {
            if m.observe_step(30.0, 40.0) == DriftVerdict::Drifted {
                fired = true;
                break;
            }
        }
        assert!(
            fired,
            "self-relative statistic never fired: {:?}",
            m.snapshot()
        );
    }

    #[test]
    fn warmup_gate_blocks_early_verdicts() {
        let mut m = DriftMonitor::new(tight());
        for _ in 0..3 {
            assert_eq!(m.observe_step(200.0, 0.0), DriftVerdict::Stable);
        }
        assert_ne!(m.observe_step(200.0, 0.0), DriftVerdict::Stable);
    }

    #[test]
    fn quality_issues_charge_the_statistic() {
        let mut m = DriftMonitor::new(tight());
        for _ in 0..4 {
            m.observe_step(2.0, 2.0);
        }
        for _ in 0..4 {
            m.note_quality(&QualityIssue::DroppedTimestamps(2));
        }
        assert_eq!(m.verdict(), DriftVerdict::Drifted);
        assert_eq!(m.snapshot().quality_events, 8);
    }

    #[test]
    fn non_finite_losses_never_poison_state() {
        let mut m = DriftMonitor::new(tight());
        m.observe_step(f64::NAN, 2.0);
        m.observe_step(2.0, f64::NAN);
        m.observe_step(f64::INFINITY, f64::NEG_INFINITY);
        for b in m.state_bits() {
            let v = f64::from_bits(b);
            // counters reinterpret as tiny subnormals; the check is that no
            // stored f64 slot holds NaN/inf bit patterns
            assert!(!v.is_nan() || b <= 3, "state bits hold {v}");
        }
        assert!(m.snapshot().excess.is_finite());
    }

    #[test]
    fn reset_clears_evidence_and_counts() {
        let mut m = DriftMonitor::new(tight());
        for _ in 0..20 {
            m.observe_step(50.0, 1.0);
        }
        assert_eq!(m.verdict(), DriftVerdict::Drifted);
        m.reset();
        assert_eq!(m.verdict(), DriftVerdict::Stable);
        let snap = m.snapshot();
        assert_eq!(snap.observations, 0);
        assert_eq!(snap.resets, 1);
        assert_eq!(snap.excess.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn replay_is_bit_identical() {
        let feed: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                (3.0 + (x * 0.37).sin(), 3.0 + (x * 0.53).cos())
            })
            .collect();
        let mut a = DriftMonitor::new(tight());
        let mut b = DriftMonitor::new(tight());
        for &(w, z) in &feed {
            a.observe_step(w, z);
        }
        for &(w, z) in &feed {
            b.observe_step(w, z);
        }
        assert_eq!(a.state_bits(), b.state_bits());
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
