//! The zero-conf orchestrator.

use std::sync::Arc;

use autoai_lookback::{
    discover_multivariate, discover_univariate, LookbackConfig, MultivariateMode,
};
use autoai_pipelines::{
    default_pipelines, pipeline_by_name, predict_interval_or_conformal, ConformalCalibration,
    EnsembleForecaster, Forecaster, IntervalForecast, IntervalSource, PipelineContext,
    PipelineError, ZeroModelPipeline,
};
use autoai_tdaub::{
    run_tdaub_with_cache, EnsembleSelection, ExecutionReport, PipelineReport, TDaubConfig,
};
use autoai_transforms::TransformCache;
use autoai_tsdata::{
    clean, holdout_split, quality_check, Metric, QualityIssue, QualityReport, TimeSeriesFrame,
};

use crate::progress::{NoProgress, Progress, ProgressEvent};

/// Configuration of the zero-conf system. Every field has a sensible
/// default — constructing with [`AutoAITS::new`] and calling `fit` is the
/// intended zero-configuration path.
#[derive(Clone)]
pub struct AutoAITSConfig {
    /// Prediction horizon the pipelines are trained for (paper default 12).
    pub horizon: usize,
    /// User-specified look-back window; `None` enables automatic discovery
    /// ("If the user specifies look-back window size then the look-back
    /// window generation is skipped", §4).
    pub lookback: Option<usize>,
    /// Upper bound for discovered look-backs.
    pub max_look_back: usize,
    /// Fraction of the input held out for final reported evaluation
    /// (paper: 20%).
    pub holdout_fraction: f64,
    /// T-Daub settings.
    pub tdaub: TDaubConfig,
    /// Pipeline names to instantiate; `None` = the 10 defaults.
    pub pipeline_names: Option<Vec<String>>,
    /// Deterministic seed for discovery sampling.
    pub seed: u64,
}

impl Default for AutoAITSConfig {
    fn default() -> Self {
        Self {
            horizon: 12,
            lookback: None,
            max_look_back: 256,
            holdout_fraction: 0.2,
            tdaub: TDaubConfig::default(),
            pipeline_names: None,
            seed: 0,
        }
    }
}

/// How far down the always-forecast degradation ladder `fit` had to climb
/// to return a working forecaster. `fit` only errors on invalid *input*;
/// pipeline failures — up to and including the entire pool crashing,
/// erroring, or timing out — degrade the result instead of failing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationLevel {
    /// The full pool ran: every pipeline survived T-Daub and the winner
    /// retrained cleanly.
    None,
    /// Part of the pool was lost (excluded pipelines, or the T-Daub winner
    /// failed its final refit and a ranked runner-up took over), but a
    /// genuinely selected pipeline is serving forecasts.
    Survivors,
    /// Every pipeline failed; forecasts come from the ZeroModel baseline,
    /// the ladder's fault-free bottom rung.
    ZeroModel,
}

impl std::fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradationLevel::None => write!(f, "full pool"),
            DegradationLevel::Survivors => write!(f, "survivors"),
            DegradationLevel::ZeroModel => write!(f, "zero-model baseline"),
        }
    }
}

/// Summary of a completed `fit`, for inspection and benchmarking.
pub struct FitSummary {
    /// Result of the initial data quality check.
    pub quality: QualityReport,
    /// Look-back window the ML pipelines used.
    pub lookback: usize,
    /// Discovered candidate seasonal periods.
    pub seasonal_periods: Vec<usize>,
    /// T-Daub per-pipeline reports for the surviving pipelines, ranked best
    /// first.
    pub reports: Vec<PipelineReport>,
    /// Execution accounting for the whole pool — wall time, allocations
    /// attempted, and the failure kind for every excluded pipeline.
    pub execution: ExecutionReport,
    /// Name of the winning pipeline.
    pub best_pipeline: String,
    /// SMAPE of the winner on the 20% holdout.
    pub holdout_smape: f64,
    /// Greedy forward ensemble selection over the top T-Daub survivors:
    /// member weights and contributions, when the survivor pool allowed a
    /// selection to run. The ensemble serves forecasts only when its
    /// holdout score is no worse than the single winner's — `best_pipeline`
    /// starting with `Ensemble(` marks that case.
    pub ensemble: Option<EnsembleSelection>,
    /// How far down the degradation ladder this fit landed.
    pub degradation: DegradationLevel,
    /// Total wall-clock seconds of the whole fit.
    pub fit_seconds: f64,
}

struct FittedState {
    best: Box<dyn Forecaster>,
    zero_model: ZeroModelPipeline,
    summary: FitSummary,
    n_series: usize,
    /// Per-series holdout residual standard deviation (interval width).
    residual_std: Vec<f64>,
    /// Split-conformal calibration from the train-fitted winner's holdout
    /// residuals; `None` when the winner could not predict the holdout.
    conformal: Option<ConformalCalibration>,
}

/// The AutoAI-TS system: drop in data, get a trained forecaster.
pub struct AutoAITS {
    config: AutoAITSConfig,
    progress: Arc<dyn Progress>,
    /// Caller-owned cache shared across fits; `None` = per-run cache.
    transform_cache: Option<Arc<TransformCache>>,
    /// Quality issues observed by a serving loop *between* fits (e.g.
    /// timestamps dropped while growing a stored series); the next fit
    /// drains them into its [`FitSummary::quality`] report.
    carried_issues: Vec<QualityIssue>,
    state: Option<FittedState>,
}

impl Default for AutoAITS {
    fn default() -> Self {
        Self::new()
    }
}

impl AutoAITS {
    /// Zero-conf constructor (horizon 12, everything automatic).
    pub fn new() -> Self {
        Self::with_config(AutoAITSConfig::default())
    }

    /// Construct with explicit configuration.
    pub fn with_config(config: AutoAITSConfig) -> Self {
        Self {
            config,
            progress: Arc::new(NoProgress),
            transform_cache: None,
            carried_issues: Vec::new(),
            state: None,
        }
    }

    /// Attach a progress sink (CLI/web-UI surface of §4).
    pub fn with_progress(mut self, progress: Arc<dyn Progress>) -> Self {
        self.progress = progress;
        self
    }

    /// Share a long-lived [`TransformCache`] across fits. The service layer
    /// passes one cache for every request on the same series, so flattened
    /// design matrices survive between requests when the frame fingerprints
    /// extend. The cache affects wall time only, never the ranking.
    pub fn with_transform_cache(mut self, cache: Arc<TransformCache>) -> Self {
        self.transform_cache = Some(cache);
        self
    }

    /// Attach quality issues observed outside `fit` — the serving loop's
    /// `observe` path reports timestamp drops here — so the next fit's
    /// [`FitSummary::quality`] surfaces them instead of losing them in the
    /// growth records. Consumed by the next `fit`.
    pub fn with_carried_issues(mut self, issues: Vec<QualityIssue>) -> Self {
        self.carried_issues = issues;
        self
    }

    /// Convenience: set the forecast horizon.
    pub fn horizon(mut self, horizon: usize) -> Self {
        self.config.horizon = horizon.max(1);
        self
    }

    /// Fit on a row-major 2-D array (rows = samples, columns = series) —
    /// the exact user-facing schema of §3.
    pub fn fit_rows(&mut self, rows: &[Vec<f64>]) -> Result<&mut Self, PipelineError> {
        let frame = TimeSeriesFrame::from_rows(rows);
        self.fit(&frame)
    }

    /// Fit on a [`TimeSeriesFrame`].
    pub fn fit(&mut self, frame: &TimeSeriesFrame) -> Result<&mut Self, PipelineError> {
        // tscheck:allow(wall-clock): coarse fit telemetry; never feeds a ranking decision
        let started = std::time::Instant::now();
        if frame.is_empty() || frame.n_series() == 0 {
            return Err(PipelineError::InvalidInput("empty input data".into()));
        }
        let min_len = 2 * self.config.horizon + 8;
        if frame.len() < min_len {
            return Err(PipelineError::InvalidInput(format!(
                "need at least {min_len} samples for horizon {}, got {}",
                self.config.horizon,
                frame.len()
            )));
        }

        // ---- 1. quality check + cleaning ----
        // A crashed assessment (chaos site `quality.assess`, or any future
        // bug in the scan) degrades to a pessimistic report — force the
        // cleaning pass, forbid log transforms — instead of aborting the
        // run. `AssertUnwindSafe` is sound: `frame` is only read.
        let mut quality =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| quality_check(frame)))
                .unwrap_or_else(|_| QualityReport {
                    issues: Vec::new(),
                    missing_count: 1,
                    negative_count: 0,
                    log_transform_safe: false,
                });
        // issues the serving loop observed between fits (timestamp drops
        // during `observe`) belong to this report; drained so one fit
        // surfaces each of them exactly once
        quality.issues.extend(self.carried_issues.drain(..));
        self.progress.report(&ProgressEvent::QualityChecked {
            issues: quality.issues.len(),
        });
        let data = if quality.missing_count > 0 {
            clean(frame)
        } else {
            frame.clone()
        };

        // ---- 2. Zero Model baseline, available immediately ----
        let mut zero_model = ZeroModelPipeline::new();
        zero_model.fit(&data)?;
        self.progress.report(&ProgressEvent::ZeroModelReady);

        // ---- 80/20 split: holdout only for reported evaluation ----
        // A fraction outside (0, 1) — or one that swallows (nearly) all of
        // the data — is a configuration error, not a degradable run: reject
        // it before any work is wasted on a degenerate split.
        let hf = self.config.holdout_fraction;
        if !hf.is_finite() || hf <= 0.0 || hf >= 1.0 {
            return Err(PipelineError::InvalidInput(format!(
                "holdout_fraction must be a finite fraction in (0, 1), got {hf}"
            )));
        }
        let holdout_len = ((data.len() as f64 * hf).round() as usize).max(1);
        // T-Daub's small-data bypass handles genuinely short inputs, so the
        // floor adapts: the training prefix must keep at least the smaller of
        // the configured minimum allocation and half the data (never < 8).
        let min_train = self
            .config
            .tdaub
            .min_allocation_size
            .min(data.len() / 2)
            .max(8);
        if data.len() - holdout_len < min_train {
            return Err(PipelineError::InvalidInput(format!(
                "holdout_fraction {hf} leaves {} training samples, need at least {min_train}",
                data.len() - holdout_len
            )));
        }
        let (train, holdout) = holdout_split(&data, holdout_len);

        // ---- 3. look-back discovery (skipped when user specifies) ----
        let lb_config = LookbackConfig {
            max_look_back: Some(self.config.max_look_back),
            seed: self.config.seed,
            ..Default::default()
        };
        let (lookback, seasonal_periods) = match self.config.lookback {
            Some(lb) => (lb, discovered_periods(&train, &lb_config)),
            None => {
                // A crashed discovery (chaos site `lookback.discover`, or a
                // future estimator bug) degrades to the paper default (§4.1)
                // clamped to the configured cap, instead of aborting.
                let lbs = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if train.n_series() > 1 {
                        discover_multivariate(&train, &lb_config, MultivariateMode::Cap)
                    } else {
                        discover_univariate(train.series(0), train.timestamps(), &lb_config)
                    }
                }))
                .unwrap_or_default();
                match lbs.first().copied() {
                    Some(first) => (first, lbs),
                    None => {
                        let fb = self.config.max_look_back.min(8).max(2);
                        (fb, vec![fb])
                    }
                }
            }
        };
        self.progress.report(&ProgressEvent::LookbackDiscovered {
            lookback,
            seasonal_periods: seasonal_periods.clone(),
        });

        // ---- 4. pipeline generation ----
        let ctx = PipelineContext::new(lookback, self.config.horizon, seasonal_periods.clone());
        let pipelines: Vec<Box<dyn Forecaster>> = match &self.config.pipeline_names {
            Some(names) => names
                .iter()
                .filter_map(|n| pipeline_by_name(n, &ctx))
                .collect(),
            None => default_pipelines(&ctx),
        };
        if pipelines.is_empty() {
            return Err(PipelineError::InvalidInput(
                "no pipelines to evaluate".into(),
            ));
        }
        self.progress.report(&ProgressEvent::PipelinesGenerated {
            count: pipelines.len(),
        });

        // ---- 5. T-Daub ranking over the training split ----
        // scale the allocation unit to the training length so the smallest
        // allocation can accommodate seasonal look-backs (a 50-sample chunk
        // cannot exercise a weekly-of-hours pipeline); the user may still
        // pin the sizes explicitly through `config.tdaub`
        let mut tdaub_cfg = self.config.tdaub.clone();
        let default = TDaubConfig::default();
        if tdaub_cfg.min_allocation_size == default.min_allocation_size
            && tdaub_cfg.allocation_size == default.allocation_size
        {
            let unit = (train.len() / 8)
                .max(default.min_allocation_size)
                .max(2 * lookback + self.config.horizon + 4);
            tdaub_cfg.min_allocation_size = unit;
            tdaub_cfg.allocation_size = unit;
        }
        // ---- 6. degradation ladder: full pool → survivors → ZeroModel ----
        // From here on, pipeline failures can no longer fail the fit: a
        // T-Daub run with survivors serves the ranked winner (walking down
        // the ranking when the winner's final refit fails), and a run where
        // *everything* failed serves the ZeroModel baseline.
        let (
            best,
            reports,
            execution,
            holdout_smape,
            residual_std,
            conformal,
            ensemble,
            degradation,
        ) = match run_tdaub_with_cache(pipelines, &train, &tdaub_cfg, self.transform_cache.clone())
        {
            Ok(result) => {
                for failed in result.execution.failures() {
                    self.progress.report(&ProgressEvent::PipelineExcluded {
                        name: failed.name.clone(),
                        reason: failed
                            .failure
                            .as_ref()
                            .map(|k| k.to_string())
                            .unwrap_or_default(),
                    });
                }
                self.progress.report(&ProgressEvent::TDaubFinished {
                    best: result.best.name(),
                    evaluations: result.execution.total_allocations(),
                    failures: result.execution.failures().count(),
                });

                let mut holdout_smape = result
                    .best
                    .score(&holdout, Metric::Smape)
                    .unwrap_or(f64::INFINITY);
                self.progress.report(&ProgressEvent::HoldoutScored {
                    smape: holdout_smape,
                });
                let mut residual_std = residual_spread(result.best.as_ref(), &holdout);
                // calibrate the conformal wrap while the winner is still
                // the *train*-fitted state (split conformal needs the
                // holdout untouched by the serving fit)
                let mut conformal = ConformalCalibration::calibrate(result.best.as_ref(), &holdout);
                let ensemble = result.ensemble.clone();

                let mut degradation = if result.execution.failures().next().is_some()
                    || result.execution.run_deadline_hit
                {
                    // a run truncated by the whole-run hard deadline serves
                    // ranked survivors from partial evidence — surface that
                    // exactly like a partially-lost pool
                    DegradationLevel::Survivors
                } else {
                    DegradationLevel::None
                };
                // the greedy-selected ensemble gets first claim on the
                // serving slot; it is kept only when its own holdout
                // score is no worse than the single winner's
                let promoted = ensemble
                    .as_ref()
                    .filter(|sel| sel.members.len() >= 2)
                    .and_then(|sel| {
                        fit_ensemble_winner(sel, &ctx, &train, &holdout, &data, holdout_smape)
                    });
                let best = match promoted {
                    Some(promo) => {
                        holdout_smape = promo.holdout_smape;
                        residual_std = promo.residual_std;
                        conformal = promo.conformal;
                        promo.forecaster
                    }
                    None => {
                        // full-data retraining, panic-isolated; when the
                        // winner fails its refit, the ranked runners-up
                        // each get one rung before the ladder hits the
                        // baseline
                        let mut best = result.best.clone_unfitted();
                        if rung_fit(&mut best, &data).is_err() {
                            degradation = DegradationLevel::Survivors;
                            let runner_up = result.reports.iter().skip(1).find_map(|report| {
                                let mut next = pipeline_by_name(&report.name, &ctx)?;
                                rung_fit(&mut next, &data).ok().map(|()| next)
                            });
                            best = match runner_up {
                                Some(b) => b,
                                None => {
                                    degradation = DegradationLevel::ZeroModel;
                                    let mut zm: Box<dyn Forecaster> =
                                        Box::new(ZeroModelPipeline::new());
                                    zm.fit(&data)?;
                                    zm
                                }
                            };
                        }
                        best
                    }
                };
                (
                    best,
                    result.reports,
                    result.execution,
                    holdout_smape,
                    residual_std,
                    conformal,
                    ensemble,
                    degradation,
                )
            }
            Err(_) => {
                // every pipeline failed during ranking; the system must
                // still forecast. Score the baseline honestly (fit on
                // the training split, scored on the holdout) and serve
                // a full-data ZeroModel.
                let mut scored = ZeroModelPipeline::new();
                scored.fit(&train)?;
                let holdout_smape = scored
                    .score(&holdout, Metric::Smape)
                    .unwrap_or(f64::INFINITY);
                self.progress.report(&ProgressEvent::HoldoutScored {
                    smape: holdout_smape,
                });
                let residual_std = residual_spread(&scored, &holdout);
                let conformal = ConformalCalibration::calibrate(&scored, &holdout);
                let mut best: Box<dyn Forecaster> = Box::new(ZeroModelPipeline::new());
                best.fit(&data)?;
                (
                    best,
                    Vec::new(),
                    ExecutionReport::default(),
                    holdout_smape,
                    residual_std,
                    conformal,
                    None,
                    DegradationLevel::ZeroModel,
                )
            }
        };
        if degradation != DegradationLevel::None {
            self.progress
                .report(&ProgressEvent::Degraded { level: degradation });
        }
        self.progress.report(&ProgressEvent::Ready);

        let summary = FitSummary {
            quality,
            lookback,
            seasonal_periods,
            best_pipeline: best.name(),
            reports,
            execution,
            holdout_smape,
            ensemble,
            degradation,
            fit_seconds: started.elapsed().as_secs_f64(),
        };
        self.state = Some(FittedState {
            best,
            zero_model,
            summary,
            n_series: data.n_series(),
            residual_std,
            conformal,
        });
        Ok(self)
    }

    /// Forecast the next `horizon` rows (2-D frame out, §3 schema).
    pub fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
        let state = self.state.as_ref().ok_or(PipelineError::NotFitted)?;
        state.best.predict(horizon.max(1))
    }

    /// Forecast as a row-major 2-D array (`horizon x n_series`).
    pub fn predict_rows(&self, horizon: usize) -> Result<Vec<Vec<f64>>, PipelineError> {
        Ok(self.predict(horizon)?.to_rows())
    }

    /// Forecast with per-series `±z`-sigma prediction intervals derived from
    /// the holdout residual spread. Returns, per series, a vector of
    /// `(point, lower, upper)` triples. Interval width grows with the step
    /// index by `sqrt(h)` (random-walk style error accumulation).
    pub fn predict_with_interval(
        &self,
        horizon: usize,
        z: f64,
    ) -> Result<Vec<Vec<(f64, f64, f64)>>, PipelineError> {
        let state = self.state.as_ref().ok_or(PipelineError::NotFitted)?;
        let point = state.best.predict(horizon.max(1))?;
        let out = (0..point.n_series())
            .map(|c| {
                let sd = state.residual_std.get(c).copied().unwrap_or(f64::NAN);
                point
                    .series(c)
                    .iter()
                    .enumerate()
                    .map(|(h, &p)| {
                        let w = z * sd * ((h + 1) as f64).sqrt();
                        (p, p - w, p + w)
                    })
                    .collect()
            })
            .collect();
        Ok(out)
    }

    /// Forecast with monotone, non-crossing quantile bands at the requested
    /// confidence `levels` (e.g. `&[0.80, 0.95]`). The interval ladder
    /// mirrors the point-forecast degradation ladder: the winner's native
    /// analytic band, then the split-conformal wrap calibrated on the
    /// holdout residuals, and finally the ZeroModel baseline's analytic
    /// random-walk band (labeled [`IntervalSource::Baseline`]). A fitted
    /// system therefore always produces calibrated bands.
    pub fn predict_interval(
        &self,
        horizon: usize,
        levels: &[f64],
    ) -> Result<IntervalForecast, PipelineError> {
        let state = self.state.as_ref().ok_or(PipelineError::NotFitted)?;
        let horizon = horizon.max(1);
        match predict_interval_or_conformal(
            state.best.as_ref(),
            horizon,
            levels,
            state.conformal.as_ref(),
        ) {
            Ok(iv) => Ok(iv),
            Err(_) => state
                .zero_model
                .predict_interval(horizon, levels)
                .map(|iv| iv.with_source(IntervalSource::Baseline)),
        }
    }

    /// The Zero Model baseline forecast (available as soon as `fit` starts
    /// doing real work; exposed for comparison and fallbacks).
    pub fn predict_zero_model(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
        let state = self.state.as_ref().ok_or(PipelineError::NotFitted)?;
        state.zero_model.predict(horizon.max(1))
    }

    /// Summary of the completed fit (quality report, ranking, scores).
    pub fn summary(&self) -> Option<&FitSummary> {
        self.state.as_ref().map(|s| &s.summary)
    }

    /// Name of the selected pipeline.
    pub fn best_pipeline_name(&self) -> Option<String> {
        self.state.as_ref().map(|s| s.best.name())
    }

    /// Number of series the system was fitted on.
    pub fn n_series(&self) -> Option<usize> {
        self.state.as_ref().map(|s| s.n_series)
    }
}

/// One rung of the degradation ladder: a full-data refit with the same
/// panic isolation as every T-Daub unit of work. `AssertUnwindSafe` is
/// sound because a panicked rung's pipeline is discarded, never queried.
fn rung_fit(
    pipeline: &mut Box<dyn Forecaster>,
    data: &TimeSeriesFrame,
) -> Result<(), PipelineError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pipeline.fit(data))) {
        Ok(result) => result,
        Err(_) => Err(PipelineError::Crashed(
            "pipeline panicked during final refit".into(),
        )),
    }
}

/// A promoted ensemble winner, ready to serve.
struct PromotedEnsemble {
    forecaster: Box<dyn Forecaster>,
    holdout_smape: f64,
    residual_std: Vec<f64>,
    conformal: Option<ConformalCalibration>,
}

/// Try to promote the greedy-selected ensemble to the serving slot: rebuild
/// the selected members unfitted, fit the ensemble on the training split,
/// and keep it only when its holdout SMAPE is no worse than the single
/// winner's. The promoted forecaster is refit on the full data behind the
/// same panic isolation as the single-winner path; any failure along the
/// way simply yields `None` and the single winner serves instead.
fn fit_ensemble_winner(
    selection: &EnsembleSelection,
    ctx: &PipelineContext,
    train: &TimeSeriesFrame,
    holdout: &TimeSeriesFrame,
    data: &TimeSeriesFrame,
    single_smape: f64,
) -> Option<PromotedEnsemble> {
    let members: Vec<(Box<dyn Forecaster>, f64)> = selection
        .members
        .iter()
        .filter_map(|m| pipeline_by_name(&m.name, ctx).map(|p| (p, m.weight)))
        .collect();
    if members.len() != selection.members.len() {
        return None;
    }
    let mut ens: Box<dyn Forecaster> = Box::new(EnsembleForecaster::new(members).ok()?);
    rung_fit(&mut ens, train).ok()?;
    let smape = ens.score(holdout, Metric::Smape).unwrap_or(f64::INFINITY);
    if !smape.is_finite() || smape > single_smape {
        return None;
    }
    let residual_std = residual_spread(ens.as_ref(), holdout);
    let conformal = ConformalCalibration::calibrate(ens.as_ref(), holdout);
    let mut full = ens.clone_unfitted();
    rung_fit(&mut full, data).ok()?;
    Some(PromotedEnsemble {
        forecaster: full,
        holdout_smape: smape,
        residual_std,
        conformal,
    })
}

/// Per-series holdout residual standard deviation (prediction-interval
/// widths); NaN when the forecaster cannot predict the holdout's shape.
fn residual_spread(best: &dyn Forecaster, holdout: &TimeSeriesFrame) -> Vec<f64> {
    match best.predict(holdout.len()) {
        Ok(pred) if pred.n_series() == holdout.n_series() => (0..holdout.n_series())
            .map(|c| {
                let resid: Vec<f64> = holdout
                    .series(c)
                    .iter()
                    .zip(pred.series(c))
                    .map(|(a, p)| a - p)
                    .collect();
                autoai_linalg::std_dev(&resid).max(1e-12)
            })
            .collect(),
        _ => vec![f64::NAN; holdout.n_series()],
    }
}

/// Seasonal-period candidates when the user supplied the look-back: run the
/// discovery machinery anyway, purely for the statistical pipelines.
fn discovered_periods(train: &TimeSeriesFrame, cfg: &LookbackConfig) -> Vec<usize> {
    // Same degradation rung as the main discovery path: a crashed discovery
    // yields no seasonal candidates rather than aborting the fit.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if train.n_series() > 1 {
            discover_multivariate(train, cfg, MultivariateMode::Cap)
        } else {
            discover_univariate(train.series(0), train.timestamps(), cfg)
        }
    }))
    .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_rows(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin()])
            .collect()
    }

    fn fast_config() -> AutoAITSConfig {
        // restrict to fast pipelines so orchestrator tests stay quick
        AutoAITSConfig {
            pipeline_names: Some(vec![
                "MT2RForecaster".into(),
                "HW-Additive".into(),
                "ZeroModel".into(),
            ]),
            ..Default::default()
        }
    }

    #[test]
    fn zero_conf_end_to_end() {
        let mut sys = AutoAITS::with_config(fast_config());
        sys.fit_rows(&seasonal_rows(400)).unwrap();
        let f = sys.predict_rows(12).unwrap();
        assert_eq!(f.len(), 12);
        assert_eq!(f[0].len(), 1);
        let summary = sys.summary().unwrap();
        assert!(
            summary.holdout_smape < 20.0,
            "holdout smape {}",
            summary.holdout_smape
        );
        assert!(!summary.best_pipeline.is_empty());
        assert!(summary.reports.len() == 3);
    }

    #[test]
    fn healthy_fit_reports_no_degradation() {
        let mut sys = AutoAITS::with_config(fast_config());
        sys.fit_rows(&seasonal_rows(300)).unwrap();
        assert_eq!(sys.summary().unwrap().degradation, DegradationLevel::None);
    }

    #[test]
    fn expired_run_deadline_degrades_to_survivors_and_still_forecasts() {
        let mut cfg = fast_config();
        cfg.tdaub.run_hard_deadline = Some(std::time::Duration::ZERO);
        let mut sys = AutoAITS::with_config(cfg);
        sys.fit_rows(&seasonal_rows(300)).unwrap();
        let summary = sys.summary().unwrap();
        assert_eq!(summary.degradation, DegradationLevel::Survivors);
        assert!(!summary.best_pipeline.is_empty());
        // the truncated run still serves usable forecasts
        let f = sys.predict_rows(6).unwrap();
        assert_eq!(f.len(), 6);
    }

    #[test]
    fn multivariate_input_multivariate_output() {
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![10.0 + (i as f64 * 0.5).sin(), 100.0 + 0.3 * i as f64])
            .collect();
        let mut sys = AutoAITS::with_config(fast_config());
        sys.fit_rows(&rows).unwrap();
        assert_eq!(sys.n_series(), Some(2));
        let f = sys.predict_rows(6).unwrap();
        assert_eq!(f.len(), 6);
        assert_eq!(f[0].len(), 2);
    }

    #[test]
    fn nan_input_is_cleaned_automatically() {
        let mut rows = seasonal_rows(300);
        rows[100][0] = f64::NAN;
        rows[200][0] = f64::NAN;
        let mut sys = AutoAITS::with_config(fast_config());
        sys.fit_rows(&rows).unwrap();
        let summary = sys.summary().unwrap();
        assert_eq!(summary.quality.missing_count, 2);
        assert!(sys
            .predict(3)
            .unwrap()
            .series(0)
            .iter()
            .all(|v| v.is_finite()));
    }

    #[test]
    fn zero_model_available_after_fit() {
        let mut sys = AutoAITS::with_config(fast_config());
        sys.fit_rows(&seasonal_rows(300)).unwrap();
        let z = sys.predict_zero_model(4).unwrap();
        // zero model repeats the very last observed value
        let last = 20.0 + 5.0 * (2.0 * std::f64::consts::PI * 299.0 / 12.0).sin();
        for &v in z.series(0) {
            assert!((v - last).abs() < 1e-9);
        }
    }

    #[test]
    fn user_lookback_skips_discovery() {
        let mut cfg = fast_config();
        cfg.lookback = Some(24);
        let mut sys = AutoAITS::with_config(cfg);
        sys.fit_rows(&seasonal_rows(300)).unwrap();
        assert_eq!(sys.summary().unwrap().lookback, 24);
    }

    #[test]
    fn too_short_input_rejected() {
        let mut sys = AutoAITS::new();
        assert!(sys.fit_rows(&seasonal_rows(10)).is_err());
        assert!(matches!(sys.predict(3), Err(PipelineError::NotFitted)));
    }

    #[test]
    fn empty_input_rejected() {
        let mut sys = AutoAITS::new();
        assert!(sys.fit_rows(&[]).is_err());
    }

    #[test]
    fn degenerate_holdout_fraction_rejected() {
        let rows = seasonal_rows(300);
        for hf in [1.0, 1.5, 0.0, -0.2, f64::NAN, f64::INFINITY] {
            let mut cfg = fast_config();
            cfg.holdout_fraction = hf;
            let mut sys = AutoAITS::with_config(cfg);
            let err = sys.fit_rows(&rows).err().expect("degenerate hf accepted");
            assert!(
                matches!(err, PipelineError::InvalidInput(_)),
                "hf {hf}: {err:?}"
            );
        }
    }

    #[test]
    fn holdout_fraction_starving_the_train_split_rejected() {
        // 0.95 is inside (0, 1) but leaves 15 training samples on 300 rows —
        // far below the 50-sample minimum allocation; must be a typed error
        let mut cfg = fast_config();
        cfg.holdout_fraction = 0.95;
        let mut sys = AutoAITS::with_config(cfg);
        let err = sys
            .fit_rows(&seasonal_rows(300))
            .err()
            .expect("starving split accepted");
        assert!(matches!(err, PipelineError::InvalidInput(_)), "{err:?}");
    }

    #[test]
    fn shared_transform_cache_accumulates_across_fits() {
        let cache = Arc::new(TransformCache::new());
        let mut sys = AutoAITS::with_config(fast_config()).with_transform_cache(Arc::clone(&cache));
        sys.fit_rows(&seasonal_rows(300)).unwrap();
        let after_first = cache.stats();
        assert!(
            after_first.hits + after_first.misses > 0,
            "shared cache untouched by fit"
        );
        // the same fit again reuses the same long-lived cache
        sys.fit_rows(&seasonal_rows(300)).unwrap();
        let after_second = cache.stats();
        assert!(after_second.hits + after_second.misses > after_first.hits + after_first.misses);
    }

    #[test]
    fn progress_events_fire_in_order() {
        use std::sync::Mutex;
        struct Collect(Mutex<Vec<String>>);
        impl Progress for Collect {
            fn report(&self, e: &ProgressEvent) {
                if let Ok(mut events) = self.0.lock() {
                    events.push(format!("{e:?}"));
                }
            }
        }
        let sink = Arc::new(Collect(Mutex::new(Vec::new())));
        let mut sys = AutoAITS::with_config(fast_config()).with_progress(sink.clone());
        sys.fit_rows(&seasonal_rows(300)).unwrap();
        let events = sink.0.lock().unwrap();
        assert!(events[0].starts_with("QualityChecked"));
        assert!(events.last().unwrap().starts_with("Ready"));
        assert!(events.iter().any(|e| e.starts_with("TDaubFinished")));
    }

    #[test]
    fn ensemble_selection_surfaces_in_summary() {
        let rows: Vec<Vec<f64>> = (0..320)
            .map(|i| {
                vec![
                    25.0 + 6.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin()
                        + 0.02 * i as f64,
                ]
            })
            .collect();
        let mut sys = AutoAITS::with_config(fast_config());
        sys.fit_rows(&rows).unwrap();
        let summary = sys.summary().unwrap();
        let sel = summary
            .ensemble
            .as_ref()
            .expect("default config runs ensemble selection over 3 survivors");
        assert!(!sel.members.is_empty());
        let total: f64 = sel.members.iter().map(|m| m.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
        assert!(
            sel.score <= sel.best_single,
            "ensemble {} worse than best single {}",
            sel.score,
            sel.best_single
        );
        // whether or not the ensemble serves, the system still forecasts
        assert_eq!(sys.predict_rows(6).unwrap().len(), 6);
    }

    #[test]
    fn disabling_ensembling_still_fits_and_reports_none() {
        let mut cfg = fast_config();
        cfg.tdaub.ensemble_top_k = 0;
        let mut sys = AutoAITS::with_config(cfg);
        sys.fit_rows(&seasonal_rows(300)).unwrap();
        let summary = sys.summary().unwrap();
        assert!(summary.ensemble.is_none());
        assert!(!summary.best_pipeline.starts_with("Ensemble("));
        assert!(sys.predict_interval(4, &[0.9]).is_ok());
    }

    #[test]
    fn horizon_sweep_6_to_30() {
        // the paper's experimental grid: horizon 6..30 step 6
        let rows = seasonal_rows(400);
        for h in [6usize, 12, 18, 24, 30] {
            let mut cfg = fast_config();
            cfg.horizon = h;
            let mut sys = AutoAITS::with_config(cfg);
            sys.fit_rows(&rows).unwrap();
            assert_eq!(sys.predict_rows(h).unwrap().len(), h, "horizon {h}");
        }
    }
}

#[cfg(test)]
mod interval_tests {
    use super::*;

    #[test]
    fn intervals_bracket_the_point_and_widen() {
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin()])
            .collect();
        let mut sys = AutoAITS::with_config(AutoAITSConfig {
            pipeline_names: Some(vec!["MT2RForecaster".into(), "ZeroModel".into()]),
            ..Default::default()
        });
        sys.fit_rows(&rows).unwrap();
        let iv = sys.predict_with_interval(6, 1.96).unwrap();
        assert_eq!(iv.len(), 1);
        assert_eq!(iv[0].len(), 6);
        for (p, lo, hi) in &iv[0] {
            assert!(lo <= p && p <= hi);
        }
        // width grows with the step index
        let w0 = iv[0][0].2 - iv[0][0].1;
        let w5 = iv[0][5].2 - iv[0][5].1;
        assert!(w5 > w0, "w0={w0} w5={w5}");
    }

    #[test]
    fn interval_before_fit_errors() {
        let sys = AutoAITS::new();
        assert!(sys.predict_with_interval(3, 2.0).is_err());
        assert!(sys.predict_interval(3, &[0.8, 0.95]).is_err());
    }

    #[test]
    fn quantile_bands_always_available_after_fit() {
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin()])
            .collect();
        let mut sys = AutoAITS::with_config(AutoAITSConfig {
            pipeline_names: Some(vec!["MT2RForecaster".into(), "ZeroModel".into()]),
            ..Default::default()
        });
        sys.fit_rows(&rows).unwrap();
        // the constructor validates finiteness, bracketing, and nesting;
        // getting an IntervalForecast back at all is most of the assertion
        let iv = sys.predict_interval(6, &[0.8, 0.95]).unwrap();
        assert_eq!(iv.horizon(), 6);
        assert_eq!(iv.n_series(), 1);
        assert_eq!(iv.levels(), &[0.8, 0.95]);
        // the point forecast matches the plain predict path
        let point = sys.predict(6).unwrap();
        for (a, b) in iv.point().series(0).iter().zip(point.series(0).iter()) {
            assert!((a - b).abs() < 1e-9, "interval point diverges: {a} vs {b}");
        }
    }
}
