//! The long-lived forecasting service core.
//!
//! [`AutoAITS::fit`] is a blocking, single-run entry point; production
//! traffic is many users hitting the *same* series repeatedly with a new
//! tail. This module lifts the per-run reuse machinery to cross-run scope:
//!
//! - a **series store** whose observe path grows frames through
//!   [`TimeSeriesFrame::append`]'s in-place branch, so the frame fingerprint
//!   after `observe` `extends_as_prefix` the fingerprint the previous fit
//!   ran on — the condition every tier of the reuse stack keys on;
//! - a **cross-run transform cache**: one [`TransformCache`] shared by every
//!   request, so flattened design matrices built by run *N* are reused by
//!   run *N+1* when the lineage extends (the cache affects wall time only,
//!   never a ranking);
//! - a **model cache** keyed by [`FrameFingerprint`] + generation: a fit
//!   request whose frame fingerprints identically to an already-served fit
//!   replays the stored result without any work, and `predict` requests are
//!   served straight from the stored fitted system;
//! - **epoch invalidation** mirroring the executor's `retire_unit`
//!   generation-stamp scheme: [`ForecastService::invalidate`] bumps the
//!   generation, so in-flight fits that complete against a stale generation
//!   are dead on arrival instead of resurrecting flushed state;
//! - a **job-queue front end**: [`ForecastService::submit`] multiplexes a
//!   batch of fit/predict requests over the process-wide persistent worker
//!   pool with admission control (batch + in-flight caps) and per-request
//!   soft/hard budgets derived from the existing deadline machinery.
//!
//! Locking: the three service locks are `linalg::sync` ordered locks with
//! the order classes `service.queue`, `service.state`, and `service.models`.
//! They guard short metadata sections only — no fit ever runs while one is
//! held — and nest exclusively *above* the `cache.*` classes (a `predict`
//! served under `service.models` may touch the transform cache), keeping
//! the workspace lock-order graph acyclic.
//!
//! Chaos site `service.submit`: keyed by the request's position in its
//! batch, so a seeded plan perturbs the same requests in serial and
//! parallel submissions. A `Panic` fault panics inside the worker (the
//! job queue degrades it to a typed [`PipelineError::Crashed`]), a
//! `TypedError` fault returns that error directly, a `Delay` sleeps; NaN
//! poisoning does not apply to request admission.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use autoai_linalg::par::parallel_try_map_mut;
use autoai_linalg::sync::OrderedMutex;
use autoai_pipelines::PipelineError;
use autoai_transforms::{CacheStats, TransformCache};
use autoai_tsdata::{FrameFingerprint, GrowthRecord, TimeSeriesFrame};

use crate::orchestrator::{AutoAITS, AutoAITSConfig, DegradationLevel};

/// Admission-control and per-request budget limits for a
/// [`ForecastService`].
#[derive(Debug, Clone)]
pub struct ServiceLimits {
    /// Maximum requests accepted from a single [`ForecastService::submit`]
    /// batch; the excess is rejected with
    /// [`PipelineError::BudgetExceeded`].
    pub max_batch: usize,
    /// Maximum admitted-but-unfinished requests across concurrent batches.
    pub max_in_flight: usize,
    /// Per-request soft budget, applied as the T-Daub per-pipeline
    /// cooperative time budget when the service config does not already pin
    /// one.
    pub soft_budget: Option<Duration>,
    /// Per-request hard deadline, applied as the whole-run hard deadline
    /// (watchdog-backed degradation to ranked survivors) when the service
    /// config does not already pin one.
    pub hard_deadline: Option<Duration>,
}

impl Default for ServiceLimits {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_in_flight: 256,
            soft_budget: None,
            hard_deadline: None,
        }
    }
}

/// One unit of service work.
#[derive(Debug, Clone)]
pub enum ServiceRequest {
    /// Run the full AutoAI-TS selection on the stored series.
    Fit {
        /// Name of an ingested series.
        series: String,
    },
    /// Forecast from the series' most recent fitted system.
    Predict {
        /// Name of an ingested series.
        series: String,
        /// Number of future rows to forecast.
        horizon: usize,
    },
}

/// Successful outcome of one [`ServiceRequest`].
#[derive(Debug, Clone)]
pub enum ServiceResponse {
    /// Outcome of a `Fit` request.
    Fit(ServiceFitReport),
    /// Point forecast answering a `Predict` request.
    Predict(TimeSeriesFrame),
}

/// What one fit request did and reused, for cross-run cache accounting.
#[derive(Debug, Clone)]
pub struct ServiceFitReport {
    /// The series this fit ran on.
    pub series: String,
    /// Name of the winning pipeline.
    pub best_pipeline: String,
    /// Final ranking: `(pipeline name, projected score)` best first. Scores
    /// are bit-exact reproducible for a fixed seed, so equality of
    /// `f64::to_bits` across requests is the intended comparison.
    pub ranking: Vec<(String, f64)>,
    /// SMAPE of the winner on the holdout split.
    pub holdout_smape: f64,
    /// How far down the degradation ladder the fit landed.
    pub degradation: DegradationLevel,
    /// Warm-started `fit_incremental` refits inside this run.
    pub incremental_fits: u64,
    /// Fit+score units served from the executor's fingerprint memo.
    pub fits_avoided: u64,
    /// Executed fits on data a candidate had already fitted — structurally
    /// zero while the memo is active.
    pub duplicate_fits: u64,
    /// Transform-cache hits during this request (cross-run hits included:
    /// the service cache outlives individual requests).
    pub cache_hits: u64,
    /// Transform-cache misses during this request.
    pub cache_misses: u64,
    /// Cache misses served by extending a previous run's matrix.
    pub cache_extensions: u64,
    /// True when this fit's frame `extends_as_prefix` the fingerprint of
    /// the previous fit stored for the series — the cross-run warm-lineage
    /// condition the in-place growth path exists to preserve.
    pub extends_previous_fit: bool,
    /// True when no work ran at all: the request's frame fingerprinted
    /// identically to an already-served fit of the current generation and
    /// the stored report was replayed.
    pub reused_model: bool,
}

/// Aggregate service counters, for dashboards and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted by `submit`.
    pub admitted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Admitted requests that have completed (successfully or not).
    pub completed: u64,
    /// Admitted requests currently executing.
    pub in_flight: usize,
    /// Current invalidation generation (starts at 0).
    pub generation: u64,
    /// Number of ingested series.
    pub series: usize,
    /// Number of live model-cache entries.
    pub models: usize,
    /// Cross-run transform-cache counters.
    pub cache: CacheStats,
}

/// One stored series: the live frame plus its growth lineage.
struct SeriesState {
    name: String,
    frame: TimeSeriesFrame,
    lineage: Vec<GrowthRecord>,
}

/// One cached fit: the whole fitted system plus the identity it was fit on.
struct ModelEntry {
    series: String,
    fingerprint: FrameFingerprint,
    generation: u64,
    model: AutoAITS,
    report: ServiceFitReport,
}

/// Admission counters behind the `service.queue` lock.
#[derive(Default)]
struct QueueState {
    in_flight: usize,
    admitted: u64,
    rejected: u64,
    completed: u64,
}

/// Per-request routing decided by admission control and batch dedup.
enum Decision {
    /// Rejected by admission control.
    Rejected,
    /// Executes on the worker pool.
    Primary,
    /// Duplicate fit of the request at this batch position; replayed from
    /// the primary's result.
    DuplicateOf(usize),
}

/// A long-lived, concurrent front end over [`AutoAITS`]: ingest series once,
/// then serve repeated fit/predict requests with cross-run reuse.
pub struct ForecastService {
    config: AutoAITSConfig,
    limits: ServiceLimits,
    cache: Arc<TransformCache>,
    generation: AtomicU64,
    service_queue: OrderedMutex<QueueState>,
    service_state: OrderedMutex<Vec<SeriesState>>,
    service_models: OrderedMutex<Vec<ModelEntry>>,
}

impl Default for ForecastService {
    fn default() -> Self {
        Self::new(AutoAITSConfig::default())
    }
}

impl ForecastService {
    /// Build a service whose fit requests use `config` as their template.
    pub fn new(config: AutoAITSConfig) -> Self {
        Self {
            config,
            limits: ServiceLimits::default(),
            cache: Arc::new(TransformCache::new()),
            generation: AtomicU64::new(0),
            service_queue: OrderedMutex::new("service.queue", QueueState::default()),
            service_state: OrderedMutex::new("service.state", Vec::new()),
            service_models: OrderedMutex::new("service.models", Vec::new()),
        }
    }

    /// Replace the admission-control limits.
    pub fn with_limits(mut self, limits: ServiceLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Store (or replace) a series under `name`. Returns the fingerprint
    /// the stored frame will present to the next fit request.
    pub fn ingest(
        &self,
        name: &str,
        frame: TimeSeriesFrame,
    ) -> Result<FrameFingerprint, PipelineError> {
        if frame.is_empty() || frame.n_series() == 0 {
            return Err(PipelineError::InvalidInput(format!(
                "ingest `{name}`: empty frame"
            )));
        }
        let fp = frame.fingerprint();
        let mut state = lock_or_poisoned(&self.service_state)?;
        match state.iter_mut().find(|s| s.name == name) {
            Some(slot) => {
                // the replaced frame's buffers are being retired: purge every
                // pointer-keyed cache entry that references them so a future
                // allocation can never collide with a stale key
                let retired = slot.frame.fingerprint();
                self.cache.purge_buffers(retired.buffers());
                slot.frame = frame;
                slot.lineage.clear();
            }
            None => state.push(SeriesState {
                name: name.to_string(),
                frame,
                lineage: Vec::new(),
            }),
        }
        Ok(fp)
    }

    /// Append `new_rows` (row-major) to the stored series. When the stored
    /// frame is the unique owner of its buffers — the steady state between
    /// requests, now that fitted models keep owned tails — the growth is in
    /// place and the returned record's fingerprints satisfy
    /// `grown.extends_as_prefix(&base)`, which is what lets the next fit
    /// request warm-start against the previous one. A forced re-base is
    /// surfaced in the record, never silent.
    pub fn observe(
        &self,
        name: &str,
        new_rows: &[Vec<f64>],
    ) -> Result<GrowthRecord, PipelineError> {
        let mut state = lock_or_poisoned(&self.service_state)?;
        let slot = state.iter_mut().find(|s| s.name == name).ok_or_else(|| {
            PipelineError::InvalidInput(format!("observe: unknown series `{name}`"))
        })?;
        let width = slot.frame.n_series();
        if new_rows.iter().any(|r| r.len() != width) {
            return Err(PipelineError::InvalidInput(format!(
                "observe `{name}`: rows must have {width} values"
            )));
        }
        // the cache's ABA pins on these buffers would force a re-base; the
        // store keeps the buffers alive, so the pins can be safely released
        self.cache.release_pins(slot.frame.fingerprint().buffers());
        // take the frame out of the slot so the store itself is not a
        // co-owner; `extended` consumes it and detects unique ownership
        let frame = std::mem::replace(&mut slot.frame, TimeSeriesFrame::from_columns(Vec::new()));
        let (grown, record) = frame.extended(new_rows);
        if !record.identity_preserved() {
            // re-based: the old buffers are being retired, so pointer-keyed
            // entries on them must go before an allocation can recycle them
            self.cache.purge_buffers(record.base.buffers());
        }
        slot.frame = grown;
        slot.lineage.push(record.clone());
        Ok(record)
    }

    /// The growth lineage recorded by `observe` calls since ingest.
    pub fn lineage(&self, name: &str) -> Vec<GrowthRecord> {
        self.service_state
            .lock()
            .ok()
            .and_then(|state| {
                state
                    .iter()
                    .find(|s| s.name == name)
                    .map(|s| s.lineage.clone())
            })
            .unwrap_or_default()
    }

    /// Fingerprint the stored series currently presents to a fit request.
    pub fn series_fingerprint(&self, name: &str) -> Option<FrameFingerprint> {
        self.service_state.lock().ok().and_then(|state| {
            state
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.frame.fingerprint())
        })
    }

    /// Submit a batch of requests; the reply vector is index-aligned with
    /// the batch. Admission control caps the batch size and the number of
    /// in-flight requests (rejections are
    /// [`PipelineError::BudgetExceeded`]); duplicate fit requests within
    /// the batch execute once and replay to the duplicates; everything
    /// admitted is multiplexed over the process-wide persistent worker
    /// pool.
    pub fn submit(
        &self,
        requests: &[ServiceRequest],
    ) -> Vec<Result<ServiceResponse, PipelineError>> {
        let n = requests.len();
        // ---- admission: batch cap + in-flight cap, under service.queue ----
        let allow = {
            match self.service_queue.lock() {
                Ok(mut q) => {
                    let room = self.limits.max_in_flight.saturating_sub(q.in_flight);
                    let allow = n.min(self.limits.max_batch).min(room);
                    q.in_flight = q.in_flight.saturating_add(allow);
                    q.admitted = q.admitted.saturating_add(allow as u64);
                    q.rejected = q.rejected.saturating_add((n - allow) as u64);
                    allow
                }
                Err(_) => 0,
            }
        };
        // ---- routing: the first `allow` requests are admitted; duplicate
        // fits of the same series collapse onto their first occurrence ----
        let mut decisions: Vec<Decision> = Vec::with_capacity(n);
        let mut fit_primaries: Vec<(usize, String)> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            if i >= allow {
                decisions.push(Decision::Rejected);
                continue;
            }
            match request {
                ServiceRequest::Fit { series } => {
                    match fit_primaries.iter().find(|(_, s)| s == series) {
                        Some(&(first, _)) => decisions.push(Decision::DuplicateOf(first)),
                        None => {
                            fit_primaries.push((i, series.clone()));
                            decisions.push(Decision::Primary);
                        }
                    }
                }
                ServiceRequest::Predict { .. } => decisions.push(Decision::Primary),
            }
        }
        // ---- execute primaries on the persistent pool ----
        let mut work: Vec<(usize, ServiceRequest)> = decisions
            .iter()
            .zip(requests.iter())
            .enumerate()
            .filter(|(_, (d, _))| matches!(d, Decision::Primary))
            .map(|(i, (_, r))| (i, r.clone()))
            .collect();
        let outcomes = parallel_try_map_mut(&mut work, |(i, request)| self.execute(*i, request));
        // ---- assemble index-aligned replies; replay duplicates ----
        let mut done = outcomes.into_iter();
        let mut responses: Vec<Result<ServiceResponse, PipelineError>> = Vec::with_capacity(n);
        for decision in &decisions {
            let reply = match decision {
                Decision::Rejected => Err(PipelineError::BudgetExceeded),
                Decision::Primary => match done.next() {
                    Some(Ok(result)) => result,
                    Some(Err(panic)) => Err(PipelineError::Crashed(format!(
                        "service worker panicked: {}",
                        panic.message
                    ))),
                    None => Err(PipelineError::Crashed(
                        "service worker result missing".into(),
                    )),
                },
                Decision::DuplicateOf(first) => match responses.get(*first) {
                    Some(Ok(ServiceResponse::Fit(report))) => {
                        let mut replay = report.clone();
                        replay.reused_model = true;
                        Ok(ServiceResponse::Fit(replay))
                    }
                    Some(Ok(other)) => Ok(other.clone()),
                    Some(Err(e)) => Err(e.clone()),
                    None => Err(PipelineError::Crashed(
                        "duplicate fit primary missing".into(),
                    )),
                },
            };
            responses.push(reply);
        }
        if let Ok(mut q) = self.service_queue.lock() {
            q.in_flight = q.in_flight.saturating_sub(allow);
            q.completed = q.completed.saturating_add(allow as u64);
        }
        responses
    }

    /// Convenience: submit a single fit request for `series`.
    pub fn fit(&self, series: &str) -> Result<ServiceFitReport, PipelineError> {
        let mut replies = self.submit(&[ServiceRequest::Fit {
            series: series.to_string(),
        }]);
        match replies.pop() {
            Some(Ok(ServiceResponse::Fit(report))) => Ok(report),
            Some(Ok(_)) => Err(PipelineError::Crashed("fit answered with non-fit".into())),
            Some(Err(e)) => Err(e),
            None => Err(PipelineError::Crashed("empty submit reply".into())),
        }
    }

    /// Convenience: submit a single predict request for `series`.
    pub fn predict(&self, series: &str, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
        let mut replies = self.submit(&[ServiceRequest::Predict {
            series: series.to_string(),
            horizon,
        }]);
        match replies.pop() {
            Some(Ok(ServiceResponse::Predict(frame))) => Ok(frame),
            Some(Ok(_)) => Err(PipelineError::Crashed(
                "predict answered with non-predict".into(),
            )),
            Some(Err(e)) => Err(e),
            None => Err(PipelineError::Crashed("empty submit reply".into())),
        }
    }

    /// Flush all cross-run state: bumps the generation stamp (the epoch
    /// analogue of the executor's `retire_unit`), clears the transform
    /// cache, and drops model-cache entries of older generations. An
    /// in-flight fit that completes against a stale generation is dead on
    /// arrival — its entry is never stored — so flushed state cannot be
    /// resurrected by a straggler. Returns the new generation.
    pub fn invalidate(&self) -> u64 {
        let generation = self
            .generation
            .fetch_add(1, Ordering::SeqCst)
            .saturating_add(1);
        self.cache.clear();
        if let Ok(mut models) = self.service_models.lock() {
            models.retain(|e| e.generation >= generation);
        }
        generation
    }

    /// Aggregate counters (admission, generation, model/series counts, and
    /// the cross-run transform-cache stats).
    pub fn stats(&self) -> ServiceStats {
        let (admitted, rejected, completed, in_flight) = self
            .service_queue
            .lock()
            .map(|q| (q.admitted, q.rejected, q.completed, q.in_flight))
            .unwrap_or((0, 0, 0, 0));
        let series = self.service_state.lock().map(|s| s.len()).unwrap_or(0);
        let models = self.service_models.lock().map(|m| m.len()).unwrap_or(0);
        ServiceStats {
            admitted,
            rejected,
            completed,
            in_flight,
            generation: self.generation.load(Ordering::SeqCst),
            series,
            models,
            cache: self.cache.stats(),
        }
    }

    /// One worker's slice of a submitted batch.
    fn execute(
        &self,
        position: usize,
        request: &ServiceRequest,
    ) -> Result<ServiceResponse, PipelineError> {
        self.chaos_gate(position)?;
        match request {
            ServiceRequest::Fit { series } => self.fit_series(series).map(ServiceResponse::Fit),
            ServiceRequest::Predict { series, horizon } => self
                .predict_series(series, *horizon)
                .map(ServiceResponse::Predict),
        }
    }

    /// Chaos site `service.submit`, keyed by batch position.
    fn chaos_gate(&self, position: usize) -> Result<(), PipelineError> {
        if autoai_chaos::enabled() {
            match autoai_chaos::inject("service.submit", position as u64) {
                Some(autoai_chaos::Fault::Panic) => {
                    // tscheck:allow(panic): deliberate chaos fault injection
                    panic!("chaos: injected service submission failure")
                }
                Some(autoai_chaos::Fault::TypedError) => {
                    return Err(PipelineError::Crashed(
                        "chaos: injected service submission error".into(),
                    ))
                }
                Some(autoai_chaos::Fault::Delay(ms)) => {
                    std::thread::sleep(Duration::from_millis(ms))
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Per-request config: the service template with the admission limits'
    /// budgets filled in wherever the template leaves them open.
    fn request_config(&self) -> AutoAITSConfig {
        let mut config = self.config.clone();
        if config.tdaub.pipeline_time_budget.is_none() {
            config.tdaub.pipeline_time_budget = self.limits.soft_budget;
        }
        if config.tdaub.run_hard_deadline.is_none() {
            config.tdaub.run_hard_deadline = self.limits.hard_deadline;
        }
        config
    }

    /// Serve one fit request: replay on an exact fingerprint match, run the
    /// full selection against the shared cache otherwise.
    fn fit_series(&self, series: &str) -> Result<ServiceFitReport, PipelineError> {
        let frame = {
            let state = lock_or_poisoned(&self.service_state)?;
            match state.iter().find(|s| s.name == series) {
                // O(1): shares the stored buffers, which is exactly what
                // keys the cross-run caches
                Some(slot) => slot.frame.clone(),
                None => {
                    return Err(PipelineError::InvalidInput(format!(
                        "fit: unknown series `{series}`"
                    )))
                }
            }
        };
        let generation = self.generation.load(Ordering::SeqCst);
        let fingerprint = frame.fingerprint();
        let extends_previous_fit = {
            let models = lock_or_poisoned(&self.service_models)?;
            if let Some(entry) = models.iter().find(|e| {
                e.series == series && e.generation == generation && e.fingerprint == fingerprint
            }) {
                // exact replay: same data, same generation → no work at all
                let mut report = entry.report.clone();
                report.reused_model = true;
                return Ok(report);
            }
            models
                .iter()
                .find(|e| e.series == series)
                .is_some_and(|e| fingerprint.extends_as_prefix(&e.fingerprint))
        };
        let before = self.cache.stats();
        let mut model = AutoAITS::with_config(self.request_config())
            .with_transform_cache(Arc::clone(&self.cache));
        model.fit(&frame)?;
        let after = self.cache.stats();
        let report = {
            let summary = model.summary().ok_or(PipelineError::NotFitted)?;
            ServiceFitReport {
                series: series.to_string(),
                best_pipeline: summary.best_pipeline.clone(),
                ranking: summary
                    .reports
                    .iter()
                    .map(|r| (r.name.clone(), r.projected_score))
                    .collect(),
                holdout_smape: summary.holdout_smape,
                degradation: summary.degradation,
                incremental_fits: summary.execution.incremental_fits,
                fits_avoided: summary.execution.fits_avoided,
                duplicate_fits: summary.execution.duplicate_fits,
                cache_hits: after.hits.saturating_sub(before.hits),
                cache_misses: after.misses.saturating_sub(before.misses),
                cache_extensions: after.extensions.saturating_sub(before.extensions),
                extends_previous_fit,
                reused_model: false,
            }
        };
        // dead-on-arrival check: an invalidation that raced this fit wins
        if self.generation.load(Ordering::SeqCst) == generation {
            let mut models = lock_or_poisoned(&self.service_models)?;
            models.retain(|e| e.series != series && e.generation == generation);
            models.push(ModelEntry {
                series: series.to_string(),
                fingerprint,
                generation,
                model,
                report: report.clone(),
            });
        }
        Ok(report)
    }

    /// Serve one predict request from the stored fitted system.
    fn predict_series(
        &self,
        series: &str,
        horizon: usize,
    ) -> Result<TimeSeriesFrame, PipelineError> {
        let generation = self.generation.load(Ordering::SeqCst);
        let models = lock_or_poisoned(&self.service_models)?;
        let entry = models
            .iter()
            .find(|e| e.series == series && e.generation == generation)
            .ok_or(PipelineError::NotFitted)?;
        entry.model.predict(horizon)
    }
}

/// Poisoned service locks become a typed error, never a propagated panic.
fn lock_or_poisoned<'a, T>(
    lock: &'a OrderedMutex<T>,
) -> Result<autoai_linalg::sync::OrderedMutexGuard<'a, T>, PipelineError> {
    lock.lock()
        .map_err(|_| PipelineError::Crashed(format!("service lock `{}` poisoned", lock.name())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoai_tsdata::GrowthKind;

    fn seasonal_rows(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin()])
            .collect()
    }

    fn fast_service() -> ForecastService {
        ForecastService::new(AutoAITSConfig {
            pipeline_names: Some(vec![
                "MT2RForecaster".into(),
                "HW-Additive".into(),
                "ZeroModel".into(),
            ]),
            ..Default::default()
        })
    }

    #[test]
    fn unknown_series_is_typed_invalid_input() {
        let svc = fast_service();
        assert!(matches!(
            svc.fit("nope"),
            Err(PipelineError::InvalidInput(_))
        ));
        assert!(matches!(
            svc.observe("nope", &[vec![1.0]]),
            Err(PipelineError::InvalidInput(_))
        ));
    }

    #[test]
    fn predict_before_fit_is_not_fitted() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        assert!(matches!(
            svc.predict("cpu", 4),
            Err(PipelineError::NotFitted)
        ));
    }

    #[test]
    fn fit_then_predict_roundtrip() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        let report = svc.fit("cpu").unwrap();
        assert!(!report.best_pipeline.is_empty());
        assert!(!report.reused_model);
        let f = svc.predict("cpu", 6).unwrap();
        assert_eq!(f.len(), 6);
        assert_eq!(f.n_series(), 1);
    }

    #[test]
    fn identical_fit_replays_from_the_model_cache() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        let cold = svc.fit("cpu").unwrap();
        let warm = svc.fit("cpu").unwrap();
        assert!(warm.reused_model, "identical request must replay");
        assert_eq!(cold.best_pipeline, warm.best_pipeline);
        // replay must be bit-identical, not merely close
        for ((an, a), (bn, b)) in cold.ranking.iter().zip(warm.ranking.iter()) {
            assert_eq!(an, bn);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn observe_grows_in_place_between_requests() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        svc.fit("cpu").unwrap();
        let record = svc.observe("cpu", &seasonal_rows(24)).unwrap();
        assert_eq!(
            record.kind,
            GrowthKind::InPlace,
            "stored series must grow without severing identity: {record:?}"
        );
        assert!(record.grown.extends_as_prefix(&record.base));
        assert_eq!(svc.lineage("cpu").len(), 1);
        // the grown frame is what the next fit sees
        assert_eq!(svc.series_fingerprint("cpu"), Some(record.grown.clone()));
    }

    #[test]
    fn duplicate_fits_in_one_batch_run_once() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        let replies = svc.submit(&[
            ServiceRequest::Fit {
                series: "cpu".into(),
            },
            ServiceRequest::Fit {
                series: "cpu".into(),
            },
        ]);
        assert_eq!(replies.len(), 2);
        let reports: Vec<&ServiceFitReport> = replies
            .iter()
            .map(|r| match r {
                Ok(ServiceResponse::Fit(rep)) => rep,
                other => panic!("unexpected reply {other:?}"),
            })
            .collect();
        assert!(!reports.first().unwrap().reused_model);
        assert!(reports.get(1).unwrap().reused_model);
    }

    #[test]
    fn admission_control_rejects_past_the_batch_cap() {
        let svc = fast_service().with_limits(ServiceLimits {
            max_batch: 1,
            ..Default::default()
        });
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        let replies = svc.submit(&[
            ServiceRequest::Predict {
                series: "cpu".into(),
                horizon: 4,
            },
            ServiceRequest::Predict {
                series: "cpu".into(),
                horizon: 4,
            },
        ]);
        assert!(matches!(
            replies.get(1),
            Some(Err(PipelineError::BudgetExceeded))
        ));
        let stats = svc.stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn invalidate_flushes_models_and_cache() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        svc.fit("cpu").unwrap();
        assert_eq!(svc.stats().models, 1);
        let generation = svc.invalidate();
        assert_eq!(generation, 1);
        let stats = svc.stats();
        assert_eq!(stats.models, 0);
        assert_eq!(stats.cache.hits + stats.cache.misses, 0);
        // predictions no longer served from the flushed generation
        assert!(matches!(
            svc.predict("cpu", 4),
            Err(PipelineError::NotFitted)
        ));
        // but a fresh fit under the new generation works
        let report = svc.fit("cpu").unwrap();
        assert!(!report.reused_model);
        assert!(svc.predict("cpu", 4).is_ok());
    }

    #[test]
    fn mixed_batch_serves_fit_and_predict() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        svc.fit("cpu").unwrap();
        let replies = svc.submit(&[
            ServiceRequest::Predict {
                series: "cpu".into(),
                horizon: 3,
            },
            ServiceRequest::Fit {
                series: "cpu".into(),
            },
        ]);
        assert!(matches!(
            replies.first(),
            Some(Ok(ServiceResponse::Predict(_)))
        ));
        assert!(matches!(replies.get(1), Some(Ok(ServiceResponse::Fit(_)))));
    }
}
