//! The long-lived forecasting service core.
//!
//! [`AutoAITS::fit`] is a blocking, single-run entry point; production
//! traffic is many users hitting the *same* series repeatedly with a new
//! tail. This module lifts the per-run reuse machinery to cross-run scope:
//!
//! - a **series store** whose observe path grows frames through
//!   [`TimeSeriesFrame::append`]'s in-place branch, so the frame fingerprint
//!   after `observe` `extends_as_prefix` the fingerprint the previous fit
//!   ran on — the condition every tier of the reuse stack keys on;
//! - a **cross-run transform cache**: one [`TransformCache`] shared by every
//!   request, so flattened design matrices built by run *N* are reused by
//!   run *N+1* when the lineage extends (the cache affects wall time only,
//!   never a ranking);
//! - a **model cache** keyed by [`FrameFingerprint`] + generation: a fit
//!   request whose frame fingerprints identically to an already-served fit
//!   replays the stored result without any work, and `predict` requests are
//!   served straight from the stored fitted system;
//! - **epoch invalidation** mirroring the executor's `retire_unit`
//!   generation-stamp scheme: [`ForecastService::invalidate`] bumps the
//!   generation, so in-flight fits that complete against a stale generation
//!   are dead on arrival instead of resurrecting flushed state;
//! - a **job-queue front end**: [`ForecastService::submit`] multiplexes a
//!   batch of fit/predict requests over the process-wide persistent worker
//!   pool with admission control (batch + in-flight caps) and per-request
//!   soft/hard budgets derived from the existing deadline machinery.
//!
//! # The online loop
//!
//! `observe` is more than an append: every batch of observed rows is scored
//! against the live winner's own forecast for those positions (one-step
//! SMAPE, winner vs. the persistence baseline) and charged to a per-series
//! [`DriftMonitor`]. A [`DriftVerdict::Drifted`] verdict triggers a **warm
//! re-selection**: the previous ranking becomes the restricted pool and the
//! T-Daub warm priors, the shared transform cache and the executor's
//! fingerprint memo carry the state, and the new winner is swapped in
//! atomically only when the whole attempt completes — the old forecaster
//! keeps serving throughout, and a failed attempt changes nothing. Entries
//! installed by a re-selection (or fitted under an active fault plan) are
//! `tainted`: a clean explicit `fit` never replays them, so its result is
//! bit-identical to a fit on an untouched service.
//!
//! Locking: the service locks are `linalg::sync` ordered locks with the
//! order classes `service.queue`, `service.state`, `service.models`, and
//! `service.drift`. They guard short metadata sections only — no fit ever
//! runs while one is held — and the first three nest exclusively *above*
//! the `cache.*` classes (a `predict` served under `service.models` may
//! touch the transform cache), keeping the workspace lock-order graph
//! acyclic. `service.drift` is a leaf: it is only ever taken with no other
//! lock held and nothing is acquired under it.
//!
//! Chaos sites: `service.submit` (keyed by the request's position in its
//! batch, so a seeded plan perturbs the same requests in serial and
//! parallel submissions), `observe.append` (keyed by series name; fires
//! before any lock or mutation, so a faulted observe leaves the stored
//! series untouched), `drift.update` (keyed by series name; a faulted
//! update skips one monitoring batch and nothing else), and
//! `reselect.swap` (keyed by series name and generation; a faulted swap
//! abandons the re-selection and the old winner keeps serving). A `Panic`
//! fault panics at the site (callers degrade it), a `TypedError` fault
//! returns a typed error, a `Delay` sleeps; NaN poisoning does not apply
//! to these control-plane sites.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use autoai_linalg::par::parallel_try_map_mut;
use autoai_linalg::sync::OrderedMutex;
use autoai_pipelines::{IntervalForecast, PipelineError};
use autoai_transforms::{CacheStats, TransformCache};
use autoai_tsdata::{smape, FrameFingerprint, GrowthRecord, QualityIssue, TimeSeriesFrame};

use crate::online::{DriftConfig, DriftMonitor, DriftSnapshot, DriftVerdict};
use crate::orchestrator::{AutoAITS, AutoAITSConfig, DegradationLevel};

/// Admission-control and per-request budget limits for a
/// [`ForecastService`].
#[derive(Debug, Clone)]
pub struct ServiceLimits {
    /// Maximum requests accepted from a single [`ForecastService::submit`]
    /// batch; the excess is rejected with
    /// [`PipelineError::BudgetExceeded`].
    pub max_batch: usize,
    /// Maximum admitted-but-unfinished requests across concurrent batches.
    pub max_in_flight: usize,
    /// Per-request soft budget, applied as the T-Daub per-pipeline
    /// cooperative time budget when the service config does not already pin
    /// one.
    pub soft_budget: Option<Duration>,
    /// Per-request hard deadline, applied as the whole-run hard deadline
    /// (watchdog-backed degradation to ranked survivors) when the service
    /// config does not already pin one.
    pub hard_deadline: Option<Duration>,
    /// Byte budget for the cross-run caches (transform-cache resident bytes
    /// plus an estimate of the stored frames the model cache keeps alive).
    /// When exceeded, model-cache entries are evicted least-recently-touched
    /// first (oldest generation breaking ties) together with their
    /// pointer-keyed transform-cache entries; `None` = unbounded.
    pub max_cache_bytes: Option<u64>,
}

impl Default for ServiceLimits {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_in_flight: 256,
            soft_budget: None,
            hard_deadline: None,
            max_cache_bytes: None,
        }
    }
}

/// One unit of service work.
#[derive(Debug, Clone)]
pub enum ServiceRequest {
    /// Run the full AutoAI-TS selection on the stored series.
    Fit {
        /// Name of an ingested series.
        series: String,
    },
    /// Forecast from the series' most recent fitted system.
    Predict {
        /// Name of an ingested series.
        series: String,
        /// Number of future rows to forecast.
        horizon: usize,
    },
}

/// Successful outcome of one [`ServiceRequest`].
#[derive(Debug, Clone)]
pub enum ServiceResponse {
    /// Outcome of a `Fit` request.
    Fit(ServiceFitReport),
    /// Point forecast answering a `Predict` request.
    Predict(TimeSeriesFrame),
}

/// What one fit request did and reused, for cross-run cache accounting.
#[derive(Debug, Clone)]
pub struct ServiceFitReport {
    /// The series this fit ran on.
    pub series: String,
    /// Name of the winning pipeline.
    pub best_pipeline: String,
    /// Final ranking: `(pipeline name, projected score)` best first. Scores
    /// are bit-exact reproducible for a fixed seed, so equality of
    /// `f64::to_bits` across requests is the intended comparison.
    pub ranking: Vec<(String, f64)>,
    /// SMAPE of the winner on the holdout split.
    pub holdout_smape: f64,
    /// How far down the degradation ladder the fit landed.
    pub degradation: DegradationLevel,
    /// Warm-started `fit_incremental` refits inside this run.
    pub incremental_fits: u64,
    /// Fit+score units served from the executor's fingerprint memo.
    pub fits_avoided: u64,
    /// Executed fits on data a candidate had already fitted — structurally
    /// zero while the memo is active.
    pub duplicate_fits: u64,
    /// Transform-cache hits during this request (cross-run hits included:
    /// the service cache outlives individual requests).
    pub cache_hits: u64,
    /// Transform-cache misses during this request.
    pub cache_misses: u64,
    /// Cache misses served by extending a previous run's matrix.
    pub cache_extensions: u64,
    /// True when this fit's frame `extends_as_prefix` the fingerprint of
    /// the previous fit stored for the series — the cross-run warm-lineage
    /// condition the in-place growth path exists to preserve.
    pub extends_previous_fit: bool,
    /// True when no work ran at all: the request's frame fingerprinted
    /// identically to an already-served fit of the current generation and
    /// the stored report was replayed.
    pub reused_model: bool,
    /// Quality issues the fit's assessment surfaced, including issues
    /// carried over from `observe` calls since the previous fit (e.g.
    /// timestamps dropped while appending live rows).
    pub quality_issues: Vec<QualityIssue>,
}

/// Aggregate service counters, for dashboards and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted by `submit`.
    pub admitted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Admitted requests that have completed (successfully or not).
    pub completed: u64,
    /// Admitted requests currently executing.
    pub in_flight: usize,
    /// Current invalidation generation (starts at 0).
    pub generation: u64,
    /// Number of ingested series.
    pub series: usize,
    /// Number of live model-cache entries.
    pub models: usize,
    /// Model-cache entries evicted by the [`ServiceLimits::max_cache_bytes`]
    /// budget (a final whole-cache flush counts once).
    pub evictions: u64,
    /// Rows whose timestamps `observe` had to drop because no regular
    /// spacing could be inferred — the silent-degradation signal the growth
    /// records used to keep to themselves.
    pub dropped_timestamps: u64,
    /// Completed drift-triggered warm re-selections.
    pub reselections: u64,
    /// Cross-run transform-cache counters.
    pub cache: CacheStats,
}

/// One stored series: the live frame plus its growth lineage.
struct SeriesState {
    name: String,
    frame: TimeSeriesFrame,
    lineage: Vec<GrowthRecord>,
    /// Quality issues reported by `observe` since the last fit; the next
    /// fit drains them into its summary.
    pending_issues: Vec<QualityIssue>,
}

/// One cached fit: the whole fitted system plus the identity it was fit on.
struct ModelEntry {
    series: String,
    fingerprint: FrameFingerprint,
    generation: u64,
    model: AutoAITS,
    report: ServiceFitReport,
    /// Monotone recency stamp (eviction order under the byte budget).
    touched: u64,
    /// Fitted by a warm re-selection or under an active fault plan: serves
    /// forecasts normally, but a clean explicit fit never replays it.
    tainted: bool,
}

/// Per-series drift state behind the `service.drift` leaf lock.
struct SeriesMonitor {
    name: String,
    monitor: DriftMonitor,
}

/// Admission counters behind the `service.queue` lock.
#[derive(Default)]
struct QueueState {
    in_flight: usize,
    admitted: u64,
    rejected: u64,
    completed: u64,
}

/// Per-request routing decided by admission control and batch dedup.
enum Decision {
    /// Rejected by admission control.
    Rejected,
    /// Executes on the worker pool.
    Primary,
    /// Duplicate fit of the request at this batch position; replayed from
    /// the primary's result.
    DuplicateOf(usize),
}

/// A long-lived, concurrent front end over [`AutoAITS`]: ingest series once,
/// then serve repeated fit/predict requests with cross-run reuse.
pub struct ForecastService {
    config: AutoAITSConfig,
    limits: ServiceLimits,
    drift_config: DriftConfig,
    cache: Arc<TransformCache>,
    generation: AtomicU64,
    touch_clock: AtomicU64,
    evictions: AtomicU64,
    dropped_timestamps: AtomicU64,
    reselections: AtomicU64,
    service_queue: OrderedMutex<QueueState>,
    service_state: OrderedMutex<Vec<SeriesState>>,
    service_models: OrderedMutex<Vec<ModelEntry>>,
    service_drift: OrderedMutex<Vec<SeriesMonitor>>,
}

impl Default for ForecastService {
    fn default() -> Self {
        Self::new(AutoAITSConfig::default())
    }
}

impl ForecastService {
    /// Build a service whose fit requests use `config` as their template.
    pub fn new(config: AutoAITSConfig) -> Self {
        Self {
            config,
            limits: ServiceLimits::default(),
            drift_config: DriftConfig::default(),
            cache: Arc::new(TransformCache::new()),
            generation: AtomicU64::new(0),
            touch_clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            dropped_timestamps: AtomicU64::new(0),
            reselections: AtomicU64::new(0),
            service_queue: OrderedMutex::new("service.queue", QueueState::default()),
            service_state: OrderedMutex::new("service.state", Vec::new()),
            service_models: OrderedMutex::new("service.models", Vec::new()),
            service_drift: OrderedMutex::new("service.drift", Vec::new()),
        }
    }

    /// Replace the admission-control limits.
    pub fn with_limits(mut self, limits: ServiceLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Replace the drift-monitor tuning used for every series.
    pub fn with_drift_config(mut self, drift: DriftConfig) -> Self {
        self.drift_config = drift;
        self
    }

    /// Store (or replace) a series under `name`. Returns the fingerprint
    /// the stored frame will present to the next fit request.
    pub fn ingest(
        &self,
        name: &str,
        frame: TimeSeriesFrame,
    ) -> Result<FrameFingerprint, PipelineError> {
        if frame.is_empty() || frame.n_series() == 0 {
            return Err(PipelineError::InvalidInput(format!(
                "ingest `{name}`: empty frame"
            )));
        }
        let fp = frame.fingerprint();
        {
            let mut state = lock_or_poisoned(&self.service_state)?;
            match state.iter_mut().find(|s| s.name == name) {
                Some(slot) => {
                    // the replaced frame's buffers are being retired: purge
                    // every pointer-keyed cache entry that references them so
                    // a future allocation can never collide with a stale key
                    let retired = slot.frame.fingerprint();
                    self.cache.purge_buffers(retired.buffers());
                    slot.frame = frame;
                    slot.lineage.clear();
                    slot.pending_issues.clear();
                }
                None => state.push(SeriesState {
                    name: name.to_string(),
                    frame,
                    lineage: Vec::new(),
                    pending_issues: Vec::new(),
                }),
            }
        }
        // a replaced series' drift evidence described the old data; drop it
        // (leaf lock, taken with no other lock held)
        if let Ok(mut monitors) = self.service_drift.lock() {
            monitors.retain(|m| m.name != name);
        }
        Ok(fp)
    }

    /// Append `new_rows` (row-major) to the stored series. When the stored
    /// frame is the unique owner of its buffers — the steady state between
    /// requests, now that fitted models keep owned tails — the growth is in
    /// place and the returned record's fingerprints satisfy
    /// `grown.extends_as_prefix(&base)`, which is what lets the next fit
    /// request warm-start against the previous one. A forced re-base is
    /// surfaced in the record, never silent.
    ///
    /// This is also the online loop's heartbeat: the appended rows are
    /// scored against the live winner's own forecast for those positions
    /// and charged to the series' drift monitor; a `Drifted` verdict runs a
    /// warm re-selection before returning (the old winner keeps serving
    /// concurrent requests throughout, and a failed attempt changes
    /// nothing).
    pub fn observe(
        &self,
        name: &str,
        new_rows: &[Vec<f64>],
    ) -> Result<GrowthRecord, PipelineError> {
        // chaos site `observe.append` fires before any mutation: a
        // mid-observe fault must leave the stored series exactly as it was.
        // Keyed by (series, stored length) so successive observes of one
        // series draw independent faults under a fixed plan.
        let probe_len = {
            let state = lock_or_poisoned(&self.service_state)?;
            state
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.frame.len())
                .unwrap_or(0)
        };
        self.chaos_gate("observe.append", autoai_chaos::key(name) ^ probe_len as u64)?;
        let (record, pre_len, baseline_seed) = {
            let mut state = lock_or_poisoned(&self.service_state)?;
            let slot = state.iter_mut().find(|s| s.name == name).ok_or_else(|| {
                PipelineError::InvalidInput(format!("observe: unknown series `{name}`"))
            })?;
            let width = slot.frame.n_series();
            if new_rows.iter().any(|r| r.len() != width) {
                return Err(PipelineError::InvalidInput(format!(
                    "observe `{name}`: rows must have {width} values"
                )));
            }
            let pre_len = slot.frame.len();
            // seed for the persistence baseline: the last row already stored
            let baseline_seed = pre_len.checked_sub(1).map(|last| slot.frame.row(last));
            // the cache's ABA pins on these buffers would force a re-base;
            // the store keeps the buffers alive, so the pins can be released
            self.cache.release_pins(slot.frame.fingerprint().buffers());
            // take the frame out of the slot so the store itself is not a
            // co-owner; `extended` consumes it and detects unique ownership
            let frame =
                std::mem::replace(&mut slot.frame, TimeSeriesFrame::from_columns(Vec::new()));
            let (grown, record) = frame.extended(new_rows);
            if !record.identity_preserved() {
                // re-based: the old buffers are being retired, so pointer-
                // keyed entries on them must go before a recycled allocation
                self.cache.purge_buffers(record.base.buffers());
            }
            slot.frame = grown;
            slot.lineage.push(record.clone());
            if let Some(issue) = record.timestamp_issue.clone() {
                // dropped timestamps used to live only in the growth record:
                // count them in the stats and stash the issue for the next
                // fit's quality report
                if let QualityIssue::DroppedTimestamps(n) = &issue {
                    self.dropped_timestamps
                        .fetch_add(*n as u64, Ordering::SeqCst);
                }
                slot.pending_issues.push(issue);
            }
            (record, pre_len, baseline_seed)
        };
        // all locks released: score the batch and act on the verdict
        let verdict = self.monitor_observation(name, new_rows, pre_len, baseline_seed, &record);
        if verdict == DriftVerdict::Drifted {
            self.reselect_series(name);
        }
        Ok(record)
    }

    /// The growth lineage recorded by `observe` calls since ingest.
    pub fn lineage(&self, name: &str) -> Vec<GrowthRecord> {
        self.service_state
            .lock()
            .ok()
            .and_then(|state| {
                state
                    .iter()
                    .find(|s| s.name == name)
                    .map(|s| s.lineage.clone())
            })
            .unwrap_or_default()
    }

    /// Fingerprint the stored series currently presents to a fit request.
    pub fn series_fingerprint(&self, name: &str) -> Option<FrameFingerprint> {
        self.service_state.lock().ok().and_then(|state| {
            state
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.frame.fingerprint())
        })
    }

    /// Submit a batch of requests; the reply vector is index-aligned with
    /// the batch. Admission control caps the batch size and the number of
    /// in-flight requests (rejections are
    /// [`PipelineError::BudgetExceeded`]); duplicate fit requests within
    /// the batch execute once and replay to the duplicates; everything
    /// admitted is multiplexed over the process-wide persistent worker
    /// pool.
    pub fn submit(
        &self,
        requests: &[ServiceRequest],
    ) -> Vec<Result<ServiceResponse, PipelineError>> {
        let n = requests.len();
        // ---- admission: batch cap + in-flight cap, under service.queue ----
        let allow = {
            match self.service_queue.lock() {
                Ok(mut q) => {
                    let room = self.limits.max_in_flight.saturating_sub(q.in_flight);
                    let allow = n.min(self.limits.max_batch).min(room);
                    q.in_flight = q.in_flight.saturating_add(allow);
                    q.admitted = q.admitted.saturating_add(allow as u64);
                    q.rejected = q.rejected.saturating_add((n - allow) as u64);
                    allow
                }
                Err(_) => 0,
            }
        };
        // ---- routing: the first `allow` requests are admitted; duplicate
        // fits of the same series collapse onto their first occurrence ----
        let mut decisions: Vec<Decision> = Vec::with_capacity(n);
        let mut fit_primaries: Vec<(usize, String)> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            if i >= allow {
                decisions.push(Decision::Rejected);
                continue;
            }
            match request {
                ServiceRequest::Fit { series } => {
                    match fit_primaries.iter().find(|(_, s)| s == series) {
                        Some(&(first, _)) => decisions.push(Decision::DuplicateOf(first)),
                        None => {
                            fit_primaries.push((i, series.clone()));
                            decisions.push(Decision::Primary);
                        }
                    }
                }
                ServiceRequest::Predict { .. } => decisions.push(Decision::Primary),
            }
        }
        // ---- execute primaries on the persistent pool ----
        let mut work: Vec<(usize, ServiceRequest)> = decisions
            .iter()
            .zip(requests.iter())
            .enumerate()
            .filter(|(_, (d, _))| matches!(d, Decision::Primary))
            .map(|(i, (_, r))| (i, r.clone()))
            .collect();
        let outcomes = parallel_try_map_mut(&mut work, |(i, request)| self.execute(*i, request));
        // ---- assemble index-aligned replies; replay duplicates ----
        let mut done = outcomes.into_iter();
        let mut responses: Vec<Result<ServiceResponse, PipelineError>> = Vec::with_capacity(n);
        for decision in &decisions {
            let reply = match decision {
                Decision::Rejected => Err(PipelineError::BudgetExceeded),
                Decision::Primary => match done.next() {
                    Some(Ok(result)) => result,
                    Some(Err(panic)) => Err(PipelineError::Crashed(format!(
                        "service worker panicked: {}",
                        panic.message
                    ))),
                    None => Err(PipelineError::Crashed(
                        "service worker result missing".into(),
                    )),
                },
                Decision::DuplicateOf(first) => match responses.get(*first) {
                    Some(Ok(ServiceResponse::Fit(report))) => {
                        let mut replay = report.clone();
                        replay.reused_model = true;
                        Ok(ServiceResponse::Fit(replay))
                    }
                    Some(Ok(other)) => Ok(other.clone()),
                    Some(Err(e)) => Err(e.clone()),
                    None => Err(PipelineError::Crashed(
                        "duplicate fit primary missing".into(),
                    )),
                },
            };
            responses.push(reply);
        }
        if let Ok(mut q) = self.service_queue.lock() {
            q.in_flight = q.in_flight.saturating_sub(allow);
            q.completed = q.completed.saturating_add(allow as u64);
        }
        responses
    }

    /// Convenience: submit a single fit request for `series`.
    pub fn fit(&self, series: &str) -> Result<ServiceFitReport, PipelineError> {
        let mut replies = self.submit(&[ServiceRequest::Fit {
            series: series.to_string(),
        }]);
        match replies.pop() {
            Some(Ok(ServiceResponse::Fit(report))) => Ok(report),
            Some(Ok(_)) => Err(PipelineError::Crashed("fit answered with non-fit".into())),
            Some(Err(e)) => Err(e),
            None => Err(PipelineError::Crashed("empty submit reply".into())),
        }
    }

    /// Convenience: submit a single predict request for `series`.
    pub fn predict(&self, series: &str, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
        let mut replies = self.submit(&[ServiceRequest::Predict {
            series: series.to_string(),
            horizon,
        }]);
        match replies.pop() {
            Some(Ok(ServiceResponse::Predict(frame))) => Ok(frame),
            Some(Ok(_)) => Err(PipelineError::Crashed(
                "predict answered with non-predict".into(),
            )),
            Some(Err(e)) => Err(e),
            None => Err(PipelineError::Crashed("empty submit reply".into())),
        }
    }

    /// Quantile-band forecast from the series' most recent fitted system.
    /// The interval ladder (native band → conformal wrap → ZeroModel
    /// baseline band) guarantees calibrated bands whenever a fit has
    /// completed, whatever faults the observe path absorbed since.
    pub fn predict_interval(
        &self,
        series: &str,
        horizon: usize,
        levels: &[f64],
    ) -> Result<IntervalForecast, PipelineError> {
        let generation = self.generation.load(Ordering::SeqCst);
        let mut models = lock_or_poisoned(&self.service_models)?;
        let entry = models
            .iter_mut()
            .find(|e| e.series == series && e.generation == generation)
            .ok_or(PipelineError::NotFitted)?;
        entry.touched = self.touch_clock.fetch_add(1, Ordering::SeqCst);
        entry.model.predict_interval(horizon, levels)
    }

    /// Snapshot of the series' drift-monitor state; `None` until the first
    /// monitored observe.
    pub fn drift_snapshot(&self, series: &str) -> Option<DriftSnapshot> {
        self.service_drift.lock().ok().and_then(|monitors| {
            monitors
                .iter()
                .find(|m| m.name == series)
                .map(|m| m.monitor.snapshot())
        })
    }

    /// Raw state bits of the series' drift monitor, for bit-identity
    /// assertions across runs and schedules.
    pub fn drift_state_bits(&self, series: &str) -> Option<Vec<u64>> {
        self.service_drift.lock().ok().and_then(|monitors| {
            monitors
                .iter()
                .find(|m| m.name == series)
                .map(|m| m.monitor.state_bits())
        })
    }

    /// Flush all cross-run state: bumps the generation stamp (the epoch
    /// analogue of the executor's `retire_unit`), clears the transform
    /// cache, and drops model-cache entries of older generations. An
    /// in-flight fit that completes against a stale generation is dead on
    /// arrival — its entry is never stored — so flushed state cannot be
    /// resurrected by a straggler. Returns the new generation.
    pub fn invalidate(&self) -> u64 {
        let generation = self
            .generation
            .fetch_add(1, Ordering::SeqCst)
            .saturating_add(1);
        self.cache.clear();
        if let Ok(mut models) = self.service_models.lock() {
            models.retain(|e| e.generation >= generation);
        }
        // drift evidence always accuses a specific winner; the flush just
        // removed every winner, so the evidence goes with them
        if let Ok(mut monitors) = self.service_drift.lock() {
            monitors.clear();
        }
        generation
    }

    /// Aggregate counters (admission, generation, model/series counts, and
    /// the cross-run transform-cache stats).
    pub fn stats(&self) -> ServiceStats {
        let (admitted, rejected, completed, in_flight) = self
            .service_queue
            .lock()
            .map(|q| (q.admitted, q.rejected, q.completed, q.in_flight))
            .unwrap_or((0, 0, 0, 0));
        let series = self.service_state.lock().map(|s| s.len()).unwrap_or(0);
        let models = self.service_models.lock().map(|m| m.len()).unwrap_or(0);
        ServiceStats {
            admitted,
            rejected,
            completed,
            in_flight,
            generation: self.generation.load(Ordering::SeqCst),
            series,
            models,
            evictions: self.evictions.load(Ordering::SeqCst),
            dropped_timestamps: self.dropped_timestamps.load(Ordering::SeqCst),
            reselections: self.reselections.load(Ordering::SeqCst),
            cache: self.cache.stats(),
        }
    }

    /// One worker's slice of a submitted batch.
    fn execute(
        &self,
        position: usize,
        request: &ServiceRequest,
    ) -> Result<ServiceResponse, PipelineError> {
        self.chaos_gate("service.submit", position as u64)?;
        match request {
            ServiceRequest::Fit { series } => self.fit_series(series).map(ServiceResponse::Fit),
            ServiceRequest::Predict { series, horizon } => self
                .predict_series(series, *horizon)
                .map(ServiceResponse::Predict),
        }
    }

    /// Shared chaos gate for the service's control-plane sites
    /// (`service.submit`, `observe.append`, `drift.update`,
    /// `reselect.swap`), keyed so a seeded plan perturbs the same calls in
    /// serial and parallel schedules.
    fn chaos_gate(&self, site: &str, k: u64) -> Result<(), PipelineError> {
        if autoai_chaos::enabled() {
            match autoai_chaos::inject(site, k) {
                Some(autoai_chaos::Fault::Panic) => {
                    // tscheck:allow(panic): deliberate chaos fault injection
                    panic!("chaos: injected fault at {site}")
                }
                Some(autoai_chaos::Fault::TypedError) => {
                    return Err(PipelineError::Crashed(format!(
                        "chaos: injected error at {site}"
                    )))
                }
                Some(autoai_chaos::Fault::Delay(ms)) => {
                    std::thread::sleep(Duration::from_millis(ms))
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Best-effort drift accounting for one observe: any panic (including
    /// an injected `drift.update` fault) degrades monitoring to `Stable`
    /// without touching the observe result.
    fn monitor_observation(
        &self,
        name: &str,
        new_rows: &[Vec<f64>],
        pre_len: usize,
        baseline_seed: Option<Vec<f64>>,
        record: &GrowthRecord,
    ) -> DriftVerdict {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.update_drift(name, new_rows, pre_len, baseline_seed, record)
        }))
        .unwrap_or(DriftVerdict::Stable)
    }

    /// Charge the series' drift monitor with one observe batch: one-step
    /// SMAPE of the live winner's forecast vs. the persistence baseline for
    /// every appended row, plus any quality issue the growth reported.
    fn update_drift(
        &self,
        name: &str,
        new_rows: &[Vec<f64>],
        pre_len: usize,
        baseline_seed: Option<Vec<f64>>,
        record: &GrowthRecord,
    ) -> DriftVerdict {
        if self
            .chaos_gate("drift.update", autoai_chaos::key(name) ^ pre_len as u64)
            .is_err()
        {
            // monitoring is best-effort: a faulted update skips this batch
            return DriftVerdict::Stable;
        }
        // the winner's forecast for exactly these positions, taken *before*
        // the drift lock: the forecast path may touch `service.models` and
        // the transform cache, while `service.drift` stays a leaf
        let winner_rows = self.winner_tail_rows(name, pre_len, new_rows.len());
        let Ok(mut monitors) = self.service_drift.lock() else {
            return DriftVerdict::Stable;
        };
        let idx = match monitors.iter().position(|m| m.name == name) {
            Some(i) => i,
            None => {
                monitors.push(SeriesMonitor {
                    name: name.to_string(),
                    monitor: DriftMonitor::new(self.drift_config.clone()),
                });
                monitors.len().saturating_sub(1)
            }
        };
        let Some(slot) = monitors.get_mut(idx) else {
            return DriftVerdict::Stable;
        };
        let mut verdict = slot.monitor.verdict();
        let mut prev = baseline_seed;
        for (step, actual) in new_rows.iter().enumerate() {
            let baseline_loss = match prev.as_deref() {
                // persistence baseline: the previous row predicts this one
                Some(p) => smape(actual, p),
                // very first row of the series: nothing to compare against
                None => f64::NAN,
            };
            let winner_loss = match winner_rows.as_ref().and_then(|rows| rows.get(step)) {
                Some(w) => smape(actual, w),
                // no live winner (or an unusable span): no evidence either
                // way — charge the winner exactly the baseline's loss
                None => baseline_loss,
            };
            verdict = slot.monitor.observe_step(winner_loss, baseline_loss);
            prev = Some(actual.clone());
        }
        if let Some(issue) = record.timestamp_issue.as_ref() {
            verdict = slot.monitor.note_quality(issue);
        }
        verdict
    }

    /// The live winner's forecast for stored positions
    /// `pre_len .. pre_len + appended` — the rows `observe` is about to
    /// score. `None` when no current-generation model exists for the
    /// series, the span is degenerate or absurdly long, or the forecast
    /// itself fails; the monitor then runs on baseline parity alone.
    fn winner_tail_rows(
        &self,
        name: &str,
        pre_len: usize,
        appended: usize,
    ) -> Option<Vec<Vec<f64>>> {
        // longest forecast the monitor will request of a stale winner
        const MAX_SPAN: usize = 256;
        let generation = self.generation.load(Ordering::SeqCst);
        let models = self.service_models.lock().ok()?;
        let entry = models
            .iter()
            .find(|e| e.series == name && e.generation == generation)?;
        let offset = pre_len.checked_sub(entry.fingerprint.rows())?;
        let span = offset.checked_add(appended)?;
        if span == 0 || span > MAX_SPAN {
            return None;
        }
        // the guard is not dropped during a caught unwind, so a panicking
        // predictor cannot poison `service.models`
        let forecast =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| entry.model.predict(span)))
                .ok()?
                .ok()?;
        if forecast.len() < span {
            return None;
        }
        Some((offset..span).map(|r| forecast.row(r)).collect())
    }

    /// Drift response: re-run pipeline selection for `name`, warm-started
    /// from the previous result, and swap the new winner in atomically only
    /// when the whole attempt succeeds. The old forecaster keeps serving
    /// throughout (no lock is held across the fit); any failure — chaos
    /// fault, panic, fit error, raced invalidation — abandons the attempt
    /// and leaves every stored structure exactly as it was.
    fn reselect_series(&self, name: &str) {
        let generation = self.generation.load(Ordering::SeqCst);
        let swapped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.try_reselect(name, generation)
        }))
        .unwrap_or(false);
        if swapped {
            self.reselections.fetch_add(1, Ordering::SeqCst);
            // the accused winner is gone: the replacement starts from a
            // clean slate and must re-earn the warm-up gate
            if let Ok(mut monitors) = self.service_drift.lock() {
                if let Some(slot) = monitors.iter_mut().find(|m| m.name == name) {
                    slot.monitor.reset();
                }
            }
            self.enforce_cache_budget();
        }
    }

    /// One warm re-selection attempt; `true` only when a new winner was
    /// swapped in.
    fn try_reselect(&self, name: &str, generation: u64) -> bool {
        // chaos site `reselect.swap` fires before any state is read: a
        // fault abandons the attempt and the old winner keeps serving
        if self
            .chaos_gate("reselect.swap", autoai_chaos::key(name) ^ generation)
            .is_err()
        {
            return false;
        }
        // warm priors: the previous ranking, best first
        let priors: Vec<String> = {
            let Ok(models) = self.service_models.lock() else {
                return false;
            };
            match models
                .iter()
                .find(|e| e.series == name && e.generation == generation)
            {
                Some(entry) => entry
                    .report
                    .ranking
                    .iter()
                    .map(|(pipeline, _)| pipeline.clone())
                    .collect(),
                None => return false,
            }
        };
        if priors.is_empty() {
            return false;
        }
        let frame = {
            let Ok(state) = self.service_state.lock() else {
                return false;
            };
            match state.iter().find(|s| s.name == name) {
                Some(slot) => slot.frame.clone(),
                None => return false,
            }
        };
        // restricted pool: the previous top ranks plus the ZeroModel anchor
        // — the warm search revisits proven contenders, not the whole table
        let mut pool: Vec<String> = priors.iter().take(3).cloned().collect();
        if !pool.iter().any(|p| p == "ZeroModel") {
            pool.push("ZeroModel".to_string());
        }
        let mut config = self.request_config();
        config.pipeline_names = Some(pool);
        config.tdaub.warm_priors = Some(priors);
        let before = self.cache.stats();
        let mut model = AutoAITS::with_config(config).with_transform_cache(Arc::clone(&self.cache));
        if model.fit(&frame).is_err() {
            // the degradation ladder already absorbed pipeline failures
            // inside `fit`; an error here means even the ladder could not
            // produce a forecaster — the old winner keeps serving
            return false;
        }
        let after = self.cache.stats();
        let Ok(report) = build_report(name, &model, before, after, true) else {
            return false;
        };
        // atomic swap: dead on arrival if an invalidation raced the attempt
        if self.generation.load(Ordering::SeqCst) != generation {
            return false;
        }
        let Ok(mut models) = self.service_models.lock() else {
            return false;
        };
        models.retain(|e| e.series != name && e.generation == generation);
        models.push(ModelEntry {
            series: name.to_string(),
            fingerprint: frame.fingerprint(),
            generation,
            model,
            report,
            touched: self.touch_clock.fetch_add(1, Ordering::SeqCst),
            // the report comes from a restricted warm pool; a clean
            // explicit fit must never replay it
            tainted: true,
        });
        true
    }

    /// Evict model-cache entries — least-recently-touched first, oldest
    /// generation breaking ties — until the resident cache estimate fits
    /// [`ServiceLimits::max_cache_bytes`]. Each eviction also purges the
    /// entry's pointer-keyed transform-cache state; when no entries remain
    /// and the transform cache alone still exceeds the budget, it is
    /// flushed outright (counted as one eviction).
    fn enforce_cache_budget(&self) {
        let Some(budget) = self.limits.max_cache_bytes else {
            return;
        };
        loop {
            let resident = self.cache.resident_bytes();
            let victim = {
                let Ok(models) = self.service_models.lock() else {
                    return;
                };
                let held: u64 = models.iter().map(entry_bytes).sum();
                if resident.saturating_add(held) <= budget {
                    return;
                }
                models
                    .iter()
                    .min_by_key(|e| (e.generation, e.touched))
                    .map(|e| (e.series.clone(), e.fingerprint.clone()))
            };
            match victim {
                Some((series, fingerprint)) => {
                    {
                        let Ok(mut models) = self.service_models.lock() else {
                            return;
                        };
                        let before = models.len();
                        models.retain(|e| !(e.series == series && e.fingerprint == fingerprint));
                        if models.len() == before {
                            // raced with a concurrent swap; don't spin
                            return;
                        }
                    }
                    self.cache.purge_buffers(fingerprint.buffers());
                    self.evictions.fetch_add(1, Ordering::SeqCst);
                }
                None => {
                    if resident > budget {
                        self.cache.clear();
                        self.evictions.fetch_add(1, Ordering::SeqCst);
                    }
                    return;
                }
            }
        }
    }

    /// Per-request config: the service template with the admission limits'
    /// budgets filled in wherever the template leaves them open.
    fn request_config(&self) -> AutoAITSConfig {
        let mut config = self.config.clone();
        if config.tdaub.pipeline_time_budget.is_none() {
            config.tdaub.pipeline_time_budget = self.limits.soft_budget;
        }
        if config.tdaub.run_hard_deadline.is_none() {
            config.tdaub.run_hard_deadline = self.limits.hard_deadline;
        }
        config
    }

    /// Serve one fit request: replay on an exact fingerprint match (clean
    /// entries only), run the full selection against the shared cache
    /// otherwise.
    fn fit_series(&self, series: &str) -> Result<ServiceFitReport, PipelineError> {
        let frame = {
            let state = lock_or_poisoned(&self.service_state)?;
            match state.iter().find(|s| s.name == series) {
                // O(1): shares the stored buffers, which is exactly what
                // keys the cross-run caches
                Some(slot) => slot.frame.clone(),
                None => {
                    return Err(PipelineError::InvalidInput(format!(
                        "fit: unknown series `{series}`"
                    )))
                }
            }
        };
        let generation = self.generation.load(Ordering::SeqCst);
        let fingerprint = frame.fingerprint();
        let extends_previous_fit = {
            let models = lock_or_poisoned(&self.service_models)?;
            if let Some(entry) = models.iter().find(|e| {
                e.series == series
                    && e.generation == generation
                    && e.fingerprint == fingerprint
                    && !e.tainted
            }) {
                // exact replay: same data, same generation → no work at all
                let mut report = entry.report.clone();
                report.reused_model = true;
                return Ok(report);
            }
            models
                .iter()
                .find(|e| e.series == series)
                .is_some_and(|e| fingerprint.extends_as_prefix(&e.fingerprint))
        };
        // this fit is going to run: drain the issues `observe` accumulated
        // so the summary surfaces each of them exactly once
        let carried = {
            let mut state = lock_or_poisoned(&self.service_state)?;
            state
                .iter_mut()
                .find(|s| s.name == series)
                .map(|s| std::mem::take(&mut s.pending_issues))
                .unwrap_or_default()
        };
        let before = self.cache.stats();
        let mut model = AutoAITS::with_config(self.request_config())
            .with_transform_cache(Arc::clone(&self.cache))
            .with_carried_issues(carried.clone());
        if let Err(e) = model.fit(&frame) {
            // no summary was produced: restore the drained issues so the
            // next successful fit still surfaces them
            if !carried.is_empty() {
                if let Ok(mut state) = self.service_state.lock() {
                    if let Some(slot) = state.iter_mut().find(|s| s.name == series) {
                        let mut restored = carried;
                        restored.append(&mut slot.pending_issues);
                        slot.pending_issues = restored;
                    }
                }
            }
            return Err(e);
        }
        let after = self.cache.stats();
        let report = build_report(series, &model, before, after, extends_previous_fit)?;
        // dead-on-arrival check: an invalidation that raced this fit wins
        if self.generation.load(Ordering::SeqCst) == generation {
            let mut models = lock_or_poisoned(&self.service_models)?;
            models.retain(|e| e.series != series && e.generation == generation);
            models.push(ModelEntry {
                series: series.to_string(),
                fingerprint,
                generation,
                model,
                report: report.clone(),
                touched: self.touch_clock.fetch_add(1, Ordering::SeqCst),
                // a fit that ran under an active fault plan may carry a
                // degraded ranking; never replay it for a clean request
                tainted: autoai_chaos::enabled(),
            });
        }
        self.enforce_cache_budget();
        Ok(report)
    }

    /// Serve one predict request from the stored fitted system.
    fn predict_series(
        &self,
        series: &str,
        horizon: usize,
    ) -> Result<TimeSeriesFrame, PipelineError> {
        let generation = self.generation.load(Ordering::SeqCst);
        let mut models = lock_or_poisoned(&self.service_models)?;
        let entry = models
            .iter_mut()
            .find(|e| e.series == series && e.generation == generation)
            .ok_or(PipelineError::NotFitted)?;
        entry.touched = self.touch_clock.fetch_add(1, Ordering::SeqCst);
        entry.model.predict(horizon)
    }
}

/// Assemble the service-level fit report from a fitted system's summary
/// plus the request's cache-counter deltas.
fn build_report(
    series: &str,
    model: &AutoAITS,
    before: CacheStats,
    after: CacheStats,
    extends_previous_fit: bool,
) -> Result<ServiceFitReport, PipelineError> {
    let summary = model.summary().ok_or(PipelineError::NotFitted)?;
    Ok(ServiceFitReport {
        series: series.to_string(),
        best_pipeline: summary.best_pipeline.clone(),
        ranking: summary
            .reports
            .iter()
            .map(|r| (r.name.clone(), r.projected_score))
            .collect(),
        holdout_smape: summary.holdout_smape,
        degradation: summary.degradation,
        incremental_fits: summary.execution.incremental_fits,
        fits_avoided: summary.execution.fits_avoided,
        duplicate_fits: summary.execution.duplicate_fits,
        cache_hits: after.hits.saturating_sub(before.hits),
        cache_misses: after.misses.saturating_sub(before.misses),
        cache_extensions: after.extensions.saturating_sub(before.extensions),
        extends_previous_fit,
        reused_model: false,
        quality_issues: summary.quality.issues.clone(),
    })
}

/// Bytes the model cache keeps alive for one entry: the fitted frame's
/// stored values (`rows x series x 8`). Fitted pipeline internals are not
/// counted — the frame dominates.
fn entry_bytes(entry: &ModelEntry) -> u64 {
    let rows = entry.fingerprint.rows() as u64;
    let cols = entry.fingerprint.buffers().len() as u64;
    rows.saturating_mul(cols).saturating_mul(8)
}

/// Poisoned service locks become a typed error, never a propagated panic.
fn lock_or_poisoned<'a, T>(
    lock: &'a OrderedMutex<T>,
) -> Result<autoai_linalg::sync::OrderedMutexGuard<'a, T>, PipelineError> {
    lock.lock()
        .map_err(|_| PipelineError::Crashed(format!("service lock `{}` poisoned", lock.name())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoai_tsdata::GrowthKind;

    fn seasonal_rows(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![20.0 + 5.0 * (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin()])
            .collect()
    }

    fn fast_service() -> ForecastService {
        ForecastService::new(AutoAITSConfig {
            pipeline_names: Some(vec![
                "MT2RForecaster".into(),
                "HW-Additive".into(),
                "ZeroModel".into(),
            ]),
            ..Default::default()
        })
    }

    #[test]
    fn unknown_series_is_typed_invalid_input() {
        let svc = fast_service();
        assert!(matches!(
            svc.fit("nope"),
            Err(PipelineError::InvalidInput(_))
        ));
        assert!(matches!(
            svc.observe("nope", &[vec![1.0]]),
            Err(PipelineError::InvalidInput(_))
        ));
    }

    #[test]
    fn predict_before_fit_is_not_fitted() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        assert!(matches!(
            svc.predict("cpu", 4),
            Err(PipelineError::NotFitted)
        ));
    }

    #[test]
    fn fit_then_predict_roundtrip() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        let report = svc.fit("cpu").unwrap();
        assert!(!report.best_pipeline.is_empty());
        assert!(!report.reused_model);
        let f = svc.predict("cpu", 6).unwrap();
        assert_eq!(f.len(), 6);
        assert_eq!(f.n_series(), 1);
    }

    #[test]
    fn identical_fit_replays_from_the_model_cache() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        let cold = svc.fit("cpu").unwrap();
        let warm = svc.fit("cpu").unwrap();
        assert!(warm.reused_model, "identical request must replay");
        assert_eq!(cold.best_pipeline, warm.best_pipeline);
        // replay must be bit-identical, not merely close
        for ((an, a), (bn, b)) in cold.ranking.iter().zip(warm.ranking.iter()) {
            assert_eq!(an, bn);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn observe_grows_in_place_between_requests() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        svc.fit("cpu").unwrap();
        let record = svc.observe("cpu", &seasonal_rows(24)).unwrap();
        assert_eq!(
            record.kind,
            GrowthKind::InPlace,
            "stored series must grow without severing identity: {record:?}"
        );
        assert!(record.grown.extends_as_prefix(&record.base));
        assert_eq!(svc.lineage("cpu").len(), 1);
        // the grown frame is what the next fit sees
        assert_eq!(svc.series_fingerprint("cpu"), Some(record.grown.clone()));
    }

    #[test]
    fn duplicate_fits_in_one_batch_run_once() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        let replies = svc.submit(&[
            ServiceRequest::Fit {
                series: "cpu".into(),
            },
            ServiceRequest::Fit {
                series: "cpu".into(),
            },
        ]);
        assert_eq!(replies.len(), 2);
        let reports: Vec<&ServiceFitReport> = replies
            .iter()
            .map(|r| match r {
                Ok(ServiceResponse::Fit(rep)) => rep,
                other => panic!("unexpected reply {other:?}"),
            })
            .collect();
        assert!(!reports.first().unwrap().reused_model);
        assert!(reports.get(1).unwrap().reused_model);
    }

    #[test]
    fn admission_control_rejects_past_the_batch_cap() {
        let svc = fast_service().with_limits(ServiceLimits {
            max_batch: 1,
            ..Default::default()
        });
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        let replies = svc.submit(&[
            ServiceRequest::Predict {
                series: "cpu".into(),
                horizon: 4,
            },
            ServiceRequest::Predict {
                series: "cpu".into(),
                horizon: 4,
            },
        ]);
        assert!(matches!(
            replies.get(1),
            Some(Err(PipelineError::BudgetExceeded))
        ));
        let stats = svc.stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn invalidate_flushes_models_and_cache() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        svc.fit("cpu").unwrap();
        assert_eq!(svc.stats().models, 1);
        let generation = svc.invalidate();
        assert_eq!(generation, 1);
        let stats = svc.stats();
        assert_eq!(stats.models, 0);
        assert_eq!(stats.cache.hits + stats.cache.misses, 0);
        // predictions no longer served from the flushed generation
        assert!(matches!(
            svc.predict("cpu", 4),
            Err(PipelineError::NotFitted)
        ));
        // but a fresh fit under the new generation works
        let report = svc.fit("cpu").unwrap();
        assert!(!report.reused_model);
        assert!(svc.predict("cpu", 4).is_ok());
    }

    #[test]
    fn mixed_batch_serves_fit_and_predict() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        svc.fit("cpu").unwrap();
        let replies = svc.submit(&[
            ServiceRequest::Predict {
                series: "cpu".into(),
                horizon: 3,
            },
            ServiceRequest::Fit {
                series: "cpu".into(),
            },
        ]);
        assert!(matches!(
            replies.first(),
            Some(Ok(ServiceResponse::Predict(_)))
        ));
        assert!(matches!(replies.get(1), Some(Ok(ServiceResponse::Fit(_)))));
    }

    /// A drift config aggressive enough to fire within a couple of observe
    /// batches on a clear level shift, without tripping on seasonal noise.
    fn touchy_drift() -> DriftConfig {
        DriftConfig {
            window: 12,
            min_observations: 4,
            cusum_slack: 2.0,
            cusum_suspect: 8.0,
            cusum_drift: 20.0,
            ratio_suspect: 1.3,
            quality_weight: 5.0,
        }
    }

    #[test]
    fn stationary_observes_never_reselect() {
        let svc = fast_service().with_drift_config(touchy_drift());
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        svc.fit("cpu").unwrap();
        for _ in 0..6 {
            svc.observe("cpu", &seasonal_rows(12)).unwrap();
        }
        assert_eq!(svc.stats().reselections, 0);
        let snap = svc.drift_snapshot("cpu").expect("monitor exists");
        assert_ne!(snap.verdict, DriftVerdict::Drifted);
    }

    #[test]
    fn level_shift_triggers_warm_reselection() {
        let svc = fast_service().with_drift_config(touchy_drift());
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        svc.fit("cpu").unwrap();
        // a hard level shift: the fitted winner keeps forecasting the old
        // regime while the zero-model baseline adapts row by row
        let shifted: Vec<Vec<f64>> = (0..48).map(|_| vec![900.0]).collect();
        for batch in shifted.chunks(8) {
            svc.observe("cpu", batch).unwrap();
            if svc.stats().reselections > 0 {
                break;
            }
        }
        assert!(
            svc.stats().reselections >= 1,
            "level shift must trigger re-selection: {:?}",
            svc.drift_snapshot("cpu")
        );
        // the swapped winner serves immediately and forecasts finitely
        let f = svc.predict("cpu", 4).unwrap();
        assert!(f.row(0).iter().all(|v| v.is_finite()));
        // the monitor was reset by the swap
        let snap = svc.drift_snapshot("cpu").expect("monitor exists");
        assert_eq!(snap.observations, 0);
    }

    #[test]
    fn cache_budget_evicts_and_counts() {
        let svc = fast_service().with_limits(ServiceLimits {
            max_cache_bytes: Some(1),
            ..Default::default()
        });
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        // the fit itself succeeds; the budget sweep then evicts the entry
        svc.fit("cpu").unwrap();
        let stats = svc.stats();
        assert!(stats.evictions >= 1, "budget of 1 byte must evict");
        assert_eq!(stats.models, 0);
        assert!(matches!(
            svc.predict("cpu", 4),
            Err(PipelineError::NotFitted)
        ));
        // refit works — eviction degrades capacity, never correctness
        assert!(svc.fit("cpu").is_ok());
    }

    #[test]
    fn generous_budget_keeps_models_resident() {
        let svc = fast_service().with_limits(ServiceLimits {
            max_cache_bytes: Some(64 * 1024 * 1024),
            ..Default::default()
        });
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        svc.fit("cpu").unwrap();
        let stats = svc.stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.models, 1);
    }

    #[test]
    fn dropped_timestamps_reach_stats_and_next_fit() {
        let svc = fast_service();
        // degenerate timestamps (no positive gap): no step can be inferred,
        // so untimestamped observes force the column to be dropped
        let rows = seasonal_rows(60);
        let ts: Vec<i64> = vec![100; 60];
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&rows).with_timestamps(ts))
            .unwrap();
        svc.fit("cpu").unwrap();
        let record = svc.observe("cpu", &seasonal_rows(3)).unwrap();
        assert_eq!(
            record.timestamp_issue,
            Some(QualityIssue::DroppedTimestamps(3))
        );
        assert_eq!(svc.stats().dropped_timestamps, 3);
        // the issue is carried into the next fit's quality report
        let report = svc.fit("cpu").unwrap();
        assert!(!report.reused_model);
        assert!(
            report
                .quality_issues
                .contains(&QualityIssue::DroppedTimestamps(3)),
            "carried issue missing from {:?}",
            report.quality_issues
        );
        // drained: the fit after that starts clean
        svc.observe("cpu", &seasonal_rows(1)).unwrap();
        let next = svc.fit("cpu").unwrap();
        assert_eq!(
            next.quality_issues
                .iter()
                .filter(|i| matches!(i, QualityIssue::DroppedTimestamps(3)))
                .count(),
            0
        );
    }

    #[test]
    fn interval_forecasts_served_from_the_winner() {
        let svc = fast_service();
        svc.ingest("cpu", TimeSeriesFrame::from_rows(&seasonal_rows(300)))
            .unwrap();
        svc.fit("cpu").unwrap();
        let interval = svc.predict_interval("cpu", 4, &[0.8]).unwrap();
        assert_eq!(interval.point().len(), 4);
        let (lower, upper) = interval.band(0).expect("one band requested");
        for r in 0..4 {
            let (lo, hi) = (lower.row(r), upper.row(r));
            for (l, h) in lo.iter().zip(&hi) {
                assert!(l.is_finite() && h.is_finite() && l <= h);
            }
        }
    }
}
