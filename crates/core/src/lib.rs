//! AutoAI-TS: zero-configuration automated time series forecasting.
//!
//! This crate is the paper's primary contribution — the orchestrator that
//! turns a raw 2-D array of time series into a trained, ready-to-predict
//! forecasting pipeline with **no configuration from the user**:
//!
//! 1. initial data **quality check** and basic cleaning (§4),
//! 2. an immediately-available **Zero Model** baseline,
//! 3. automatic **look-back window discovery** (§4.1),
//! 4. instantiation of the 10 heterogeneous **pipelines** (Table 6),
//! 5. **T-Daub** pipeline ranking with reverse progressive data allocation
//!    (§4.2, Algorithm 1),
//! 6. holdout evaluation and final **full-data retraining** of the winner.
//!
//! ```no_run
//! use autoai_ts::AutoAITS;
//!
//! // columns = series, rows = samples — drop the data in, call fit
//! let data: Vec<Vec<f64>> = (0..200).map(|i| vec![(i as f64 * 0.3).sin()]).collect();
//! let mut system = AutoAITS::new();
//! system.fit_rows(&data).unwrap();
//! let forecast = system.predict_rows(12).unwrap(); // 12 x n_series
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod online;
pub mod orchestrator;
pub mod progress;
pub mod service;

pub use online::{DriftConfig, DriftMonitor, DriftSnapshot, DriftVerdict};
pub use orchestrator::{AutoAITS, AutoAITSConfig, DegradationLevel, FitSummary};
pub use progress::{LogProgress, NoProgress, Progress, ProgressEvent};
pub use service::{
    ForecastService, ServiceFitReport, ServiceLimits, ServiceRequest, ServiceResponse, ServiceStats,
};

// Re-export the vocabulary types users need at the API boundary.
pub use autoai_pipelines::{
    ConformalCalibration, EnsembleForecaster, Forecaster, IntervalForecast, IntervalSource,
    PipelineContext, PipelineError, DEFAULT_LEVELS, PIPELINE_NAMES,
};
pub use autoai_tdaub::{
    EnsembleMember, EnsembleSelection, FailureKind, PipelineReport, TDaubConfig,
};
pub use autoai_tsdata::{Metric, TimeSeriesFrame};
