//! Progress reporting.
//!
//! §4: "During T-Daub evaluation of pipelines, user is provided with the
//! overall progress and performance of the evaluated pipelines, such
//! progress is displayed on command line as well as on the web-UI." The
//! CLI/web surfaces are replaced by a [`Progress`] sink trait; the bench
//! harness and examples plug in [`LogProgress`] for stderr output.

use crate::orchestrator::DegradationLevel;

/// One step of the zero-conf process.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// Data quality check finished (number of issues found).
    QualityChecked {
        /// Number of quality issues detected.
        issues: usize,
    },
    /// The Zero Model baseline is trained and available.
    ZeroModelReady,
    /// Look-back discovery finished.
    LookbackDiscovered {
        /// The selected look-back window.
        lookback: usize,
        /// All discovered candidate periods, best first.
        seasonal_periods: Vec<usize>,
    },
    /// Pipeline pool instantiated.
    PipelinesGenerated {
        /// Number of pipelines in the pool.
        count: usize,
    },
    /// A pipeline was excluded from the pool by the execution engine
    /// (crash, persistent errors, time budget, or non-finite scores).
    PipelineExcluded {
        /// Name of the excluded pipeline.
        name: String,
        /// Human-readable failure description (the `FailureKind`).
        reason: String,
    },
    /// T-Daub finished ranking.
    TDaubFinished {
        /// Name of the winning pipeline.
        best: String,
        /// Total number of (pipeline, allocation) evaluations performed.
        evaluations: usize,
        /// Number of pipelines excluded by the execution engine.
        failures: usize,
    },
    /// Holdout evaluation of the winner.
    HoldoutScored {
        /// SMAPE on the held-out 20%.
        smape: f64,
    },
    /// `fit` climbed down the degradation ladder instead of failing: part
    /// or all of the pool was lost and the returned forecaster reflects the
    /// reported level. Emitted immediately before [`ProgressEvent::Ready`],
    /// and only when the level is not [`DegradationLevel::None`].
    Degraded {
        /// How far down the ladder the fit landed.
        level: DegradationLevel,
    },
    /// Final full-data retraining done; the system is ready to predict.
    Ready,
}

/// A sink for progress events.
pub trait Progress: Send + Sync {
    /// Receive one event.
    fn report(&self, event: &ProgressEvent);
}

/// Discards all events (the default).
pub struct NoProgress;

impl Progress for NoProgress {
    fn report(&self, _event: &ProgressEvent) {}
}

/// Writes events to stderr, one line each.
pub struct LogProgress;

impl Progress for LogProgress {
    fn report(&self, event: &ProgressEvent) {
        eprintln!("[autoai-ts] {event:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counter(AtomicUsize);

    impl Progress for Counter {
        fn report(&self, _: &ProgressEvent) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn sinks_receive_events() {
        let c = Counter(AtomicUsize::new(0));
        c.report(&ProgressEvent::ZeroModelReady);
        c.report(&ProgressEvent::Ready);
        assert_eq!(c.0.load(Ordering::Relaxed), 2);
        // the no-op sink must not panic
        NoProgress.report(&ProgressEvent::QualityChecked { issues: 0 });
    }
}
