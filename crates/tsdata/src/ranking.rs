//! Rank aggregation over benchmark results.
//!
//! Figures 6–15 of the paper compare toolkits by ranking them 1..K per
//! dataset on SMAPE (or training time), then reporting (a) the average rank
//! per toolkit and (b) a histogram of how many datasets each toolkit placed
//! at each rank. These helpers implement that aggregation, skipping
//! did-not-finish entries (reported as `0 (0)` in the paper's tables and
//! represented as `None` here).

/// Aggregated ranking for one competitor across many datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSummary {
    /// Competitor name.
    pub name: String,
    /// Mean rank over datasets where the competitor finished (lower = better).
    pub average_rank: f64,
    /// `histogram[r]` = number of datasets ranked at `r + 1`.
    pub histogram: Vec<usize>,
    /// Number of datasets the competitor finished on.
    pub completed: usize,
}

/// Rank one row of scores (one dataset): smallest score gets rank 1.
///
/// `None` means the competitor did not finish and receives no rank. Ties get
/// the average of the tied rank positions (competition style "1224" is NOT
/// used; fractional ties keep average-rank plots stable).
pub fn rank_rows(scores: &[Option<f64>]) -> Vec<Option<f64>> {
    let mut idx: Vec<usize> = (0..scores.len()).filter(|&i| scores[i].is_some()).collect();
    idx.sort_by(|&a, &b| {
        // idx holds only positions where scores is Some; a NaN score sorts
        // last under total_cmp instead of corrupting the order silently
        let (va, vb) = (scores[a].unwrap_or(f64::NAN), scores[b].unwrap_or(f64::NAN));
        va.total_cmp(&vb)
    });
    let mut ranks = vec![None; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        // find tie group [i, j)
        let mut j = i + 1;
        while j < idx.len()
            && (scores[idx[j]].unwrap_or(f64::NAN) - scores[idx[i]].unwrap_or(f64::NAN)).abs()
                < 1e-12
        {
            j += 1;
        }
        let avg_rank = ((i + 1 + j) as f64) / 2.0; // mean of ranks i+1 ..= j
        for &k in &idx[i..j] {
            ranks[k] = Some(avg_rank);
        }
        i = j;
    }
    ranks
}

/// Aggregate a score matrix (`rows` = datasets, `cols` = competitors) into
/// per-competitor rank summaries, ordered best (lowest average rank) first.
pub fn average_ranks(names: &[&str], score_matrix: &[Vec<Option<f64>>]) -> Vec<RankSummary> {
    let k = names.len();
    let mut sums = vec![0.0f64; k];
    let mut counts = vec![0usize; k];
    let mut hist = vec![vec![0usize; k]; k];
    for row in score_matrix {
        assert_eq!(row.len(), k, "score row width must equal competitor count");
        let ranks = rank_rows(row);
        for (c, r) in ranks.iter().enumerate() {
            if let Some(r) = r {
                sums[c] += r;
                counts[c] += 1;
                let bucket = (r.round() as usize).clamp(1, k) - 1;
                hist[c][bucket] += 1;
            }
        }
    }
    let mut out: Vec<RankSummary> = (0..k)
        .map(|c| RankSummary {
            name: names[c].to_string(),
            average_rank: if counts[c] == 0 {
                f64::INFINITY
            } else {
                sums[c] / counts[c] as f64
            },
            histogram: hist[c].clone(),
            completed: counts[c],
        })
        .collect();
    out.sort_by(|a, b| a.average_rank.total_cmp(&b.average_rank));
    out
}

/// Histogram of datasets-per-rank for one competitor column.
pub fn rank_histogram(summaries: &[RankSummary], name: &str) -> Option<Vec<usize>> {
    summaries
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.histogram.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranking() {
        let ranks = rank_rows(&[Some(3.0), Some(1.0), Some(2.0)]);
        assert_eq!(ranks, vec![Some(3.0), Some(1.0), Some(2.0)]);
    }

    #[test]
    fn dnf_gets_no_rank() {
        let ranks = rank_rows(&[Some(3.0), None, Some(1.0)]);
        assert_eq!(ranks, vec![Some(2.0), None, Some(1.0)]);
    }

    #[test]
    fn ties_are_averaged() {
        let ranks = rank_rows(&[Some(1.0), Some(1.0), Some(2.0)]);
        assert_eq!(ranks, vec![Some(1.5), Some(1.5), Some(3.0)]);
    }

    #[test]
    fn average_ranks_orders_best_first() {
        let names = ["a", "b", "c"];
        // b always best, a always worst
        let m = vec![
            vec![Some(10.0), Some(1.0), Some(5.0)],
            vec![Some(9.0), Some(2.0), Some(4.0)],
        ];
        let s = average_ranks(&names, &m);
        assert_eq!(s[0].name, "b");
        assert_eq!(s[0].average_rank, 1.0);
        assert_eq!(s[2].name, "a");
        assert_eq!(s[2].average_rank, 3.0);
    }

    #[test]
    fn histogram_counts_placements() {
        let names = ["a", "b"];
        let m = vec![
            vec![Some(1.0), Some(2.0)],
            vec![Some(2.0), Some(1.0)],
            vec![Some(1.0), Some(2.0)],
        ];
        let s = average_ranks(&names, &m);
        let a = s.iter().find(|x| x.name == "a").unwrap();
        assert_eq!(a.histogram, vec![2, 1]); // 2 firsts, 1 second
        assert_eq!(a.completed, 3);
    }

    #[test]
    fn competitor_never_finishing_ranks_last() {
        let names = ["a", "b"];
        let m = vec![vec![Some(1.0), None], vec![Some(2.0), None]];
        let s = average_ranks(&names, &m);
        assert_eq!(s[1].name, "b");
        assert!(s[1].average_rank.is_infinite());
        assert_eq!(s[1].completed, 0);
    }

    #[test]
    fn rank_histogram_lookup() {
        let names = ["a"];
        let m = vec![vec![Some(1.0)]];
        let s = average_ranks(&names, &m);
        assert_eq!(rank_histogram(&s, "a"), Some(vec![1]));
        assert_eq!(rank_histogram(&s, "zzz"), None);
    }
}
