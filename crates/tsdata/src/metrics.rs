//! Forecast accuracy metrics.
//!
//! The paper's evaluation uses **Symmetric Mean Absolute Percentage Error
//! (SMAPE)** throughout (§5.3), on the 0–200 scale (Table 4 reports values
//! like `200` for complete misses). The remaining metrics back internal
//! pipeline scoring and the influence vectors of look-back discovery.

/// Metric identifiers used when configuring pipeline scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Symmetric mean absolute percentage error, 0–200 (lower is better).
    Smape,
    /// Mean absolute error.
    Mae,
    /// Root mean squared error.
    Rmse,
    /// Mean absolute percentage error.
    Mape,
    /// Coefficient of determination (higher is better).
    R2,
}

impl Metric {
    /// Evaluate this metric on `(actual, predicted)`.
    pub fn eval(self, actual: &[f64], predicted: &[f64]) -> f64 {
        match self {
            Metric::Smape => smape(actual, predicted),
            Metric::Mae => mae(actual, predicted),
            Metric::Rmse => rmse(actual, predicted),
            Metric::Mape => mape(actual, predicted),
            Metric::R2 => r2_score(actual, predicted),
        }
    }

    /// True when larger values are better (only R²).
    pub fn higher_is_better(self) -> bool {
        matches!(self, Metric::R2)
    }
}

fn check(actual: &[f64], predicted: &[f64]) {
    assert_eq!(
        actual.len(),
        predicted.len(),
        "metric inputs must have equal length ({} vs {})",
        actual.len(),
        predicted.len()
    );
}

/// Symmetric mean absolute percentage error on the 0–200 scale:
/// `mean(200 * |F - A| / (|A| + |F|))`, with a 0 contribution when both
/// actual and forecast are 0. Returns 0 for empty input.
pub fn smape(actual: &[f64], predicted: &[f64]) -> f64 {
    check(actual, predicted);
    if actual.is_empty() {
        return 0.0;
    }
    let mut s = 0.0;
    for (&a, &f) in actual.iter().zip(predicted) {
        let denom = a.abs() + f.abs();
        if denom > 1e-12 {
            s += 200.0 * (f - a).abs() / denom;
        }
    }
    s / actual.len() as f64
}

/// Mean absolute error. 0 for empty input.
pub fn mae(actual: &[f64], predicted: &[f64]) -> f64 {
    check(actual, predicted);
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(predicted)
        .map(|(a, f)| (a - f).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Mean squared error. 0 for empty input.
pub fn mse(actual: &[f64], predicted: &[f64]) -> f64 {
    check(actual, predicted);
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(predicted)
        .map(|(a, f)| (a - f) * (a - f))
        .sum::<f64>()
        / actual.len() as f64
}

/// Root mean squared error.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> f64 {
    mse(actual, predicted).sqrt()
}

/// Mean absolute percentage error (%). Zero-actual samples are skipped.
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    check(actual, predicted);
    let mut s = 0.0;
    let mut n = 0usize;
    for (&a, &f) in actual.iter().zip(predicted) {
        if a.abs() > 1e-12 {
            s += 100.0 * (f - a).abs() / a.abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        s / n as f64
    }
}

/// Coefficient of determination R². 0 for degenerate (constant) actuals
/// unless predictions match exactly, in which case 1.
pub fn r2_score(actual: &[f64], predicted: &[f64]) -> f64 {
    check(actual, predicted);
    if actual.is_empty() {
        return 0.0;
    }
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|&a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, f)| (a - f) * (a - f))
        .sum();
    if ss_tot < 1e-14 {
        return if ss_res < 1e-14 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Typed error for the probabilistic metrics. The point metrics above
/// predate it and keep their panic-on-mismatch contract; interval claims
/// are easy to get silently wrong, so the probabilistic family rejects
/// every degenerate input loudly instead of folding it into the score.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricError {
    /// Inputs are empty.
    Empty,
    /// Input slices have different lengths.
    LengthMismatch {
        /// Length of the truth slice.
        actual: usize,
        /// Length of the offending forecast slice.
        predicted: usize,
    },
    /// A non-finite value appeared in the named input.
    NonFinite(&'static str),
    /// The requested quantile is outside the open interval (0, 1).
    InvalidQuantile(f64),
    /// An interval crosses (`lower > upper`) at the given index.
    Crossing(usize),
}

impl std::fmt::Display for MetricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricError::Empty => write!(f, "metric inputs are empty"),
            MetricError::LengthMismatch { actual, predicted } => {
                write!(
                    f,
                    "metric inputs differ in length ({actual} vs {predicted})"
                )
            }
            MetricError::NonFinite(which) => write!(f, "non-finite value in {which}"),
            MetricError::InvalidQuantile(q) => write!(f, "quantile {q} outside (0, 1)"),
            MetricError::Crossing(i) => write!(f, "interval crosses (lower > upper) at index {i}"),
        }
    }
}

impl std::error::Error for MetricError {}

fn check_pair(actual: &[f64], predicted: &[f64], which: &'static str) -> Result<(), MetricError> {
    if actual.is_empty() || predicted.is_empty() {
        return Err(MetricError::Empty);
    }
    if actual.len() != predicted.len() {
        return Err(MetricError::LengthMismatch {
            actual: actual.len(),
            predicted: predicted.len(),
        });
    }
    if actual.iter().any(|v| !v.is_finite()) {
        return Err(MetricError::NonFinite("actual"));
    }
    if predicted.iter().any(|v| !v.is_finite()) {
        return Err(MetricError::NonFinite(which));
    }
    Ok(())
}

/// Pinball (quantile) loss at quantile `q ∈ (0, 1)`:
/// `mean(q·(a−p)⁺ + (1−q)·(p−a)⁺)`. The proper scoring rule for a
/// quantile forecast — minimized in expectation by the true `q`-quantile.
pub fn pinball_loss(actual: &[f64], predicted: &[f64], q: f64) -> Result<f64, MetricError> {
    if !(q > 0.0 && q < 1.0) {
        return Err(MetricError::InvalidQuantile(q));
    }
    check_pair(actual, predicted, "predicted")?;
    let s: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(&a, &p)| {
            let d = a - p;
            if d >= 0.0 {
                q * d
            } else {
                (q - 1.0) * d
            }
        })
        .sum();
    Ok(s / actual.len() as f64)
}

/// Empirical coverage of an interval forecast: the fraction of actuals
/// falling inside `[lower, upper]` (inclusive). Rejects crossing bands.
pub fn interval_coverage(actual: &[f64], lower: &[f64], upper: &[f64]) -> Result<f64, MetricError> {
    check_pair(actual, lower, "lower")?;
    check_pair(actual, upper, "upper")?;
    for (i, (lo, hi)) in lower.iter().zip(upper).enumerate() {
        if lo > hi {
            return Err(MetricError::Crossing(i));
        }
    }
    let inside = actual
        .iter()
        .zip(lower.iter().zip(upper))
        .filter(|&(a, (lo, hi))| lo <= a && a <= hi)
        .count();
    Ok(inside as f64 / actual.len() as f64)
}

/// Continuous Ranked Probability Score of a Gaussian forecast, averaged
/// over the samples, via the closed form
/// `CRPS(N(μ,σ), a) = σ·[z(2Φ(z)−1) + 2φ(z) − 1/√π]` with `z = (a−μ)/σ`.
/// A zero-σ (point) forecast degenerates to the absolute error. Negative
/// `std` values are rejected as non-finite input.
pub fn crps(actual: &[f64], mean: &[f64], std: &[f64]) -> Result<f64, MetricError> {
    check_pair(actual, mean, "mean")?;
    check_pair(actual, std, "std")?;
    if std.iter().any(|s| *s < 0.0) {
        return Err(MetricError::NonFinite("std"));
    }
    let s: f64 = actual
        .iter()
        .zip(mean.iter().zip(std))
        .map(|(&a, (&mu, &sd))| {
            if sd <= 0.0 {
                (a - mu).abs()
            } else {
                let z = (a - mu) / sd;
                sd * (z * (2.0 * normal_cdf(z) - 1.0) + 2.0 * normal_pdf(z)
                    - 1.0 / std::f64::consts::PI.sqrt())
            }
        })
        .sum();
    Ok(s / actual.len() as f64)
}

/// Standard normal density φ(x).
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF Φ(x) via the Abramowitz–Stegun §7.1.26 erf
/// approximation (absolute error < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * (x.abs() / std::f64::consts::SQRT_2));
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-(x * x) / 2.0).exp();
    if x >= 0.0 {
        0.5 * (1.0 + erf)
    } else {
        0.5 * (1.0 - erf)
    }
}

/// Standard normal quantile Φ⁻¹(p) via the Acklam rational approximation
/// (relative error < 1.2e-9). `p` is clamped to `[1e-12, 1 − 1e-12]` so the
/// result is always finite.
pub fn normal_quantile(p: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        let num = C.iter().fold(0.0, |acc, c| acc * q + c);
        let den = D.iter().fold(0.0, |acc, d| acc * q + d) * q + 1.0;
        num / den
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        let num = A.iter().fold(0.0, |acc, a| acc * r + a) * q;
        let den = B.iter().fold(0.0, |acc, b| acc * r + b) * r + 1.0;
        num / den
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_forecast_scores() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(smape(&a, &a), 0.0);
        assert_eq!(mae(&a, &a), 0.0);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(mape(&a, &a), 0.0);
        assert_eq!(r2_score(&a, &a), 1.0);
    }

    #[test]
    fn smape_is_bounded_by_200() {
        // opposite-sign forecast maximizes smape at exactly 200
        assert!((smape(&[1.0], &[-1.0]) - 200.0).abs() < 1e-12);
        assert!((smape(&[5.0], &[0.0]) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn smape_symmetry() {
        let a = [3.0, 7.0];
        let f = [4.0, 5.0];
        assert!((smape(&a, &f) - smape(&f, &a)).abs() < 1e-12);
    }

    #[test]
    fn smape_zero_pairs_contribute_zero() {
        assert_eq!(smape(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn mae_rmse_hand_values() {
        let a = [1.0, 2.0, 3.0];
        let f = [2.0, 2.0, 5.0];
        assert!((mae(&a, &f) - 1.0).abs() < 1e-12);
        assert!((rmse(&a, &f) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let a = [0.0, 10.0];
        let f = [5.0, 11.0];
        assert!((mape(&a, &f) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let a = [1.0, 2.0, 3.0];
        let f = [2.0, 2.0, 2.0];
        assert!(r2_score(&a, &f).abs() < 1e-12);
    }

    #[test]
    fn r2_constant_actuals() {
        assert_eq!(r2_score(&[2.0, 2.0], &[2.0, 2.0]), 1.0);
        assert_eq!(r2_score(&[2.0, 2.0], &[3.0, 3.0]), 0.0);
    }

    #[test]
    fn metric_enum_dispatch() {
        let a = [1.0, 2.0];
        let f = [1.5, 2.0];
        assert_eq!(Metric::Mae.eval(&a, &f), mae(&a, &f));
        assert!(Metric::R2.higher_is_better());
        assert!(!Metric::Smape.higher_is_better());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let _ = smape(&[1.0], &[1.0, 2.0]);
    }

    // ---- probabilistic metrics: golden values ----

    #[test]
    fn pinball_golden_values() {
        // a=10, p=8, q=0.9: under-forecast → 0.9 * 2 = 1.8
        assert!((pinball_loss(&[10.0], &[8.0], 0.9).unwrap() - 1.8).abs() < 1e-12);
        // a=10, p=12, q=0.9: over-forecast → 0.1 * 2 = 0.2
        assert!((pinball_loss(&[10.0], &[12.0], 0.9).unwrap() - 0.2).abs() < 1e-12);
        // symmetric at the median: q=0.5 halves the MAE
        let a = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 5.0];
        assert!((pinball_loss(&a, &p, 0.5).unwrap() - 0.5 * mae(&a, &p)).abs() < 1e-12);
        // exact forecast → zero loss at any quantile
        assert_eq!(pinball_loss(&a, &a, 0.25).unwrap(), 0.0);
    }

    #[test]
    fn interval_coverage_golden_values() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let lo = [0.0, 2.5, 2.0, 0.0];
        let hi = [2.0, 3.0, 4.0, 3.0];
        // inside: 1 ∈ [0,2], 3 ∈ [2,4]; outside: 2 < 2.5, 4 > 3
        assert!((interval_coverage(&a, &lo, &hi).unwrap() - 0.5).abs() < 1e-12);
        // boundaries are inclusive
        assert_eq!(interval_coverage(&[1.0], &[1.0], &[1.0]).unwrap(), 1.0);
    }

    #[test]
    fn crps_golden_values() {
        // hit at the mean: CRPS(N(0,1), 0) = σ(2φ(0) − 1/√π)
        let expected = 2.0 * normal_pdf(0.0) - 1.0 / std::f64::consts::PI.sqrt();
        assert!((crps(&[0.0], &[0.0], &[1.0]).unwrap() - expected).abs() < 1e-6);
        // scale equivariance: CRPS(N(0,σ), 0) = σ·CRPS(N(0,1), 0)
        let scaled = crps(&[0.0], &[0.0], &[3.0]).unwrap();
        assert!((scaled - 3.0 * expected).abs() < 1e-6);
        // zero sigma degenerates to absolute error
        assert!((crps(&[5.0], &[3.0], &[0.0]).unwrap() - 2.0).abs() < 1e-12);
        // far miss ≈ |a − μ| (the distribution barely matters)
        let far = crps(&[100.0], &[0.0], &[1.0]).unwrap();
        assert!((far - 100.0).abs() < 1.0, "{far}");
    }

    #[test]
    fn crps_rewards_sharp_calibrated_forecasts() {
        // truth near the mean: the sharper (smaller σ) forecast wins
        let sharp = crps(&[0.1], &[0.0], &[0.5]).unwrap();
        let vague = crps(&[0.1], &[0.0], &[5.0]).unwrap();
        assert!(sharp < vague, "sharp {sharp} vs vague {vague}");
    }

    #[test]
    fn probabilistic_metrics_reject_degenerate_inputs() {
        // empty
        assert_eq!(pinball_loss(&[], &[], 0.5), Err(MetricError::Empty));
        assert_eq!(interval_coverage(&[], &[], &[]), Err(MetricError::Empty));
        assert_eq!(crps(&[], &[], &[]), Err(MetricError::Empty));
        // length mismatch
        assert!(matches!(
            pinball_loss(&[1.0], &[1.0, 2.0], 0.5),
            Err(MetricError::LengthMismatch { .. })
        ));
        // NaN-bearing truth is a typed error (PR 2's SMAPE NaN contract)
        assert_eq!(
            pinball_loss(&[f64::NAN], &[1.0], 0.5),
            Err(MetricError::NonFinite("actual"))
        );
        assert_eq!(
            crps(&[f64::NAN], &[1.0], &[1.0]),
            Err(MetricError::NonFinite("actual"))
        );
        // NaN forecast is rejected too, never folded into the score
        assert_eq!(
            interval_coverage(&[1.0], &[f64::NAN], &[2.0]),
            Err(MetricError::NonFinite("lower"))
        );
        // quantile domain
        assert_eq!(
            pinball_loss(&[1.0], &[1.0], 0.0),
            Err(MetricError::InvalidQuantile(0.0))
        );
        assert_eq!(
            pinball_loss(&[1.0], &[1.0], 1.0),
            Err(MetricError::InvalidQuantile(1.0))
        );
        // crossing bands
        assert_eq!(
            interval_coverage(&[1.0, 2.0], &[0.0, 3.0], &[2.0, 2.5]),
            Err(MetricError::Crossing(1))
        );
        // negative sigma
        assert_eq!(
            crps(&[1.0], &[1.0], &[-1.0]),
            Err(MetricError::NonFinite("std"))
        );
    }

    #[test]
    fn normal_helpers_are_consistent() {
        // CDF golden points
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959963985) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-1.959963985) - 0.025).abs() < 1e-6);
        // quantile inverts the CDF across the useful range
        for p in [0.01, 0.025, 0.1, 0.5, 0.8, 0.9, 0.975, 0.995] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-5, "p={p} z={z}");
        }
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert_eq!(normal_quantile(0.5), 0.0);
        // extreme inputs stay finite
        assert!(normal_quantile(0.0).is_finite());
        assert!(normal_quantile(1.0).is_finite());
    }
}
