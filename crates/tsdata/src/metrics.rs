//! Forecast accuracy metrics.
//!
//! The paper's evaluation uses **Symmetric Mean Absolute Percentage Error
//! (SMAPE)** throughout (§5.3), on the 0–200 scale (Table 4 reports values
//! like `200` for complete misses). The remaining metrics back internal
//! pipeline scoring and the influence vectors of look-back discovery.

/// Metric identifiers used when configuring pipeline scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Symmetric mean absolute percentage error, 0–200 (lower is better).
    Smape,
    /// Mean absolute error.
    Mae,
    /// Root mean squared error.
    Rmse,
    /// Mean absolute percentage error.
    Mape,
    /// Coefficient of determination (higher is better).
    R2,
}

impl Metric {
    /// Evaluate this metric on `(actual, predicted)`.
    pub fn eval(self, actual: &[f64], predicted: &[f64]) -> f64 {
        match self {
            Metric::Smape => smape(actual, predicted),
            Metric::Mae => mae(actual, predicted),
            Metric::Rmse => rmse(actual, predicted),
            Metric::Mape => mape(actual, predicted),
            Metric::R2 => r2_score(actual, predicted),
        }
    }

    /// True when larger values are better (only R²).
    pub fn higher_is_better(self) -> bool {
        matches!(self, Metric::R2)
    }
}

fn check(actual: &[f64], predicted: &[f64]) {
    assert_eq!(
        actual.len(),
        predicted.len(),
        "metric inputs must have equal length ({} vs {})",
        actual.len(),
        predicted.len()
    );
}

/// Symmetric mean absolute percentage error on the 0–200 scale:
/// `mean(200 * |F - A| / (|A| + |F|))`, with a 0 contribution when both
/// actual and forecast are 0. Returns 0 for empty input.
pub fn smape(actual: &[f64], predicted: &[f64]) -> f64 {
    check(actual, predicted);
    if actual.is_empty() {
        return 0.0;
    }
    let mut s = 0.0;
    for (&a, &f) in actual.iter().zip(predicted) {
        let denom = a.abs() + f.abs();
        if denom > 1e-12 {
            s += 200.0 * (f - a).abs() / denom;
        }
    }
    s / actual.len() as f64
}

/// Mean absolute error. 0 for empty input.
pub fn mae(actual: &[f64], predicted: &[f64]) -> f64 {
    check(actual, predicted);
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(predicted)
        .map(|(a, f)| (a - f).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Mean squared error. 0 for empty input.
pub fn mse(actual: &[f64], predicted: &[f64]) -> f64 {
    check(actual, predicted);
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(predicted)
        .map(|(a, f)| (a - f) * (a - f))
        .sum::<f64>()
        / actual.len() as f64
}

/// Root mean squared error.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> f64 {
    mse(actual, predicted).sqrt()
}

/// Mean absolute percentage error (%). Zero-actual samples are skipped.
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    check(actual, predicted);
    let mut s = 0.0;
    let mut n = 0usize;
    for (&a, &f) in actual.iter().zip(predicted) {
        if a.abs() > 1e-12 {
            s += 100.0 * (f - a).abs() / a.abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        s / n as f64
    }
}

/// Coefficient of determination R². 0 for degenerate (constant) actuals
/// unless predictions match exactly, in which case 1.
pub fn r2_score(actual: &[f64], predicted: &[f64]) -> f64 {
    check(actual, predicted);
    if actual.is_empty() {
        return 0.0;
    }
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|&a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, f)| (a - f) * (a - f))
        .sum();
    if ss_tot < 1e-14 {
        return if ss_res < 1e-14 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_forecast_scores() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(smape(&a, &a), 0.0);
        assert_eq!(mae(&a, &a), 0.0);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(mape(&a, &a), 0.0);
        assert_eq!(r2_score(&a, &a), 1.0);
    }

    #[test]
    fn smape_is_bounded_by_200() {
        // opposite-sign forecast maximizes smape at exactly 200
        assert!((smape(&[1.0], &[-1.0]) - 200.0).abs() < 1e-12);
        assert!((smape(&[5.0], &[0.0]) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn smape_symmetry() {
        let a = [3.0, 7.0];
        let f = [4.0, 5.0];
        assert!((smape(&a, &f) - smape(&f, &a)).abs() < 1e-12);
    }

    #[test]
    fn smape_zero_pairs_contribute_zero() {
        assert_eq!(smape(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn mae_rmse_hand_values() {
        let a = [1.0, 2.0, 3.0];
        let f = [2.0, 2.0, 5.0];
        assert!((mae(&a, &f) - 1.0).abs() < 1e-12);
        assert!((rmse(&a, &f) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let a = [0.0, 10.0];
        let f = [5.0, 11.0];
        assert!((mape(&a, &f) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let a = [1.0, 2.0, 3.0];
        let f = [2.0, 2.0, 2.0];
        assert!(r2_score(&a, &f).abs() < 1e-12);
    }

    #[test]
    fn r2_constant_actuals() {
        assert_eq!(r2_score(&[2.0, 2.0], &[2.0, 2.0]), 1.0);
        assert_eq!(r2_score(&[2.0, 2.0], &[3.0, 3.0]), 0.0);
    }

    #[test]
    fn metric_enum_dispatch() {
        let a = [1.0, 2.0];
        let f = [1.5, 2.0];
        assert_eq!(Metric::Mae.eval(&a, &f), mae(&a, &f));
        assert!(Metric::R2.higher_is_better());
        assert!(!Metric::Smape.higher_is_better());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let _ = smape(&[1.0], &[1.0, 2.0]);
    }
}
