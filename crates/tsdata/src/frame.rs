//! The 2-D time series container shared by every pipeline component.
//!
//! Storage is backed by `Arc`-shared column buffers plus a `(start, rows)`
//! view window, so `slice`, `tail`, and `select` are O(1): they bump a
//! reference count and adjust the window instead of copying samples. This is
//! the substrate for T-Daub's allocation loop, where every
//! (pipeline × allocation) unit takes a prefix or suffix view of the same
//! training split. Mutation goes through copy-on-write: `series_mut`
//! compacts the view into uniquely-owned buffers first, and `append` does
//! the same **only when it has to** — a frame that uniquely owns its full
//! buffers grows its tail in place, keeping the `Arc` addresses (and hence
//! the [`FrameFingerprint`]) stable so suffix-growth detection survives an
//! observe/append cycle. Each growth returns a [`GrowthRecord`] naming the
//! before/after fingerprints and whether identity was preserved.

use std::sync::Arc;

use crate::quality::QualityIssue;
use crate::timestamps::{infer_frequency, regular_step, Frequency};

/// A 2-D time series frame: columns are individual series, rows are samples.
///
/// This mirrors the paper's sklearn-compatible input/output schema (§3):
/// `fit` and `predict` "expect a 2D array in which columns represent
/// different time series and rows represent samples". Timestamps are
/// optional; when absent, indices `0..n` are used (the paper regenerates
/// timestamps for dirty datasets the same way).
///
/// Equality compares the *visible* contents (names, windowed values,
/// windowed timestamps), not buffer identity: a zero-copy view equals a
/// deep copy of the same rows.
#[derive(Debug, Clone)]
pub struct TimeSeriesFrame {
    /// Per-series column names (defaults to `series_0`, `series_1`, …).
    names: Arc<Vec<String>>,
    /// Column-major shared buffers: `columns[c]` holds every sample of
    /// series `c` that any view over this buffer can expose.
    columns: Vec<Arc<Vec<f64>>>,
    /// Optional timestamps in epoch seconds, one per buffer row.
    timestamps: Option<Arc<Vec<i64>>>,
    /// First visible buffer row.
    start: usize,
    /// Number of visible rows.
    rows: usize,
}

/// Stable identity of a frame view: the addresses of its shared column
/// buffers plus the `(start, rows)` window. Two frames with equal
/// fingerprints expose bitwise-identical data (they view the same buffers),
/// which makes this usable as a cache key. The converse does not hold —
/// equal data in distinct buffers fingerprints differently — so callers use
/// it for memoization, never for semantic equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FrameFingerprint {
    buffers: Vec<usize>,
    start: usize,
    rows: usize,
}

impl FrameFingerprint {
    /// First visible buffer row of the fingerprinted view.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The addresses of the viewed column buffers, in column order. Only
    /// meaningful for cache bookkeeping (grouping views of the same data).
    pub fn buffers(&self) -> &[usize] {
        &self.buffers
    }

    /// Number of visible rows of the fingerprinted view.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when both fingerprints view the same underlying buffers.
    pub fn same_buffers(&self, other: &FrameFingerprint) -> bool {
        self.buffers == other.buffers
    }

    /// True when `old` is a strict suffix of `self` over the same buffers:
    /// both views end at the same buffer row and `self` starts earlier.
    /// This is the reuse condition for reverse (most-recent-first) T-Daub
    /// allocations, where each allocation prepends older rows.
    pub fn extends_as_suffix(&self, old: &FrameFingerprint) -> bool {
        self.same_buffers(old)
            && self.start < old.start
            && self.start + self.rows == old.start + old.rows
    }

    /// True when `old` is a strict prefix of `self` over the same buffers:
    /// both views start at the same buffer row and `self` is longer. This is
    /// the reuse condition for forward (oldest-first) allocations.
    pub fn extends_as_prefix(&self, old: &FrameFingerprint) -> bool {
        self.same_buffers(old) && self.start == old.start && self.rows > old.rows
    }
}

/// How a frame acquired its new tail during [`TimeSeriesFrame::append`] or
/// [`TimeSeriesFrame::extended`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrowthKind {
    /// The tail was written into the existing uniquely-owned buffers. Every
    /// `Arc` allocation is reused (`Arc::as_ptr` is the address of the
    /// `ArcInner`, which is stable even when the `Vec` inside reallocates its
    /// data heap), so the grown fingerprint `extends_as_prefix` the base one
    /// and fingerprint-keyed cache entries for the base stay valid.
    InPlace,
    /// The frame was shared or a narrowed view, so growth first compacted it
    /// onto fresh buffers (copy-on-write). Buffer identity was severed;
    /// callers holding fingerprint-keyed caches must use the lineage in the
    /// returned [`GrowthRecord`] instead of pointer continuity.
    Rebased,
}

/// Lineage record returned by the growth paths: the fingerprints before and
/// after, whether buffer identity survived, and any timestamp degradation.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthRecord {
    /// Fingerprint of the view before growth.
    pub base: FrameFingerprint,
    /// Fingerprint of the grown frame.
    pub grown: FrameFingerprint,
    /// Whether the buffers survived (`InPlace`) or were re-based.
    pub kind: GrowthKind,
    /// Rows shared between the base and grown views (the base length).
    pub shared_rows: usize,
    /// Set when appending untimestamped rows forced the timestamp column to
    /// be dropped because no regular step could be inferred.
    pub timestamp_issue: Option<QualityIssue>,
}

impl GrowthRecord {
    /// True when buffer identity survived growth, i.e. the grown fingerprint
    /// `extends_as_prefix` the base fingerprint.
    pub fn identity_preserved(&self) -> bool {
        self.kind == GrowthKind::InPlace
    }
}

impl TimeSeriesFrame {
    /// Build a univariate frame from a single series.
    pub fn univariate(values: Vec<f64>) -> Self {
        let rows = values.len();
        Self {
            names: Arc::new(vec!["series_0".to_string()]),
            columns: vec![Arc::new(values)],
            timestamps: None,
            start: 0,
            rows,
        }
    }

    /// Build a multivariate frame from column vectors. Panics on ragged input.
    pub fn from_columns(columns: Vec<Vec<f64>>) -> Self {
        let rows = columns.first().map_or(0, Vec::len);
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "TimeSeriesFrame::from_columns: ragged columns"
        );
        let names = (0..columns.len()).map(|i| format!("series_{i}")).collect();
        Self {
            names: Arc::new(names),
            columns: columns.into_iter().map(Arc::new).collect(),
            timestamps: None,
            start: 0,
            rows,
        }
    }

    /// Build from row-major data (`rows x cols`), the layout users provide.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::from_columns(Vec::new());
        }
        let ncols = rows[0].len();
        let mut columns = vec![Vec::with_capacity(rows.len()); ncols];
        for row in rows {
            assert_eq!(row.len(), ncols, "TimeSeriesFrame::from_rows: ragged rows");
            for (c, &v) in row.iter().enumerate() {
                columns[c].push(v);
            }
        }
        Self::from_columns(columns)
    }

    /// Attach timestamps (epoch seconds, one per row). Panics on length mismatch.
    pub fn with_timestamps(mut self, ts: Vec<i64>) -> Self {
        assert_eq!(
            ts.len(),
            self.len(),
            "timestamp length must equal number of rows"
        );
        // The fresh timestamp vector covers exactly the visible rows, so the
        // view window must be re-anchored onto owned value buffers too.
        self.make_owned();
        self.timestamps = Some(Arc::new(ts));
        self
    }

    /// Attach column names. Panics on length mismatch.
    pub fn with_names(mut self, names: Vec<String>) -> Self {
        assert_eq!(
            names.len(),
            self.n_series(),
            "name count must equal number of series"
        );
        self.names = Arc::new(names);
        self
    }

    /// Generate regular timestamps starting at `start` with `step_secs` spacing.
    pub fn with_regular_timestamps(self, start: i64, step_secs: i64) -> Self {
        let n = self.len();
        self.with_timestamps((0..n as i64).map(|i| start + i * step_secs).collect())
    }

    /// Number of samples (rows) visible through this view.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the frame holds no samples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of series (columns).
    pub fn n_series(&self) -> usize {
        self.columns.len()
    }

    /// Borrow series `c` as a slice of the visible rows.
    pub fn series(&self, c: usize) -> &[f64] {
        &self.columns[c][self.start..self.start + self.rows]
    }

    /// Iterate over all series as slices of the visible rows.
    pub fn series_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.columns
            .iter()
            .map(|col| &col[self.start..self.start + self.rows])
    }

    /// Mutable borrow of series `c`. Triggers copy-on-write: the whole frame
    /// is first compacted into uniquely-owned buffers so no other view
    /// observes the mutation.
    pub fn series_mut(&mut self, c: usize) -> &mut [f64] {
        self.make_owned();
        Arc::make_mut(&mut self.columns[c]).as_mut_slice()
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Timestamps for the visible rows, if attached.
    pub fn timestamps(&self) -> Option<&[i64]> {
        self.timestamps
            .as_ref()
            .map(|t| &t[self.start..self.start + self.rows])
    }

    /// Infer the sampling frequency from timestamps (median inter-arrival).
    pub fn frequency(&self) -> Option<Frequency> {
        self.timestamps().and_then(infer_frequency)
    }

    /// Row `r` across all series, in column order.
    pub fn row(&self, r: usize) -> Vec<f64> {
        assert!(r < self.rows, "row index out of bounds");
        self.columns.iter().map(|c| c[self.start + r]).collect()
    }

    /// Slice rows `[start, end)` into a new frame view. O(1): shares the
    /// underlying buffers and narrows the window; no samples are copied.
    /// Out-of-range bounds clamp to the frame length.
    pub fn slice(&self, start: usize, end: usize) -> Self {
        let end = end.min(self.rows);
        let start = start.min(end);
        Self {
            names: Arc::clone(&self.names),
            columns: self.columns.iter().map(Arc::clone).collect(),
            timestamps: self.timestamps.as_ref().map(Arc::clone),
            start: self.start + start,
            rows: end - start,
        }
    }

    /// The last `n` rows (fewer when the frame is shorter). O(1) view.
    pub fn tail(&self, n: usize) -> Self {
        self.slice(self.rows.saturating_sub(n), self.rows)
    }

    /// Select a single series into a new univariate frame view. O(1): the
    /// column buffer is shared, not copied.
    pub fn select(&self, c: usize) -> Self {
        Self {
            names: Arc::new(vec![self.names[c].clone()]),
            columns: vec![Arc::clone(&self.columns[c])],
            timestamps: self.timestamps.as_ref().map(Arc::clone),
            start: self.start,
            rows: self.rows,
        }
    }

    /// Append the rows of `other` (must have same number of series).
    ///
    /// When this frame uniquely owns its full buffers (no sibling views
    /// alive, window covers the whole allocation) the tail is written **in
    /// place**: the `Arc` allocations are reused, so the fingerprint after
    /// the call `extends_as_prefix` the fingerprint before it and
    /// fingerprint-keyed caches stay warm across an observe/append cycle.
    /// Otherwise the frame is first compacted onto fresh buffers
    /// (copy-on-write — sibling views are unaffected) and the returned
    /// [`GrowthRecord`] reports `Rebased` so callers can track lineage
    /// explicitly instead of losing identity silently.
    ///
    /// Timestamps: when `other` carries none but this frame does, the
    /// timestamp column is extended by the inferred regular step when the
    /// spacing is recognisable; only when it is genuinely unknown are the
    /// timestamps dropped, reported via
    /// [`QualityIssue::DroppedTimestamps`] in the record.
    pub fn append(&mut self, other: &TimeSeriesFrame) -> GrowthRecord {
        assert_eq!(
            self.n_series(),
            other.n_series(),
            "append: series count mismatch"
        );
        let base = self.fingerprint();
        let shared_rows = self.rows;
        let kind = if self.uniquely_owns_full_buffers() {
            GrowthKind::InPlace
        } else {
            self.make_owned();
            GrowthKind::Rebased
        };
        for (col, extra) in self.columns.iter_mut().zip(other.series_iter()) {
            Arc::make_mut(col).extend_from_slice(extra);
        }
        let appended = other.len();
        let timestamp_issue = match (&mut self.timestamps, other.timestamps()) {
            (Some(ts), Some(ots)) => {
                Arc::make_mut(ts).extend_from_slice(ots);
                None
            }
            // `other` is untimestamped: both growth paths above leave the
            // timestamp buffer covering exactly the visible rows (start == 0,
            // len == rows), so the whole buffer is the inference window.
            (Some(ts), None) => match regular_step(ts) {
                Some(step) => {
                    let last = ts.last().copied().unwrap_or(0);
                    Arc::make_mut(ts).extend((1..=appended as i64).map(|i| last + i * step));
                    None
                }
                None => {
                    self.timestamps = None;
                    Some(QualityIssue::DroppedTimestamps(appended))
                }
            },
            _ => None,
        };
        self.rows += appended;
        GrowthRecord {
            base,
            grown: self.fingerprint(),
            kind,
            shared_rows,
            timestamp_issue,
        }
    }

    /// Grow this frame by `new_rows` (row-major, one `Vec` per new sample),
    /// consuming it so unique buffer ownership is detectable — with a `&self`
    /// receiver the receiver itself would keep the `Arc`s alive and in-place
    /// growth could never fire. Returns the grown frame plus its
    /// [`GrowthRecord`]; when the consumed frame was the unique full-buffer
    /// owner the new fingerprint `extends_as_prefix` the old one.
    pub fn extended(self, new_rows: &[Vec<f64>]) -> (Self, GrowthRecord) {
        if new_rows.is_empty() {
            let fp = self.fingerprint();
            let shared_rows = self.rows;
            return (
                self,
                GrowthRecord {
                    base: fp.clone(),
                    grown: fp,
                    kind: GrowthKind::InPlace,
                    shared_rows,
                    timestamp_issue: None,
                },
            );
        }
        let tail = TimeSeriesFrame::from_rows(new_rows);
        let mut grown = self;
        let record = grown.append(&tail);
        (grown, record)
    }

    /// Compact this view into a standalone frame that uniquely owns exactly
    /// the visible rows. Fitted models persist small tails through this so a
    /// few look-back rows never pin the (much larger) training buffers alive
    /// — which would both leak memory and block the in-place growth path of
    /// [`TimeSeriesFrame::append`] on the next observe cycle.
    pub fn into_owned(mut self) -> Self {
        self.make_owned();
        self
    }

    /// True when this view can grow in place: the window covers each buffer
    /// from row 0 to its full length and every `Arc` is uniquely held (no
    /// strong or weak siblings), so extending the `Vec`s is invisible to any
    /// other frame and keeps every buffer address stable.
    fn uniquely_owns_full_buffers(&mut self) -> bool {
        if self.start != 0 {
            return false;
        }
        let rows = self.rows;
        if let Some(ts) = &mut self.timestamps {
            if ts.len() != rows || Arc::get_mut(ts).is_none() {
                return false;
            }
        }
        self.columns
            .iter_mut()
            .all(|col| col.len() == rows && Arc::get_mut(col).is_some())
    }

    /// Convert to row-major nested vectors (user-facing output shape).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.rows).map(|r| self.row(r)).collect()
    }

    /// True if any visible value is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.series_iter().any(|c| c.iter().any(|v| !v.is_finite()))
    }

    /// True if any visible value is strictly negative (gates log/Box-Cox
    /// transforms).
    pub fn has_negative(&self) -> bool {
        self.series_iter().any(|c| c.iter().any(|&v| v < 0.0))
    }

    /// Identity of this view for memoization: buffer addresses plus window.
    /// See [`FrameFingerprint`] for the guarantees this does and does not
    /// provide.
    pub fn fingerprint(&self) -> FrameFingerprint {
        FrameFingerprint {
            buffers: self
                .columns
                .iter()
                .map(|c| Arc::as_ptr(c) as usize)
                .collect(),
            start: self.start,
            rows: self.rows,
        }
    }

    /// True when this frame shares at least one column buffer with `other`
    /// (i.e. one is a zero-copy view derived from the other). Diagnostic
    /// helper for tests and cache instrumentation.
    pub fn shares_storage_with(&self, other: &TimeSeriesFrame) -> bool {
        self.columns
            .iter()
            .any(|a| other.columns.iter().any(|b| Arc::ptr_eq(a, b)))
    }

    /// Compact the view into uniquely-owned buffers holding exactly the
    /// visible rows, so subsequent `Arc::make_mut` calls never clone hidden
    /// data and mutations never leak into sibling views.
    fn make_owned(&mut self) {
        let (start, rows) = (self.start, self.rows);
        for col in &mut self.columns {
            if start != 0 || col.len() != rows || Arc::strong_count(col) != 1 {
                *col = Arc::new(col[start..start + rows].to_vec());
            }
        }
        if let Some(ts) = &mut self.timestamps {
            if start != 0 || ts.len() != rows || Arc::strong_count(ts) != 1 {
                *ts = Arc::new(ts[start..start + rows].to_vec());
            }
        }
        self.start = 0;
    }
}

impl PartialEq for TimeSeriesFrame {
    fn eq(&self, other: &Self) -> bool {
        *self.names == *other.names
            && self.rows == other.rows
            && self.n_series() == other.n_series()
            && self.series_iter().eq(other.series_iter())
            && self.timestamps() == other.timestamps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeSeriesFrame {
        TimeSeriesFrame::from_columns(vec![vec![1., 2., 3., 4.], vec![10., 20., 30., 40.]])
    }

    #[test]
    fn shape_accessors() {
        let f = sample();
        assert_eq!(f.len(), 4);
        assert_eq!(f.n_series(), 2);
        assert_eq!(f.series(1), &[10., 20., 30., 40.]);
        assert_eq!(f.row(2), vec![3., 30.]);
    }

    #[test]
    fn from_rows_matches_from_columns() {
        let f = TimeSeriesFrame::from_rows(&[vec![1., 10.], vec![2., 20.]]);
        assert_eq!(f.series(0), &[1., 2.]);
        assert_eq!(f.series(1), &[10., 20.]);
        assert_eq!(f.to_rows(), vec![vec![1., 10.], vec![2., 20.]]);
    }

    #[test]
    fn slicing_and_tail() {
        let f = sample();
        let s = f.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.series(0), &[2., 3.]);
        let t = f.tail(2);
        assert_eq!(t.series(1), &[30., 40.]);
        // out-of-range slicing clamps
        assert_eq!(f.slice(2, 99).len(), 2);
        assert_eq!(f.tail(99).len(), 4);
    }

    #[test]
    fn slice_is_zero_copy_view() {
        let f = sample();
        let s = f.slice(1, 4);
        assert!(s.shares_storage_with(&f));
        // a slice of a slice still shares the original buffers
        let ss = s.slice(1, 3);
        assert!(ss.shares_storage_with(&f));
        assert_eq!(ss.series(0), &[3., 4.]);
    }

    #[test]
    fn slice_equals_deep_copy() {
        let f = sample().with_regular_timestamps(0, 60);
        let view = f.slice(1, 3);
        let copy = TimeSeriesFrame::from_columns(vec![vec![2., 3.], vec![20., 30.]])
            .with_timestamps(vec![60, 120]);
        assert_eq!(view, copy);
    }

    #[test]
    fn mutation_does_not_leak_into_sibling_views() {
        let mut f = sample();
        let view = f.slice(0, 4);
        f.series_mut(0)[0] = 99.0;
        assert_eq!(f.series(0)[0], 99.0);
        assert_eq!(view.series(0)[0], 1.0);
        assert!(!f.shares_storage_with(&view));
    }

    #[test]
    fn mutating_a_view_does_not_touch_the_parent() {
        let f = sample();
        let mut view = f.slice(1, 3);
        view.series_mut(0)[0] = -5.0;
        assert_eq!(view.series(0), &[-5., 3.]);
        assert_eq!(f.series(0), &[1., 2., 3., 4.]);
    }

    #[test]
    fn fingerprint_tracks_view_windows() {
        let f = sample();
        let a = f.slice(1, 4);
        let b = f.slice(1, 4);
        let c = f.slice(0, 4);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        // reverse-allocation growth: c ends where a ends but starts earlier
        assert!(c.fingerprint().extends_as_suffix(&a.fingerprint()));
        assert!(!a.fingerprint().extends_as_suffix(&c.fingerprint()));
        // forward growth: a prefix view extended by later rows
        let p_old = f.slice(0, 2);
        let p_new = f.slice(0, 3);
        assert!(p_new.fingerprint().extends_as_prefix(&p_old.fingerprint()));
        // a deep copy has different buffers even with identical data
        let clone = TimeSeriesFrame::from_columns(vec![f.series(0).to_vec(), f.series(1).to_vec()]);
        assert!(!clone.fingerprint().same_buffers(&f.fingerprint()));
    }

    #[test]
    fn timestamps_roundtrip_through_slice() {
        let f = sample().with_regular_timestamps(1000, 60);
        assert_eq!(f.timestamps().unwrap(), &[1000, 1060, 1120, 1180]);
        let s = f.slice(1, 3);
        assert_eq!(s.timestamps().unwrap(), &[1060, 1120]);
    }

    #[test]
    fn with_timestamps_on_a_view_covers_visible_rows() {
        let f = sample();
        let s = f.slice(1, 3).with_timestamps(vec![7, 8]);
        assert_eq!(s.timestamps().unwrap(), &[7, 8]);
        assert_eq!(s.series(0), &[2., 3.]);
    }

    #[test]
    fn append_extends_rows() {
        let mut a = sample();
        let b = sample();
        a.append(&b);
        assert_eq!(a.len(), 8);
        assert_eq!(a.series(0)[4], 1.0);
    }

    #[test]
    fn append_in_place_preserves_buffer_identity() {
        // a freshly built frame uniquely owns its full buffers, so growth
        // must keep every Arc address stable and the fingerprint must extend
        let mut a = sample();
        let base = a.fingerprint();
        let rec = a.append(&sample());
        assert_eq!(rec.kind, GrowthKind::InPlace);
        assert!(rec.identity_preserved());
        assert_eq!(rec.base, base);
        assert_eq!(rec.grown, a.fingerprint());
        assert_eq!(rec.shared_rows, 4);
        assert!(a.fingerprint().extends_as_prefix(&base));
    }

    #[test]
    fn append_rebases_when_a_sibling_view_is_alive() {
        let mut a = sample();
        let view = a.slice(0, 2);
        let rec = a.append(&sample());
        assert_eq!(rec.kind, GrowthKind::Rebased);
        assert!(!rec.identity_preserved());
        assert!(!rec.grown.same_buffers(&rec.base));
        // the sibling view is untouched by the rebase
        assert_eq!(view.series(0), &[1., 2.]);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn append_to_a_view_copies_on_write() {
        let f = sample();
        let mut v = f.slice(1, 3);
        let rec = v.append(&f.slice(0, 1));
        assert_eq!(rec.kind, GrowthKind::Rebased);
        assert_eq!(v.series(0), &[2., 3., 1.]);
        // the original frame is untouched
        assert_eq!(f.series(0), &[1., 2., 3., 4.]);
    }

    #[test]
    fn append_without_timestamps_extends_by_inferred_step() {
        // the base frame has a recognisable 60s cadence, so untimestamped
        // rows get synthetic timestamps continuing that step
        let mut a = sample().with_regular_timestamps(0, 60);
        let b = sample();
        let rec = a.append(&b);
        assert!(rec.timestamp_issue.is_none());
        let ts = a.timestamps().unwrap();
        assert_eq!(ts.len(), 8);
        assert_eq!(&ts[4..], &[240, 300, 360, 420]);
    }

    #[test]
    fn append_without_timestamps_drops_them_when_spacing_is_unknown() {
        // a single timestamp carries no spacing information, so appending
        // untimestamped rows must drop the column and report it
        let mut a = TimeSeriesFrame::univariate(vec![5.0]).with_timestamps(vec![100]);
        let b = TimeSeriesFrame::univariate(vec![6.0, 7.0]);
        let rec = a.append(&b);
        assert!(a.timestamps().is_none());
        assert_eq!(
            rec.timestamp_issue,
            Some(QualityIssue::DroppedTimestamps(2))
        );
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn append_with_timestamps_extends_them() {
        let mut a = sample().with_regular_timestamps(0, 60);
        let b = sample().with_regular_timestamps(240, 60);
        a.append(&b);
        assert_eq!(a.timestamps().unwrap().len(), 8);
        assert_eq!(a.timestamps().unwrap()[4], 240);
    }

    #[test]
    fn extended_grows_in_place_and_links_lineage() {
        let f = sample();
        let base = f.fingerprint();
        let (g, rec) = f.extended(&[vec![5., 50.], vec![6., 60.]]);
        assert_eq!(rec.kind, GrowthKind::InPlace);
        assert!(g.fingerprint().extends_as_prefix(&base));
        assert_eq!(g.series(0), &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(g.series(1), &[10., 20., 30., 40., 50., 60.]);
        assert_eq!(rec.shared_rows, 4);
    }

    #[test]
    fn extended_with_no_rows_is_identity() {
        let f = sample();
        let fp = f.fingerprint();
        let (g, rec) = f.extended(&[]);
        assert_eq!(g.fingerprint(), fp);
        assert_eq!(rec.base, rec.grown);
        assert_eq!(rec.kind, GrowthKind::InPlace);
    }

    #[test]
    fn extended_rebases_when_shared_and_records_it() {
        let f = sample();
        let holder = f.clone(); // keeps the Arcs alive
        let (g, rec) = f.extended(&[vec![5., 50.]]);
        assert_eq!(rec.kind, GrowthKind::Rebased);
        assert!(!rec.grown.same_buffers(&rec.base));
        assert_eq!(holder.series(0), &[1., 2., 3., 4.]);
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn select_isolates_one_series() {
        let f = sample();
        let u = f.select(1);
        assert_eq!(u.n_series(), 1);
        assert_eq!(u.series(0), &[10., 20., 30., 40.]);
        // select is also zero-copy
        assert!(u.shares_storage_with(&f));
    }

    #[test]
    fn negative_and_non_finite_detection() {
        let mut f = sample();
        assert!(!f.has_negative());
        assert!(!f.has_non_finite());
        f.series_mut(0)[1] = -1.0;
        assert!(f.has_negative());
        f.series_mut(1)[0] = f64::NAN;
        assert!(f.has_non_finite());
    }

    #[test]
    fn non_finite_outside_the_view_is_invisible() {
        let mut base = sample();
        base.series_mut(0)[0] = f64::NAN;
        let v = base.slice(1, 4);
        assert!(!v.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_rejected() {
        let _ = TimeSeriesFrame::from_columns(vec![vec![1.], vec![1., 2.]]);
    }

    #[test]
    fn empty_frame() {
        let f = TimeSeriesFrame::from_columns(Vec::new());
        assert!(f.is_empty());
        assert_eq!(f.n_series(), 0);
    }
}
