//! The 2-D time series container shared by every pipeline component.

use crate::timestamps::{infer_frequency, Frequency};

/// A 2-D time series frame: columns are individual series, rows are samples.
///
/// This mirrors the paper's sklearn-compatible input/output schema (§3):
/// `fit` and `predict` "expect a 2D array in which columns represent
/// different time series and rows represent samples". Timestamps are
/// optional; when absent, indices `0..n` are used (the paper regenerates
/// timestamps for dirty datasets the same way).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesFrame {
    /// Per-series column names (defaults to `series_0`, `series_1`, …).
    names: Vec<String>,
    /// Column-major values: `values[c][r]` is sample `r` of series `c`.
    values: Vec<Vec<f64>>,
    /// Optional timestamps in epoch seconds, one per row.
    timestamps: Option<Vec<i64>>,
}

impl TimeSeriesFrame {
    /// Build a univariate frame from a single series.
    pub fn univariate(values: Vec<f64>) -> Self {
        Self {
            names: vec!["series_0".to_string()],
            values: vec![values],
            timestamps: None,
        }
    }

    /// Build a multivariate frame from column vectors. Panics on ragged input.
    pub fn from_columns(columns: Vec<Vec<f64>>) -> Self {
        if let Some(first) = columns.first() {
            let n = first.len();
            assert!(
                columns.iter().all(|c| c.len() == n),
                "TimeSeriesFrame::from_columns: ragged columns"
            );
        }
        let names = (0..columns.len()).map(|i| format!("series_{i}")).collect();
        Self {
            names,
            values: columns,
            timestamps: None,
        }
    }

    /// Build from row-major data (`rows x cols`), the layout users provide.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::from_columns(Vec::new());
        }
        let ncols = rows[0].len();
        let mut columns = vec![Vec::with_capacity(rows.len()); ncols];
        for row in rows {
            assert_eq!(row.len(), ncols, "TimeSeriesFrame::from_rows: ragged rows");
            for (c, &v) in row.iter().enumerate() {
                columns[c].push(v);
            }
        }
        Self::from_columns(columns)
    }

    /// Attach timestamps (epoch seconds, one per row). Panics on length mismatch.
    pub fn with_timestamps(mut self, ts: Vec<i64>) -> Self {
        assert_eq!(
            ts.len(),
            self.len(),
            "timestamp length must equal number of rows"
        );
        self.timestamps = Some(ts);
        self
    }

    /// Attach column names. Panics on length mismatch.
    pub fn with_names(mut self, names: Vec<String>) -> Self {
        assert_eq!(
            names.len(),
            self.n_series(),
            "name count must equal number of series"
        );
        self.names = names;
        self
    }

    /// Generate regular timestamps starting at `start` with `step_secs` spacing.
    pub fn with_regular_timestamps(self, start: i64, step_secs: i64) -> Self {
        let n = self.len();
        self.with_timestamps((0..n as i64).map(|i| start + i * step_secs).collect())
    }

    /// Number of samples (rows).
    pub fn len(&self) -> usize {
        self.values.first().map_or(0, Vec::len)
    }

    /// True when the frame holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of series (columns).
    pub fn n_series(&self) -> usize {
        self.values.len()
    }

    /// Borrow series `c` as a slice.
    pub fn series(&self, c: usize) -> &[f64] {
        &self.values[c]
    }

    /// Mutable borrow of series `c`.
    pub fn series_mut(&mut self, c: usize) -> &mut Vec<f64> {
        &mut self.values[c]
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Timestamps, if attached.
    pub fn timestamps(&self) -> Option<&[i64]> {
        self.timestamps.as_deref()
    }

    /// Infer the sampling frequency from timestamps (median inter-arrival).
    pub fn frequency(&self) -> Option<Frequency> {
        self.timestamps.as_deref().and_then(infer_frequency)
    }

    /// Row `r` across all series, in column order.
    pub fn row(&self, r: usize) -> Vec<f64> {
        self.values.iter().map(|c| c[r]).collect()
    }

    /// Slice rows `[start, end)` into a new frame (timestamps preserved).
    pub fn slice(&self, start: usize, end: usize) -> Self {
        let end = end.min(self.len());
        let start = start.min(end);
        Self {
            names: self.names.clone(),
            values: self.values.iter().map(|c| c[start..end].to_vec()).collect(),
            timestamps: self.timestamps.as_ref().map(|t| t[start..end].to_vec()),
        }
    }

    /// The last `n` rows (fewer when the frame is shorter).
    pub fn tail(&self, n: usize) -> Self {
        let len = self.len();
        self.slice(len.saturating_sub(n), len)
    }

    /// Select a single series into a new univariate frame.
    pub fn select(&self, c: usize) -> Self {
        Self {
            names: vec![self.names[c].clone()],
            values: vec![self.values[c].clone()],
            timestamps: self.timestamps.clone(),
        }
    }

    /// Append the rows of `other` (must have same number of series).
    pub fn append(&mut self, other: &TimeSeriesFrame) {
        assert_eq!(
            self.n_series(),
            other.n_series(),
            "append: series count mismatch"
        );
        for (c, col) in other.values.iter().enumerate() {
            self.values[c].extend_from_slice(col);
        }
        match (&mut self.timestamps, other.timestamps()) {
            (Some(ts), Some(ots)) => ts.extend_from_slice(ots),
            (Some(_), None) => self.timestamps = None,
            _ => {}
        }
    }

    /// Convert to row-major nested vectors (user-facing output shape).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.len()).map(|r| self.row(r)).collect()
    }

    /// True if any value is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.values.iter().any(|c| c.iter().any(|v| !v.is_finite()))
    }

    /// True if any value is strictly negative (gates log/Box-Cox transforms).
    pub fn has_negative(&self) -> bool {
        self.values.iter().any(|c| c.iter().any(|&v| v < 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeSeriesFrame {
        TimeSeriesFrame::from_columns(vec![vec![1., 2., 3., 4.], vec![10., 20., 30., 40.]])
    }

    #[test]
    fn shape_accessors() {
        let f = sample();
        assert_eq!(f.len(), 4);
        assert_eq!(f.n_series(), 2);
        assert_eq!(f.series(1), &[10., 20., 30., 40.]);
        assert_eq!(f.row(2), vec![3., 30.]);
    }

    #[test]
    fn from_rows_matches_from_columns() {
        let f = TimeSeriesFrame::from_rows(&[vec![1., 10.], vec![2., 20.]]);
        assert_eq!(f.series(0), &[1., 2.]);
        assert_eq!(f.series(1), &[10., 20.]);
        assert_eq!(f.to_rows(), vec![vec![1., 10.], vec![2., 20.]]);
    }

    #[test]
    fn slicing_and_tail() {
        let f = sample();
        let s = f.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.series(0), &[2., 3.]);
        let t = f.tail(2);
        assert_eq!(t.series(1), &[30., 40.]);
        // out-of-range slicing clamps
        assert_eq!(f.slice(2, 99).len(), 2);
        assert_eq!(f.tail(99).len(), 4);
    }

    #[test]
    fn timestamps_roundtrip_through_slice() {
        let f = sample().with_regular_timestamps(1000, 60);
        assert_eq!(f.timestamps().unwrap(), &[1000, 1060, 1120, 1180]);
        let s = f.slice(1, 3);
        assert_eq!(s.timestamps().unwrap(), &[1060, 1120]);
    }

    #[test]
    fn append_extends_rows() {
        let mut a = sample();
        let b = sample();
        a.append(&b);
        assert_eq!(a.len(), 8);
        assert_eq!(a.series(0)[4], 1.0);
    }

    #[test]
    fn append_without_timestamps_drops_them() {
        // appending untimestamped rows invalidates the timestamp column
        let mut a = sample().with_regular_timestamps(0, 60);
        let b = sample();
        a.append(&b);
        assert!(a.timestamps().is_none());
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn append_with_timestamps_extends_them() {
        let mut a = sample().with_regular_timestamps(0, 60);
        let b = sample().with_regular_timestamps(240, 60);
        a.append(&b);
        assert_eq!(a.timestamps().unwrap().len(), 8);
        assert_eq!(a.timestamps().unwrap()[4], 240);
    }

    #[test]
    fn select_isolates_one_series() {
        let f = sample();
        let u = f.select(1);
        assert_eq!(u.n_series(), 1);
        assert_eq!(u.series(0), &[10., 20., 30., 40.]);
    }

    #[test]
    fn negative_and_non_finite_detection() {
        let mut f = sample();
        assert!(!f.has_negative());
        assert!(!f.has_non_finite());
        f.series_mut(0)[1] = -1.0;
        assert!(f.has_negative());
        f.series_mut(1)[0] = f64::NAN;
        assert!(f.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_rejected() {
        let _ = TimeSeriesFrame::from_columns(vec![vec![1.], vec![1., 2.]]);
    }

    #[test]
    fn empty_frame() {
        let f = TimeSeriesFrame::from_columns(Vec::new());
        assert!(f.is_empty());
        assert_eq!(f.n_series(), 0);
    }
}
