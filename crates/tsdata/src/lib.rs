//! Time series data substrate for AutoAI-TS.
//!
//! The paper fixes the data semantics in §3: every pipeline, estimator and
//! transformer consumes and produces a **2-D array in which columns are
//! individual time series and rows are samples**; `predict` returns a 2-D
//! array whose rows are the `prediction_horizon` future values. This crate
//! provides that schema ([`TimeSeriesFrame`]), timestamp/frequency handling,
//! the input quality check that runs before anything else (§4), the SMAPE /
//! MAE / RMSE metric suite used in the evaluation (§5.3), temporal splits,
//! and the rank-aggregation helpers behind Figures 6–15.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod frame;
pub mod metrics;
pub mod quality;
pub mod ranking;
pub mod split;
pub mod timestamps;

pub use frame::{FrameFingerprint, GrowthKind, GrowthRecord, TimeSeriesFrame};
pub use metrics::{
    crps, interval_coverage, mae, mape, mse, normal_cdf, normal_pdf, normal_quantile, pinball_loss,
    r2_score, rmse, smape, Metric, MetricError,
};
pub use quality::{clean, quality_check, QualityIssue, QualityReport};
pub use ranking::{average_ranks, rank_histogram, rank_rows, RankSummary};
pub use split::{holdout_split, reverse_allocation, train_test_split};
pub use timestamps::{infer_frequency, regular_step, Frequency};
