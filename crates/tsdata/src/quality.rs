//! Input data quality checking and basic cleaning.
//!
//! §4: "Once the data is provided to the system, it performs an initial
//! quality check of the input data which includes looking for missing or NaN
//! values, unexpected characters or values such as strings in the time
//! series, it also checks if there are negative values so that system can
//! disable certain transformations such as log transform".
//!
//! In this Rust port the "strings in the series" case is caught at CSV parse
//! time (the datasets crate maps unparseable cells to NaN), so the quality
//! check sees every problem as a numeric issue.

use crate::frame::TimeSeriesFrame;
use crate::timestamps::irregularity;

/// One category of problem found in the input data.
#[derive(Debug, Clone, PartialEq)]
pub enum QualityIssue {
    /// NaN or infinite values present (count).
    Missing(usize),
    /// Negative values present (count); disables log/Box-Cox transforms.
    Negative(usize),
    /// Non-positive values present (count of zeros and negatives): the
    /// log-family transforms would have to shift or clamp them, so the
    /// `log_transform_safe` flag is cleared and any clamping downstream
    /// (see the transform crate's per-transform clamp counters) is a
    /// reported condition instead of silent distortion.
    NonPositiveForLog(usize),
    /// A series is constant (index of the series).
    ConstantSeries(usize),
    /// Timestamps are irregular (fraction of irregular gaps).
    IrregularTimestamps(f64),
    /// Timestamps are not strictly increasing.
    NonMonotonicTimestamps,
    /// The frame holds no samples at all.
    Empty,
    /// Appending untimestamped rows forced the timestamp column to be
    /// dropped because no regular step could be inferred (count of rows
    /// appended without timestamps). Reported by the frame growth paths.
    DroppedTimestamps(usize),
}

/// Summary of the initial input inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// All issues found, in detection order.
    pub issues: Vec<QualityIssue>,
    /// Count of NaN/infinite cells.
    pub missing_count: usize,
    /// Count of negative cells.
    pub negative_count: usize,
    /// Whether log-family transforms are safe: no non-positive values, so no
    /// offset shifting or clamping would be needed to keep the log finite.
    pub log_transform_safe: bool,
}

impl QualityReport {
    /// True when no issues were detected.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// The degraded assessment used when fault injection suppresses the real
/// scan: treat the frame as dirty (force a cleaning pass, forbid log
/// transforms) so downstream stages stay conservative but functional.
fn degraded_report() -> QualityReport {
    QualityReport {
        issues: vec![QualityIssue::Missing(1)],
        missing_count: 1,
        negative_count: 0,
        log_transform_safe: false,
    }
}

/// Inspect a frame and report data quality issues (non-destructive).
///
/// Chaos site `quality.assess`: keyed by the frame dimensions, so a seeded
/// plan perturbs the same frames in serial and parallel runs. A `Panic`
/// fault panics (the orchestrator degrades to the pessimistic report), a
/// `TypedError` fault returns the pessimistic report directly, a `Delay`
/// sleeps; NaN poisoning does not apply to an assessment.
pub fn quality_check(frame: &TimeSeriesFrame) -> QualityReport {
    if autoai_chaos::enabled() {
        let k = (frame.len() as u64) ^ ((frame.n_series() as u64) << 32);
        match autoai_chaos::inject("quality.assess", k) {
            Some(autoai_chaos::Fault::Panic) => {
                // tscheck:allow(panic): deliberate chaos fault injection
                panic!("chaos: injected quality-assessment failure")
            }
            Some(autoai_chaos::Fault::TypedError) => return degraded_report(),
            Some(autoai_chaos::Fault::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            _ => {}
        }
    }
    let mut issues = Vec::new();
    if frame.is_empty() {
        issues.push(QualityIssue::Empty);
        return QualityReport {
            issues,
            missing_count: 0,
            negative_count: 0,
            log_transform_safe: false,
        };
    }
    let mut missing = 0usize;
    let mut negative = 0usize;
    let mut nonpositive = 0usize;
    for c in 0..frame.n_series() {
        let s = frame.series(c);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in s {
            if !v.is_finite() {
                missing += 1;
            } else {
                if v < 0.0 {
                    negative += 1;
                }
                if v <= 0.0 {
                    nonpositive += 1;
                }
                min = min.min(v);
                max = max.max(v);
            }
        }
        // a single sample carries no variation information; flagging it as
        // "constant" would be noise on legitimate single-row frames
        if s.len() > 1 && min.is_finite() && (max - min).abs() < 1e-12 {
            issues.push(QualityIssue::ConstantSeries(c));
        }
    }
    if missing > 0 {
        issues.push(QualityIssue::Missing(missing));
    }
    if negative > 0 {
        issues.push(QualityIssue::Negative(negative));
    }
    if nonpositive > 0 {
        issues.push(QualityIssue::NonPositiveForLog(nonpositive));
    }
    if let Some(ts) = frame.timestamps() {
        if ts.windows(2).any(|w| w[1] <= w[0]) {
            issues.push(QualityIssue::NonMonotonicTimestamps);
        } else {
            let irr = irregularity(ts);
            if irr > 0.05 {
                issues.push(QualityIssue::IrregularTimestamps(irr));
            }
        }
    }
    QualityReport {
        issues,
        missing_count: missing,
        negative_count: negative,
        log_transform_safe: nonpositive == 0,
    }
}

/// Basic cleaning: linearly interpolate NaN/infinite cells per series
/// (edge gaps are filled with the nearest finite value). A frame whose
/// series is entirely non-finite is filled with zeros.
pub fn clean(frame: &TimeSeriesFrame) -> TimeSeriesFrame {
    let mut columns = Vec::with_capacity(frame.n_series());
    for c in 0..frame.n_series() {
        columns.push(interpolate_gaps(frame.series(c)));
    }
    let mut out = TimeSeriesFrame::from_columns(columns);
    if frame.n_series() > 0 {
        out = out.with_names(frame.names().to_vec());
    }
    if let Some(ts) = frame.timestamps() {
        out = out.with_timestamps(ts.to_vec());
    }
    out
}

/// Linear interpolation of non-finite gaps in a single series.
pub fn interpolate_gaps(series: &[f64]) -> Vec<f64> {
    let n = series.len();
    let mut out = series.to_vec();
    // locate finite anchors
    let finite: Vec<usize> = (0..n).filter(|&i| series[i].is_finite()).collect();
    if finite.is_empty() {
        return vec![0.0; n];
    }
    // leading edge
    out[..finite[0]].fill(series[finite[0]]);
    // trailing edge
    let last = finite[finite.len() - 1];
    out[last + 1..].fill(series[last]);
    // interior gaps
    for w in finite.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b > a + 1 {
            let va = series[a];
            let vb = series[b];
            for (i, o) in out.iter_mut().enumerate().take(b).skip(a + 1) {
                let t = (i - a) as f64 / (b - a) as f64;
                *o = va + t * (vb - va);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_frame_passes() {
        let f = TimeSeriesFrame::univariate(vec![1.0, 2.0, 3.0]);
        let r = quality_check(&f);
        assert!(r.is_clean());
        assert!(r.log_transform_safe);
    }

    #[test]
    fn missing_values_detected_and_cleaned() {
        let f = TimeSeriesFrame::univariate(vec![1.0, f64::NAN, 3.0]);
        let r = quality_check(&f);
        assert_eq!(r.missing_count, 1);
        assert!(r.issues.contains(&QualityIssue::Missing(1)));
        let c = clean(&f);
        assert_eq!(c.series(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn negatives_disable_log() {
        let f = TimeSeriesFrame::univariate(vec![1.0, -2.0, 3.0]);
        let r = quality_check(&f);
        assert!(!r.log_transform_safe);
        assert_eq!(r.negative_count, 1);
    }

    #[test]
    fn constant_series_flagged() {
        let f = TimeSeriesFrame::from_columns(vec![
            vec![5.0; 10],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
        ]);
        let r = quality_check(&f);
        assert!(r.issues.contains(&QualityIssue::ConstantSeries(0)));
        assert!(!r.issues.contains(&QualityIssue::ConstantSeries(1)));
    }

    #[test]
    fn irregular_timestamps_flagged() {
        // alternate ±15s jitter so nearly every gap deviates from the median
        let ts: Vec<i64> = (0..100)
            .map(|i| i * 60 + if i % 2 == 0 { 15 } else { -15 })
            .collect();
        let f =
            TimeSeriesFrame::univariate((0..100).map(|i| i as f64).collect()).with_timestamps(ts);
        let r = quality_check(&f);
        assert!(r
            .issues
            .iter()
            .any(|i| matches!(i, QualityIssue::IrregularTimestamps(_))));
    }

    #[test]
    fn non_monotonic_timestamps_flagged() {
        let f = TimeSeriesFrame::univariate(vec![1.0, 2.0, 3.0]).with_timestamps(vec![10, 5, 20]);
        let r = quality_check(&f);
        assert!(r.issues.contains(&QualityIssue::NonMonotonicTimestamps));
    }

    #[test]
    fn empty_frame_flagged() {
        let f = TimeSeriesFrame::from_columns(Vec::new());
        let r = quality_check(&f);
        assert!(r.issues.contains(&QualityIssue::Empty));
    }

    #[test]
    fn interpolation_handles_edges() {
        let s = [f64::NAN, f64::NAN, 2.0, f64::NAN, 4.0, f64::NAN];
        let out = interpolate_gaps(&s);
        assert_eq!(out, vec![2.0, 2.0, 2.0, 3.0, 4.0, 4.0]);
    }

    #[test]
    fn interpolation_all_nan_gives_zeros() {
        let out = interpolate_gaps(&[f64::NAN, f64::NAN]);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn zeros_clear_the_log_safety_flag_without_negatives() {
        let f = TimeSeriesFrame::univariate(vec![0.0, 1.0, 2.0]);
        let r = quality_check(&f);
        assert!(!r.log_transform_safe);
        assert_eq!(r.negative_count, 0);
        assert!(r.issues.contains(&QualityIssue::NonPositiveForLog(1)));
        // strictly positive data keeps the flag
        let ok = quality_check(&TimeSeriesFrame::univariate(vec![0.5, 1.0]));
        assert!(ok.log_transform_safe);
    }

    #[test]
    fn all_nan_column_is_reported_and_zero_filled_beside_healthy_ones() {
        let f = TimeSeriesFrame::from_columns(vec![
            vec![f64::NAN, f64::NAN, f64::NAN],
            vec![1.0, 2.0, 3.0],
        ]);
        let r = quality_check(&f);
        assert_eq!(r.missing_count, 3);
        let c = clean(&f);
        assert_eq!(c.series(0), &[0.0, 0.0, 0.0]);
        assert_eq!(c.series(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn constant_series_survives_cleaning_unchanged() {
        // gaps inside a constant series interpolate back to the constant —
        // cleaning must never zero-fill a series that has finite anchors
        let f = TimeSeriesFrame::from_columns(vec![vec![5.0, 5.0, f64::NAN, 5.0, 5.0]]);
        let c = clean(&f);
        assert_eq!(c.series(0), &[5.0; 5]);
        // and a fully constant series passes through bit-identically
        let g = TimeSeriesFrame::univariate(vec![7.25; 8]);
        assert_eq!(clean(&g).series(0), g.series(0));
    }

    #[test]
    fn single_row_frames_are_handled_without_noise() {
        let f = TimeSeriesFrame::univariate(vec![3.5]);
        let r = quality_check(&f);
        // one sample is not "constant" evidence and must not be flagged
        assert!(!r
            .issues
            .iter()
            .any(|i| matches!(i, QualityIssue::ConstantSeries(_))));
        assert_eq!(clean(&f).series(0), &[3.5]);
        assert_eq!(interpolate_gaps(&[2.0]), vec![2.0]);
        assert_eq!(interpolate_gaps(&[f64::NAN]), vec![0.0]);
    }

    #[test]
    fn series_shorter_than_any_lookback_still_check_and_clean() {
        let f = TimeSeriesFrame::univariate(vec![1.0, f64::NAN]);
        let r = quality_check(&f);
        assert_eq!(r.missing_count, 1);
        assert_eq!(clean(&f).series(0), &[1.0, 1.0]);
    }

    #[test]
    fn infinite_extremes_count_as_missing_and_interpolate_away() {
        let f = TimeSeriesFrame::univariate(vec![1.0, f64::INFINITY, 3.0, f64::NEG_INFINITY, 5.0]);
        let r = quality_check(&f);
        assert_eq!(r.missing_count, 2);
        // ±∞ must not poison min/max or the negative count
        assert_eq!(r.negative_count, 0);
        let c = clean(&f);
        assert_eq!(c.series(0), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(c.series(0).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn clean_preserves_timestamps_and_names() {
        let f = TimeSeriesFrame::univariate(vec![1.0, f64::NAN, 3.0])
            .with_regular_timestamps(0, 60)
            .with_names(vec!["cpu".into()]);
        let c = clean(&f);
        assert_eq!(c.timestamps().unwrap().len(), 3);
        assert_eq!(c.names()[0], "cpu");
    }
}
