//! Temporal splits, including T-Daub's reverse allocation.
//!
//! Time series data cannot be shuffled; all splits here are contiguous and
//! ordered. `reverse_allocation` produces the "latest data first" training
//! windows of Figure 3: every allocation ends at the end of the training set
//! and grows backwards, so each split always contains the most recent data.

use crate::frame::TimeSeriesFrame;

/// Split a frame into `(train, test)` where train holds `train_fraction`
/// of the rows (at least 1 row each when possible).
pub fn train_test_split(
    frame: &TimeSeriesFrame,
    train_fraction: f64,
) -> (TimeSeriesFrame, TimeSeriesFrame) {
    let n = frame.len();
    let cut = ((n as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
    let cut = cut.clamp(usize::from(n > 1), n.saturating_sub(usize::from(n > 1)));
    (frame.slice(0, cut), frame.slice(cut, n))
}

/// Split off the last `horizon` rows as a holdout: `(train, holdout)`.
pub fn holdout_split(
    frame: &TimeSeriesFrame,
    horizon: usize,
) -> (TimeSeriesFrame, TimeSeriesFrame) {
    let n = frame.len();
    let cut = n.saturating_sub(horizon);
    (frame.slice(0, cut), frame.slice(cut, n))
}

/// Row ranges `[start, end)` of T-Daub reverse allocations over a training
/// set of length `len`.
///
/// Allocation `i` (1-based) covers the **last** `min(i * allocation_size,
/// len)` rows, i.e. `[len - i*alloc, len)` — "each allocation is created
/// starting from the end of the training set and always contains the most
/// recent data" (§4.2). Generation stops once an allocation covers the whole
/// training set.
pub fn reverse_allocation(
    len: usize,
    allocation_size: usize,
    max_allocations: usize,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    if allocation_size == 0 || len == 0 {
        return out;
    }
    for i in 1..=max_allocations {
        let size = (i * allocation_size).min(len);
        out.push((len - size, len));
        if size == len {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> TimeSeriesFrame {
        TimeSeriesFrame::univariate((0..n).map(|i| i as f64).collect())
    }

    #[test]
    fn eighty_twenty_split() {
        let (tr, te) = train_test_split(&frame(100), 0.8);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
        // temporal order: test follows train
        assert_eq!(tr.series(0)[79], 79.0);
        assert_eq!(te.series(0)[0], 80.0);
    }

    #[test]
    fn split_always_leaves_data_both_sides_when_possible() {
        let (tr, te) = train_test_split(&frame(10), 0.0);
        assert_eq!(tr.len(), 1);
        assert_eq!(te.len(), 9);
        let (tr, te) = train_test_split(&frame(10), 1.0);
        assert_eq!(tr.len(), 9);
        assert_eq!(te.len(), 1);
    }

    #[test]
    fn holdout_takes_last_rows() {
        let (tr, ho) = holdout_split(&frame(50), 12);
        assert_eq!(tr.len(), 38);
        assert_eq!(ho.len(), 12);
        assert_eq!(ho.series(0)[0], 38.0);
    }

    #[test]
    fn holdout_larger_than_frame() {
        let (tr, ho) = holdout_split(&frame(5), 10);
        assert_eq!(tr.len(), 0);
        assert_eq!(ho.len(), 5);
    }

    #[test]
    fn reverse_allocation_contains_most_recent_data() {
        let allocs = reverse_allocation(100, 10, 5);
        assert_eq!(
            allocs,
            vec![(90, 100), (80, 100), (70, 100), (60, 100), (50, 100)]
        );
        // every allocation ends at the end of the training data
        assert!(allocs.iter().all(|&(_, e)| e == 100));
    }

    #[test]
    fn reverse_allocation_stops_at_full_coverage() {
        let allocs = reverse_allocation(25, 10, 5);
        assert_eq!(allocs, vec![(15, 25), (5, 25), (0, 25)]);
    }

    #[test]
    fn reverse_allocation_degenerate() {
        assert!(reverse_allocation(0, 10, 5).is_empty());
        assert!(reverse_allocation(10, 0, 5).is_empty());
        assert!(reverse_allocation(10, 5, 0).is_empty());
    }
}
