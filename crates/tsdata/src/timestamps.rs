//! Timestamp frequency inference.
//!
//! §4.1: "This assessment identifies the temporal frequency of the
//! observations using timestamp column e.g., observations on daily basis
//! (1D) or weekly basis (1W)". Frequency is inferred from the median
//! inter-arrival time, snapped to the nearest calendar unit.

/// Calendar sampling frequency of a time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Frequency {
    /// One observation per second.
    Seconds,
    /// One observation per minute.
    Minutes,
    /// One observation per hour.
    Hours,
    /// One observation per day.
    Days,
    /// One observation per week.
    Weeks,
    /// One observation per month (30.44 days nominal).
    Months,
    /// One observation per year (365.25 days nominal).
    Years,
}

impl Frequency {
    /// Nominal period of one observation, in seconds.
    pub fn seconds(self) -> f64 {
        match self {
            Frequency::Seconds => 1.0,
            Frequency::Minutes => 60.0,
            Frequency::Hours => 3_600.0,
            Frequency::Days => 86_400.0,
            Frequency::Weeks => 604_800.0,
            Frequency::Months => 2_629_800.0, // 365.25/12 days
            Frequency::Years => 31_557_600.0, // 365.25 days
        }
    }

    /// All frequencies, coarse to fine.
    pub fn all() -> [Frequency; 7] {
        [
            Frequency::Years,
            Frequency::Months,
            Frequency::Weeks,
            Frequency::Days,
            Frequency::Hours,
            Frequency::Minutes,
            Frequency::Seconds,
        ]
    }

    /// Short code used in logs (pandas-style: 1D, 1W, ...).
    pub fn code(self) -> &'static str {
        match self {
            Frequency::Seconds => "1S",
            Frequency::Minutes => "1T",
            Frequency::Hours => "1H",
            Frequency::Days => "1D",
            Frequency::Weeks => "1W",
            Frequency::Months => "1M",
            Frequency::Years => "1Y",
        }
    }
}

/// Infer frequency from epoch-second timestamps by snapping the **median**
/// inter-arrival to the nearest calendar unit (log-scale distance).
///
/// Returns `None` for fewer than 2 timestamps or non-increasing data.
pub fn infer_frequency(ts: &[i64]) -> Option<Frequency> {
    if ts.len() < 2 {
        return None;
    }
    let mut deltas: Vec<i64> = ts
        .windows(2)
        .map(|w| w[1] - w[0])
        .filter(|&d| d > 0)
        .collect();
    if deltas.is_empty() {
        return None;
    }
    deltas.sort_unstable();
    let median = deltas[deltas.len() / 2] as f64;
    let mut best = Frequency::Seconds;
    let mut best_dist = f64::INFINITY;
    for f in Frequency::all() {
        let d = (median.ln() - f.seconds().ln()).abs();
        if d < best_dist {
            best_dist = d;
            best = f;
        }
    }
    Some(best)
}

/// The inferred regular step in epoch seconds: the median positive
/// inter-arrival, returned only when the series has a recognisable
/// frequency (see [`infer_frequency`]). `None` when spacing is genuinely
/// unknown — fewer than 2 timestamps or no positive gap — which is the
/// signal that synthetic timestamp extension is impossible.
pub fn regular_step(ts: &[i64]) -> Option<i64> {
    infer_frequency(ts)?;
    let mut deltas: Vec<i64> = ts
        .windows(2)
        .map(|w| w[1] - w[0])
        .filter(|&d| d > 0)
        .collect();
    if deltas.is_empty() {
        return None;
    }
    deltas.sort_unstable();
    Some(deltas[deltas.len() / 2])
}

/// Fraction of inter-arrival gaps that deviate from the median by more than
/// 1% — a measure of sampling irregularity used by the detectors.
///
/// Like [`infer_frequency`], the median is taken over **positive** gaps
/// only, so a duplicate or backwards timestamp cannot skew the reference
/// period; non-positive gaps always count as irregular. A series with no
/// positive gap at all is maximally irregular.
pub fn irregularity(ts: &[i64]) -> f64 {
    if ts.len() < 3 {
        return 0.0;
    }
    let deltas: Vec<i64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
    let mut positive: Vec<i64> = deltas.iter().copied().filter(|&d| d > 0).collect();
    if positive.is_empty() {
        return 1.0;
    }
    positive.sort_unstable();
    let median = positive[positive.len() / 2] as f64;
    let irregular = deltas
        .iter()
        .filter(|&&d| d <= 0 || ((d as f64 - median) / median).abs() > 0.01)
        .count();
    irregular as f64 / (ts.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daily_data_detected() {
        let ts: Vec<i64> = (0..100).map(|i| i * 86_400).collect();
        assert_eq!(infer_frequency(&ts), Some(Frequency::Days));
    }

    #[test]
    fn minutely_data_detected() {
        let ts: Vec<i64> = (0..100).map(|i| 1_600_000_000 + i * 60).collect();
        assert_eq!(infer_frequency(&ts), Some(Frequency::Minutes));
    }

    #[test]
    fn monthly_data_snaps_despite_varying_month_lengths() {
        // 28..31-day months
        let lens = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
        let mut ts = vec![0i64];
        for _ in 0..4 {
            for &l in &lens {
                ts.push(ts.last().unwrap() + l * 86_400);
            }
        }
        assert_eq!(infer_frequency(&ts), Some(Frequency::Months));
    }

    #[test]
    fn hourly_detected() {
        let ts: Vec<i64> = (0..50).map(|i| i * 3_600).collect();
        assert_eq!(infer_frequency(&ts), Some(Frequency::Hours));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(infer_frequency(&[]), None);
        assert_eq!(infer_frequency(&[5]), None);
        assert_eq!(infer_frequency(&[5, 5, 5]), None); // non-increasing
    }

    #[test]
    fn irregularity_of_regular_series_is_zero() {
        let ts: Vec<i64> = (0..100).map(|i| i * 60).collect();
        assert_eq!(irregularity(&ts), 0.0);
    }

    #[test]
    fn irregularity_flags_jitter() {
        let mut ts: Vec<i64> = (0..100).map(|i| i * 60).collect();
        ts[50] += 30; // one displaced sample disturbs two gaps
        let irr = irregularity(&ts);
        assert!(irr > 0.0 && irr < 0.1, "irr = {irr}");
    }

    #[test]
    fn irregularity_median_ignores_backwards_timestamps() {
        // one backwards jump disturbs two gaps (one negative, one oversized);
        // the median must come from the positive gaps so the surrounding
        // regular cadence is not flagged
        let mut ts: Vec<i64> = (0..50).map(|i| i * 60).collect();
        ts[20] -= 7_200;
        let irr = irregularity(&ts);
        assert!(
            (irr - 2.0 / 49.0).abs() < 1e-12,
            "only the two disturbed gaps should be irregular, got {irr}"
        );
    }

    #[test]
    fn irregularity_with_duplicate_run_is_partial_not_total() {
        // a run of duplicated timestamps used to drive the all-gaps median
        // to zero and report total irregularity; only the duplicate gaps
        // (and none of the regular ones) should be flagged
        let ts: Vec<i64> = vec![0, 60, 120, 180, 180, 180, 180, 240, 300, 360];
        let irr = irregularity(&ts);
        assert!(
            (irr - 3.0 / 9.0).abs() < 1e-12,
            "three zero gaps out of nine, got {irr}"
        );
    }

    #[test]
    fn irregularity_of_fully_nonincreasing_series_is_total() {
        let ts: Vec<i64> = vec![100, 100, 100, 100];
        assert_eq!(irregularity(&ts), 1.0);
    }

    #[test]
    fn frequency_codes() {
        assert_eq!(Frequency::Days.code(), "1D");
        assert_eq!(Frequency::Minutes.code(), "1T");
    }
}
