//! Multilayer perceptron with manual backprop and Adam.

use autoai_linalg::{Matrix, Rng64};

/// Error raised by network construction or training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NnError {
    /// Human-readable description.
    pub message: String,
}

impl NnError {
    fn new(msg: impl Into<String>) -> Self {
        Self {
            message: msg.into(),
        }
    }
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "nn error: {}", self.message)
    }
}

impl std::error::Error for NnError {}

/// Hidden-layer activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    #[inline]
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    #[inline]
    fn grad(self, activated: f64) -> f64 {
        match self {
            Activation::Relu => {
                if activated > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - activated * activated,
        }
    }
}

/// Training objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Mean squared error; output layer has `n_outputs` units.
    Mse,
    /// Gaussian negative log-likelihood (DeepAR-style); the output layer has
    /// `2 * n_outputs` units interpreted as `(μ_i, log σ²_i)` pairs.
    GaussianNll,
}

/// Hyperparameters of the MLP.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden layer widths (e.g. `[40, 40]` for the DeepAR default).
    pub hidden: Vec<usize>,
    /// Hidden activation.
    pub activation: Activation,
    /// Training loss / output head.
    pub loss: Loss,
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// RNG seed (init + shuffling).
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![40, 40],
            activation: Activation::Relu,
            loss: Loss::Mse,
            epochs: 60,
            batch_size: 32,
            learning_rate: 1e-3,
            weight_decay: 1e-5,
            seed: 0,
        }
    }
}

/// Per-tensor Adam state.
#[derive(Debug, Clone)]
struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    fn new(len: usize) -> Self {
        Self {
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
        }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64, wd: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let t = self.t as f64;
        let bc1 = 1.0 - B1.powf(t);
        let bc2 = 1.0 - B2.powf(t);
        for i in 0..params.len() {
            let g = grads[i] + wd * params[i];
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * g;
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

/// A dense feed-forward network.
pub struct Mlp {
    config: MlpConfig,
    /// Layer weight matrices, `weights[l]` is `fan_out x fan_in` (row-major flat).
    weights: Vec<Vec<f64>>,
    biases: Vec<Vec<f64>>,
    /// `(fan_in, fan_out)` per layer.
    dims: Vec<(usize, usize)>,
    w_adam: Vec<Adam>,
    b_adam: Vec<Adam>,
    n_outputs: usize,
    feature_stats: Vec<(f64, f64)>,
    target_stats: Vec<(f64, f64)>,
}

impl Mlp {
    /// New unfitted network.
    pub fn new(config: MlpConfig) -> Self {
        Self {
            config,
            weights: Vec::new(),
            biases: Vec::new(),
            dims: Vec::new(),
            w_adam: Vec::new(),
            b_adam: Vec::new(),
            n_outputs: 0,
            feature_stats: Vec::new(),
            target_stats: Vec::new(),
        }
    }

    fn init(&mut self, n_in: usize, n_out_units: usize, rng: &mut Rng64) {
        let mut sizes = vec![n_in];
        sizes.extend(&self.config.hidden);
        sizes.push(n_out_units);
        self.weights.clear();
        self.biases.clear();
        self.dims.clear();
        self.w_adam.clear();
        self.b_adam.clear();
        for w in sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            // He/Xavier-ish init
            let scale = (2.0 / fan_in as f64).sqrt();
            let weights: Vec<f64> = (0..fan_in * fan_out)
                .map(|_| (rng.next_f64() * 2.0 - 1.0) * scale)
                .collect();
            self.w_adam.push(Adam::new(weights.len()));
            self.b_adam.push(Adam::new(fan_out));
            self.weights.push(weights);
            self.biases.push(vec![0.0; fan_out]);
            self.dims.push((fan_in, fan_out));
        }
    }

    /// Forward pass storing activations per layer (index 0 = input).
    fn forward(&self, input: &[f64]) -> Vec<Vec<f64>> {
        let n_layers = self.weights.len();
        let mut acts = Vec::with_capacity(n_layers + 1);
        acts.push(input.to_vec());
        for l in 0..n_layers {
            let (fan_in, fan_out) = self.dims[l];
            let prev = &acts[l];
            let mut out = vec![0.0; fan_out];
            for (o, outv) in out.iter_mut().enumerate() {
                let row = &self.weights[l][o * fan_in..(o + 1) * fan_in];
                let mut s = self.biases[l][o];
                for (w, p) in row.iter().zip(prev) {
                    s += w * p;
                }
                *outv = if l + 1 == n_layers {
                    s
                } else {
                    self.config.activation.apply(s)
                };
            }
            acts.push(out);
        }
        acts
    }

    /// Train on `x` (`n x d`) and targets `y` (`n x k`).
    pub fn fit(&mut self, x: &Matrix, y: &Matrix) -> Result<(), NnError> {
        let n = x.nrows();
        if n == 0 {
            return Err(NnError::new("no training samples"));
        }
        if y.nrows() != n {
            return Err(NnError::new("X/y row mismatch"));
        }
        self.n_outputs = y.ncols();
        let out_units = match self.config.loss {
            Loss::Mse => self.n_outputs,
            Loss::GaussianNll => 2 * self.n_outputs,
        };
        let mut rng = Rng64::seed_from_u64(self.config.seed);
        self.init(x.ncols(), out_units, &mut rng);

        // standardization
        self.feature_stats = (0..x.ncols())
            .map(|c| {
                let col = x.col(c);
                (
                    autoai_linalg::mean(&col),
                    autoai_linalg::std_dev(&col).max(1e-9),
                )
            })
            .collect();
        self.target_stats = (0..y.ncols())
            .map(|c| {
                let col = y.col(c);
                (
                    autoai_linalg::mean(&col),
                    autoai_linalg::std_dev(&col).max(1e-9),
                )
            })
            .collect();

        let mut order: Vec<usize> = (0..n).collect();
        let n_layers = self.weights.len();
        let bs = self.config.batch_size.max(1);
        // gradient accumulators
        let mut gw: Vec<Vec<f64>> = self.weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = self.biases.iter().map(|b| vec![0.0; b.len()]).collect();

        for _epoch in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(bs) {
                for g in gw.iter_mut() {
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                for g in gb.iter_mut() {
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                for &i in chunk {
                    let input: Vec<f64> = x
                        .row(i)
                        .iter()
                        .enumerate()
                        .map(|(j, &v)| (v - self.feature_stats[j].0) / self.feature_stats[j].1)
                        .collect();
                    let target: Vec<f64> = y
                        .row(i)
                        .iter()
                        .enumerate()
                        .map(|(j, &v)| (v - self.target_stats[j].0) / self.target_stats[j].1)
                        .collect();
                    let acts = self.forward(&input);
                    // output-layer delta
                    let out = &acts[n_layers];
                    let mut delta: Vec<f64> = match self.config.loss {
                        Loss::Mse => out.iter().zip(&target).map(|(p, t)| p - t).collect(),
                        Loss::GaussianNll => {
                            // out = [μ_0..μ_{k-1}, logv_0..logv_{k-1}]
                            let k = self.n_outputs;
                            let mut d = vec![0.0; 2 * k];
                            for j in 0..k {
                                let mu = out[j];
                                let logv = out[k + j].clamp(-10.0, 10.0);
                                let var = logv.exp();
                                let diff = mu - target[j];
                                d[j] = diff / var;
                                d[k + j] = 0.5 * (1.0 - diff * diff / var);
                            }
                            d
                        }
                    };
                    // backprop
                    for l in (0..n_layers).rev() {
                        let (fan_in, fan_out) = self.dims[l];
                        let prev = &acts[l];
                        for (o, &d) in delta.iter().enumerate().take(fan_out) {
                            gb[l][o] += d;
                            let grow = &mut gw[l][o * fan_in..(o + 1) * fan_in];
                            for (g, p) in grow.iter_mut().zip(prev) {
                                *g += d * p;
                            }
                        }
                        if l > 0 {
                            let mut new_delta = vec![0.0; fan_in];
                            for (o, &d) in delta.iter().enumerate().take(fan_out) {
                                let row = &self.weights[l][o * fan_in..(o + 1) * fan_in];
                                for (nd, w) in new_delta.iter_mut().zip(row) {
                                    *nd += d * w;
                                }
                            }
                            // activation gradient of layer l's output
                            for (nd, &a) in new_delta.iter_mut().zip(&acts[l]) {
                                *nd *= self.config.activation.grad(a);
                            }
                            delta = new_delta;
                        }
                    }
                }
                // Adam step with batch-mean gradients
                let inv = 1.0 / chunk.len() as f64;
                for l in 0..n_layers {
                    gw[l].iter_mut().for_each(|g| *g *= inv);
                    gb[l].iter_mut().for_each(|g| *g *= inv);
                    self.w_adam[l].step(
                        &mut self.weights[l],
                        &gw[l],
                        self.config.learning_rate,
                        self.config.weight_decay,
                    );
                    self.b_adam[l].step(
                        &mut self.biases[l],
                        &gb[l],
                        self.config.learning_rate,
                        0.0,
                    );
                }
            }
        }
        Ok(())
    }

    /// Predict the mean output for one feature row (denormalized).
    pub fn predict_row(&self, row: &[f64]) -> Vec<f64> {
        assert!(!self.weights.is_empty(), "Mlp::predict before fit");
        let input: Vec<f64> = row
            .iter()
            .enumerate()
            .map(|(j, &v)| (v - self.feature_stats[j].0) / self.feature_stats[j].1)
            .collect();
        let acts = self.forward(&input);
        let out = &acts[acts.len() - 1];
        (0..self.n_outputs)
            .map(|j| out[j] * self.target_stats[j].1 + self.target_stats[j].0)
            .collect()
    }

    /// Predict `(mean, std)` per output (std meaningful only for
    /// [`Loss::GaussianNll`]; it is 0 for MSE heads).
    pub fn predict_distribution(&self, row: &[f64]) -> Vec<(f64, f64)> {
        assert!(!self.weights.is_empty(), "Mlp::predict before fit");
        let input: Vec<f64> = row
            .iter()
            .enumerate()
            .map(|(j, &v)| (v - self.feature_stats[j].0) / self.feature_stats[j].1)
            .collect();
        let acts = self.forward(&input);
        let out = &acts[acts.len() - 1];
        (0..self.n_outputs)
            .map(|j| {
                let mu = out[j] * self.target_stats[j].1 + self.target_stats[j].0;
                let sd = match self.config.loss {
                    Loss::Mse => 0.0,
                    Loss::GaussianNll => {
                        let logv = out[self.n_outputs + j].clamp(-10.0, 10.0);
                        (logv.exp()).sqrt() * self.target_stats[j].1
                    }
                };
                (mu, sd)
            })
            .collect()
    }

    /// Batch prediction of means (`n x k`).
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.nrows(), self.n_outputs);
        for r in 0..x.nrows() {
            let p = self.predict_row(x.row(r));
            out.row_mut(r).copy_from_slice(&p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like() -> (Matrix, Matrix) {
        // smooth XOR-ish: y = x0 * (1 - x1) + x1 * (1 - x0)
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..200 {
            let a = (i % 20) as f64 / 20.0;
            let b = (i / 20) as f64 / 10.0;
            rows.push(vec![a, b]);
            ys.push(vec![a * (1.0 - b) + b * (1.0 - a)]);
        }
        (Matrix::from_rows(&rows), Matrix::from_rows(&ys))
    }

    #[test]
    fn learns_linear_function_fast() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<Vec<f64>> = rows.iter().map(|r| vec![3.0 * r[0] + 2.0]).collect();
        let x = Matrix::from_rows(&rows);
        let y = Matrix::from_rows(&ys);
        let cfg = MlpConfig {
            hidden: vec![16],
            epochs: 200,
            ..Default::default()
        };
        let mut net = Mlp::new(cfg);
        net.fit(&x, &y).unwrap();
        let p = net.predict_row(&[50.0]);
        assert!((p[0] - 152.0).abs() < 8.0, "pred {p:?}");
    }

    #[test]
    fn learns_nonlinear_function() {
        let (x, y) = xor_like();
        let cfg = MlpConfig {
            hidden: vec![32, 32],
            epochs: 300,
            learning_rate: 3e-3,
            ..Default::default()
        };
        let mut net = Mlp::new(cfg);
        net.fit(&x, &y).unwrap();
        let preds = net.predict(&x);
        let mut mae = 0.0;
        for r in 0..x.nrows() {
            mae += (preds[(r, 0)] - y[(r, 0)]).abs();
        }
        mae /= x.nrows() as f64;
        assert!(mae < 0.08, "nonlinear MAE {mae}");
    }

    #[test]
    fn multi_output_regression() {
        let rows: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64 / 12.0]).collect();
        let ys: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0].sin(), r[0].cos()]).collect();
        let x = Matrix::from_rows(&rows);
        let y = Matrix::from_rows(&ys);
        let cfg = MlpConfig {
            hidden: vec![32, 32],
            epochs: 400,
            learning_rate: 3e-3,
            ..Default::default()
        };
        let mut net = Mlp::new(cfg);
        net.fit(&x, &y).unwrap();
        let p = net.predict_row(&[5.0]);
        assert!((p[0] - 5.0f64.sin()).abs() < 0.2, "{p:?}");
        assert!((p[1] - 5.0f64.cos()).abs() < 0.2, "{p:?}");
    }

    #[test]
    fn gaussian_head_estimates_uncertainty() {
        // heteroscedastic data: noise grows with x
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let mut s = 31u64;
        for i in 0..600 {
            let xv = (i % 100) as f64 / 100.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let e = ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            rows.push(vec![xv]);
            ys.push(vec![2.0 * xv + e * (0.05 + 0.5 * xv)]);
        }
        let x = Matrix::from_rows(&rows);
        let y = Matrix::from_rows(&ys);
        let cfg = MlpConfig {
            hidden: vec![24, 24],
            loss: Loss::GaussianNll,
            epochs: 250,
            learning_rate: 3e-3,
            ..Default::default()
        };
        let mut net = Mlp::new(cfg);
        net.fit(&x, &y).unwrap();
        let lo = net.predict_distribution(&[0.05]);
        let hi = net.predict_distribution(&[0.95]);
        assert!(
            hi[0].1 > lo[0].1,
            "std should grow with x: {} vs {}",
            hi[0].1,
            lo[0].1
        );
        assert!((hi[0].0 - 1.9).abs() < 0.5, "mean at 0.95: {}", hi[0].0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_like();
        let cfg = MlpConfig {
            hidden: vec![8],
            epochs: 20,
            seed: 5,
            ..Default::default()
        };
        let mut a = Mlp::new(cfg.clone());
        let mut b = Mlp::new(cfg);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_row(&[0.3, 0.7]), b.predict_row(&[0.3, 0.7]));
    }

    #[test]
    fn empty_input_rejected() {
        let mut net = Mlp::new(MlpConfig::default());
        assert!(net.fit(&Matrix::zeros(0, 2), &Matrix::zeros(0, 1)).is_err());
    }
}
