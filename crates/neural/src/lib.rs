//! Minimal dense neural networks with manual backpropagation.
//!
//! The deep-learning members of the AutoAI-TS model zoo (and the DeepAR /
//! N-BEATS baseline simulators) need a small, dependable feed-forward
//! substrate rather than a full autograd framework. This crate provides a
//! multilayer perceptron with ReLU/tanh activations, mini-batch Adam, MSE
//! and Gaussian negative-log-likelihood heads (the latter for DeepAR-style
//! probabilistic forecasts), and internal input/output standardization.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod mlp;

pub use mlp::{Activation, Loss, Mlp, MlpConfig, NnError};
