//! Flatten-family windowing: turn a time series frame into a supervised
//! (X, y) dataset for ML regressors.
//!
//! The paper's stateful Flatten transforms reshape sequences into IID-style
//! learning problems: a look-back window of history becomes the feature
//! vector and the next `horizon` values become the multi-output target.
//! Three variants are used by the AutoAI-TS pipelines:
//!
//! * **Flatten** — all series in the window are concatenated (series-major)
//!   into one feature vector; the target stacks the next `horizon` values of
//!   all series. One global model sees every series.
//! * **Localized Flatten** — one dataset *per series*; each series is
//!   predicted from its own history only.
//! * **Normalized Flatten** — like Flatten, but every window is divided by a
//!   per-window, per-series anchor (the last value of the window), making
//!   the learning problem scale-free; anchors are returned so forecasts can
//!   be denormalized.
//!
//! The kernels here are the T-Daub hot loop: every (pipeline × allocation)
//! unit runs one of them. They are written index-free (iterator chunks and
//! checked `get` ranges instead of `[]` subscripts) so the tscheck strict
//! rules apply, and [`fill_flatten_rows`] exposes the row-filling core so
//! the [`crate::cache::TransformCache`] can extend a cached design matrix
//! with only the rows a grown allocation adds.

use autoai_linalg::Matrix;
use autoai_tsdata::TimeSeriesFrame;

/// A supervised dataset derived from sliding windows.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowDataset {
    /// Features: `n_windows x (lookback * n_series)`.
    pub x: Matrix,
    /// Targets: `n_windows x (horizon * n_series)`.
    pub y: Matrix,
    /// Per-window, per-series normalization anchors (`n_windows x n_series`),
    /// present only for the normalized variant.
    pub anchors: Option<Matrix>,
}

impl WindowDataset {
    /// Number of windows (rows) in the dataset.
    pub fn len(&self) -> usize {
        self.x.nrows()
    }

    /// True when no full window fits the data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size of the dataset's matrices in bytes (8 bytes per cell).
    /// Used by the transform cache to account for copies avoided.
    pub fn bytes(&self) -> u64 {
        fn matrix_bytes(m: &Matrix) -> u64 {
            (m.nrows() as u64) * (m.ncols() as u64) * 8
        }
        matrix_bytes(&self.x)
            + matrix_bytes(&self.y)
            + self.anchors.as_ref().map_or(0, matrix_bytes)
    }
}

/// Number of complete (look-back, horizon) windows that fit `len` samples.
pub fn n_windows(len: usize, lookback: usize, horizon: usize) -> usize {
    (len + 1).saturating_sub(lookback + horizon)
}

/// Fill rows of `x`/`y` with consecutive flatten windows of `frame`,
/// starting at window index `w_first`. The iterators bound how many rows
/// are written; every yielded row slice must have the flatten layout
/// (`lookback * n_series` feature columns, `horizon * n_series` targets).
/// This is the shared core of [`flatten_windows`] and the incremental
/// design-matrix extension in the transform cache.
pub(crate) fn fill_flatten_rows<'a>(
    frame: &TimeSeriesFrame,
    lookback: usize,
    horizon: usize,
    w_first: usize,
    x_rows: impl Iterator<Item = &'a mut [f64]>,
    y_rows: impl Iterator<Item = &'a mut [f64]>,
) {
    for (i, (xr, yr)) in x_rows.zip(y_rows).enumerate() {
        let w = w_first + i;
        for (chunk, col) in xr.chunks_mut(lookback).zip(frame.series_iter()) {
            if let Some(src) = col.get(w..w + lookback) {
                chunk.copy_from_slice(src);
            }
        }
        for (chunk, col) in yr.chunks_mut(horizon).zip(frame.series_iter()) {
            if let Some(src) = col.get(w + lookback..w + lookback + horizon) {
                chunk.copy_from_slice(src);
            }
        }
    }
}

/// Flatten transform: joint windows over all series.
///
/// Feature layout is series-major: `[s0[t-L..t], s1[t-L..t], …]`; the target
/// layout matches: `[s0[t..t+h], s1[t..t+h], …]`. Returns an empty dataset
/// when the frame is too short for a single window.
pub fn flatten_windows(frame: &TimeSeriesFrame, lookback: usize, horizon: usize) -> WindowDataset {
    assert!(
        lookback >= 1 && horizon >= 1,
        "lookback and horizon must be >= 1"
    );
    let count = n_windows(frame.len(), lookback, horizon);
    let s = frame.n_series();
    let mut x = Matrix::zeros(count, lookback.saturating_mul(s));
    let mut y = Matrix::zeros(count, horizon.saturating_mul(s));
    fill_flatten_rows(
        frame,
        lookback,
        horizon,
        0,
        x.rows_iter_mut(),
        y.rows_iter_mut(),
    );
    WindowDataset {
        x,
        y,
        anchors: None,
    }
}

/// Localized Flatten: one per-series dataset, each predicting a series from
/// its own history only.
pub fn localized_flatten_windows(
    frame: &TimeSeriesFrame,
    lookback: usize,
    horizon: usize,
) -> Vec<WindowDataset> {
    (0..frame.n_series())
        .map(|c| flatten_windows(&frame.select(c), lookback, horizon))
        .collect()
}

/// Normalized Flatten: joint windows divided by per-window per-series
/// anchors (last window value; 1.0 when that value is ~0).
pub fn normalized_flatten_windows(
    frame: &TimeSeriesFrame,
    lookback: usize,
    horizon: usize,
) -> WindowDataset {
    let mut ds = flatten_windows(frame, lookback, horizon);
    let mut anchors = Matrix::zeros(ds.len(), frame.n_series());
    let window_rows =
        ds.x.rows_iter_mut()
            .zip(ds.y.rows_iter_mut())
            .zip(anchors.rows_iter_mut());
    for ((xr, yr), ar) in window_rows {
        let series_chunks = xr
            .chunks_mut(lookback)
            .zip(yr.chunks_mut(horizon))
            .zip(ar.iter_mut());
        for ((xchunk, ychunk), a) in series_chunks {
            let last = xchunk.last().copied().unwrap_or(1.0);
            let anchor = if last.abs() > 1e-9 { last } else { 1.0 };
            *a = anchor;
            for v in xchunk.iter_mut() {
                *v /= anchor;
            }
            for v in ychunk.iter_mut() {
                *v /= anchor;
            }
        }
    }
    ds.anchors = Some(anchors);
    ds
}

/// The trailing look-back window of a frame flattened into one feature
/// vector (series-major) — the prediction-time input. Returns `None` when
/// the frame is shorter than `lookback`.
pub fn latest_window(frame: &TimeSeriesFrame, lookback: usize) -> Option<Vec<f64>> {
    let n = frame.len();
    if n < lookback {
        return None;
    }
    let mut out = Vec::with_capacity(lookback.saturating_mul(frame.n_series()));
    for col in frame.series_iter() {
        out.extend_from_slice(col.get(n - lookback..)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> TimeSeriesFrame {
        TimeSeriesFrame::from_columns(vec![
            vec![1., 2., 3., 4., 5., 6.],
            vec![10., 20., 30., 40., 50., 60.],
        ])
    }

    #[test]
    fn flatten_shapes_and_contents() {
        let ds = flatten_windows(&frame(), 3, 2);
        // windows start at t=0,1 → 2 windows
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.x.ncols(), 6); // 3 lookback * 2 series
        assert_eq!(ds.y.ncols(), 4); // 2 horizon * 2 series
        assert_eq!(ds.x.row(0), &[1., 2., 3., 10., 20., 30.]);
        assert_eq!(ds.y.row(0), &[4., 5., 40., 50.]);
        assert_eq!(ds.x.row(1), &[2., 3., 4., 20., 30., 40.]);
        assert_eq!(ds.y.row(1), &[5., 6., 50., 60.]);
    }

    #[test]
    fn flatten_on_a_view_matches_flatten_on_a_copy() {
        let f = frame();
        let view = f.slice(1, 6);
        let copy = TimeSeriesFrame::from_columns(vec![
            f.series(0).get(1..).unwrap().to_vec(),
            f.series(1).get(1..).unwrap().to_vec(),
        ]);
        assert_eq!(flatten_windows(&view, 2, 1), flatten_windows(&copy, 2, 1));
    }

    #[test]
    fn too_short_frame_yields_empty_dataset() {
        let f = TimeSeriesFrame::univariate(vec![1., 2.]);
        let ds = flatten_windows(&f, 5, 1);
        assert!(ds.is_empty());
    }

    #[test]
    fn exact_fit_single_window() {
        let f = TimeSeriesFrame::univariate(vec![1., 2., 3., 4.]);
        let ds = flatten_windows(&f, 3, 1);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.x.row(0), &[1., 2., 3.]);
        assert_eq!(ds.y.row(0), &[4.]);
    }

    #[test]
    fn localized_builds_one_dataset_per_series() {
        let sets = localized_flatten_windows(&frame(), 2, 1);
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].x.ncols(), 2);
        assert_eq!(sets[0].x.row(0), &[1., 2.]);
        assert_eq!(sets[0].y.row(0), &[3.]);
        assert_eq!(sets[1].x.row(0), &[10., 20.]);
        assert_eq!(sets[1].y.row(0), &[30.]);
    }

    #[test]
    fn normalized_windows_divide_by_last_value() {
        let ds = normalized_flatten_windows(&frame(), 2, 1);
        // window 0 series 0: [1,2] anchored at 2 → [0.5, 1.0]; y 3/2 = 1.5
        assert!((ds.x[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((ds.x[(0, 1)] - 1.0).abs() < 1e-12);
        assert!((ds.y[(0, 0)] - 1.5).abs() < 1e-12);
        let anchors = ds.anchors.as_ref().unwrap();
        assert_eq!(anchors[(0, 0)], 2.0);
        assert_eq!(anchors[(0, 1)], 20.0);
    }

    #[test]
    fn normalized_zero_anchor_falls_back_to_one() {
        let f = TimeSeriesFrame::univariate(vec![5.0, 0.0, 3.0]);
        let ds = normalized_flatten_windows(&f, 2, 1);
        let anchors = ds.anchors.as_ref().unwrap();
        assert_eq!(anchors[(0, 0)], 1.0); // last of [5, 0] is 0 → fallback
        assert_eq!(ds.y[(0, 0)], 3.0);
    }

    #[test]
    fn latest_window_extracts_tail() {
        let w = latest_window(&frame(), 3).unwrap();
        assert_eq!(w, vec![4., 5., 6., 40., 50., 60.]);
        assert!(latest_window(&frame(), 10).is_none());
    }

    #[test]
    fn dataset_bytes_counts_all_matrices() {
        let ds = flatten_windows(&frame(), 3, 2);
        // x: 2x6, y: 2x4 → (12 + 8) * 8 bytes
        assert_eq!(ds.bytes(), 160);
        let nds = normalized_flatten_windows(&frame(), 3, 2);
        // anchors add 2x2 cells
        assert_eq!(nds.bytes(), 160 + 32);
    }

    #[test]
    fn fill_rows_with_offset_matches_full_build() {
        let f = frame();
        let full = flatten_windows(&f, 2, 1);
        let mut x = Matrix::zeros(2, 4);
        let mut y = Matrix::zeros(2, 2);
        // fill only windows 2 and 3
        fill_flatten_rows(&f, 2, 1, 2, x.rows_iter_mut(), y.rows_iter_mut());
        assert_eq!(x.row(0), full.x.row(2));
        assert_eq!(x.row(1), full.x.row(3));
        assert_eq!(y.row(1), full.y.row(3));
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn zero_lookback_rejected() {
        let _ = flatten_windows(&frame(), 0, 1);
    }
}
