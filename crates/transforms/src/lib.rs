//! Data transformations for AutoAI-TS pipelines.
//!
//! §3 of the paper: "input time series data is first transformed using
//! stateless transformer (transformers that do not remember the state of the
//! operation) such as log, fisher, box_cox, etc. Then, stateful
//! transformations are optionally performed, stateful transformations retain
//! the knowledge of the sequence of operation that are performed such as
//! Difference, Flatten, Localized Flatten and Normalized Flatten. … inverse
//! transformations are applied in the reverse order of application, i.e.,
//! the stateful inverse transformation followed by stateless inverse
//! transformation."
//!
//! This crate implements exactly that taxonomy plus the §4 architecture
//! extras: interpolators, up/down resampling for irregular data, and
//! *Detectors* that "capture various characteristics of data such as
//! presence of negative or missing values, irregularly spaced data".

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod conformal;
pub mod detect;
pub mod resample;
pub mod stateful;
pub mod stateless;
pub mod traits;
pub mod window;

pub use cache::{hit_mismatches, set_hit_verification, CacheStats, TransformCache};
pub use conformal::ConformalScores;
pub use detect::{detect_all, Detection, Detector};
pub use resample::{downsample, resample_to_regular, upsample_linear};
pub use stateful::DifferenceTransform;
pub use stateless::{
    BoxCoxTransform, FisherTransform, LogTransform, MinMaxScaler, SqrtTransform, StandardScaler,
};
pub use traits::{Transform, TransformChain};
pub use window::{
    flatten_windows, latest_window, localized_flatten_windows, n_windows,
    normalized_flatten_windows, WindowDataset,
};
