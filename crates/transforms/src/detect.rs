//! Detectors: transformers that inspect rather than modify data.
//!
//! §4: "Our architecture also enables to implement transformers called
//! *Detectors* that can capture various characteristics of data such as,
//! presence of negative or missing values, irregularly spaced data etc., so
//! appropriate transformations can be applied." Each detector inspects a
//! frame and emits zero or more [`Detection`]s which pipeline assembly uses
//! to enable/disable transforms (e.g. disable `log` when negatives exist).

use autoai_tsdata::timestamps::irregularity;
use autoai_tsdata::TimeSeriesFrame;

/// A data characteristic discovered by a detector.
#[derive(Debug, Clone, PartialEq)]
pub enum Detection {
    /// Frame contains negative values → disable log/Box-Cox-without-offset.
    NegativeValues {
        /// Number of negative cells.
        count: usize,
    },
    /// Frame contains NaN/infinite values → insert an interpolator.
    MissingValues {
        /// Number of non-finite cells.
        count: usize,
    },
    /// Timestamps are irregular → insert a resampler.
    IrregularSpacing {
        /// Fraction of inter-arrival gaps deviating from the median.
        fraction: f64,
    },
    /// A series is constant → trivial forecast, skip heavy models.
    ConstantSeries {
        /// Index of the constant series.
        series: usize,
    },
    /// Strong trend detected (|corr(t, x)| above threshold) → differencing helps.
    Trend {
        /// Index of the trending series.
        series: usize,
        /// Pearson correlation with the time index.
        correlation: f64,
    },
}

/// A detector inspects a frame and reports characteristics.
pub trait Detector: Send + Sync {
    /// Run the detection.
    fn detect(&self, frame: &TimeSeriesFrame) -> Vec<Detection>;
    /// Detector name for logs.
    fn name(&self) -> &'static str;
}

/// Detects negative values.
pub struct NegativeDetector;

impl Detector for NegativeDetector {
    fn detect(&self, frame: &TimeSeriesFrame) -> Vec<Detection> {
        let count = (0..frame.n_series())
            .map(|c| frame.series(c).iter().filter(|&&v| v < 0.0).count())
            .sum();
        if count > 0 {
            vec![Detection::NegativeValues { count }]
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "negative_detector"
    }
}

/// Detects NaN / infinite values.
pub struct MissingDetector;

impl Detector for MissingDetector {
    fn detect(&self, frame: &TimeSeriesFrame) -> Vec<Detection> {
        let count = (0..frame.n_series())
            .map(|c| frame.series(c).iter().filter(|v| !v.is_finite()).count())
            .sum();
        if count > 0 {
            vec![Detection::MissingValues { count }]
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "missing_detector"
    }
}

/// Detects irregular timestamp spacing (more than 5% of gaps deviating).
pub struct IrregularityDetector;

impl Detector for IrregularityDetector {
    fn detect(&self, frame: &TimeSeriesFrame) -> Vec<Detection> {
        if let Some(ts) = frame.timestamps() {
            let frac = irregularity(ts);
            if frac > 0.05 {
                return vec![Detection::IrregularSpacing { fraction: frac }];
            }
        }
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "irregularity_detector"
    }
}

/// Detects constant series and strong linear trends.
pub struct CharacteristicDetector;

impl Detector for CharacteristicDetector {
    fn detect(&self, frame: &TimeSeriesFrame) -> Vec<Detection> {
        let mut out = Vec::new();
        for c in 0..frame.n_series() {
            let s = frame.series(c);
            if s.len() < 3 {
                continue;
            }
            let mn = s.iter().cloned().fold(f64::INFINITY, f64::min);
            let mx = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if (mx - mn).abs() < 1e-12 {
                out.push(Detection::ConstantSeries { series: c });
                continue;
            }
            // Pearson correlation with the time index
            let t: Vec<f64> = (0..s.len()).map(|i| i as f64).collect();
            let (mt, ms) = (autoai_linalg::mean(&t), autoai_linalg::mean(s));
            let mut num = 0.0;
            let mut dt = 0.0;
            let mut ds = 0.0;
            for (&ti, &si) in t.iter().zip(s) {
                num += (ti - mt) * (si - ms);
                dt += (ti - mt) * (ti - mt);
                ds += (si - ms) * (si - ms);
            }
            let corr = num / (dt.sqrt() * ds.sqrt()).max(1e-12);
            if corr.abs() > 0.8 {
                out.push(Detection::Trend {
                    series: c,
                    correlation: corr,
                });
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "characteristic_detector"
    }
}

/// Run the full default detector battery on a frame.
pub fn detect_all(frame: &TimeSeriesFrame) -> Vec<Detection> {
    let detectors: [&dyn Detector; 4] = [
        &NegativeDetector,
        &MissingDetector,
        &IrregularityDetector,
        &CharacteristicDetector,
    ];
    detectors.iter().flat_map(|d| d.detect(frame)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_detector_counts() {
        let f = TimeSeriesFrame::univariate(vec![1.0, -2.0, -3.0]);
        let d = NegativeDetector.detect(&f);
        assert_eq!(d, vec![Detection::NegativeValues { count: 2 }]);
        assert!(NegativeDetector
            .detect(&TimeSeriesFrame::univariate(vec![1.0]))
            .is_empty());
    }

    #[test]
    fn missing_detector_counts_nan_and_inf() {
        let f = TimeSeriesFrame::univariate(vec![1.0, f64::NAN, f64::INFINITY]);
        assert_eq!(
            MissingDetector.detect(&f),
            vec![Detection::MissingValues { count: 2 }]
        );
    }

    #[test]
    fn irregularity_detector_fires_on_jitter() {
        let ts: Vec<i64> = (0..60)
            .map(|i| i * 60 + if i % 2 == 0 { 20 } else { 0 })
            .collect();
        let f = TimeSeriesFrame::univariate(vec![0.0; 60]).with_timestamps(ts);
        let d = IrregularityDetector.detect(&f);
        assert!(matches!(d.as_slice(), [Detection::IrregularSpacing { .. }]));
    }

    #[test]
    fn trend_detected_on_linear_series() {
        let f = TimeSeriesFrame::univariate((0..50).map(|i| 2.0 * i as f64).collect());
        let d = CharacteristicDetector.detect(&f);
        assert!(d
            .iter()
            .any(|x| matches!(x, Detection::Trend { correlation, .. } if *correlation > 0.99)));
    }

    #[test]
    fn constant_series_detected() {
        let f = TimeSeriesFrame::univariate(vec![7.0; 30]);
        let d = CharacteristicDetector.detect(&f);
        assert_eq!(d, vec![Detection::ConstantSeries { series: 0 }]);
    }

    #[test]
    fn detect_all_aggregates() {
        let f = TimeSeriesFrame::univariate(vec![-1.0, f64::NAN, 3.0]);
        let d = detect_all(&f);
        assert!(d
            .iter()
            .any(|x| matches!(x, Detection::NegativeValues { .. })));
        assert!(d
            .iter()
            .any(|x| matches!(x, Detection::MissingValues { .. })));
    }
}
