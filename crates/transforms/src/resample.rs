//! Up/down resampling for irregular or mismatched-frequency data.
//!
//! §4: "for models that require regular data, we can use up/down sampling as
//! transformation in pipeline before feeding data to models that require
//! regular data". These functions convert a timestamped frame onto a
//! regular grid (linear interpolation) or reduce it by bucket aggregation.

use autoai_tsdata::TimeSeriesFrame;

/// Resample a timestamped frame onto a regular grid with `step_secs`
/// spacing, starting at the first timestamp, using linear interpolation.
///
/// A frame without timestamps is treated as already regular and returned
/// unchanged, as is a frame with fewer than 2 rows.
pub fn resample_to_regular(frame: &TimeSeriesFrame, step_secs: i64) -> TimeSeriesFrame {
    assert!(step_secs > 0, "step_secs must be positive");
    let Some(ts) = frame.timestamps() else {
        return frame.clone();
    };
    if frame.len() < 2 {
        return frame.clone();
    }
    let start = ts[0];
    let end = ts[ts.len() - 1];
    let n_out = ((end - start) / step_secs) as usize + 1;
    let grid: Vec<i64> = (0..n_out as i64).map(|i| start + i * step_secs).collect();

    let cols: Vec<Vec<f64>> = (0..frame.n_series())
        .map(|c| {
            let vals = frame.series(c);
            let mut out = Vec::with_capacity(n_out);
            let mut j = 0usize; // index of the segment [ts[j], ts[j+1]]
            for &g in &grid {
                while j + 1 < ts.len() - 1 && ts[j + 1] < g {
                    j += 1;
                }
                let (t0, t1) = (ts[j], ts[j + 1]);
                let (v0, v1) = (vals[j], vals[j + 1]);
                let v = if t1 == t0 || g <= t0 {
                    v0
                } else if g >= t1 {
                    v1
                } else {
                    let w = (g - t0) as f64 / (t1 - t0) as f64;
                    v0 + w * (v1 - v0)
                };
                out.push(v);
            }
            out
        })
        .collect();
    TimeSeriesFrame::from_columns(cols)
        .with_names(frame.names().to_vec())
        .with_timestamps(grid)
}

/// Downsample by averaging consecutive buckets of `factor` rows.
///
/// The final partial bucket (if any) is averaged as well. Timestamps take
/// the first timestamp of each bucket.
pub fn downsample(frame: &TimeSeriesFrame, factor: usize) -> TimeSeriesFrame {
    assert!(factor >= 1, "downsample factor must be >= 1");
    if factor == 1 || frame.is_empty() {
        return frame.clone();
    }
    let n = frame.len();
    let n_out = n.div_ceil(factor);
    let cols: Vec<Vec<f64>> = (0..frame.n_series())
        .map(|c| {
            let vals = frame.series(c);
            (0..n_out)
                .map(|b| {
                    let lo = b * factor;
                    let hi = ((b + 1) * factor).min(n);
                    vals[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
                })
                .collect()
        })
        .collect();
    let mut out = TimeSeriesFrame::from_columns(cols).with_names(frame.names().to_vec());
    if let Some(ts) = frame.timestamps() {
        out = out.with_timestamps((0..n_out).map(|b| ts[b * factor]).collect());
    }
    out
}

/// Upsample by inserting `factor - 1` linearly interpolated points between
/// consecutive samples.
pub fn upsample_linear(frame: &TimeSeriesFrame, factor: usize) -> TimeSeriesFrame {
    assert!(factor >= 1, "upsample factor must be >= 1");
    if factor == 1 || frame.len() < 2 {
        return frame.clone();
    }
    let n = frame.len();
    let n_out = (n - 1) * factor + 1;
    let cols: Vec<Vec<f64>> = (0..frame.n_series())
        .map(|c| {
            let vals = frame.series(c);
            let mut out = Vec::with_capacity(n_out);
            for i in 0..n - 1 {
                for k in 0..factor {
                    let w = k as f64 / factor as f64;
                    out.push(vals[i] * (1.0 - w) + vals[i + 1] * w);
                }
            }
            out.push(vals[n - 1]);
            out
        })
        .collect();
    let mut out = TimeSeriesFrame::from_columns(cols).with_names(frame.names().to_vec());
    if let Some(ts) = frame.timestamps() {
        let mut new_ts = Vec::with_capacity(n_out);
        for i in 0..n - 1 {
            let span = ts[i + 1] - ts[i];
            for k in 0..factor {
                new_ts.push(ts[i] + span * k as i64 / factor as i64);
            }
        }
        new_ts.push(ts[n - 1]);
        out = out.with_timestamps(new_ts);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irregular_data_becomes_regular() {
        let f = TimeSeriesFrame::univariate(vec![0.0, 10.0, 20.0, 40.0])
            .with_timestamps(vec![0, 100, 200, 400]);
        let r = resample_to_regular(&f, 100);
        assert_eq!(r.len(), 5);
        assert_eq!(r.timestamps().unwrap(), &[0, 100, 200, 300, 400]);
        // the 300s point is interpolated halfway between 20 and 40
        assert!((r.series(0)[3] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn regular_input_is_preserved() {
        let f = TimeSeriesFrame::univariate(vec![1.0, 2.0, 3.0]).with_regular_timestamps(0, 60);
        let r = resample_to_regular(&f, 60);
        assert_eq!(r.series(0), f.series(0));
    }

    #[test]
    fn downsample_averages_buckets() {
        let f = TimeSeriesFrame::univariate(vec![1.0, 3.0, 5.0, 7.0, 9.0])
            .with_regular_timestamps(0, 10);
        let d = downsample(&f, 2);
        assert_eq!(d.series(0), &[2.0, 6.0, 9.0]); // last partial bucket
        assert_eq!(d.timestamps().unwrap(), &[0, 20, 40]);
    }

    #[test]
    fn upsample_interpolates() {
        let f = TimeSeriesFrame::univariate(vec![0.0, 2.0]).with_timestamps(vec![0, 100]);
        let u = upsample_linear(&f, 2);
        assert_eq!(u.series(0), &[0.0, 1.0, 2.0]);
        assert_eq!(u.timestamps().unwrap(), &[0, 50, 100]);
    }

    #[test]
    fn factor_one_is_identity() {
        let f = TimeSeriesFrame::univariate(vec![1.0, 2.0, 3.0]);
        assert_eq!(downsample(&f, 1), f);
        assert_eq!(upsample_linear(&f, 1), f);
    }

    #[test]
    fn down_then_up_preserves_length_scale() {
        let f = TimeSeriesFrame::univariate((0..20).map(|i| i as f64).collect());
        let d = downsample(&f, 2);
        let u = upsample_linear(&d, 2);
        assert_eq!(u.len(), (d.len() - 1) * 2 + 1);
    }
}
