//! Stateless (pointwise, invertible) transforms: log, Box-Cox, Fisher,
//! square root, standardization, min-max scaling.
//!
//! "Stateless" in the paper means the transform does not remember sequence
//! state — each value maps independently. The transforms still `fit`
//! scalar parameters (offsets, scales, λ) from training data.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use autoai_linalg::golden_section_min;
use autoai_tsdata::TimeSeriesFrame;

use crate::traits::Transform;

fn map_frame(frame: &TimeSeriesFrame, f: impl Fn(usize, f64) -> f64) -> TimeSeriesFrame {
    let cols: Vec<Vec<f64>> = (0..frame.n_series())
        .map(|c| frame.series(c).iter().map(|&v| f(c, v)).collect())
        .collect();
    let mut out = TimeSeriesFrame::from_columns(cols);
    if frame.n_series() > 0 {
        out = out.with_names(frame.names().to_vec());
    }
    if let Some(ts) = frame.timestamps() {
        out = out.with_timestamps(ts.to_vec());
    }
    out
}

/// Natural log transform `ln(x + offset)` with a fitted per-series offset
/// that guarantees strict positivity (offset = 1 - min(x) when min ≤ 0).
#[derive(Debug, Clone, Default)]
pub struct LogTransform {
    offsets: Vec<f64>,
    /// How often `transform` had to clamp a non-positive (or NaN) shifted
    /// value up to `1e-12` before taking the log. Shared across clones so
    /// callers holding the original can audit a pipeline-internal copy.
    clamps: Arc<AtomicU64>,
}

impl LogTransform {
    /// New unfitted log transform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of values `transform` has clamped to keep the log finite.
    /// Zero on clean data whose range the fitted offset covers: any other
    /// value means outputs were silently distorted, which quality checks
    /// surface as `QualityIssue::NonPositiveForLog` upstream.
    pub fn clamp_count(&self) -> u64 {
        self.clamps.load(Ordering::Relaxed)
    }
}

impl Transform for LogTransform {
    fn fit(&mut self, frame: &TimeSeriesFrame) {
        self.offsets = (0..frame.n_series())
            .map(|c| {
                let min = frame
                    .series(c)
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                if min.is_finite() && min <= 0.0 {
                    1.0 - min
                } else {
                    0.0
                }
            })
            .collect();
    }

    fn transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        map_frame(frame, |c, v| {
            let shifted = v + self.offsets.get(c).copied().unwrap_or(0.0);
            if !(shifted >= 1e-12) {
                self.clamps.fetch_add(1, Ordering::Relaxed);
            }
            shifted.max(1e-12).ln()
        })
    }

    fn inverse_transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        map_frame(frame, |c, v| {
            v.exp() - self.offsets.get(c).copied().unwrap_or(0.0)
        })
    }

    fn name(&self) -> &'static str {
        "log"
    }
}

/// Square-root transform with the same offset policy as [`LogTransform`].
#[derive(Debug, Clone, Default)]
pub struct SqrtTransform {
    offsets: Vec<f64>,
}

impl SqrtTransform {
    /// New unfitted sqrt transform.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transform for SqrtTransform {
    fn fit(&mut self, frame: &TimeSeriesFrame) {
        self.offsets = (0..frame.n_series())
            .map(|c| {
                let min = frame
                    .series(c)
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                if min.is_finite() && min < 0.0 {
                    -min
                } else {
                    0.0
                }
            })
            .collect();
    }

    fn transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        map_frame(frame, |c, v| {
            (v + self.offsets.get(c).copied().unwrap_or(0.0))
                .max(0.0)
                .sqrt()
        })
    }

    fn inverse_transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        map_frame(frame, |c, v| {
            v * v - self.offsets.get(c).copied().unwrap_or(0.0)
        })
    }

    fn name(&self) -> &'static str {
        "sqrt"
    }
}

/// Box-Cox power transform `((x + c)^λ - 1) / λ` (λ → 0 degenerates to log).
///
/// λ is fitted per series by maximizing the Box-Cox log-likelihood with a
/// golden-section search over λ ∈ [-1, 2], the range BATS uses.
#[derive(Debug, Clone, Default)]
pub struct BoxCoxTransform {
    /// Per-series (offset, lambda).
    params: Vec<(f64, f64)>,
    /// How often `transform` had to clamp a non-positive (or NaN) shifted
    /// value up to `1e-12` before the power transform. Shared across clones.
    clamps: Arc<AtomicU64>,
}

impl BoxCoxTransform {
    /// New unfitted Box-Cox transform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fitted λ for series `c` (after `fit`).
    pub fn lambda(&self, c: usize) -> Option<f64> {
        self.params.get(c).map(|p| p.1)
    }

    /// Number of values `transform` has clamped to keep the power transform
    /// finite (the forward direction only; the inverse clamp that keeps
    /// out-of-range *model outputs* real is a numerical guard, not data
    /// distortion). Zero on clean data covered by the fitted offset.
    pub fn clamp_count(&self) -> u64 {
        self.clamps.load(Ordering::Relaxed)
    }

    fn bc(v: f64, lambda: f64) -> f64 {
        if lambda.abs() < 1e-6 {
            v.max(1e-12).ln()
        } else {
            (v.max(1e-12).powf(lambda) - 1.0) / lambda
        }
    }

    fn bc_inv(y: f64, lambda: f64) -> f64 {
        if lambda.abs() < 1e-6 {
            y.exp()
        } else {
            let base = lambda * y + 1.0;
            // clamp to keep the inverse real for out-of-range model outputs
            base.max(1e-12).powf(1.0 / lambda)
        }
    }

    /// Negative Box-Cox log-likelihood of `x` (positive values) at `lambda`.
    fn neg_loglik(x: &[f64], lambda: f64) -> f64 {
        let n = x.len() as f64;
        let y: Vec<f64> = x.iter().map(|&v| Self::bc(v, lambda)).collect();
        let mean = y.iter().sum::<f64>() / n;
        let var = y.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n;
        if var <= 0.0 {
            return f64::INFINITY;
        }
        let log_jacobian: f64 = x.iter().map(|&v| v.max(1e-12).ln()).sum();
        0.5 * n * var.ln() - (lambda - 1.0) * log_jacobian
    }
}

impl Transform for BoxCoxTransform {
    fn fit(&mut self, frame: &TimeSeriesFrame) {
        self.params = (0..frame.n_series())
            .map(|c| {
                let s = frame.series(c);
                let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
                let offset = if min.is_finite() && min <= 0.0 {
                    1.0 - min
                } else {
                    0.0
                };
                let shifted: Vec<f64> = s.iter().map(|&v| v + offset).collect();
                let lambda = golden_section_min(|l| Self::neg_loglik(&shifted, l), -1.0, 2.0, 1e-4);
                (offset, lambda)
            })
            .collect();
    }

    fn transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        map_frame(frame, |c, v| {
            let (off, lam) = self.params.get(c).copied().unwrap_or((0.0, 1.0));
            let shifted = v + off;
            if !(shifted >= 1e-12) {
                self.clamps.fetch_add(1, Ordering::Relaxed);
            }
            Self::bc(shifted, lam)
        })
    }

    fn inverse_transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        map_frame(frame, |c, v| {
            let (off, lam) = self.params.get(c).copied().unwrap_or((0.0, 1.0));
            Self::bc_inv(v, lam) - off
        })
    }

    fn name(&self) -> &'static str {
        "box_cox"
    }
}

/// Fisher z-transform: values are min-max scaled into (-1, 1), then mapped
/// with `atanh`. Spreads out values near the extremes of the range.
#[derive(Debug, Clone, Default)]
pub struct FisherTransform {
    /// Per-series (min, max) from fit.
    ranges: Vec<(f64, f64)>,
}

impl FisherTransform {
    /// New unfitted Fisher transform.
    pub fn new() -> Self {
        Self::default()
    }

    /// The margin keeping scaled values strictly inside (-1, 1).
    const MARGIN: f64 = 1e-3;

    fn scale(v: f64, min: f64, max: f64) -> f64 {
        let span = (max - min).max(1e-12);
        let unit = (v - min) / span; // [0, 1] on train data
        (unit * 2.0 - 1.0) * (1.0 - Self::MARGIN)
    }

    fn unscale(u: f64, min: f64, max: f64) -> f64 {
        let span = (max - min).max(1e-12);
        let unit = (u / (1.0 - Self::MARGIN) + 1.0) / 2.0;
        unit * span + min
    }
}

impl Transform for FisherTransform {
    fn fit(&mut self, frame: &TimeSeriesFrame) {
        self.ranges = (0..frame.n_series())
            .map(|c| {
                let s = frame.series(c);
                let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                (min, max)
            })
            .collect();
    }

    fn transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        map_frame(frame, |c, v| {
            let (min, max) = self.ranges.get(c).copied().unwrap_or((0.0, 1.0));
            let u = Self::scale(v, min, max).clamp(-1.0 + 1e-9, 1.0 - 1e-9);
            u.atanh()
        })
    }

    fn inverse_transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        map_frame(frame, |c, v| {
            let (min, max) = self.ranges.get(c).copied().unwrap_or((0.0, 1.0));
            Self::unscale(v.tanh(), min, max)
        })
    }

    fn name(&self) -> &'static str {
        "fisher"
    }
}

/// Z-score standardization `(x - μ) / σ` per series.
#[derive(Debug, Clone, Default)]
pub struct StandardScaler {
    /// Per-series (mean, std).
    params: Vec<(f64, f64)>,
}

impl StandardScaler {
    /// New unfitted standard scaler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transform for StandardScaler {
    fn fit(&mut self, frame: &TimeSeriesFrame) {
        self.params = (0..frame.n_series())
            .map(|c| {
                let s = frame.series(c);
                let mean = autoai_linalg::mean(s);
                let std = autoai_linalg::std_dev(s).max(1e-12);
                (mean, std)
            })
            .collect();
    }

    fn transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        map_frame(frame, |c, v| {
            let (m, s) = self.params.get(c).copied().unwrap_or((0.0, 1.0));
            (v - m) / s
        })
    }

    fn inverse_transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        map_frame(frame, |c, v| {
            let (m, s) = self.params.get(c).copied().unwrap_or((0.0, 1.0));
            v * s + m
        })
    }

    fn name(&self) -> &'static str {
        "standard"
    }
}

/// Min-max scaling into [0, 1] per series.
#[derive(Debug, Clone, Default)]
pub struct MinMaxScaler {
    /// Per-series (min, max).
    ranges: Vec<(f64, f64)>,
}

impl MinMaxScaler {
    /// New unfitted min-max scaler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transform for MinMaxScaler {
    fn fit(&mut self, frame: &TimeSeriesFrame) {
        self.ranges = (0..frame.n_series())
            .map(|c| {
                let s = frame.series(c);
                let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                (min, max)
            })
            .collect();
    }

    fn transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        map_frame(frame, |c, v| {
            let (min, max) = self.ranges.get(c).copied().unwrap_or((0.0, 1.0));
            (v - min) / (max - min).max(1e-12)
        })
    }

    fn inverse_transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        map_frame(frame, |c, v| {
            let (min, max) = self.ranges.get(c).copied().unwrap_or((0.0, 1.0));
            v * (max - min).max(1e-12) + min
        })
    }

    fn name(&self) -> &'static str {
        "min_max"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: &mut dyn Transform, data: Vec<f64>, tol: f64) {
        let f = TimeSeriesFrame::univariate(data.clone());
        let tr = t.fit_transform(&f);
        let back = t.inverse_transform(&tr);
        for (a, b) in back.series(0).iter().zip(&data) {
            assert!((a - b).abs() < tol, "{} roundtrip: {a} vs {b}", t.name());
        }
    }

    #[test]
    fn log_roundtrip_positive() {
        roundtrip(&mut LogTransform::new(), vec![1.0, 10.0, 100.0], 1e-9);
    }

    #[test]
    fn log_roundtrip_with_nonpositive_values() {
        roundtrip(&mut LogTransform::new(), vec![-5.0, 0.0, 5.0], 1e-9);
    }

    #[test]
    fn log_and_boxcox_never_clamp_clean_fitted_data() {
        let data = vec![-5.0, 0.0, 5.0, 12.5];
        let f = TimeSeriesFrame::univariate(data);
        let mut log = LogTransform::new();
        let _ = log.fit_transform(&f);
        assert_eq!(log.clamp_count(), 0);
        let mut bc = BoxCoxTransform::new();
        let _ = bc.fit_transform(&f);
        assert_eq!(bc.clamp_count(), 0);
    }

    #[test]
    fn out_of_range_data_is_counted_not_silently_clamped() {
        // fit on positive data (offset 0), then transform values the offset
        // cannot cover: every clamp must be surfaced on the counter
        let train = TimeSeriesFrame::univariate(vec![1.0, 2.0, 3.0]);
        let hostile = TimeSeriesFrame::univariate(vec![-4.0, 0.0, 2.0, f64::NAN]);
        let mut log = LogTransform::new();
        log.fit(&train);
        let _ = log.transform(&hostile);
        assert_eq!(log.clamp_count(), 3);
        let mut bc = BoxCoxTransform::new();
        bc.fit(&train);
        let _ = bc.transform(&hostile);
        assert_eq!(bc.clamp_count(), 3);
    }

    #[test]
    fn clamp_counter_is_shared_across_clones() {
        let train = TimeSeriesFrame::univariate(vec![1.0, 2.0, 3.0]);
        let mut log = LogTransform::new();
        log.fit(&train);
        let clone = log.clone();
        let _ = clone.transform(&TimeSeriesFrame::univariate(vec![-1.0]));
        assert_eq!(log.clamp_count(), 1);
    }

    #[test]
    fn sqrt_roundtrip() {
        roundtrip(&mut SqrtTransform::new(), vec![0.0, 4.0, 9.0], 1e-9);
        roundtrip(&mut SqrtTransform::new(), vec![-4.0, 0.0, 16.0], 1e-9);
    }

    #[test]
    fn boxcox_roundtrip() {
        roundtrip(
            &mut BoxCoxTransform::new(),
            vec![1.0, 5.0, 10.0, 50.0, 100.0],
            1e-6,
        );
    }

    #[test]
    fn boxcox_lambda_near_zero_for_exponential_growth() {
        // exponential data is linearized by log, so λ should be near 0
        let data: Vec<f64> = (0..60).map(|i| (0.1 * i as f64).exp()).collect();
        let mut t = BoxCoxTransform::new();
        t.fit(&TimeSeriesFrame::univariate(data));
        let lam = t.lambda(0).unwrap();
        assert!(lam.abs() < 0.25, "lambda = {lam}");
    }

    #[test]
    fn boxcox_lambda_near_one_for_linear_data() {
        let data: Vec<f64> = (1..100).map(|i| i as f64).collect();
        let mut t = BoxCoxTransform::new();
        t.fit(&TimeSeriesFrame::univariate(data));
        let lam = t.lambda(0).unwrap();
        assert!(lam > 0.5, "lambda = {lam}");
    }

    #[test]
    fn fisher_roundtrip() {
        roundtrip(
            &mut FisherTransform::new(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
            1e-6,
        );
    }

    #[test]
    fn standard_scaler_statistics() {
        let f = TimeSeriesFrame::univariate(vec![2.0, 4.0, 6.0, 8.0]);
        let mut t = StandardScaler::new();
        let tr = t.fit_transform(&f);
        let m = autoai_linalg::mean(tr.series(0));
        let s = autoai_linalg::std_dev(tr.series(0));
        assert!(m.abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-9);
        roundtrip(&mut StandardScaler::new(), vec![2.0, 4.0, 6.0], 1e-9);
    }

    #[test]
    fn minmax_bounds() {
        let f = TimeSeriesFrame::univariate(vec![10.0, 20.0, 30.0]);
        let mut t = MinMaxScaler::new();
        let tr = t.fit_transform(&f);
        assert_eq!(tr.series(0)[0], 0.0);
        assert_eq!(tr.series(0)[2], 1.0);
        roundtrip(&mut MinMaxScaler::new(), vec![10.0, 20.0, 30.0], 1e-9);
    }

    #[test]
    fn multivariate_per_series_parameters() {
        let f = TimeSeriesFrame::from_columns(vec![vec![1.0, 2.0, 3.0], vec![100.0, 200.0, 300.0]]);
        let mut t = StandardScaler::new();
        let tr = t.fit_transform(&f);
        // both series standardized independently to the same z-scores
        for i in 0..3 {
            assert!((tr.series(0)[i] - tr.series(1)[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_series_do_not_divide_by_zero() {
        let f = TimeSeriesFrame::univariate(vec![5.0; 10]);
        let mut t = StandardScaler::new();
        let tr = t.fit_transform(&f);
        assert!(tr.series(0).iter().all(|v| v.is_finite()));
        let mut t2 = MinMaxScaler::new();
        let tr2 = t2.fit_transform(&f);
        assert!(tr2.series(0).iter().all(|v| v.is_finite()));
    }
}
