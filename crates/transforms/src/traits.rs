//! The sklearn-style transformer contract and ordered chains.

use autoai_tsdata::TimeSeriesFrame;

/// A fittable, invertible data transformation over time series frames.
///
/// Mirrors the sklearn transformer API from Figure 1 of the paper: `fit`
/// learns any parameters from training data, `transform` applies the
/// mapping, and `inverse_transform` undoes it (used at prediction time to
/// map model outputs back to the original scale).
pub trait Transform: Send + Sync {
    /// Learn transformation parameters from training data.
    fn fit(&mut self, frame: &TimeSeriesFrame);

    /// Apply the transformation.
    fn transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame;

    /// Undo the transformation on model outputs.
    ///
    /// For stateful transforms (e.g. differencing) this assumes the input
    /// continues immediately after the data seen at `fit`/`transform` time,
    /// which is exactly the forecasting case.
    fn inverse_transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame;

    /// Fit and transform in one call.
    fn fit_transform(&mut self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        self.fit(frame);
        self.transform(frame)
    }

    /// Human-readable name used in pipeline descriptions.
    fn name(&self) -> &'static str;
}

/// An ordered chain of transforms applied left to right; the inverse is
/// applied right to left ("inverse transformations are applied in the
/// reverse order of application", §3).
#[derive(Default)]
pub struct TransformChain {
    steps: Vec<Box<dyn Transform>>,
}

impl TransformChain {
    /// Empty chain (identity).
    pub fn new() -> Self {
        Self { steps: Vec::new() }
    }

    /// Append a transform to the end of the chain.
    pub fn push(mut self, t: Box<dyn Transform>) -> Self {
        self.steps.push(t);
        self
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Fit every step in order, feeding each the output of the previous.
    pub fn fit_transform(&mut self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        let mut cur = frame.clone();
        for s in &mut self.steps {
            cur = s.fit_transform(&cur);
        }
        cur
    }

    /// Apply every step in order (after fitting).
    pub fn transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        let mut cur = frame.clone();
        for s in &self.steps {
            cur = s.transform(&cur);
        }
        cur
    }

    /// Apply inverse transforms in reverse order.
    pub fn inverse_transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        let mut cur = frame.clone();
        for s in self.steps.iter().rev() {
            cur = s.inverse_transform(&cur);
        }
        cur
    }

    /// Names of the chained steps, for pipeline descriptions.
    pub fn names(&self) -> Vec<&'static str> {
        self.steps.iter().map(|s| s.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stateless::{LogTransform, StandardScaler};

    #[test]
    fn chain_applies_in_order_and_inverts_in_reverse() {
        let data = TimeSeriesFrame::univariate(vec![1.0, 10.0, 100.0, 1000.0]);
        let mut chain = TransformChain::new()
            .push(Box::new(LogTransform::new()))
            .push(Box::new(StandardScaler::new()));
        let t = chain.fit_transform(&data);
        // standardized log values: mean 0
        let m: f64 = t.series(0).iter().sum::<f64>() / 4.0;
        assert!(m.abs() < 1e-9);
        let back = chain.inverse_transform(&t);
        for (a, b) in back.series(0).iter().zip(data.series(0)) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_chain_is_identity() {
        let data = TimeSeriesFrame::univariate(vec![1.0, 2.0]);
        let mut chain = TransformChain::new();
        assert!(chain.is_empty());
        let t = chain.fit_transform(&data);
        assert_eq!(t, data);
        assert_eq!(chain.inverse_transform(&t), data);
    }

    #[test]
    fn chain_with_difference_integrates_forecasts() {
        use crate::stateful::DifferenceTransform;
        // log then difference; a perfect forecast of transformed values
        // must map back onto the original-scale continuation
        let data: Vec<f64> = (1..=40).map(|i| (i * i) as f64).collect();
        let future: Vec<f64> = (41..=43).map(|i| (i * i) as f64).collect();
        let frame = TimeSeriesFrame::univariate(data.clone());
        let mut chain = TransformChain::new()
            .push(Box::new(LogTransform::new()))
            .push(Box::new(DifferenceTransform::new()));
        let _ = chain.fit_transform(&frame);
        // transformed continuation: diff of log of [data ++ future]
        let mut all = data.clone();
        all.extend_from_slice(&future);
        let logs: Vec<f64> = all.iter().map(|v| v.ln()).collect();
        let cont_diffs: Vec<f64> = (data.len()..all.len())
            .map(|i| logs[i] - logs[i - 1])
            .collect();
        let restored = chain.inverse_transform(&TimeSeriesFrame::univariate(cont_diffs));
        for (r, t) in restored.series(0).iter().zip(&future) {
            assert!((r - t).abs() < 1e-6 * t, "{r} vs {t}");
        }
    }

    #[test]
    fn chain_names() {
        let chain = TransformChain::new().push(Box::new(LogTransform::new()));
        assert_eq!(chain.names(), vec!["log"]);
        assert_eq!(chain.len(), 1);
    }
}
