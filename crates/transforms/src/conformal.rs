//! Split-conformal prediction scores.
//!
//! The distribution-free fallback behind `predict_interval`: any point
//! forecaster gains finite-sample marginal coverage by widening its point
//! forecast with an empirical quantile of held-out absolute residuals.
//! For `n` exchangeable calibration scores and a target level `q`, the
//! half-width is the `ceil((n + 1) * q)`-th smallest score, which yields
//! `P(|y - ŷ| <= w) >= q` on a fresh exchangeable point (Vovk et al.;
//! Lei et al. 2018 split conformal).
//!
//! This module is pure slice math — it knows nothing about forecasters or
//! frames. The pipeline-facing glue (computing residuals from a fitted
//! forecaster, assembling band frames) lives in `autoai_pipelines`.

/// Sorted absolute-residual calibration scores, one set per series.
#[derive(Debug, Clone)]
pub struct ConformalScores {
    /// Per-series ascending absolute residuals (non-finite values dropped).
    per_series: Vec<Vec<f64>>,
}

impl ConformalScores {
    /// Build calibration scores from per-series residuals (forecast errors
    /// on a held-out window). Non-finite residuals are dropped; returns
    /// `None` when any series ends up with no usable score, because a
    /// half-width cannot be certified for it.
    pub fn from_residuals(residuals: &[Vec<f64>]) -> Option<Self> {
        if residuals.is_empty() {
            return None;
        }
        let mut per_series = Vec::with_capacity(residuals.len());
        for series in residuals {
            let mut scores: Vec<f64> = series
                .iter()
                .map(|r| r.abs())
                .filter(|r| r.is_finite())
                .collect();
            if scores.is_empty() {
                return None;
            }
            scores.sort_by(f64::total_cmp);
            per_series.push(scores);
        }
        Some(Self { per_series })
    }

    /// Number of calibrated series.
    pub fn n_series(&self) -> usize {
        self.per_series.len()
    }

    /// Conformal half-width for `series` at coverage `level` in (0, 1):
    /// the `ceil((n + 1) * level)`-th smallest score, clamped to the
    /// largest observed score when the finite-sample rank exceeds `n`.
    /// Returns `None` for an unknown series or a level outside (0, 1).
    pub fn half_width(&self, series: usize, level: f64) -> Option<f64> {
        if !(level > 0.0 && level < 1.0) {
            return None;
        }
        let scores = self.per_series.get(series)?;
        let n = scores.len();
        let rank = (((n + 1) as f64) * level).ceil() as usize;
        let rank = rank.clamp(1, n);
        scores.get(rank - 1).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_width_picks_finite_sample_rank() {
        // n = 9 scores 1..=9; level 0.8 → rank ceil(10 * 0.8) = 8 → score 8
        let resid: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let s = ConformalScores::from_residuals(&[resid]).unwrap();
        assert_eq!(s.half_width(0, 0.8), Some(8.0));
        // level 0.95 → rank ceil(10 * 0.95) = 10, clamped to 9 → score 9
        assert_eq!(s.half_width(0, 0.95), Some(9.0));
        // tiny level still returns the smallest score, never zero-rank
        assert_eq!(s.half_width(0, 0.01), Some(1.0));
    }

    #[test]
    fn scores_sort_and_take_absolute_values() {
        let s = ConformalScores::from_residuals(&[vec![-3.0, 1.0, -2.0]]).unwrap();
        // sorted |r| = [1, 2, 3]; level 0.5 → rank ceil(4 * .5) = 2 → 2.0
        assert_eq!(s.half_width(0, 0.5), Some(2.0));
    }

    #[test]
    fn non_finite_residuals_are_dropped() {
        let s = ConformalScores::from_residuals(&[vec![f64::NAN, 2.0, f64::INFINITY]]).unwrap();
        assert_eq!(s.half_width(0, 0.9), Some(2.0));
    }

    #[test]
    fn unusable_series_refuse_calibration() {
        assert!(ConformalScores::from_residuals(&[]).is_none());
        assert!(ConformalScores::from_residuals(&[vec![]]).is_none());
        assert!(ConformalScores::from_residuals(&[vec![f64::NAN]]).is_none());
        // one good + one empty series: whole calibration refused
        assert!(ConformalScores::from_residuals(&[vec![1.0], vec![]]).is_none());
    }

    #[test]
    fn invalid_levels_and_series_are_none() {
        let s = ConformalScores::from_residuals(&[vec![1.0]]).unwrap();
        assert!(s.half_width(0, 0.0).is_none());
        assert!(s.half_width(0, 1.0).is_none());
        assert!(s.half_width(1, 0.5).is_none());
        assert_eq!(s.n_series(), 1);
    }

    #[test]
    fn wider_level_never_narrows_the_band() {
        let resid: Vec<f64> = (0..40).map(|i| ((i * 37) % 19) as f64 * 0.5).collect();
        let s = ConformalScores::from_residuals(&[resid]).unwrap();
        let mut prev = 0.0;
        for level in [0.5, 0.8, 0.9, 0.95, 0.99] {
            let w = s.half_width(0, level).unwrap();
            assert!(w >= prev, "level {level}: {w} < {prev}");
            prev = w;
        }
    }
}
