//! Cross-pipeline transform cache for the T-Daub hot path.
//!
//! T-Daub evaluates every pipeline on the *same* sequence of data
//! allocations, and most window pipelines share identical look-back flatten
//! configurations — so within a fixed-allocation round the same flatten
//! design matrix is rebuilt once per pipeline, and across rounds each
//! allocation is a strict extension of the previous one. [`TransformCache`]
//! removes both redundancies:
//!
//! * **Sharing within a round** — datasets are memoized under a key of
//!   (frame fingerprint, look-back, horizon). Frame fingerprints are buffer
//!   addresses plus the view window (see
//!   [`autoai_tsdata::FrameFingerprint`]), which is exact because the
//!   zero-copy frame views produced by `slice()` share storage. Every cache
//!   entry also stores a clone of its input frame, pinning the underlying
//!   buffers so an address can never be recycled into a stale hit.
//! * **Extension across rounds** — when a requested view extends the
//!   previously cached view of the same buffers (a suffix for reverse,
//!   most-recent-first allocations; a prefix for forward allocations), only
//!   the window rows the growth adds are computed and the remaining rows
//!   are copied from the cached matrix.
//! * **Lineage-verified extension for derived frames** — a [`frame_op`]
//!   output (a log or difference pass) lives in fresh buffers every
//!   allocation, so pointer identity can never link one round's output to
//!   the next. The cache therefore records each output's *lineage* (root
//!   buffers plus the ordered tag chain) and, when a flatten request's
//!   lineage matches the previous round's entry, verifies bitwise that the
//!   overlapping rows are identical before extending. Transforms whose
//!   overlap is value-stable across allocations (differencing, a log with
//!   an unchanged offset) extend; anything else fails verification and
//!   falls back to a full build — soundness never rests on an assumption
//!   about the transform.
//!
//! [`frame_op`]: TransformCache::frame_op
//!
//! Population is panic-quarantined: if a compute panics, the entry is
//! poisoned to `None` and every caller falls back to computing directly,
//! reproducing the panic inside its own fault-isolation boundary (the
//! T-Daub executor's per-unit `catch_unwind`). The cache never panics and
//! never blocks while holding one of its internal locks, so a crashed
//! pipeline cannot wedge the others.
//!
//! Hit/miss accounting is deterministic: a miss is counted by whichever
//! caller first registers the key (exactly one per key, serialized by the
//! map lock) and every later caller counts a hit, so serial and parallel
//! executions report identical totals.
//!
//! **Zombie-write guard** — the hard-deadline watchdog in the T-Daub
//! executor quarantines a worker by *abandoning* its thread, which may still
//! be executing pipeline code that talks to this cache. Every work unit is
//! therefore stamped with a generation (an *epoch* from [`begin_unit`]) that
//! the executing thread carries in thread-local state
//! ([`enter_unit`]/[`exit_unit`]); when the watchdog quarantines the unit it
//! calls [`retire_unit`]. A thread whose current epoch is retired bypasses
//! the cache entirely — lookups compute privately and publications are
//! discarded — so a zombie can neither poison entries nor perturb the
//! deterministic hit/miss accounting. Epoch `0` (the default for threads
//! outside any supervised unit) is always live. Population uses
//! compute-then-publish rather than blocking `get_or_init` initialization,
//! so a worker wedged mid-build can never wedge the *other* workers behind
//! the same slot: racing builders each compute the (deterministic) value and
//! the first publication wins.
//!
//! [`begin_unit`]: TransformCache::begin_unit
//! [`retire_unit`]: TransformCache::retire_unit

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use autoai_linalg::sync::OrderedMutex;

use autoai_linalg::Matrix;
use autoai_tsdata::{FrameFingerprint, TimeSeriesFrame};

use crate::window::{fill_flatten_rows, flatten_windows, n_windows, WindowDataset};

/// Key for a memoized flatten design matrix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct DatasetKey {
    frame: FrameFingerprint,
    lookback: usize,
    horizon: usize,
}

/// Key for a memoized frame-to-frame operation (e.g. a log or difference
/// transform). The tag must uniquely determine the pure function applied.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FrameKey {
    frame: FrameFingerprint,
    tag: String,
}

/// Stable identity of a frame's computation chain: the root input buffers
/// plus the ordered [`TransformCache::frame_op`] tags applied to them. Two
/// rounds' derived outputs share a lineage even though each lives in fresh
/// buffers; raw views have an empty tag chain and degenerate to buffer
/// identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Lineage {
    buffers: Vec<usize>,
    tags: Vec<String>,
}

/// Grouping key for extension candidates: same lineage, same windowing.
type ExtensionKey = (Lineage, usize, usize);

#[derive(Clone)]
struct DatasetEntry {
    /// Pins the input buffers for the lifetime of the entry so the
    /// pointer-based fingerprint can never alias a recycled allocation, and
    /// provides the overlap data for lineage-verified extensions.
    input: TimeSeriesFrame,
    data: Arc<WindowDataset>,
}

#[derive(Clone)]
struct FrameEntry {
    _input: TimeSeriesFrame,
    out: TimeSeriesFrame,
}

/// A cache slot: `None` after a quarantined panic (callers fall back),
/// `Some` once populated. `OnceLock` guarantees exactly one computation per
/// key even under the parallel work queue.
type Slot<T> = Arc<OnceLock<Option<T>>>;

/// Snapshot of cache activity, surfaced in the T-Daub `ExecutionReport` and
/// the tdaub bench JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an existing entry.
    pub hits: u64,
    /// Lookups that had to register a new entry.
    pub misses: u64,
    /// Misses served by extending a previous allocation's matrix instead of
    /// rebuilding it from scratch.
    pub extensions: u64,
    /// Bytes of derived data returned without recomputation (hits plus the
    /// copied portion of extensions).
    pub bytes_saved: u64,
    /// Bytes of derived data actually materialized by cache population.
    pub bytes_built: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache, in `[0, 1]`; 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoizes flatten-family design matrices and frame-to-frame transform
/// outputs across pipelines and allocations. See the module docs for the
/// keying and fault-isolation contract. Shared by reference
/// (`Arc<TransformCache>`) between the T-Daub executor's workers.
pub struct TransformCache {
    datasets: OrderedMutex<HashMap<DatasetKey, Slot<DatasetEntry>>>,
    frames: OrderedMutex<HashMap<FrameKey, Slot<FrameEntry>>>,
    /// Newest successfully cached view per (lineage, lookback, horizon) —
    /// the extension candidate for the next allocation.
    latest: OrderedMutex<HashMap<ExtensionKey, FrameFingerprint>>,
    /// Lineage of every `frame_op` output, keyed by its fingerprint; raw
    /// views are absent (their lineage is their buffer list).
    lineages: OrderedMutex<HashMap<FrameFingerprint, Lineage>>,
    /// Next work-unit epoch handed out by [`TransformCache::begin_unit`]
    /// (epoch `0` is reserved for "outside any unit" and is always live).
    next_epoch: AtomicU64,
    /// Epochs of quarantined work units (see the zombie-write guard in the
    /// module docs).
    retired_units: OrderedMutex<HashSet<u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    extensions: AtomicU64,
    bytes_saved: AtomicU64,
    bytes_built: AtomicU64,
}

impl Default for TransformCache {
    fn default() -> Self {
        Self {
            datasets: OrderedMutex::new("cache.datasets", HashMap::new()),
            frames: OrderedMutex::new("cache.frames", HashMap::new()),
            latest: OrderedMutex::new("cache.latest", HashMap::new()),
            lineages: OrderedMutex::new("cache.lineages", HashMap::new()),
            next_epoch: AtomicU64::new(0),
            retired_units: OrderedMutex::new("cache.retired", HashSet::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            extensions: AtomicU64::new(0),
            bytes_saved: AtomicU64::new(0),
            bytes_built: AtomicU64::new(0),
        }
    }
}

thread_local! {
    /// Epoch of the supervised work unit the current thread is executing;
    /// `0` outside any unit.
    static UNIT_EPOCH: Cell<u64> = const { Cell::new(0) };
}

/// When enabled, every cache *hit* on a flatten dataset is re-derived from
/// scratch with a fault-free [`flatten_windows`] build and compared bitwise
/// against the cached entry; mismatches are counted process-wide. This is a
/// test-harness knob for the chaos gauntlet (the gauntlet's caches live
/// inside `run_tdaub` where tests cannot reach them) — it is off by default
/// and costs one relaxed atomic load per hit when disabled.
static VERIFY_HITS: AtomicBool = AtomicBool::new(false);
static HIT_MISMATCHES: AtomicU64 = AtomicU64::new(0);

/// Enable or disable process-wide cache-hit verification. Enabling resets
/// the mismatch counter.
pub fn set_hit_verification(on: bool) {
    if on {
        HIT_MISMATCHES.store(0, Ordering::SeqCst);
    }
    VERIFY_HITS.store(on, Ordering::SeqCst);
}

/// Number of verified cache hits whose bytes differed from a fault-free
/// rebuild since verification was last enabled. Any nonzero value is a bug.
pub fn hit_mismatches() -> u64 {
    HIT_MISMATCHES.load(Ordering::SeqCst)
}

/// Bitwise equality of two window datasets (`to_bits`, so NaNs compare like
/// any other payload).
fn datasets_bits_equal(a: &WindowDataset, b: &WindowDataset) -> bool {
    let matrix_eq = |m: &Matrix, n: &Matrix| {
        m.nrows() == n.nrows()
            && m.ncols() == n.ncols()
            && m.rows_iter()
                .zip(n.rows_iter())
                .all(|(x, y)| x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits()))
    };
    matrix_eq(&a.x, &b.x) && matrix_eq(&a.y, &b.y)
}

fn frame_bytes(frame: &TimeSeriesFrame) -> u64 {
    (frame.len() as u64) * (frame.n_series() as u64) * 8
}

/// Bitwise equality of all of `old`'s rows against the same-length row range
/// of `new` starting at `offset` — the soundness gate for extending across
/// derived frames that live in fresh buffers each allocation. Bit equality
/// (not `==`) so NaN rows compare like any other data.
fn rows_match(new: &TimeSeriesFrame, old: &TimeSeriesFrame, offset: usize) -> bool {
    let len = old.len();
    if offset.saturating_add(len) > new.len() || new.n_series() != old.n_series() {
        return false;
    }
    (0..old.n_series()).all(|c| {
        let new_rows = new.series(c).get(offset..offset + len).unwrap_or(&[]);
        old.series(c)
            .iter()
            .zip(new_rows)
            .all(|(a, b)| a.to_bits() == b.to_bits())
            && new_rows.len() == len
    })
}

impl TransformCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh work-unit epoch. The executor stamps each supervised
    /// work unit with one before dispatch; the executing thread announces it
    /// via [`TransformCache::enter_unit`].
    pub fn begin_unit(&self) -> u64 {
        // start at 1: epoch 0 means "outside any unit" and is always live
        self.next_epoch
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_add(1)
    }

    /// Mark the current thread as executing the work unit with this epoch.
    pub fn enter_unit(&self, epoch: u64) {
        UNIT_EPOCH.with(|e| e.set(epoch));
    }

    /// Clear the current thread's work-unit epoch (back to always-live 0).
    pub fn exit_unit(&self) {
        UNIT_EPOCH.with(|e| e.set(0));
    }

    /// Quarantine a work unit: any thread still executing under this epoch
    /// (a watchdog-abandoned zombie) loses cache access — its lookups
    /// compute privately and its publications are discarded.
    pub fn retire_unit(&self, epoch: u64) {
        if epoch == 0 {
            return;
        }
        if let Ok(mut set) = self.retired_units.lock() {
            set.insert(epoch);
        }
    }

    /// Whether the calling thread's work unit is still live. Threads outside
    /// any unit (epoch 0) are always live; a poisoned retired-set lock is
    /// treated as "not live" so a zombie can never win by poisoning it.
    fn unit_live(&self) -> bool {
        let epoch = UNIT_EPOCH.with(|e| e.get());
        if epoch == 0 {
            return true;
        }
        match self.retired_units.lock() {
            Ok(set) => !set.contains(&epoch),
            Err(_) => false,
        }
    }

    /// Memoized [`flatten_windows`]. Returns `None` when the cache cannot
    /// serve the request (a quarantined panic or a poisoned lock); callers
    /// must then fall back to computing directly, which reproduces any
    /// panic inside their own fault-isolation boundary.
    pub fn flatten(
        &self,
        frame: &TimeSeriesFrame,
        lookback: usize,
        horizon: usize,
    ) -> Option<Arc<WindowDataset>> {
        if !self.unit_live() {
            // Watchdog-abandoned zombie: compute privately without touching
            // the maps or the deterministic hit/miss accounting.
            let built = catch_unwind(AssertUnwindSafe(|| {
                flatten_windows(frame, lookback, horizon)
            }))
            .ok()?;
            return Some(Arc::new(built));
        }
        let fp = frame.fingerprint();
        let key = DatasetKey {
            frame: fp.clone(),
            lookback,
            horizon,
        };
        let (slot, existed) = {
            let mut map = self.datasets.lock().ok()?;
            if let Some(s) = map.get(&key) {
                (Arc::clone(s), true)
            } else {
                let s: Slot<DatasetEntry> = Arc::new(OnceLock::new());
                map.insert(key, Arc::clone(&s));
                (s, false)
            }
        };
        if existed {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let entry = match slot.get() {
            Some(populated) => populated.clone()?,
            None => {
                // Compute outside the slot (never block other workers behind
                // a wedged builder), then publish first-writer-wins. Racing
                // duplicate builds produce identical deterministic entries.
                let computed = self.build_dataset(frame, lookback, horizon);
                if !self.unit_live() {
                    // retired mid-build: discard the publication, keep a
                    // private copy so the zombie's own doomed unit proceeds
                    return computed.map(|e| e.data);
                }
                let _ = slot.set(computed);
                slot.get()?.clone()?
            }
        };
        if existed {
            self.bytes_saved
                .fetch_add(entry.data.bytes(), Ordering::Relaxed);
            if VERIFY_HITS.load(Ordering::Relaxed) {
                // fault-free rebuild straight from the kernel (the chaos
                // injection site lives in build_dataset, not here)
                let rebuilt = flatten_windows(frame, lookback, horizon);
                if !datasets_bits_equal(&entry.data, &rebuilt) {
                    HIT_MISMATCHES.fetch_add(1, Ordering::SeqCst);
                }
            }
        } else {
            let lineage = self.lineage_of(&fp);
            if let Ok(mut latest) = self.latest.lock() {
                latest.insert((lineage, lookback, horizon), fp);
            }
        }
        Some(Arc::clone(&entry.data))
    }

    /// Memoized per-series flatten (the Localized Flatten building block):
    /// equivalent to `flatten_windows(&frame.select(series), ..)`. Because
    /// `select` is a zero-copy view, the key degenerates to the single
    /// column's buffer and per-series datasets are shared like any other.
    pub fn localized_flatten(
        &self,
        frame: &TimeSeriesFrame,
        series: usize,
        lookback: usize,
        horizon: usize,
    ) -> Option<Arc<WindowDataset>> {
        self.flatten(&frame.select(series), lookback, horizon)
    }

    /// Memoized frame-to-frame operation (e.g. a stateless log transform or
    /// a difference pass). `tag` must uniquely determine the pure function
    /// `compute` applies to the frame — two callers using the same tag for
    /// different functions would share each other's outputs. The returned
    /// frame shares buffers with the cached entry, so downstream flatten
    /// lookups on it fingerprint identically across pipelines. Returns
    /// `None` on a quarantined panic; callers fall back to direct compute.
    pub fn frame_op(
        &self,
        frame: &TimeSeriesFrame,
        tag: &str,
        compute: impl FnOnce() -> TimeSeriesFrame,
    ) -> Option<TimeSeriesFrame> {
        if !self.unit_live() {
            // Watchdog-abandoned zombie: compute privately without touching
            // the maps or the deterministic hit/miss accounting.
            return catch_unwind(AssertUnwindSafe(compute)).ok();
        }
        let key = FrameKey {
            frame: frame.fingerprint(),
            tag: tag.to_string(),
        };
        let (slot, existed) = {
            let mut map = self.frames.lock().ok()?;
            if let Some(s) = map.get(&key) {
                (Arc::clone(s), true)
            } else {
                let s: Slot<FrameEntry> = Arc::new(OnceLock::new());
                map.insert(key, Arc::clone(&s));
                (s, false)
            }
        };
        if existed {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let entry = match slot.get() {
            Some(populated) => populated.clone()?,
            None => {
                let computed = catch_unwind(AssertUnwindSafe(|| {
                    let out = compute();
                    self.bytes_built
                        .fetch_add(frame_bytes(&out), Ordering::Relaxed);
                    FrameEntry {
                        _input: frame.clone(),
                        out,
                    }
                }))
                .ok();
                if !self.unit_live() {
                    // retired mid-build: discard the publication, keep a
                    // private copy so the zombie's own doomed unit proceeds
                    return computed.map(|e| e.out);
                }
                let _ = slot.set(computed);
                slot.get()?.clone()?
            }
        };
        if existed {
            self.bytes_saved
                .fetch_add(frame_bytes(&entry.out), Ordering::Relaxed);
        } else {
            // record the output's computation chain so a later flatten on it
            // can find the previous allocation's matrix despite fresh buffers
            let mut lineage = self.lineage_of(&frame.fingerprint());
            lineage.tags.push(tag.to_string());
            if let Ok(mut map) = self.lineages.lock() {
                map.insert(entry.out.fingerprint(), lineage);
            }
        }
        Some(entry.out.clone())
    }

    /// The computation-chain identity of a view: its recorded `frame_op`
    /// lineage, or (for raw views) its buffer list with an empty tag chain.
    fn lineage_of(&self, fp: &FrameFingerprint) -> Lineage {
        if let Ok(map) = self.lineages.lock() {
            if let Some(l) = map.get(fp) {
                return l.clone();
            }
        }
        Lineage {
            buffers: fp.buffers().to_vec(),
            tags: Vec::new(),
        }
    }

    /// Release the strong input pins this cache holds on the given buffer
    /// addresses (see [`FrameFingerprint::buffers`]), so a caller that owns
    /// those buffers can grow them in place without the cache forcing a
    /// copy-on-write re-base.
    ///
    /// **Contract**: the caller must keep the named buffers alive for as
    /// long as it keeps using this cache — the pins exist so a pointer-keyed
    /// entry can never alias a recycled allocation, and releasing them moves
    /// that obligation to the caller. The service layer satisfies it by
    /// holding every ingested frame in its store and calling
    /// [`TransformCache::purge_buffers`] whenever a stored frame's buffers
    /// are actually retired (an ingest replacement or a re-based growth).
    ///
    /// Detached entries stay fully servable: same-buffer extension works on
    /// pointer identity alone and never reads the pinned input, and the
    /// cross-buffer value-verification path fails closed on a detached
    /// input (falling back to a full rebuild), so soundness never degrades
    /// — only an extension opportunity can be lost.
    pub fn release_pins(&self, buffers: &[usize]) {
        if buffers.is_empty() {
            return;
        }
        let shares = |fp: &FrameFingerprint| fp.buffers().iter().any(|b| buffers.contains(b));
        if let Ok(mut map) = self.datasets.lock() {
            for slot in map.values_mut() {
                let Some(Some(entry)) = slot.get() else {
                    continue;
                };
                if !shares(&entry.input.fingerprint()) {
                    continue;
                }
                let detached = DatasetEntry {
                    input: TimeSeriesFrame::from_columns(Vec::new()),
                    data: Arc::clone(&entry.data),
                };
                let fresh: Slot<DatasetEntry> = Arc::new(OnceLock::new());
                let _ = fresh.set(Some(detached));
                *slot = fresh;
            }
        }
        if let Ok(mut map) = self.frames.lock() {
            // An output that itself shares the buffers cannot be detached
            // (it *is* the cached value) — drop the entry instead; dropping
            // is always sound, it just costs a future miss.
            map.retain(|_, slot| match slot.get() {
                Some(Some(entry)) => !shares(&entry.out.fingerprint()),
                _ => true,
            });
            for slot in map.values_mut() {
                let Some(Some(entry)) = slot.get() else {
                    continue;
                };
                if !shares(&entry._input.fingerprint()) {
                    continue;
                }
                let detached = FrameEntry {
                    _input: TimeSeriesFrame::from_columns(Vec::new()),
                    out: entry.out.clone(),
                };
                let fresh: Slot<FrameEntry> = Arc::new(OnceLock::new());
                let _ = fresh.set(Some(detached));
                *slot = fresh;
            }
        }
    }

    /// Drop every entry, extension candidate, and lineage record that
    /// references the given buffer addresses. Callers that released pins
    /// with [`TransformCache::release_pins`] must call this when the
    /// buffers are genuinely retired (freed or replaced), so a recycled
    /// allocation can never collide with a stale pointer-keyed entry.
    pub fn purge_buffers(&self, buffers: &[usize]) {
        if buffers.is_empty() {
            return;
        }
        let shares = |fp: &FrameFingerprint| fp.buffers().iter().any(|b| buffers.contains(b));
        if let Ok(mut map) = self.datasets.lock() {
            map.retain(|key, slot| {
                !shares(&key.frame)
                    && match slot.get() {
                        Some(Some(entry)) => !shares(&entry.input.fingerprint()),
                        _ => true,
                    }
            });
        }
        if let Ok(mut map) = self.frames.lock() {
            map.retain(|key, slot| {
                !shares(&key.frame)
                    && match slot.get() {
                        Some(Some(entry)) => {
                            !shares(&entry._input.fingerprint())
                                && !shares(&entry.out.fingerprint())
                        }
                        _ => true,
                    }
            });
        }
        if let Ok(mut map) = self.latest.lock() {
            map.retain(|(lineage, _, _), fp| {
                !shares(fp) && !lineage.buffers.iter().any(|b| buffers.contains(b))
            });
        }
        if let Ok(mut map) = self.lineages.lock() {
            map.retain(|fp, lineage| {
                !shares(fp) && !lineage.buffers.iter().any(|b| buffers.contains(b))
            });
        }
    }

    /// Snapshot the activity counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            extensions: self.extensions.load(Ordering::Relaxed),
            bytes_saved: self.bytes_saved.load(Ordering::Relaxed),
            bytes_built: self.bytes_built.load(Ordering::Relaxed),
        }
    }

    /// Estimated bytes of derived data resident in populated entries: the
    /// flatten design matrices plus the frame-op output frames (entry keys,
    /// pins, and map overhead are not counted). The service layer's
    /// byte-budget eviction ([`ServiceLimits::max_cache_bytes`] in the core
    /// crate) polls this between requests; the sum is order-independent, so
    /// hash-map iteration here cannot perturb any ranking.
    pub fn resident_bytes(&self) -> u64 {
        let mut total: u64 = 0;
        if let Ok(map) = self.datasets.lock() {
            for slot in map.values() {
                if let Some(Some(entry)) = slot.get() {
                    total = total.saturating_add(entry.data.bytes());
                }
            }
        }
        if let Ok(map) = self.frames.lock() {
            for slot in map.values() {
                if let Some(Some(entry)) = slot.get() {
                    total = total.saturating_add(frame_bytes(&entry.out));
                }
            }
        }
        total
    }

    /// Drop every entry and reset instrumentation. The T-Daub runner calls
    /// this between independent searches; entries are otherwise retained
    /// for the cache's lifetime (one search holds a few dozen small
    /// matrices — one per allocation × windowing config).
    pub fn clear(&self) {
        if let Ok(mut m) = self.datasets.lock() {
            m.clear();
        }
        if let Ok(mut m) = self.frames.lock() {
            m.clear();
        }
        if let Ok(mut m) = self.latest.lock() {
            m.clear();
        }
        if let Ok(mut m) = self.lineages.lock() {
            m.clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.extensions.store(0, Ordering::Relaxed);
        self.bytes_saved.store(0, Ordering::Relaxed);
        self.bytes_built.store(0, Ordering::Relaxed);
    }

    /// Panic-quarantined dataset population: try the incremental extension
    /// path, fall back to a full [`flatten_windows`] build. `None` records
    /// a quarantined panic.
    fn build_dataset(
        &self,
        frame: &TimeSeriesFrame,
        lookback: usize,
        horizon: usize,
    ) -> Option<DatasetEntry> {
        catch_unwind(AssertUnwindSafe(|| {
            if autoai_chaos::enabled() {
                let k = (lookback as u64) ^ ((horizon as u64) << 16) ^ ((frame.len() as u64) << 32);
                match autoai_chaos::inject("cache.flatten", k) {
                    Some(autoai_chaos::Fault::Panic | autoai_chaos::Fault::TypedError) => {
                        // this closure's catch_unwind quarantines the entry and
                        // callers fall back to a direct, bit-identical rebuild
                        // tscheck:allow(panic): deliberate chaos fault injection
                        panic!("chaos: injected cache build failure")
                    }
                    Some(autoai_chaos::Fault::Delay(ms)) => {
                        std::thread::sleep(std::time::Duration::from_millis(ms))
                    }
                    Some(autoai_chaos::Fault::NanForecast) | None => {}
                }
            }
            let data = match self.extend_from_previous(frame, lookback, horizon) {
                Some(extended) => extended,
                None => {
                    let built = flatten_windows(frame, lookback, horizon);
                    self.bytes_built.fetch_add(built.bytes(), Ordering::Relaxed);
                    built
                }
            };
            DatasetEntry {
                input: frame.clone(),
                data: Arc::new(data),
            }
        }))
        .ok()
    }

    /// Incremental allocation growth: when `frame` extends the most
    /// recently cached view of the same lineage (suffix for reverse
    /// allocations, prefix for forward), build the new design matrix by
    /// computing only the added window rows and copying the rest from the
    /// cached matrix. Same-buffer views extend on pointer identity alone;
    /// derived frames (fresh buffers each round) extend only after a bitwise
    /// verification of the overlapping rows. Returns `None` whenever the
    /// preconditions don't hold; the result is bitwise identical to a full
    /// rebuild because the copied rows are exactly the windows the two views
    /// provably share.
    fn extend_from_previous(
        &self,
        frame: &TimeSeriesFrame,
        lookback: usize,
        horizon: usize,
    ) -> Option<WindowDataset> {
        let fp = frame.fingerprint();
        let lineage = self.lineage_of(&fp);
        let old_fp = {
            let latest = self.latest.lock().ok()?;
            latest.get(&(lineage, lookback, horizon))?.clone()
        };
        if old_fp == fp {
            return None;
        }
        let slot = {
            let map = self.datasets.lock().ok()?;
            Arc::clone(map.get(&DatasetKey {
                frame: old_fp.clone(),
                lookback,
                horizon,
            })?)
        };
        // Use only fully initialized entries; never block on one mid-build.
        let old = slot.get()?.as_ref()?.clone();
        let old_count = old.data.len();
        if old_count == 0 || old.data.anchors.is_some() {
            return None;
        }
        let grown = frame.len().checked_sub(old_fp.rows())?;
        if grown == 0 {
            return None;
        }
        let suffix = if fp.same_buffers(&old_fp) {
            if fp.extends_as_suffix(&old_fp) {
                true
            } else if fp.extends_as_prefix(&old_fp) {
                false
            } else {
                return None;
            }
        } else if rows_match(frame, &old.input, grown) {
            // previous output is the trailing rows → front (suffix) growth
            true
        } else if rows_match(frame, &old.input, 0) {
            // previous output is the leading rows → back (prefix) growth
            false
        } else {
            // overlap not value-stable across allocations (e.g. a transform
            // parameterized by the whole slice): rebuild from scratch
            return None;
        };
        let new_count = n_windows(frame.len(), lookback, horizon);
        if new_count != old_count.checked_add(grown)? {
            return None;
        }
        let xcols = old.data.x.ncols();
        let ycols = old.data.y.ncols();
        if xcols != lookback.saturating_mul(frame.n_series())
            || ycols != horizon.saturating_mul(frame.n_series())
        {
            return None;
        }
        let mut x = Matrix::zeros(new_count, xcols);
        let mut y = Matrix::zeros(new_count, ycols);
        if suffix {
            // Older rows were prepended: the cached windows are the trailing
            // `old_count` rows of the new matrix, shifted by `grown`.
            fill_flatten_rows(
                frame,
                lookback,
                horizon,
                0,
                x.rows_iter_mut().take(grown),
                y.rows_iter_mut().take(grown),
            );
            for (dst, src) in x.rows_iter_mut().skip(grown).zip(old.data.x.rows_iter()) {
                dst.copy_from_slice(src);
            }
            for (dst, src) in y.rows_iter_mut().skip(grown).zip(old.data.y.rows_iter()) {
                dst.copy_from_slice(src);
            }
        } else {
            // Newer rows were appended: the cached windows lead, fresh
            // windows follow.
            for (dst, src) in x.rows_iter_mut().zip(old.data.x.rows_iter()) {
                dst.copy_from_slice(src);
            }
            for (dst, src) in y.rows_iter_mut().zip(old.data.y.rows_iter()) {
                dst.copy_from_slice(src);
            }
            fill_flatten_rows(
                frame,
                lookback,
                horizon,
                old_count,
                x.rows_iter_mut().skip(old_count),
                y.rows_iter_mut().skip(old_count),
            );
        }
        self.extensions.fetch_add(1, Ordering::Relaxed);
        let row_bytes = ((xcols as u64) + (ycols as u64)) * 8;
        self.bytes_built
            .fetch_add((grown as u64) * row_bytes, Ordering::Relaxed);
        self.bytes_saved
            .fetch_add((old_count as u64) * row_bytes, Ordering::Relaxed);
        Some(WindowDataset {
            x,
            y,
            anchors: None,
        })
    }
}

impl std::fmt::Debug for TransformCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransformCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> TimeSeriesFrame {
        TimeSeriesFrame::from_columns(vec![
            (0..n).map(|i| (i as f64).sin() + i as f64 * 0.1).collect(),
            (0..n).map(|i| (i as f64 * 0.7).cos() * 3.0).collect(),
        ])
    }

    #[test]
    fn second_lookup_hits_and_shares_the_dataset() {
        let cache = TransformCache::new();
        let f = frame(40);
        let view = f.slice(10, 40);
        let a = cache.flatten(&view, 4, 2).unwrap();
        let b = cache.flatten(&f.slice(10, 40), 4, 2).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.bytes_saved, a.bytes());
        assert_eq!(*a, flatten_windows(&view, 4, 2));
    }

    #[test]
    fn distinct_windows_or_configs_do_not_collide() {
        let cache = TransformCache::new();
        let f = frame(40);
        let a = cache.flatten(&f.slice(0, 30), 4, 2).unwrap();
        let b = cache.flatten(&f.slice(0, 30), 5, 2).unwrap();
        let c = cache.flatten(&f.slice(5, 30), 4, 2).unwrap();
        assert_eq!(cache.stats().misses, 3);
        assert_ne!(a.x.ncols(), b.x.ncols());
        assert_eq!(*c, flatten_windows(&f.slice(5, 30), 4, 2));
    }

    #[test]
    fn suffix_extension_is_bitwise_identical_to_full_rebuild() {
        let cache = TransformCache::new();
        let f = frame(100);
        // reverse-allocation growth: each view ends at the last row
        let small = f.slice(70, 100);
        let big = f.slice(40, 100);
        let _ = cache.flatten(&small, 6, 3).unwrap();
        let extended = cache.flatten(&big, 6, 3).unwrap();
        assert_eq!(cache.stats().extensions, 1);
        assert_eq!(*extended, flatten_windows(&big, 6, 3));
    }

    #[test]
    fn prefix_extension_is_bitwise_identical_to_full_rebuild() {
        let cache = TransformCache::new();
        let f = frame(100);
        let small = f.slice(0, 55);
        let big = f.slice(0, 90);
        let _ = cache.flatten(&small, 5, 2).unwrap();
        let extended = cache.flatten(&big, 5, 2).unwrap();
        assert_eq!(cache.stats().extensions, 1);
        assert_eq!(*extended, flatten_windows(&big, 5, 2));
    }

    #[test]
    fn extension_chain_accumulates_across_allocations() {
        let cache = TransformCache::new();
        let f = frame(200);
        for start in [150, 100, 50, 0] {
            let view = f.slice(start, 200);
            let got = cache.flatten(&view, 8, 2).unwrap();
            assert_eq!(*got, flatten_windows(&view, 8, 2));
        }
        assert_eq!(cache.stats().extensions, 3);
    }

    #[test]
    fn derived_frame_extension_verifies_by_value() {
        let cache = TransformCache::new();
        let f = frame(120);
        // reverse-allocation rounds of a cached elementwise frame op: each
        // round's output lives in fresh buffers, only the values overlap
        for start in [80, 40, 0] {
            let view = f.slice(start, 120);
            let derived = cache
                .frame_op(&view, "sq", || {
                    TimeSeriesFrame::from_columns(
                        (0..view.n_series())
                            .map(|c| view.series(c).iter().map(|v| v * v).collect())
                            .collect(),
                    )
                })
                .unwrap();
            let got = cache.flatten(&derived, 5, 2).unwrap();
            assert_eq!(*got, flatten_windows(&derived, 5, 2));
        }
        assert_eq!(cache.stats().extensions, 2);
    }

    #[test]
    fn unstable_derived_frames_fail_verification_and_rebuild() {
        let cache = TransformCache::new();
        let f = frame(120);
        // mean-centering depends on the whole slice, so the overlapping
        // rows differ between rounds: verification must reject extension
        // while the output stays correct
        for start in [60, 0] {
            let view = f.slice(start, 120);
            let derived = cache
                .frame_op(&view, "center", || {
                    TimeSeriesFrame::from_columns(
                        (0..view.n_series())
                            .map(|c| {
                                let s = view.series(c);
                                let mean = s.iter().sum::<f64>() / s.len() as f64;
                                s.iter().map(|v| v - mean).collect()
                            })
                            .collect(),
                    )
                })
                .unwrap();
            let got = cache.flatten(&derived, 5, 2).unwrap();
            assert_eq!(*got, flatten_windows(&derived, 5, 2));
        }
        assert_eq!(cache.stats().extensions, 0);
    }

    #[test]
    fn chained_frame_ops_extend_through_their_lineage() {
        let cache = TransformCache::new();
        let f = frame(150);
        // diff(plus1(x)) across three reverse rounds: the flatten input is
        // two frame ops away from the raw buffers
        for start in [100, 50, 0] {
            let view = f.slice(start, 150);
            let a = cache
                .frame_op(&view, "plus1", || {
                    TimeSeriesFrame::from_columns(
                        (0..view.n_series())
                            .map(|c| view.series(c).iter().map(|v| v + 1.0).collect())
                            .collect(),
                    )
                })
                .unwrap();
            let b = cache
                .frame_op(&a, "diff1", || {
                    TimeSeriesFrame::from_columns(
                        (0..a.n_series())
                            .map(|c| {
                                let s = a.series(c);
                                s.iter().zip(s.iter().skip(1)).map(|(p, n)| n - p).collect()
                            })
                            .collect(),
                    )
                })
                .unwrap();
            let got = cache.flatten(&b, 4, 1).unwrap();
            assert_eq!(*got, flatten_windows(&b, 4, 1));
        }
        assert_eq!(cache.stats().extensions, 2);
    }

    #[test]
    fn empty_previous_dataset_falls_back_to_full_build() {
        let cache = TransformCache::new();
        let f = frame(40);
        // too short for any window: cached dataset is empty
        let tiny = f.slice(36, 40);
        assert!(cache.flatten(&tiny, 6, 3).unwrap().is_empty());
        let big = f.slice(0, 40);
        let got = cache.flatten(&big, 6, 3).unwrap();
        assert_eq!(cache.stats().extensions, 0);
        assert_eq!(*got, flatten_windows(&big, 6, 3));
    }

    #[test]
    fn localized_flatten_shares_per_series_entries() {
        let cache = TransformCache::new();
        let f = frame(50);
        let view = f.slice(10, 50);
        for c in 0..2 {
            let got = cache.localized_flatten(&view, c, 4, 1).unwrap();
            assert_eq!(*got, flatten_windows(&view.select(c), 4, 1));
        }
        // same per-series requests from a "different pipeline" all hit
        for c in 0..2 {
            let _ = cache.localized_flatten(&f.slice(10, 50), c, 4, 1).unwrap();
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 2));
    }

    #[test]
    fn frame_op_memoizes_and_preserves_buffer_identity() {
        let cache = TransformCache::new();
        let f = frame(30);
        let view = f.slice(0, 30);
        let mut calls = 0;
        let mut op = || {
            calls += 1;
            TimeSeriesFrame::from_columns(vec![
                view.series(0).iter().map(|v| v + 1.0).collect(),
                view.series(1).iter().map(|v| v + 1.0).collect(),
            ])
        };
        let a = cache.frame_op(&view, "plus1", &mut op).unwrap();
        let b = cache.frame_op(&view, "plus1", &mut op).unwrap();
        assert_eq!(calls, 1);
        assert_eq!(a, b);
        // the two returned frames share storage, so flatten keys compose
        assert_eq!(a.fingerprint(), b.fingerprint());
        let d1 = cache.flatten(&a, 3, 1).unwrap();
        let d2 = cache.flatten(&b, 3, 1).unwrap();
        assert!(Arc::ptr_eq(&d1, &d2));
    }

    #[test]
    fn panicking_compute_is_quarantined() {
        let cache = TransformCache::new();
        let f = frame(30);
        let boom = cache.frame_op(&f, "boom", || panic!("kernel exploded"));
        assert!(boom.is_none());
        // the poisoned entry keeps answering None without re-panicking
        let again = cache.frame_op(&f, "boom", || f.clone());
        assert!(again.is_none());
        // other entries are unaffected
        assert!(cache.frame_op(&f, "fine", || f.clone()).is_some());
    }

    #[test]
    fn clear_resets_entries_and_stats() {
        let cache = TransformCache::new();
        let f = frame(30);
        let _ = cache.flatten(&f, 3, 1);
        let _ = cache.flatten(&f, 3, 1);
        assert!(cache.stats().hits > 0);
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
        let _ = cache.flatten(&f, 3, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn retired_unit_bypasses_the_cache_entirely() {
        let cache = TransformCache::new();
        let f = frame(60);
        let view = f.slice(0, 60);
        let epoch = cache.begin_unit();
        cache.enter_unit(epoch);
        cache.retire_unit(epoch);
        // zombie lookups still return correct data but leave no trace
        let got = cache.flatten(&view, 4, 2).unwrap();
        assert_eq!(*got, flatten_windows(&view, 4, 2));
        let op = cache
            .frame_op(&view, "plus1", || {
                TimeSeriesFrame::from_columns(
                    (0..view.n_series())
                        .map(|c| view.series(c).iter().map(|v| v + 1.0).collect())
                        .collect(),
                )
            })
            .unwrap();
        assert_eq!(op.len(), 60);
        assert_eq!(cache.stats(), CacheStats::default());
        cache.exit_unit();
        // the same thread outside the unit uses the cache normally again
        let _ = cache.flatten(&view, 4, 2).unwrap();
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn live_unit_uses_the_cache_normally() {
        let cache = TransformCache::new();
        let f = frame(60);
        let epoch = cache.begin_unit();
        cache.enter_unit(epoch);
        let a = cache.flatten(&f.slice(0, 60), 4, 2).unwrap();
        let b = cache.flatten(&f.slice(0, 60), 4, 2).unwrap();
        cache.exit_unit();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn retiring_one_unit_does_not_affect_another() {
        let cache = TransformCache::new();
        let f = frame(60);
        let dead = cache.begin_unit();
        let live = cache.begin_unit();
        cache.retire_unit(dead);
        cache.enter_unit(live);
        let _ = cache.flatten(&f.slice(0, 60), 4, 2).unwrap();
        cache.exit_unit();
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn hit_verification_accepts_honest_entries() {
        let cache = TransformCache::new();
        let f = frame(80);
        set_hit_verification(true);
        // plain hit plus an extension-produced entry, both must verify
        let _ = cache.flatten(&f.slice(40, 80), 5, 2).unwrap();
        let _ = cache.flatten(&f.slice(40, 80), 5, 2).unwrap();
        let _ = cache.flatten(&f.slice(0, 80), 5, 2).unwrap();
        let _ = cache.flatten(&f.slice(0, 80), 5, 2).unwrap();
        set_hit_verification(false);
        assert_eq!(cache.stats().extensions, 1);
        assert_eq!(hit_mismatches(), 0);
    }

    #[test]
    fn release_pins_enables_in_place_growth_and_keeps_entries_servable() {
        let cache = TransformCache::new();
        let mut f = frame(60);
        let _ = cache.flatten(&f.slice(0, 60), 4, 2).unwrap();
        // the entry's pin makes the buffers shared: growth must re-base
        let probe = f.clone();
        let record = f.append(&frame(5));
        assert!(!record.identity_preserved());
        drop(probe);
        // fresh frame, pins released: growth stays in place
        let mut g = frame(60);
        let _ = cache.flatten(&g.slice(0, 60), 4, 2).unwrap();
        cache.release_pins(g.fingerprint().buffers());
        let record = g.append(&frame(5));
        assert!(record.identity_preserved(), "{record:?}");
        // the detached entry still serves hits, and same-buffer extension
        // still works purely on pointer identity
        let before = cache.stats();
        let _ = cache.flatten(&g.slice(0, 60), 4, 2).unwrap();
        let extended = cache.flatten(&g.slice(0, 65), 4, 2).unwrap();
        let after = cache.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.extensions, before.extensions + 1);
        assert_eq!(*extended, flatten_windows(&g.slice(0, 65), 4, 2));
    }

    #[test]
    fn purge_buffers_drops_every_reference_to_the_retired_buffers() {
        let cache = TransformCache::new();
        let f = frame(60);
        let derived = cache
            .frame_op(&f, "plus1", || {
                TimeSeriesFrame::from_columns(
                    (0..f.n_series())
                        .map(|c| f.series(c).iter().map(|v| v + 1.0).collect())
                        .collect(),
                )
            })
            .unwrap();
        let _ = cache.flatten(&f.slice(0, 60), 4, 2).unwrap();
        let _ = cache.flatten(&derived, 4, 2).unwrap();
        cache.purge_buffers(f.fingerprint().buffers());
        // raw entry, frame-op entry, and the lineage-linked derived entry
        // are all gone: every lookup is a fresh miss
        let misses = cache.stats().misses;
        let _ = cache.flatten(&f.slice(0, 60), 4, 2).unwrap();
        let _ = cache.frame_op(&f, "plus1", || derived.clone()).unwrap();
        assert_eq!(cache.stats().misses, misses + 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn parallel_lookups_count_like_serial_ones() {
        use std::thread;
        let cache = Arc::new(TransformCache::new());
        let f = frame(120);
        let view = f.slice(20, 120);
        thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let view = view.clone();
                s.spawn(move || {
                    let got = cache.flatten(&view, 6, 2).unwrap();
                    assert_eq!(got.len(), n_windows(100, 6, 2));
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }
}
