//! Stateful transforms: differencing.
//!
//! Stateful transforms "retain the knowledge of the sequence of operations"
//! (§3). Differencing remembers the final observed values so that a
//! forecast expressed in differences can be integrated back onto the
//! original scale.

use autoai_tsdata::TimeSeriesFrame;

use crate::traits::Transform;

/// Order-d differencing with forecasting-aware inversion.
///
/// `transform` produces `Δᵈ x` (the frame shrinks by `d` rows).
/// `inverse_transform` interprets its input as values that *continue* the
/// training series (the forecasting case) and integrates using the stored
/// tail of the training data.
#[derive(Debug, Clone)]
pub struct DifferenceTransform {
    order: usize,
    /// For each series: the last value of each intermediate difference level
    /// (level 0 = original series … level d-1), used to integrate forecasts.
    anchors: Vec<Vec<f64>>,
}

impl DifferenceTransform {
    /// First-order differencing.
    pub fn new() -> Self {
        Self::with_order(1)
    }

    /// Differencing of the given order (`order >= 1`).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 1, "difference order must be >= 1");
        Self {
            order,
            anchors: Vec::new(),
        }
    }

    /// The differencing order.
    pub fn order(&self) -> usize {
        self.order
    }

    fn diff_once(x: &[f64]) -> Vec<f64> {
        x.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

impl Default for DifferenceTransform {
    fn default() -> Self {
        Self::new()
    }
}

impl Transform for DifferenceTransform {
    fn fit(&mut self, frame: &TimeSeriesFrame) {
        self.anchors = (0..frame.n_series())
            .map(|c| {
                let mut level = frame.series(c).to_vec();
                let mut anchors = Vec::with_capacity(self.order);
                for _ in 0..self.order {
                    anchors.push(*level.last().unwrap_or(&0.0));
                    level = Self::diff_once(&level);
                }
                anchors
            })
            .collect();
    }

    fn transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        let cols: Vec<Vec<f64>> = (0..frame.n_series())
            .map(|c| {
                let mut level = frame.series(c).to_vec();
                for _ in 0..self.order {
                    level = Self::diff_once(&level);
                }
                level
            })
            .collect();
        let mut out = TimeSeriesFrame::from_columns(cols);
        if frame.n_series() > 0 {
            out = out.with_names(frame.names().to_vec());
        }
        if let Some(ts) = frame.timestamps() {
            if ts.len() >= self.order {
                out = out.with_timestamps(ts[self.order..].to_vec());
            }
        }
        out
    }

    fn inverse_transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        // integrate forecast differences: at each level, cumulative-sum the
        // values starting from the stored anchor of that level.
        let cols: Vec<Vec<f64>> = (0..frame.n_series())
            .map(|c| {
                let anchors = self.anchors.get(c).cloned().unwrap_or_default();
                let mut level = frame.series(c).to_vec();
                // invert highest-order difference first
                for anchor in anchors.iter().rev() {
                    let mut prev = *anchor;
                    for v in &mut level {
                        prev += *v;
                        *v = prev;
                    }
                }
                level
            })
            .collect();
        let mut out = TimeSeriesFrame::from_columns(cols);
        if frame.n_series() > 0 {
            out = out.with_names(frame.names().to_vec());
        }
        out
    }

    fn name(&self) -> &'static str {
        "difference"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_difference_values() {
        let f = TimeSeriesFrame::univariate(vec![1.0, 3.0, 6.0, 10.0]);
        let t = DifferenceTransform::new();
        let d = t.transform(&f);
        assert_eq!(d.series(0), &[2.0, 3.0, 4.0]);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn forecast_integration_continues_training_series() {
        // train on 1..=5; model forecasts constant differences of 1.0
        let train = TimeSeriesFrame::univariate(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut t = DifferenceTransform::new();
        t.fit(&train);
        let forecast_diffs = TimeSeriesFrame::univariate(vec![1.0, 1.0, 1.0]);
        let restored = t.inverse_transform(&forecast_diffs);
        assert_eq!(restored.series(0), &[6.0, 7.0, 8.0]);
    }

    #[test]
    fn second_order_difference_roundtrip_on_forecasts() {
        // quadratic series: second differences are constant 2
        let train: Vec<f64> = (0..10).map(|i| (i * i) as f64).collect();
        let f = TimeSeriesFrame::univariate(train.clone());
        let mut t = DifferenceTransform::with_order(2);
        t.fit(&f);
        let d = t.transform(&f);
        assert!(d.series(0).iter().all(|&v| (v - 2.0).abs() < 1e-9));
        // forecasting three more steps of constant second difference
        let fc = TimeSeriesFrame::univariate(vec![2.0, 2.0, 2.0]);
        let restored = t.inverse_transform(&fc);
        assert_eq!(restored.series(0), &[100.0, 121.0, 144.0]); // 10², 11², 12²
    }

    #[test]
    fn multivariate_differencing() {
        let f = TimeSeriesFrame::from_columns(vec![vec![1.0, 2.0, 4.0], vec![10.0, 30.0, 60.0]]);
        let mut t = DifferenceTransform::new();
        t.fit(&f);
        let d = t.transform(&f);
        assert_eq!(d.series(0), &[1.0, 2.0]);
        assert_eq!(d.series(1), &[20.0, 30.0]);
        let restored =
            t.inverse_transform(&TimeSeriesFrame::from_columns(vec![vec![3.0], vec![40.0]]));
        assert_eq!(restored.series(0), &[7.0]);
        assert_eq!(restored.series(1), &[100.0]);
    }

    #[test]
    fn timestamps_shrink_with_differencing() {
        let f = TimeSeriesFrame::univariate(vec![1.0, 2.0, 3.0]).with_regular_timestamps(0, 60);
        let t = DifferenceTransform::new();
        let d = t.transform(&f);
        assert_eq!(d.timestamps().unwrap(), &[60, 120]);
    }

    #[test]
    #[should_panic(expected = "order must be >= 1")]
    fn zero_order_rejected() {
        let _ = DifferenceTransform::with_order(0);
    }
}
