//! Fall-back-transparent helpers for the shared [`TransformCache`].
//!
//! Pipelines hold an `Option<Arc<TransformCache>>` handed to them by the
//! execution engine via [`Forecaster::set_transform_cache`]. These helpers
//! collapse the three-way branch every call site would otherwise repeat:
//! no cache attached → compute directly; cache attached but unable to serve
//! (quarantined panic, poisoned lock) → compute directly; cache hit/miss →
//! use the shared result. A pipeline wired through these helpers behaves
//! bit-identically with and without a cache — the cache only changes *who*
//! computes, never *what*.
//!
//! [`Forecaster::set_transform_cache`]: crate::Forecaster::set_transform_cache

use std::sync::Arc;

use autoai_transforms::{flatten_windows, TransformCache, WindowDataset};
use autoai_tsdata::TimeSeriesFrame;

/// Windowed design matrices for `frame`, shared through `cache` when one is
/// attached and able to serve.
pub fn cached_flatten(
    cache: Option<&Arc<TransformCache>>,
    frame: &TimeSeriesFrame,
    lookback: usize,
    horizon: usize,
) -> Arc<WindowDataset> {
    if let Some(c) = cache {
        if let Some(ds) = c.flatten(frame, lookback, horizon) {
            return ds;
        }
    }
    Arc::new(flatten_windows(frame, lookback, horizon))
}

/// Per-series windowed design matrices (the Localized Flatten building
/// block), shared through `cache` when possible.
pub fn cached_localized_flatten(
    cache: Option<&Arc<TransformCache>>,
    frame: &TimeSeriesFrame,
    series: usize,
    lookback: usize,
    horizon: usize,
) -> Arc<WindowDataset> {
    if let Some(c) = cache {
        if let Some(ds) = c.localized_flatten(frame, series, lookback, horizon) {
            return ds;
        }
    }
    Arc::new(flatten_windows(&frame.select(series), lookback, horizon))
}

/// A frame-to-frame transform pass, memoized under `tag` when a cache is
/// attached. `tag` must uniquely determine the pure function `compute`
/// applies to `frame` (see [`TransformCache::frame_op`]). `compute` must be
/// re-runnable (`Fn`): when the cache quarantines a panic it returns `None`
/// and the helper re-runs `compute` directly so the panic surfaces inside
/// the calling pipeline's own fault-isolation boundary.
pub fn cached_frame_op(
    cache: Option<&Arc<TransformCache>>,
    frame: &TimeSeriesFrame,
    tag: &str,
    compute: impl Fn() -> TimeSeriesFrame,
) -> TimeSeriesFrame {
    if let Some(c) = cache {
        if let Some(out) = c.frame_op(frame, tag, &compute) {
            return out;
        }
    }
    compute()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> TimeSeriesFrame {
        TimeSeriesFrame::univariate((0..40).map(|i| i as f64).collect())
    }

    #[test]
    fn helpers_compute_without_cache() {
        let f = frame();
        let ds = cached_flatten(None, &f, 4, 2);
        assert_eq!(ds.x.nrows(), autoai_transforms::n_windows(40, 4, 2));
        let out = cached_frame_op(None, &f, "id", || f.clone());
        assert_eq!(out, f);
    }

    #[test]
    fn helpers_share_through_cache() {
        let cache = Arc::new(TransformCache::new());
        let f = frame();
        let a = cached_flatten(Some(&cache), &f, 4, 2);
        let b = cached_flatten(Some(&cache), &f, 4, 2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 1);
        let l = cached_localized_flatten(Some(&cache), &f, 0, 4, 2);
        // the select view of a univariate frame fingerprints identically
        assert!(Arc::ptr_eq(&a, &l));
    }

    #[test]
    fn cached_matches_uncached_exactly() {
        let cache = Arc::new(TransformCache::new());
        let f = frame();
        let cached = cached_flatten(Some(&cache), &f, 5, 3);
        let direct = cached_flatten(None, &f, 5, 3);
        assert_eq!(*cached, *direct);
    }

    #[test]
    fn frame_op_memoizes() {
        let cache = Arc::new(TransformCache::new());
        let f = frame();
        let calls = std::cell::Cell::new(0usize);
        let a = cached_frame_op(Some(&cache), &f, "twice", || {
            calls.set(calls.get() + 1);
            f.clone()
        });
        let b = cached_frame_op(Some(&cache), &f, "twice", || {
            calls.set(calls.get() + 1);
            f.clone()
        });
        assert_eq!(calls.get(), 1);
        assert_eq!(a, b);
    }
}
