//! Weighted ensemble of heterogeneous pipelines.
//!
//! The greedy forward selection in `autoai_tdaub` picks the members and
//! weights from the T-Daub survivor set; this type is the deployable
//! artifact — a [`Forecaster`] whose point forecast is the weighted mean of
//! its members and whose intervals are Vincentized (quantile-averaged)
//! member bands. Convex combination preserves band bracketing and nesting,
//! so a valid ensemble interval is built from valid member intervals
//! without re-validation surprises.

use std::sync::Arc;

use autoai_transforms::TransformCache;
use autoai_tsdata::TimeSeriesFrame;

use crate::interval::{IntervalForecast, IntervalSource};
use crate::traits::{Forecaster, PipelineError};

/// A fixed-weight convex combination of pipelines.
pub struct EnsembleForecaster {
    members: Vec<(Box<dyn Forecaster>, f64)>,
}

fn invalid(msg: impl Into<String>) -> PipelineError {
    PipelineError::InvalidInput(msg.into())
}

/// Weighted sum of equally-shaped frames.
fn weighted_combine(frames: &[(f64, TimeSeriesFrame)]) -> Result<TimeSeriesFrame, PipelineError> {
    let Some((_, first)) = frames.first() else {
        return Err(invalid("empty ensemble combination"));
    };
    let n_series = first.n_series();
    let len = first.len();
    for (_, f) in frames {
        if f.n_series() != n_series || f.len() != len {
            return Err(invalid(format!(
                "ensemble member shapes diverge: {}x{} vs {}x{}",
                f.len(),
                f.n_series(),
                len,
                n_series
            )));
        }
    }
    let mut cols = vec![vec![0.0f64; len]; n_series];
    for (w, f) in frames {
        for (acc, s) in cols.iter_mut().zip(f.series_iter()) {
            for (a, v) in acc.iter_mut().zip(s.iter()) {
                *a += w * v;
            }
        }
    }
    Ok(TimeSeriesFrame::from_columns(cols))
}

impl EnsembleForecaster {
    /// Build an ensemble from `(pipeline, weight)` members. Weights must be
    /// finite and positive; they are normalized to sum to one. Member order
    /// is preserved (it is part of the deterministic identity).
    pub fn new(members: Vec<(Box<dyn Forecaster>, f64)>) -> Result<Self, PipelineError> {
        if members.is_empty() {
            return Err(invalid("ensemble needs at least one member"));
        }
        let total: f64 = members.iter().map(|(_, w)| w).sum();
        if !(total.is_finite() && total > 0.0)
            || members.iter().any(|(_, w)| !(w.is_finite() && *w > 0.0))
        {
            return Err(invalid("ensemble weights must be finite and positive"));
        }
        let members = members.into_iter().map(|(p, w)| (p, w / total)).collect();
        Ok(Self { members })
    }

    /// Member names and normalized weights, in selection order.
    pub fn weights(&self) -> Vec<(String, f64)> {
        self.members.iter().map(|(p, w)| (p.name(), *w)).collect()
    }
}

impl Forecaster for EnsembleForecaster {
    fn fit(&mut self, frame: &TimeSeriesFrame) -> Result<(), PipelineError> {
        for (p, _) in self.members.iter_mut() {
            p.fit(frame)?;
        }
        Ok(())
    }

    fn predict(&self, horizon: usize) -> Result<TimeSeriesFrame, PipelineError> {
        let frames: Vec<(f64, TimeSeriesFrame)> = self
            .members
            .iter()
            .map(|(p, w)| p.predict(horizon).map(|f| (*w, f)))
            .collect::<Result<_, _>>()?;
        weighted_combine(&frames)
    }

    fn predict_interval(
        &self,
        horizon: usize,
        levels: &[f64],
    ) -> Result<IntervalForecast, PipelineError> {
        // every member must produce a native band at the same levels; a
        // single failure fails the ensemble and the caller conformal-wraps
        // the ensemble's *point* forecast instead
        let member_ivs: Vec<(f64, IntervalForecast)> = self
            .members
            .iter()
            .map(|(p, w)| p.predict_interval(horizon, levels).map(|iv| (*w, iv)))
            .collect::<Result<_, _>>()?;
        let point = weighted_combine(
            &member_ivs
                .iter()
                .map(|(w, iv)| (*w, iv.point().clone()))
                .collect::<Vec<_>>(),
        )?;
        let mut lower = Vec::with_capacity(levels.len());
        let mut upper = Vec::with_capacity(levels.len());
        for idx in 0..levels.len() {
            let los: Vec<(f64, TimeSeriesFrame)> = member_ivs
                .iter()
                .map(|(w, iv)| {
                    iv.band(idx)
                        .map(|(lo, _)| (*w, lo.clone()))
                        .ok_or_else(|| invalid("member interval missing a level"))
                })
                .collect::<Result<_, _>>()?;
            let his: Vec<(f64, TimeSeriesFrame)> = member_ivs
                .iter()
                .map(|(w, iv)| {
                    iv.band(idx)
                        .map(|(_, hi)| (*w, hi.clone()))
                        .ok_or_else(|| invalid("member interval missing a level"))
                })
                .collect::<Result<_, _>>()?;
            lower.push(weighted_combine(&los)?);
            upper.push(weighted_combine(&his)?);
        }
        IntervalForecast::new(point, levels.to_vec(), lower, upper, IntervalSource::Native)
    }

    fn name(&self) -> String {
        let parts: Vec<String> = self
            .members
            .iter()
            .map(|(p, w)| format!("{}:{:.3}", p.name(), w))
            .collect();
        format!("Ensemble({})", parts.join(","))
    }

    fn clone_unfitted(&self) -> Box<dyn Forecaster> {
        let members = self
            .members
            .iter()
            .map(|(p, w)| (p.clone_unfitted(), *w))
            .collect();
        Box::new(Self { members })
    }

    fn set_time_budget(&mut self, budget: Option<std::time::Duration>) {
        for (p, _) in self.members.iter_mut() {
            p.set_time_budget(budget);
        }
    }

    fn set_transform_cache(&mut self, cache: Option<Arc<TransformCache>>) {
        for (p, _) in self.members.iter_mut() {
            p.set_transform_cache(cache.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stat_pipelines::{ArPipeline, ZeroModelPipeline};

    fn wavy(n: usize) -> TimeSeriesFrame {
        TimeSeriesFrame::univariate(
            (0..n)
                .map(|i| 30.0 + 4.0 * (i as f64 * 0.5).sin() + 0.05 * i as f64)
                .collect(),
        )
    }

    #[test]
    fn weights_normalize_and_order_is_stable() {
        let e = EnsembleForecaster::new(vec![
            (Box::new(ZeroModelPipeline::new()), 2.0),
            (Box::new(ArPipeline::new(4)), 6.0),
        ])
        .unwrap();
        let w = e.weights();
        assert_eq!(w.len(), 2);
        assert_eq!(w.first().map(|(n, _)| n.clone()), Some("ZeroModel".into()));
        let total: f64 = w.iter().map(|(_, x)| x).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((w.first().map(|(_, x)| *x).unwrap_or(0.0) - 0.25).abs() < 1e-12);
        assert_eq!(e.name(), "Ensemble(ZeroModel:0.250,AR:0.750)");
    }

    #[test]
    fn invalid_members_are_rejected() {
        assert!(EnsembleForecaster::new(vec![]).is_err());
        assert!(EnsembleForecaster::new(vec![(
            Box::new(ZeroModelPipeline::new()) as Box<dyn Forecaster>,
            0.0
        )])
        .is_err());
        assert!(EnsembleForecaster::new(vec![(
            Box::new(ZeroModelPipeline::new()) as Box<dyn Forecaster>,
            f64::NAN
        )])
        .is_err());
    }

    #[test]
    fn predict_is_the_weighted_mean() {
        let frame = wavy(120);
        let mut e = EnsembleForecaster::new(vec![
            (Box::new(ZeroModelPipeline::new()), 1.0),
            (Box::new(ArPipeline::new(4)), 1.0),
        ])
        .unwrap();
        e.fit(&frame).unwrap();
        let mut z = ZeroModelPipeline::new();
        z.fit(&frame).unwrap();
        let mut a = ArPipeline::new(4);
        a.fit(&frame).unwrap();
        let (fe, fz, fa) = (
            e.predict(5).unwrap(),
            z.predict(5).unwrap(),
            a.predict(5).unwrap(),
        );
        for ((ve, vz), va) in fe
            .series(0)
            .iter()
            .zip(fz.series(0).iter())
            .zip(fa.series(0).iter())
        {
            assert!((ve - 0.5 * (vz + va)).abs() < 1e-12);
        }
    }

    #[test]
    fn vincentized_intervals_stay_nested() {
        let frame = wavy(150);
        let mut e = EnsembleForecaster::new(vec![
            (Box::new(ZeroModelPipeline::new()), 1.0),
            (Box::new(ArPipeline::new(4)), 3.0),
        ])
        .unwrap();
        e.fit(&frame).unwrap();
        // constructor validates bracketing + nesting; surviving is the test
        let iv = e
            .predict_interval(8, &crate::interval::DEFAULT_LEVELS)
            .unwrap();
        assert_eq!(iv.horizon(), 8);
        assert_eq!(iv.n_series(), 1);
    }

    #[test]
    fn clone_unfitted_preserves_identity() {
        let e = EnsembleForecaster::new(vec![
            (Box::new(ZeroModelPipeline::new()), 1.0),
            (Box::new(ArPipeline::new(4)), 1.0),
        ])
        .unwrap();
        let c = e.clone_unfitted();
        assert_eq!(c.name(), e.name());
        assert!(c.predict(3).is_err(), "clone must be unfitted");
    }
}
