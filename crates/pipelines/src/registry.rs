//! The pipeline registry: pre-composed pipelines the zero-conf system
//! instantiates (§4: "Currently, pre-composed pipelines are instantiated but
//! the system can also dynamically generate new pipelines").

use crate::ensemble::AutoEnsembler;
use crate::stat_pipelines::{
    ArPipeline, ArimaPipeline, BatsPipeline, GarchPipeline, HoltWintersPipeline, Mt2rForecaster,
    NeuralPipeline, SeasonalNaivePipeline, ThetaPipeline, ZeroModelPipeline,
};
use crate::traits::Forecaster;
use crate::window_pipeline::WindowRegressorPipeline;

/// Everything a pipeline needs to be instantiated: the discovered look-back
/// window, the user's prediction horizon, and the discovered seasonal
/// periods (for BATS / Holt-Winters / ARIMA).
#[derive(Debug, Clone)]
pub struct PipelineContext {
    /// Look-back window length (from §4.1 discovery or user input).
    pub lookback: usize,
    /// Prediction horizon.
    pub horizon: usize,
    /// Candidate seasonal periods, most preferred first.
    pub seasonal_periods: Vec<usize>,
}

impl PipelineContext {
    /// Context with the paper's defaults (look-back 8).
    pub fn new(lookback: usize, horizon: usize, seasonal_periods: Vec<usize>) -> Self {
        Self {
            lookback: lookback.max(2),
            horizon: horizon.max(1),
            seasonal_periods,
        }
    }

    /// The preferred seasonal period (0 when none was discovered).
    pub fn primary_period(&self) -> usize {
        self.seasonal_periods.first().copied().unwrap_or(0)
    }
}

/// Display names of the 10 default pipelines, ordered as in Table 6 /
/// Figure 15 (average-performance order).
pub const PIPELINE_NAMES: [&str; 10] = [
    "FlattenAutoEnsembler-log",
    "WindowRandomForest",
    "WindowSVR",
    "MT2RForecaster",
    "bats",
    "DifferenceFlattenAutoEnsembler-log",
    "LocalizedFlattenAutoEnsembler",
    "Arima",
    "HW-Additive",
    "HW-Multiplicative",
];

/// Instantiate the paper's 10 default pipelines for a context.
pub fn default_pipelines(ctx: &PipelineContext) -> Vec<Box<dyn Forecaster>> {
    PIPELINE_NAMES
        .iter()
        .filter_map(|name| pipeline_by_name(name, ctx))
        .collect()
}

/// Instantiate one pipeline by display name. Returns `None` for unknown
/// names. Besides the 10 defaults this registers the extension pipelines
/// (`ZeroModel`, `Theta`, `NeuralWindow`) used in the ~80-pipeline scaling
/// experiments.
pub fn pipeline_by_name(name: &str, ctx: &PipelineContext) -> Option<Box<dyn Forecaster>> {
    let lb = ctx.lookback;
    let h = ctx.horizon;
    let m = ctx.primary_period();
    let p: Box<dyn Forecaster> = match name {
        "FlattenAutoEnsembler-log" => Box::new(AutoEnsembler::flatten(lb, h, true)),
        "FlattenAutoEnsembler" => Box::new(AutoEnsembler::flatten(lb, h, false)),
        "WindowRandomForest" => Box::new(WindowRegressorPipeline::random_forest(lb)),
        "WindowSVR" => Box::new(WindowRegressorPipeline::svr(lb)),
        "MT2RForecaster" => Box::new(Mt2rForecaster::new(lb, h)),
        "bats" => Box::new(BatsPipeline::new(ctx.seasonal_periods.clone())),
        "DifferenceFlattenAutoEnsembler-log" => {
            Box::new(AutoEnsembler::difference_flatten(lb, h, true))
        }
        "DifferenceFlattenAutoEnsembler" => {
            Box::new(AutoEnsembler::difference_flatten(lb, h, false))
        }
        "LocalizedFlattenAutoEnsembler" => Box::new(AutoEnsembler::localized_flatten(lb, h)),
        "Arima" => Box::new(ArimaPipeline::new(m)),
        "HW-Additive" => Box::new(HoltWintersPipeline::additive(m)),
        "HW-Multiplicative" => Box::new(HoltWintersPipeline::multiplicative(m)),
        "ZeroModel" => Box::new(ZeroModelPipeline::new()),
        "Theta" => Box::new(ThetaPipeline::new()),
        "NeuralWindow" => Box::new(NeuralPipeline::new(lb, h)),
        "AR" => Box::new(ArPipeline::new(lb.clamp(1, 8))),
        "Garch" => Box::new(GarchPipeline::new()),
        "SeasonalNaive" => Box::new(SeasonalNaivePipeline::new(if m >= 2 { m } else { lb })),
        _ => return None,
    };
    Some(p)
}

/// An extended registry exercising the paper's "about 80 different
/// pipelines" scaling claim: the defaults plus parameter variations.
pub fn extended_pipelines(ctx: &PipelineContext) -> Vec<Box<dyn Forecaster>> {
    let mut out = default_pipelines(ctx);
    out.push(Box::new(ZeroModelPipeline::new()));
    out.push(Box::new(ThetaPipeline::new()));
    out.push(Box::new(NeuralPipeline::new(ctx.lookback, ctx.horizon)));
    out.push(Box::new(ArPipeline::new(ctx.lookback.clamp(1, 8))));
    out.push(Box::new(GarchPipeline::new()));
    out.push(Box::new(SeasonalNaivePipeline::new(
        ctx.primary_period().max(ctx.lookback),
    )));
    // look-back variations of the window pipelines
    for factor in [2usize, 4] {
        let lb = (ctx.lookback * factor).max(4);
        out.push(Box::new(WindowRegressorPipeline::random_forest(lb)));
        out.push(Box::new(WindowRegressorPipeline::svr(lb)));
        out.push(Box::new(AutoEnsembler::flatten(lb, ctx.horizon, true)));
        out.push(Box::new(AutoEnsembler::flatten(lb, ctx.horizon, false)));
        out.push(Box::new(AutoEnsembler::difference_flatten(
            lb,
            ctx.horizon,
            false,
        )));
        out.push(Box::new(AutoEnsembler::localized_flatten(lb, ctx.horizon)));
        out.push(Box::new(Mt2rForecaster::new(lb, ctx.horizon)));
    }
    // no-log variants at the base look-back
    out.push(Box::new(AutoEnsembler::flatten(
        ctx.lookback,
        ctx.horizon,
        false,
    )));
    out.push(Box::new(AutoEnsembler::difference_flatten(
        ctx.lookback,
        ctx.horizon,
        false,
    )));
    // seasonal-period variations for the statistical family
    for &p in ctx.seasonal_periods.iter().skip(1).take(2) {
        out.push(Box::new(HoltWintersPipeline::additive(p)));
        out.push(Box::new(HoltWintersPipeline::multiplicative(p)));
        out.push(Box::new(BatsPipeline::new(vec![p])));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_registry_has_ten_pipelines() {
        let ctx = PipelineContext::new(8, 12, vec![12]);
        let ps = default_pipelines(&ctx);
        assert_eq!(ps.len(), 10);
        let names: Vec<String> = ps.iter().map(|p| p.name()).collect();
        for expected in PIPELINE_NAMES {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn unknown_name_returns_none() {
        let ctx = PipelineContext::new(8, 12, vec![]);
        assert!(pipeline_by_name("NotARealPipeline", &ctx).is_none());
    }

    #[test]
    fn extension_pipelines_resolvable() {
        let ctx = PipelineContext::new(8, 12, vec![7]);
        for name in [
            "ZeroModel",
            "Theta",
            "NeuralWindow",
            "FlattenAutoEnsembler",
            "AR",
            "Garch",
            "SeasonalNaive",
        ] {
            assert!(pipeline_by_name(name, &ctx).is_some(), "missing {name}");
        }
    }

    #[test]
    fn extended_registry_scales_out() {
        let ctx = PipelineContext::new(8, 12, vec![12, 7, 30]);
        let ps = extended_pipelines(&ctx);
        assert!(
            ps.len() >= 30,
            "extended registry has {} pipelines",
            ps.len()
        );
    }

    #[test]
    fn context_clamps_degenerate_values() {
        let ctx = PipelineContext::new(0, 0, vec![]);
        assert!(ctx.lookback >= 2);
        assert!(ctx.horizon >= 1);
        assert_eq!(ctx.primary_period(), 0);
    }
}
