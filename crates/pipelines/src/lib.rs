//! Forecasting pipelines: the sklearn-style estimator contract and the ten
//! pipelines AutoAI-TS ships (Table 6 of the paper).
//!
//! A pipeline "encapsulates all the complexities and performs all necessary
//! tasks internally, such as model parameter search and data reshaping"
//! (§3). Every pipeline implements the [`Forecaster`] trait — `fit` on a
//! 2-D frame, `predict(horizon)` returning a 2-D frame whose rows are the
//! future values — so T-Daub and the zero-conf orchestrator can treat
//! statistical, ML, hybrid, and neural pipelines uniformly.
//!
//! The ten pipelines, in the order of Figure 15 / Table 6:
//! `FlattenAutoEnsembler-log`, `WindowRandomForest`, `WindowSVR`,
//! `MT2RForecaster`, `bats`, `DifferenceFlattenAutoEnsembler-log`,
//! `LocalizedFlattenAutoEnsembler`, `Arima`, `HW-Additive`,
//! `HW-Multiplicative`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod caching;
pub mod ensemble;
pub mod interval;
pub mod registry;
pub mod stat_pipelines;
pub mod traits;
pub mod weighted_ensemble;
pub mod window_pipeline;

pub use caching::{cached_flatten, cached_frame_op, cached_localized_flatten};
pub use ensemble::{AutoEnsembler, EnsembleMode};
pub use interval::{
    predict_interval_or_conformal, ConformalCalibration, IntervalForecast, IntervalSource,
    DEFAULT_LEVELS,
};
pub use registry::{
    default_pipelines, extended_pipelines, pipeline_by_name, PipelineContext, PIPELINE_NAMES,
};
pub use stat_pipelines::{
    ArPipeline, ArimaPipeline, BatsPipeline, GarchPipeline, HoltWintersPipeline, Mt2rForecaster,
    NeuralPipeline, SeasonalNaivePipeline, ThetaPipeline, ZeroModelPipeline,
};
pub use traits::{Forecaster, PipelineError};
pub use weighted_ensemble::EnsembleForecaster;
pub use window_pipeline::WindowRegressorPipeline;
